#!/usr/bin/env python3
"""A TCP-like ordered byte stream implemented over Homa (section 3.1).

The paper leaves a socket-like interface as future work but sketches
how: "a very thin layer on top of Homa that discards duplicate data and
preserves order."  This example runs that layer and shows it preserving
order even though Homa itself completes messages SRPT-first — and shows
that, unlike a real TCP stream, a small independent Homa message is
never stuck behind the stream's bulk data.

Run:  python examples/stream_over_homa.py
"""

from repro.core.engine import Simulator
from repro.core.topology import NetworkConfig, build_network
from repro.core.units import MS
from repro.homa.config import HomaConfig
from repro.homa.stream_adapter import StreamOverHoma
from repro.transport.registry import transport_factory
from repro.workloads.catalog import get_workload


def main() -> None:
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=4,
                                           aggrs=0))
    factory = transport_factory("homa", sim, net, get_workload("W3").cdf,
                                HomaConfig())
    transports = net.attach_transports(lambda host: factory(host))

    tx = StreamOverHoma(transports[0])
    rx = StreamOverHoma(transports[1])

    delivered = []
    stream = tx.open(peer=1)
    rx.listen(stream.stream_id,
              lambda seq, size: delivered.append(
                  f"  chunk {seq} ({size:>7} B) delivered at "
                  f"{sim.now / 1e6:9.1f} us"))

    # A bulk transfer interleaved with small chunks.
    for size in (800_000, 120, 64, 400_000, 2_000):
        stream.write(size)

    # Meanwhile an unrelated tiny RPC-style message shares the link.
    side_channel = []
    transports[2].on_message_complete = (
        lambda msg, now: side_channel.append(now / 1e6))
    transports[0].send_message(2, 96)

    sim.run(until_ps=50 * MS)

    print("ordered stream delivery (note: Homa completed the small "
          "chunks' messages first internally — the adapter reorders):")
    print("\n".join(delivered))
    print(f"\nindependent 96 B message to another host completed at "
          f"{side_channel[0]:.1f} us — it did NOT wait for the 800 KB "
          f"chunk (no head-of-line blocking across messages)")


if __name__ == "__main__":
    main()
