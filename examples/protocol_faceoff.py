#!/usr/bin/env python3
"""Protocol face-off: Homa vs its competitors on one workload.

Runs Homa, pFabric, pHost, PIAS, and RAMCloud's Basic transport on the
Facebook Hadoop workload (W4) at 70% load and compares short-message
tail latency, overall medians, and delivery stability — a miniature of
the paper's Figure 12/15 story.

Run:  python examples/protocol_faceoff.py
"""

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scale import effective_load

PROTOCOLS = ("homa", "basic", "pfabric", "phost", "pias")


def main() -> None:
    print("running 5 protocols on W4 (Facebook Hadoop) at 70% load...\n")
    print(f"{'protocol':>9} {'load':>5} {'msgs':>7} {'finish':>7} "
          f"{'p50':>7} {'p99':>8} {'short-msg p99':>14}")
    print("-" * 64)
    rows = []
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol, workload="W4",
            load=effective_load(protocol, 0.7),
            racks=2, hosts_per_rack=6, aggrs=2,
            duration_ms=15.0, warmup_ms=1.0, drain_ms=25.0,
            max_messages=1200, seed=3,
        )
        result = run_experiment(cfg)
        short_p99 = result.slowdown_series(99)[:5]
        short_p99 = min(v for v in short_p99 if v == v)
        rows.append((protocol, result))
        print(f"{protocol:>9} {int(cfg.load * 100):>4}% "
              f"{result.tracker.count:>7} {result.finish_rate:>7.3f} "
              f"{result.tracker.overall(50):>7.2f} "
              f"{result.tracker.overall(99):>8.2f} {short_p99:>14.2f}")
    print("\nwhat to look for (paper, Figures 12/15):")
    print(" * homa and pfabric have the lowest tails; homa needs only 8 "
          "priority levels, pfabric needs unbounded ones")
    print(" * basic (no priorities, unlimited overcommitment) has much "
          "higher tails: queueing at the receiver downlink")
    print(" * phost runs below the requested load (its sustainable "
          "maximum); pias suffers ECN backoff on this workload")


if __name__ == "__main__":
    main()
