#!/usr/bin/env python3
"""Quickstart: run Homa on a small datacenter and measure slowdowns.

This builds a 24-host, 3-rack network (a scaled-down version of the
paper's Figure 11 topology), drives it with workload W3 (all RPCs in a
Google datacenter) at 60% network load, and prints the tail-latency
table that is the paper's primary metric.

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.tables import series_table
from repro.workloads.catalog import get_workload


def main() -> None:
    cfg = ExperimentConfig(
        protocol="homa",
        workload="W3",
        load=0.6,
        racks=3, hosts_per_rack=8, aggrs=2,
        duration_ms=4.0, warmup_ms=0.5, drain_ms=6.0,
        max_messages=20_000,
        seed=42,
    )
    print(f"simulating {cfg.protocol} on {cfg.workload} at "
          f"{int(cfg.load * 100)}% load "
          f"({cfg.racks * cfg.hosts_per_rack} hosts)...")
    result = run_experiment(cfg)

    print(f"\nmessages measured: {result.tracker.count}  "
          f"(submitted {result.submitted}, "
          f"finish rate {result.finish_rate:.3f})")
    print(f"simulated {result.sim_time_ms:.1f} ms of network time in "
          f"{result.wall_seconds:.1f} s "
          f"({result.events:,} events)\n")

    edges = get_workload("W3").bucket_edges()
    print(series_table(
        "Homa slowdown by message size (W3, 60% load)",
        edges,
        {
            "p50": result.tracker.series(edges, 50),
            "p99": result.tracker.series(edges, 99),
        },
        note="slowdown = completion time / unloaded best case; 1.0 is ideal",
    ))
    print(f"\noverall: median {result.tracker.overall(50):.2f}, "
          f"99th percentile {result.tracker.overall(99):.2f}")
    print("the paper's headline: 99th-percentile slowdown 2-3.5 across "
          "sizes at 80% load")


if __name__ == "__main__":
    main()
