#!/usr/bin/env python3
"""Incast: a client scatters RPCs to 15 servers and gathers responses.

Reproduces the Figure 10 scenario on a 16-host single-switch cluster:
every RPC has a tiny request and a 10 KB response, and the client keeps
N RPCs outstanding.  Without incast control, all N responses arrive
blind (unscheduled) and overflow the client's TOR downlink buffer; with
Homa's incast control the client marks its requests once it has many
RPCs outstanding, servers limit responses to a few hundred unscheduled
bytes, and the receiver's grant scheduler paces the rest.

Run:  python examples/incast_control.py
"""

from repro.apps.echo import echo_handler
from repro.apps.incast import IncastClient
from repro.core.engine import Simulator
from repro.core.topology import NetworkConfig, build_network
from repro.core.units import MS
from repro.homa.config import HomaConfig
from repro.transport.registry import transport_factory
from repro.workloads.catalog import get_workload


def run(concurrency: int, control: bool) -> tuple[float, int]:
    sim = Simulator()
    net = build_network(sim, NetworkConfig(
        racks=1, hosts_per_rack=16, aggrs=0,
        port_buffer_bytes=3_000_000))  # a shallow shared-buffer switch
    factory = transport_factory("homa", sim, net, get_workload("W3").cdf,
                                HomaConfig(incast_control=control))
    transports = net.attach_transports(lambda host: factory(host))
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler

    client = IncastClient(sim, transports[0], list(range(1, 16)),
                          concurrency)
    sim.run(until_ps=5 * MS)       # warm up
    client.response_bytes_received = 0
    client.started_ps = sim.now
    sim.run(until_ps=15 * MS)      # measure 10 ms
    drops = sum(port.drops for port in net.tor_down_ports)
    return client.goodput_gbps(), drops


def main() -> None:
    print(f"{'concurrent RPCs':>16} | {'with control':>22} | "
          f"{'without control':>22}")
    print(f"{'':>16} | {'Gbps':>10} {'drops':>10} | "
          f"{'Gbps':>10} {'drops':>10}")
    print("-" * 70)
    for concurrency in (10, 100, 300, 600, 1200):
        on_gbps, on_drops = run(concurrency, control=True)
        off_gbps, off_drops = run(concurrency, control=False)
        print(f"{concurrency:>16} | {on_gbps:>10.2f} {on_drops:>10} | "
              f"{off_gbps:>10.2f} {off_drops:>10}")
    print("\npaper (Figure 10): control keeps throughput flat through "
          "thousands of RPCs; without it, drops degrade throughput past "
          "~300 concurrent RPCs")


if __name__ == "__main__":
    main()
