#!/usr/bin/env python3
"""Using Homa's public RPC API directly: a tiny key-value store.

Shows the transport-level API a datacenter application would use —
``send_rpc`` on the client, an ``rpc_handler`` on the server, and
at-least-once semantics (the paper's section 3.8: retried RPCs may
re-execute, so handlers should be idempotent or filter duplicates at a
higher level, e.g. with RIFL).

Run:  python examples/rpc_server.py
"""

from repro.core.engine import Simulator
from repro.core.topology import NetworkConfig, build_network
from repro.core.units import MS
from repro.homa.config import HomaConfig
from repro.transport.registry import transport_factory
from repro.workloads.catalog import get_workload

#: toy wire format: app_meta carries the op (1=PUT, 2=GET) and key id
PUT, GET = 1, 2


class KvServer:
    """An idempotent key-value server over Homa RPCs."""

    def __init__(self):
        self.store: dict[int, int] = {}   # key -> stored blob size
        self.executions = 0

    def handler(self, transport, server_rpc) -> None:
        self.executions += 1
        op = (server_rpc.app_meta or 0) >> 32
        key = (server_rpc.app_meta or 0) & 0xFFFFFFFF
        if op == PUT:
            self.store[key] = server_rpc.request_length
            transport.respond(server_rpc, 16)  # small OK response
        else:
            size = self.store.get(key, 16)
            transport.respond(server_rpc, size)


def main() -> None:
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=4,
                                           aggrs=0))
    factory = transport_factory("homa", sim, net, get_workload("W1").cdf,
                                HomaConfig())
    transports = net.attach_transports(lambda host: factory(host))

    server = KvServer()
    transports[1].rpc_handler = server.handler
    client = transports[0]
    log = []

    def meta(op, key):
        return (op << 32) | key

    # PUT three values, then read them back.
    for key, size in ((1, 5_000), (2, 64), (3, 40_000)):
        client.send_rpc(1, size, app_meta=meta(PUT, key),
                        on_response=lambda rid, msg, k=key:
                        log.append(f"PUT key={k} ok ({sim.now / 1e6:.1f} us)"))
    sim.run(until_ps=2 * MS)
    for key in (1, 2, 3, 99):
        client.send_rpc(1, 32, app_meta=meta(GET, key),
                        on_response=lambda rid, msg, k=key:
                        log.append(f"GET key={k} -> {msg.length} B "
                                   f"({sim.now / 1e6:.1f} us)"))
    sim.run(until_ps=4 * MS)

    print("\n".join(log))
    print(f"\nserver executed {server.executions} RPCs, "
          f"store holds {len(server.store)} keys")
    print("note: at-least-once semantics — a lost response would "
          "re-execute the PUT, which is why the handler is idempotent")


if __name__ == "__main__":
    main()
