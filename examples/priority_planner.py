#!/usr/bin/env python3
"""Priority planner: how Homa would configure itself for your workload.

Feeds each of the paper's workloads (and one custom distribution)
through Homa's receiver-side priority allocation (section 3.4 /
Figure 4) and prints the resulting unscheduled/scheduled split and the
per-level message-size ranges.

Run:  python examples/priority_planner.py
"""

from repro.homa.priorities import allocate_priorities
from repro.workloads.catalog import WORKLOADS
from repro.workloads.distributions import EmpiricalCDF

RTT_BYTES = 9680
UNSCHED_LIMIT = 10220  # RTTbytes rounded up to whole packets


def describe(name: str, cdf: EmpiricalCDF) -> None:
    alloc = allocate_priorities(cdf, UNSCHED_LIMIT)
    fraction = cdf.mean_truncated(UNSCHED_LIMIT) / cdf.mean()
    print(f"{name}: mean message {cdf.mean():,.0f} B, "
          f"{fraction * 100:.0f}% of bytes unscheduled")
    print(f"  -> {alloc.n_unsched} unscheduled levels "
          f"(P{alloc.unsched_levels[0]}-P{alloc.unsched_levels[-1]}), "
          f"{alloc.n_sched} scheduled (P{alloc.sched_levels[0]}-"
          f"P{alloc.sched_levels[-1]})")
    lo = 1
    for level, cutoff in zip(reversed(alloc.unsched_levels), alloc.cutoffs):
        print(f"     P{level}: unscheduled bytes of messages "
              f"{lo:,}-{cutoff:,} B")
        lo = cutoff + 1
    print()


def main() -> None:
    print("Homa receiver priority allocation "
          f"(8 levels, unscheduled limit {UNSCHED_LIMIT} B)\n")
    for key, workload in WORKLOADS.items():
        describe(f"{key} ({workload.description})", workload.cdf)

    print("a custom workload: your own storage system's RPC sizes")
    custom = EmpiricalCDF(
        [(0.0, 64), (0.3, 256), (0.6, 1024), (0.85, 4096),
         (0.97, 65536), (1.0, 1_048_576)],
        name="custom-storage")
    describe("custom", custom)
    print("(paper: W1 gets 7 unscheduled levels, W2 6, W3 4, W4/W5 1 — "
          "matching Figure 4 and section 5.2)")


if __name__ == "__main__":
    main()
