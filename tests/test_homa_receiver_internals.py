"""Focused unit tests for the Homa receiver's grant scheduler and the
sender's packet selection, exercised directly (no full network).

Everything here pins ``grant_batch_ns=0`` (``make_transport`` forces
it): these tests assert the *synchronous* per-packet grant semantics
the paper's simulator defines.  The batched grant pacer has its own
direct-transport coverage in tests/test_grant_batching.py."""

from dataclasses import replace

from repro.core.engine import Simulator
from repro.core.packet import CTRL_PRIO, MAX_PAYLOAD, Packet, PacketType
from repro.homa.config import HomaConfig
from repro.homa.priorities import allocate_priorities
from repro.homa.transport import HomaTransport
from repro.workloads.catalog import WORKLOADS

from tests.helpers import FakeHost, drain_ctrl

RTT = 9680


def make_transport(homa_cfg=None, workload="W4"):
    sim = Simulator()
    cfg = replace(homa_cfg or HomaConfig(), grant_batch_ns=0)
    alloc = allocate_priorities(
        WORKLOADS[workload].cdf, cfg.resolved_unsched_limit(RTT),
        n_prios=cfg.n_prios,
        n_unsched_override=cfg.n_unsched_override,
        n_sched_override=cfg.n_sched_override)
    transport = HomaTransport(sim, cfg, alloc, RTT)
    transport.bind(FakeHost(sim, 0))
    return sim, transport


def data_packet(src, rpc_id, offset, payload, total, created=0):
    return Packet(src, 0, PacketType.DATA, prio=5, payload=payload,
                  rpc_id=rpc_id, is_request=True, offset=offset,
                  total_length=total, grant_offset=min(total, 10220),
                  created_ps=created)


def test_grant_emitted_per_data_packet():
    sim, transport = make_transport()
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 100_000))
    grants = [p for p in drain_ctrl(transport) if p.kind == PacketType.GRANT]
    assert len(grants) == 1
    grant = grants[0]
    assert grant.dst == 1
    assert grant.prio == CTRL_PRIO
    # Grant extends to received + RTTbytes, packet-aligned.
    assert grant.grant_offset % MAX_PAYLOAD == 0
    assert grant.grant_offset >= MAX_PAYLOAD + RTT


def test_no_grant_for_fully_unscheduled_message():
    sim, transport = make_transport()
    transport.on_packet(data_packet(1, 100, 0, 1000, 1000))
    assert not [p for p in drain_ctrl(transport)
                if p.kind == PacketType.GRANT]


def test_grants_limited_to_overcommit_degree():
    cfg = HomaConfig(n_sched_override=2)
    sim, transport = make_transport(cfg)
    for index in range(5):
        transport.on_packet(data_packet(index + 1, 100 + index, 0,
                                        MAX_PAYLOAD, 500_000 + index))
    granted_beyond_unsched = [
        m for m in transport.inbound.values() if m.granted > 10220]
    assert len(granted_beyond_unsched) == 2


def test_shortest_messages_granted_first():
    cfg = HomaConfig(n_sched_override=1)
    sim, transport = make_transport(cfg)
    # The short message is known first; once both are known, only the
    # shortest keeps receiving grants (degree 1).
    transport.on_packet(data_packet(2, 101, 0, MAX_PAYLOAD, 50_000))
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 900_000))
    by_src = {m.src: m for m in transport.inbound.values()}
    assert by_src[2].granted > 10220      # short message active
    assert by_src[1].granted <= 10220     # long message never granted
    # More data for the long message still does not extend its grant.
    transport.on_packet(data_packet(1, 100, MAX_PAYLOAD, MAX_PAYLOAD,
                                    900_000))
    assert by_src[1].granted <= 10220


def test_scheduled_priorities_rank_by_remaining():
    sim, transport = make_transport()  # W4: 7 scheduled levels
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 2_000_000))
    transport.on_packet(data_packet(2, 101, 0, MAX_PAYLOAD, 500_000))
    transport.on_packet(data_packet(3, 102, 0, MAX_PAYLOAD, 100_000))
    by_src = {m.src: m for m in transport.inbound.values()}
    assert by_src[1].sched_prio < by_src[2].sched_prio < by_src[3].sched_prio
    assert by_src[1].sched_prio == transport.alloc.sched_levels[0]


def test_withheld_observer_fires_on_transitions():
    cfg = HomaConfig(n_sched_override=1)
    sim, transport = make_transport(cfg)
    events = []
    transport.withheld_observer = lambda hid, w: events.append(w)
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 500_000))
    assert events == []  # one grantable message, degree 1: not withheld
    transport.on_packet(data_packet(2, 101, 0, MAX_PAYLOAD, 400_000))
    assert events == [True]


def test_sender_prefers_control_packets():
    sim, transport = make_transport()
    transport.send_message(2, 1000)
    transport.send_ctrl(Packet(0, 3, PacketType.BUSY, rpc_id=9))
    first = transport.next_packet()
    assert first.kind == PacketType.BUSY
    second = transport.next_packet()
    assert second.kind == PacketType.DATA


def test_sender_srpt_order():
    sim, transport = make_transport()
    transport.send_message(2, 50_000)
    transport.send_message(3, 5_000)
    pkt = transport.next_packet()
    assert pkt.dst == 3  # fewest remaining bytes first


def test_sender_respects_grant_boundary():
    sim, transport = make_transport()
    msg = transport.send_message(2, 100_000)
    sent = 0
    while True:
        pkt = transport.next_packet()
        if pkt is None:
            break
        sent += pkt.payload
    assert sent == transport.unsched_limit
    # A grant opens the next window.
    transport.on_packet(Packet(2, 0, PacketType.GRANT, rpc_id=msg.rpc_id,
                               is_request=True, grant_offset=20_440,
                               grant_prio=3))
    pkt = transport.next_packet()
    assert pkt is not None
    assert pkt.prio == 3
    assert pkt.sched


def test_unsched_packets_carry_length_based_priority():
    sim, transport = make_transport(workload="W2")
    transport.send_message(2, 50)
    small_prio = transport.next_packet().prio
    transport.send_message(3, 200_000)
    big_prio = transport.next_packet().prio
    assert small_prio > big_prio


def test_resend_for_unknown_response_triggers_request_resend():
    sim, transport = make_transport()
    resend = Packet(4, 0, PacketType.RESEND, rpc_id=777, is_request=False,
                    offset=0, range_end=RTT)
    transport.on_packet(resend)
    out = drain_ctrl(transport)
    assert len(out) == 1
    assert out[0].kind == PacketType.RESEND
    assert out[0].is_request
    assert out[0].dst == 4
    assert transport.reexecutions == 1


def test_resend_while_executing_sends_busy():
    sim, transport = make_transport()
    transport.rpc_handler = lambda t, rpc: None  # executes forever
    transport.on_packet(data_packet(1, 55, 0, 100, 100))
    drain_ctrl(transport)
    resend = Packet(1, 0, PacketType.RESEND, rpc_id=55, is_request=False,
                    offset=0, range_end=RTT)
    transport.on_packet(resend)
    out = drain_ctrl(transport)
    assert out and out[0].kind == PacketType.BUSY


def test_duplicate_response_packet_for_finished_rpc_dropped():
    sim, transport = make_transport()
    stray = Packet(1, 0, PacketType.DATA, rpc_id=999, is_request=False,
                   payload=100, offset=0, total_length=100)
    transport.on_packet(stray)
    assert not transport.inbound


def test_grant_for_finished_message_ignored():
    sim, transport = make_transport()
    transport.on_packet(Packet(2, 0, PacketType.GRANT, rpc_id=12345,
                               is_request=True, grant_offset=99_999,
                               grant_prio=1))
    assert not transport.outbound
