"""Tests for the experiments layer: scale control, tables, max-load."""

import pytest

from repro.experiments.maxload import find_max_load
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scale import (
    SCALES,
    current_scale,
    effective_load,
    scaled_kwargs,
)
from repro.experiments.tables import comparison_line, fmt, kv_table, series_table


def test_scales_defined():
    assert set(SCALES) == {"tiny", "quick", "paper"}
    assert SCALES["paper"].racks == 9
    assert SCALES["paper"].hosts_per_rack == 16


def test_current_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert current_scale().name == "tiny"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
    with pytest.raises(ValueError) as excinfo:
        current_scale()
    # The error names the offending value and every valid scale.
    message = str(excinfo.value)
    assert "'bogus'" in message
    for valid in SCALES:
        assert valid in message


def test_scaled_kwargs_heavy_workloads(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
    light = scaled_kwargs("W1")
    heavy = scaled_kwargs("W4")
    w5 = scaled_kwargs("W5")
    assert heavy["duration_ms"] > light["duration_ms"]
    assert w5["max_messages"] < heavy["max_messages"]


def test_effective_load_caps_phost_and_ndp():
    assert effective_load("phost", 0.8) == 0.68
    assert effective_load("ndp", 0.8) == 0.70
    assert effective_load("homa", 0.8) == 0.8
    assert effective_load("phost", 0.5) == 0.5


def test_fmt_handles_nan():
    assert fmt(float("nan")).endswith("---")
    assert fmt(1.234) == "    1.23"


def test_series_table_renders_all_buckets():
    text = series_table("t", [0, 10, 100],
                        {"a": [1.0, 2.0], "b": [3.0, float("nan")]})
    assert "t" in text
    assert text.count("\n") >= 3
    assert "---" in text  # the NaN cell


def test_kv_table():
    text = kv_table("title", [("key", "value"), ("k2", "v2")])
    assert "title" in text and "value" in text


def test_comparison_line():
    line = comparison_line("x", 1, 2)
    assert "paper" in line and "measured" in line


def quick_base(**kw):
    return ExperimentConfig(
        protocol="homa", workload="W2",
        racks=2, hosts_per_rack=4, aggrs=2,
        duration_ms=1.5, warmup_ms=0.0, drain_ms=5.0, **kw)


def test_find_max_load_returns_stable_point():
    result = find_max_load(quick_base(), grid=(0.3, 0.5))
    assert result.max_load in (0.3, 0.5)
    assert result.protocol == "homa"
    assert 0.0 < result.total_utilization <= 1.0
    assert len(result.probes) >= 1


def test_find_max_load_probe_ordering():
    result = find_max_load(quick_base(), grid=(0.2, 0.4))
    loads = [p[0] for p in result.probes]
    assert loads == sorted(loads)


def test_runner_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_experiment(quick_base(mode="closed_loop"))


def test_runner_net_overrides_applied():
    result = run_experiment(quick_base(
        net_overrides={"preemptive_links": True},
        max_messages=100))
    assert result.finish_rate > 0.9


def test_paper_scale_helper():
    cfg = quick_base().paper_scale()
    assert cfg.racks == 9 and cfg.hosts_per_rack == 16 and cfg.aggrs == 4


def test_result_slowdown_series_length():
    result = run_experiment(quick_base(max_messages=300))
    series = result.slowdown_series(99)
    assert len(series) == 10  # one value per decile bucket
