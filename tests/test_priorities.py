"""Tests for Homa's priority allocation (section 3.4, Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homa.priorities import (
    OnlineEstimator,
    allocate_priorities,
    compute_cutoffs,
    split_levels,
)
from repro.workloads.catalog import WORKLOADS

UNSCHED_LIMIT = 10220  # RTTbytes rounded up to whole packets


def test_paper_level_splits():
    """Section 5.2: 7 unsched levels for W1, 4 for W3, 1 for W4/W5;
    Figure 4: 6 for W2."""
    expected = {"W1": 7, "W2": 6, "W3": 4, "W4": 1, "W5": 1}
    for key, n_unsched in expected.items():
        alloc = allocate_priorities(WORKLOADS[key].cdf, UNSCHED_LIMIT)
        assert alloc.n_unsched == n_unsched, key
        assert alloc.n_sched == 8 - n_unsched, key


def test_levels_partition_priorities():
    alloc = allocate_priorities(WORKLOADS["W3"].cdf, UNSCHED_LIMIT)
    assert alloc.sched_levels == (0, 1, 2, 3)
    assert alloc.unsched_levels == (4, 5, 6, 7)


def test_w2_first_cutoff_near_paper_280():
    """Figure 4: P7 covers messages of 1-280 bytes for W2."""
    alloc = allocate_priorities(WORKLOADS["W2"].cdf, UNSCHED_LIMIT)
    assert 180 <= alloc.cutoffs[0] <= 400


def test_cutoffs_ascending():
    for key in WORKLOADS:
        alloc = allocate_priorities(WORKLOADS[key].cdf, UNSCHED_LIMIT)
        assert list(alloc.cutoffs) == sorted(alloc.cutoffs)


def test_cutoffs_balance_unscheduled_bytes():
    """Each unscheduled level must carry ~the same unscheduled bytes."""
    cdf = WORKLOADS["W3"].cdf
    alloc = allocate_priorities(cdf, UNSCHED_LIMIT)
    masses = []
    prev = 0.0
    for cutoff in alloc.cutoffs:
        mass = cdf.unsched_mass_below(cutoff, UNSCHED_LIMIT)
        masses.append(mass - prev)
        prev = mass
    mean_mass = sum(masses) / len(masses)
    for mass in masses:
        assert mass == pytest.approx(mean_mass, rel=0.1)


def test_unsched_prio_smaller_messages_higher():
    alloc = allocate_priorities(WORKLOADS["W3"].cdf, UNSCHED_LIMIT)
    prios = [alloc.unsched_prio(s) for s in (10, 500, 5000, 1_000_000)]
    assert prios == sorted(prios, reverse=True)
    assert prios[0] == 7
    assert prios[-1] == alloc.unsched_levels[0]


def test_unsched_prio_monotone_nonincreasing():
    alloc = allocate_priorities(WORKLOADS["W2"].cdf, UNSCHED_LIMIT)
    last = 8
    for size in range(1, 20000, 37):
        prio = alloc.unsched_prio(size)
        assert prio <= last or prio == last
        last = min(last, prio)


def test_sched_prio_lowest_first():
    """Fewer active messages than levels -> lowest levels used, keeping
    high levels free for preemption (avoids Figure 5's lag)."""
    alloc = allocate_priorities(WORKLOADS["W4"].cdf, UNSCHED_LIMIT)
    assert alloc.n_sched == 7
    assert alloc.sched_prio(0) == 0
    assert alloc.sched_prio(1) == 1
    assert alloc.sched_prio(6) == 6
    assert alloc.sched_prio(99) == 6  # extras share the top sched level


def test_split_levels_single_priority_shares():
    assert split_levels(0.5, 1) == (1, 1)


def test_split_levels_clamps():
    assert split_levels(0.0, 8) == (7, 1)
    assert split_levels(1.0, 8) == (1, 7)


def test_split_levels_overrides():
    assert split_levels(0.5, 8, n_unsched_override=2) == (6, 2)
    assert split_levels(0.5, 8, n_sched_override=3) == (3, 5)
    assert split_levels(0.5, 8, n_unsched_override=1, n_sched_override=1) == (1, 1)


def test_split_levels_override_conflict():
    with pytest.raises(ValueError):
        split_levels(0.5, 8, n_unsched_override=5, n_sched_override=5)


def test_homap1_allocation():
    alloc = allocate_priorities(WORKLOADS["W3"].cdf, UNSCHED_LIMIT, n_prios=1)
    assert alloc.sched_levels == (0,)
    assert alloc.unsched_levels == (0,)
    assert alloc.unsched_prio(100) == 0
    assert alloc.sched_prio(0) == 0


def test_homap2_allocation():
    alloc = allocate_priorities(WORKLOADS["W3"].cdf, UNSCHED_LIMIT, n_prios=2)
    assert alloc.n_sched + alloc.n_unsched == 2
    assert alloc.sched_levels[0] == 0
    assert alloc.unsched_levels[-1] == 1


def test_cutoff_override():
    alloc = allocate_priorities(
        WORKLOADS["W3"].cdf, UNSCHED_LIMIT,
        n_unsched_override=2, cutoff_override=(1000, 5_114_695))
    assert alloc.cutoffs == (1000, 5_114_695)
    assert alloc.unsched_prio(999) == 7
    assert alloc.unsched_prio(2000) == 6


def test_cutoff_override_wrong_count():
    with pytest.raises(ValueError):
        allocate_priorities(WORKLOADS["W3"].cdf, UNSCHED_LIMIT,
                            n_unsched_override=2, cutoff_override=(1000,))


def test_compute_cutoffs_single_level():
    cdf = WORKLOADS["W4"].cdf
    cutoffs = compute_cutoffs(cdf, 1, UNSCHED_LIMIT)
    assert cutoffs == (cdf.max_bytes(),)


@given(st.integers(min_value=2, max_value=7))
@settings(max_examples=10, deadline=None)
def test_prop_cutoff_count_matches_levels(n_unsched):
    cdf = WORKLOADS["W2"].cdf
    cutoffs = compute_cutoffs(cdf, n_unsched, UNSCHED_LIMIT)
    assert len(cutoffs) == n_unsched
    assert list(cutoffs) == sorted(cutoffs)


# ---------------------------------------------------------------------------
# online estimator
# ---------------------------------------------------------------------------


def test_online_estimator_needs_samples():
    est = OnlineEstimator()
    assert est.to_cdf() is None
    est.record(100)
    assert est.to_cdf() is None


def test_online_estimator_reconstructs_distribution():
    import numpy as np
    est = OnlineEstimator()
    rng = np.random.default_rng(3)
    true_cdf = WORKLOADS["W2"].cdf
    for size in true_cdf.sample(rng, 20_000):
        est.record(int(size))
    learned = est.to_cdf()
    assert learned is not None
    # The learned median must be within a bin-width factor of the truth.
    true_median = true_cdf.quantile(0.5)
    learned_median = learned.quantile(0.5)
    assert 0.5 * true_median <= learned_median <= 2.0 * true_median


def test_online_estimator_allocation_close_to_static():
    import numpy as np
    est = OnlineEstimator()
    rng = np.random.default_rng(4)
    for size in WORKLOADS["W2"].cdf.sample(rng, 50_000):
        est.record(int(size))
    learned = est.to_cdf()
    alloc = allocate_priorities(learned, UNSCHED_LIMIT)
    static = allocate_priorities(WORKLOADS["W2"].cdf, UNSCHED_LIMIT)
    assert abs(alloc.n_unsched - static.n_unsched) <= 1
