"""End-to-end smoke tests: every protocol delivers traffic correctly.

These run the full experiment pipeline at modest load on a small
network and check conservation (everything submitted completes),
sanity (slowdown >= ~1), and protocol-specific invariants.
"""

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.transport.registry import PROTOCOLS

# No warmup: max_messages concentrates generation at the start, and a
# warmup window would filter every record out of the tracker.
QUICK = dict(racks=2, hosts_per_rack=4, aggrs=2,
             duration_ms=4.0, warmup_ms=0.0, drain_ms=8.0,
             max_messages=400)


def quick_cfg(protocol, workload="W2", load=0.4, **kw):
    args = dict(QUICK)
    args.update(kw)
    return ExperimentConfig(protocol=protocol, workload=workload,
                            load=load, **args)


@pytest.mark.parametrize("protocol", [p for p in PROTOCOLS if p != "ndp"])
def test_protocol_delivers_all_messages(protocol):
    result = run_experiment(quick_cfg(protocol))
    assert result.submitted > 100
    assert result.finish_rate > 0.98, (
        f"{protocol}: {result.completed}/{result.submitted} completed")


def test_ndp_delivers_on_w5():
    # NDP only supports full-size packets -> W5 only (as in the paper).
    # W5 messages average ~2.7 MB, so the window must be generous.
    result = run_experiment(quick_cfg("ndp", workload="W5", load=0.3,
                                      duration_ms=60.0, drain_ms=60.0,
                                      max_messages=40))
    assert result.submitted > 5
    assert result.finish_rate > 0.9


@pytest.mark.parametrize("protocol", ["homa", "phost", "pfabric", "pias"])
def test_slowdowns_at_least_one(protocol):
    result = run_experiment(quick_cfg(protocol))
    assert result.tracker.count > 50
    assert result.tracker.overall(0) >= 0.999  # min slowdown is 1.0


def test_homa_low_load_slowdowns_small():
    result = run_experiment(quick_cfg("homa", load=0.2))
    assert result.tracker.overall(50) < 1.6


def test_homa_high_load_still_stable():
    result = run_experiment(quick_cfg("homa", load=0.8, drain_ms=15.0))
    assert result.finish_rate > 0.97


def test_rpc_echo_mode():
    result = run_experiment(quick_cfg("homa", mode="rpc_echo"))
    assert result.completed > 100
    assert result.tracker.overall(50) >= 1.0
    assert result.aborted == 0


def test_stream_rpc_echo_mode():
    result = run_experiment(quick_cfg("stream_mc", mode="rpc_echo",
                                      load=0.3))
    assert result.completed > 50


def test_collectors_produce_output():
    result = run_experiment(quick_cfg(
        "homa", collect=("queues", "priousage", "throughput", "wasted")))
    assert len(result.queue_rows) == 3  # three switch levels
    assert len(result.prio_fractions) == 8
    assert 0.0 < result.total_utilization < 1.0
    assert 0.0 < result.app_utilization <= result.total_utilization
    assert 0.0 <= result.wasted_fraction < 1.0


def test_delay_collector():
    result = run_experiment(quick_cfg("homa", load=0.6, collect=("delays",)))
    q_us, p_us = result.delay_breakdown
    assert q_us >= 0.0 and p_us >= 0.0


def test_deterministic_given_seed():
    first = run_experiment(quick_cfg("homa", seed=7))
    second = run_experiment(quick_cfg("homa", seed=7))
    assert first.tracker.slowdowns == second.tracker.slowdowns


def test_different_seeds_differ():
    first = run_experiment(quick_cfg("homa", seed=1))
    second = run_experiment(quick_cfg("homa", seed=2))
    assert first.tracker.slowdowns != second.tracker.slowdowns


def test_single_rack_mode():
    result = run_experiment(quick_cfg("homa", racks=1, hosts_per_rack=8,
                                      aggrs=0))
    assert result.finish_rate > 0.98
