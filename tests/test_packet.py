"""Unit tests for framing and the packet model."""

import pytest

from repro.core.packet import (
    CTRL_PRIO,
    FULL_WIRE,
    HEADER_BYTES,
    MAX_PAYLOAD,
    MIN_WIRE,
    Packet,
    PacketType,
    message_wire_bytes,
    msg_key,
    packets_in,
    wire_size,
)


def test_full_packet_wire_size():
    assert wire_size(MAX_PAYLOAD) == FULL_WIRE == 1538


def test_minimum_frame_applies_to_tiny_payloads():
    assert wire_size(0) == MIN_WIRE == 84
    assert wire_size(1) == MIN_WIRE
    assert wire_size(6) == MIN_WIRE


def test_wire_size_above_minimum_is_linear():
    assert wire_size(100) == 100 + HEADER_BYTES + 38
    assert wire_size(1000) == 1000 + HEADER_BYTES + 38


def test_wire_size_rejects_negative():
    with pytest.raises(ValueError):
        wire_size(-1)


@pytest.mark.parametrize(
    "length,expected",
    [(1, 1), (MAX_PAYLOAD, 1), (MAX_PAYLOAD + 1, 2), (10 * MAX_PAYLOAD, 10)],
)
def test_packets_in(length, expected):
    assert packets_in(length) == expected


def test_packets_in_rejects_nonpositive():
    with pytest.raises(ValueError):
        packets_in(0)


def test_message_wire_bytes_single_full_packet():
    assert message_wire_bytes(MAX_PAYLOAD) == FULL_WIRE


def test_message_wire_bytes_with_partial_tail():
    expected = FULL_WIRE + wire_size(100)
    assert message_wire_bytes(MAX_PAYLOAD + 100) == expected


def test_message_wire_bytes_tiny():
    assert message_wire_bytes(1) == MIN_WIRE


def test_packet_defaults():
    pkt = Packet(1, 2, PacketType.GRANT)
    assert pkt.prio == CTRL_PRIO
    assert pkt.wire == MIN_WIRE
    assert not pkt.ecn and not pkt.trimmed


def test_packet_msg_key_distinguishes_direction():
    request = Packet(1, 2, PacketType.DATA, rpc_id=7, is_request=True)
    response = Packet(2, 1, PacketType.DATA, rpc_id=7, is_request=False)
    assert request.msg_key != response.msg_key
    assert request.msg_key == msg_key(7, True)
    assert response.msg_key == msg_key(7, False)


def test_msg_key_unique_across_rpcs():
    keys = {msg_key(rpc, flag) for rpc in range(100) for flag in (True, False)}
    assert len(keys) == 200


def test_trim_discards_payload_keeps_identity():
    pkt = Packet(1, 2, PacketType.DATA, payload=MAX_PAYLOAD, rpc_id=3, offset=1460)
    pkt.trim()
    assert pkt.trimmed
    assert pkt.payload == 0
    assert pkt.wire == MIN_WIRE
    assert pkt.rpc_id == 3 and pkt.offset == 1460
