"""Recovery-path battery for declarative fabrics (docs/FABRICS.md).

Covers the fault-injection PR's contracts end to end:

* **Golden lowering** — a clean ``TopologySpec`` produces slowdown
  digests byte-identical to the equivalent ``NetworkConfig`` run, so
  every published figure is untouched by the fabric layer.
* **Deterministic replay** — same lossy + faulty spec, same seed, same
  digests, drop counts, and reroutes, twice.
* **Conservation under loss** — injected drops flow through the real
  section 3.7 recovery machinery; at event exhaustion every echo RPC
  has either completed or aborted and no transport state leaks.
* **Fault mechanics** — kill/restore flushes buffers into
  ``fault_drops``, reroutes the spray sets, black-holes routeless
  packets, and messages in flight across a transient outage still
  complete via RESENDs.
* **Guard rails** — unknown fault targets, malformed events/rates, the
  ``LOSS_VALIDATED`` protocol gate, and the cut-through exclusions all
  fail loudly, naming the offending field.
"""

import pytest

from repro.core.engine import Simulator
from repro.core.faults import (
    FaultEvent,
    FaultInjector,
    LossRates,
    install_loss,
)
from repro.core.packet import PacketType
from repro.core.topology import FabricNetwork, Network, TopologySpec
from repro.core.units import MS, US
from repro.experiments.campaign import slowdown_digest
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.metrics.control import FabricHealth
from repro.transport.registry import LOSS_VALIDATED, supports_fabric_faults

from tests.helpers import collect_completions, fabric_cluster, small_net


# A small, fast 3-level fabric with loss on every layer and a
# down/up/down schedule — the stress shape used across this battery.
LOSSY3 = TopologySpec(
    levels=3, pods=2, racks=1, hosts_per_rack=4, aggrs=2, cores=4,
    host_gbps=10, aggr_gbps=25, core_gbps=100,
    loss=LossRates(tor=0.02, aggr=0.02, core=0.02),
    faults=(
        FaultEvent(0.4, "link", "down", "tor0:aggr0.1"),
        FaultEvent(0.6, "switch", "down", "core3"),
        FaultEvent(0.9, "link", "up", "tor0:aggr0.1"),
    ),
)


# ---------------------------------------------------------------------------
# golden lowering: clean specs change nothing
# ---------------------------------------------------------------------------


GOLDEN = dict(workload="W2", load=0.6, duration_ms=1.0,
              warmup_ms=0.2, drain_ms=1.0, seed=3)


def test_clean_spec_digests_byte_identical_to_plain_config():
    """The golden pin: a loss-free, fault-free TopologySpec must lower
    to the canonical builder and reproduce its digests byte for byte."""
    plain = run_experiment(ExperimentConfig(
        racks=3, hosts_per_rack=8, aggrs=2, **GOLDEN))
    spec = TopologySpec(levels=2, racks=3, hosts_per_rack=8, aggrs=2)
    assert spec.is_clean()
    fabric = run_experiment(ExperimentConfig(fabric=spec, **GOLDEN))
    assert plain.tracker.slowdowns, "vacuous golden run"
    assert plain.tracker.slowdowns == fabric.tracker.slowdowns
    assert (slowdown_digest({"cell": plain})
            == slowdown_digest({"cell": fabric}))
    assert not fabric.fabric.any()


def test_clean_two_level_spec_lowers_to_canonical_network():
    sim, net, _ = fabric_cluster(
        TopologySpec(levels=2, racks=2, hosts_per_rack=2, aggrs=1))
    assert type(net) is Network
    assert not isinstance(net, FabricNetwork)


def test_faulty_spec_builds_liveness_aware_fabric():
    sim, net, _ = fabric_cluster(LOSSY3, seed=5)
    assert isinstance(net, FabricNetwork)
    assert net.fault_injector is not None
    assert net.fault_injector.applied == 0  # armed, not yet fired


# ---------------------------------------------------------------------------
# deterministic replay
# ---------------------------------------------------------------------------


def _lossy_run(seed=11):
    # drain >> resend_interval (2 ms): the section 3.7 timeouts must
    # get to fire, or no recovery happens inside the bounded run.
    return run_experiment(ExperimentConfig(
        fabric=LOSSY3, workload="W2", load=0.5, duration_ms=0.8,
        warmup_ms=0.1, drain_ms=8.0, seed=seed))


def test_lossy_faulty_replay_is_byte_exact():
    """Same spec + same seed ⇒ same drops, same reroutes, same digests
    (the determinism contract in docs/FABRICS.md)."""
    a = _lossy_run()
    b = _lossy_run()
    assert a.tracker.slowdowns, "vacuous replay run"
    assert a.tracker.slowdowns == b.tracker.slowdowns
    assert a.fabric == b.fabric
    assert a.control == b.control
    assert (a.submitted, a.completed, a.aborted) == \
           (b.submitted, b.completed, b.aborted)


def test_lossy_run_exercises_drops_faults_and_recovery():
    result = _lossy_run()
    health = result.fabric
    assert health.total_drops > 0
    assert health.drops_tor > 0
    assert health.faults_applied == 3
    assert health.reroutes > 0
    # Loss flows through the real recovery path: retransmitted DATA
    # was sent, and some of it completed messages.
    assert result.control.rtx_data > 0
    assert result.control.rtx_recovered > 0


def test_seed_changes_the_drop_pattern():
    base = _lossy_run()
    other = _lossy_run(seed=12)
    assert base.fabric != other.fabric


# ---------------------------------------------------------------------------
# conservation under loss (workload x seed x loss-rate)
# ---------------------------------------------------------------------------


def _echo_spec(rate):
    return TopologySpec(levels=2, racks=2, hosts_per_rack=2, aggrs=1,
                        loss=LossRates(tor=rate))


@pytest.mark.parametrize("workload,seed,rate", [
    ("W1", 1, 0.01),
    ("W1", 9, 0.08),
    ("W2", 5, 0.03),
])
def test_echo_conservation_at_exhaustion(workload, seed, rate):
    """Every echo RPC resolves: ``submitted == completed + errors`` once
    the event queue drains, and no transport state survives.  The retry
    budgets (section 3.7) bound every recovery path, so exhaustion is
    guaranteed even under loss."""
    from repro.apps.echo import attach_echo_workload
    from repro.transport.registry import (
        OVERHEAD_MODEL,
        transport_factory,
    )
    from repro.workloads.catalog import get_workload
    from repro.workloads.loadcalc import arrival_rate_per_host
    from repro.core.topology import build_fabric

    sim = Simulator()
    net = build_fabric(sim, _echo_spec(rate), seed=seed)
    workload_obj = get_workload(workload)
    factory = transport_factory("homa", sim, net, workload_obj.cdf, None)
    transports = net.attach_transports(lambda host: factory(host))
    per_host = arrival_rate_per_host(
        OVERHEAD_MODEL["homa"], workload_obj.cdf, 0.5,
        link_gbps=net.cfg.host_gbps, unsched_limit=net.rtt_bytes())
    apps = attach_echo_workload(
        net, transports, workload_obj.cdf, per_host,
        stop_ps=300 * US, seed=seed)
    sim.run()  # to event exhaustion

    submitted = sum(app.submitted for app in apps)
    completed = sum(app.completed for app in apps)
    errors = sum(app.errors for app in apps)
    assert submitted > 0
    assert submitted == completed + errors
    for t in transports:
        assert not t.client_rpcs
        assert not t.inbound
        # A client that is done with an RPC — aborted (3.7), or
        # completed off an overlapping re-executed response (3.8) —
        # goes silent, so the server's partially-sent response would
        # stay behind, stalled on grants that will never come.  The
        # peer-liveness GC (armed on any may-drop fabric) retires that
        # state within the resend budget, so conservation closes
        # *exactly*: no outbound, no server RPC, and no GC bookkeeping
        # survives exhaustion (docs/FABRICS.md).
        assert not t.outbound, "leaked outbound despite peer GC"
        assert not t.server_rpcs
        assert not t._orphan_rounds
    drops = sum(sw.injected_drops for sw in net.all_switches())
    assert drops > 0, "loss rate produced no drops; vacuous test"
    if (workload, seed) == ("W1", 9):
        # The heavy-loss case must actually exercise the GC: dead-peer
        # responses were retired, not merely never created.
        assert sum(t.outbound_gaveups for t in transports) > 0


def test_oneway_single_packet_loss_accounting():
    """One-way single-packet messages partition exactly: a message is
    delivered iff its only DATA packet survived every filter.  (A fully
    dropped one-way message is unrecoverable by design — the receiver
    never learns it existed; docs/FABRICS.md.)"""
    spec = TopologySpec(levels=2, racks=2, hosts_per_rack=2, aggrs=1,
                        loss=LossRates(tor=0.08))
    sim, net, transports = fabric_cluster(spec, seed=7, workload="W1")
    records = collect_completions(transports)

    dropped = set()
    for sw in net.all_switches():
        inner = sw.drop_filter
        if inner is None:
            continue

        def wrap(pkt, inner=inner):
            hit = inner(pkt)
            if hit and pkt.kind == PacketType.DATA:
                dropped.add(pkt.rpc_id)
            return hit

        sw.drop_filter = wrap

    sent = []
    for i in range(60):
        msg = transports[0].send_message(2, 800)  # cross-rack, 1 packet
        sent.append(msg.rpc_id)
        sim.run(until_ps=sim.now + 10 * US)
    sim.run()

    delivered = {msg.rpc_id for _, msg, _ in records}
    assert dropped, "no drops at 8%; vacuous test"
    assert delivered | dropped == set(sent)
    assert not (delivered & dropped)


# ---------------------------------------------------------------------------
# fault mechanics
# ---------------------------------------------------------------------------


# One pod-to-pod path only (A=1, K=1): faults on it are deterministic.
NARROW3 = TopologySpec(levels=3, pods=2, racks=1, hosts_per_rack=2,
                       aggrs=1, cores=1, host_gbps=10, aggr_gbps=10,
                       core_gbps=10)


def test_link_down_flushes_queue_into_fault_drops():
    sim, net, transports = fabric_cluster(NARROW3)
    # Two senders saturate tor0's single uplink: a queue builds there.
    transports[0].send_message(2, 50_000)
    transports[1].send_message(3, 50_000)
    sim.run(until_ps=30 * US)
    tor0 = net.tors[0]
    before = net.reroutes
    net.apply_fault(FaultEvent(0.03, "link", "down", "tor0:aggr0.0"))
    assert tor0.fault_drops > 0        # queued packets destroyed
    assert net.reroutes > before       # spray set shrank


def test_dead_path_black_holes_then_recovers_after_restore():
    """Messages in flight across a transient outage still complete:
    packets die at the dead link (black-holed), the receiver times out,
    RESENDs after the restore refill the gaps."""
    sim, net, transports = fabric_cluster(NARROW3)
    records = collect_completions(transports)
    transports[0].send_message(2, 50_000)
    transports[1].send_message(3, 50_000)
    sim.run(until_ps=30 * US)
    net.apply_fault(FaultEvent(0.03, "link", "down", "tor0:aggr0.0"))
    sim.run(until_ps=50 * US)
    assert net.tors[0].routed_drops > 0  # no live uplink: black-holed
    net.apply_fault(FaultEvent(0.05, "link", "up", "tor0:aggr0.0"))
    sim.run()
    delivered = {msg.rpc_id for _, msg, _ in records}
    assert len(delivered) == 2
    rtx = sum(t.rtx_data_sent for t in transports)
    assert rtx > 0, "recovery must have used RESENDs"


def test_switch_down_kills_every_packet_that_reaches_it():
    sim, net, transports = fabric_cluster(NARROW3)
    net.apply_fault(FaultEvent(0.0, "switch", "down", "core0"))
    transports[0].send_message(2, 1000)
    sim.run(until_ps=100 * US)
    # With the only core dead, the aggr spray set is empty: the packet
    # black-holes at aggr0.0 before ever reaching core0.
    assert net.aggrs[0].routed_drops > 0


def test_fault_schedule_fires_in_order_with_observer():
    sim, net, _ = fabric_cluster(LOSSY3, seed=3)
    injector = net.fault_injector
    seen = []
    injector.subscribe(lambda ev, now_ps: seen.append((ev.target, now_ps)))
    sim.run(until_ps=1 * MS)
    assert injector.applied == 3
    assert seen == [("tor0:aggr0.1", int(0.4 * MS)),
                    ("core3", int(0.6 * MS)),
                    ("tor0:aggr0.1", int(0.9 * MS))]


# ---------------------------------------------------------------------------
# guard rails
# ---------------------------------------------------------------------------


def test_unknown_switch_target_names_the_event_index():
    sim, net, _ = fabric_cluster(NARROW3)
    with pytest.raises(ValueError, match=r"faults\[0\]\.target 'nope'"):
        FaultInjector(sim, net, [FaultEvent(1.0, "switch", "down", "nope")])


def test_unknown_link_target_names_the_event_index():
    sim, net, _ = fabric_cluster(NARROW3)
    with pytest.raises(ValueError,
                       match=r"faults\[1\]\.target 'tor0:core0'"):
        FaultInjector(sim, net, [
            FaultEvent(1.0, "link", "down", "tor0:aggr0.0"),
            FaultEvent(2.0, "link", "down", "tor0:core0"),
        ])


@pytest.mark.parametrize("kwargs,field", [
    (dict(at_ms=1.0, kind="cable", action="down", target="tor0"),
     "FaultEvent.kind"),
    (dict(at_ms=1.0, kind="link", action="sideways", target="tor0"),
     "FaultEvent.action"),
    (dict(at_ms=-1.0, kind="link", action="down", target="tor0"),
     "FaultEvent.at_ms"),
    (dict(at_ms=1.0, kind="link", action="down", target=""),
     "FaultEvent.target"),
])
def test_malformed_fault_event_names_the_field(kwargs, field):
    with pytest.raises(ValueError, match=field):
        FaultEvent(**kwargs)


@pytest.mark.parametrize("kwargs,field", [
    (dict(tor=1.0), "LossRates.tor"),
    (dict(aggr=-0.1), "LossRates.aggr"),
    (dict(core=True), "LossRates.core"),
])
def test_malformed_loss_rates_name_the_field(kwargs, field):
    with pytest.raises(ValueError, match=field):
        LossRates(**kwargs)


def test_every_registered_protocol_is_loss_validated():
    # PR 10 closed the gap: the full registry survives injected loss.
    from repro.transport.registry import PROTOCOLS
    for protocol in PROTOCOLS:
        assert supports_fabric_faults(protocol), protocol
    assert tuple(LOSS_VALIDATED) == tuple(PROTOCOLS)


def test_unvalidated_protocol_refused_under_loss(monkeypatch):
    # The guard rail itself must keep working should a future protocol
    # land unvalidated: shrink LOSS_VALIDATED and check the refusal
    # names the validated set and points at the docs.
    import repro.experiments.runner as runner_mod
    import repro.transport.registry as registry_mod
    monkeypatch.setattr(registry_mod, "LOSS_VALIDATED", ("homa", "basic"))
    monkeypatch.setattr(runner_mod, "LOSS_VALIDATED", ("homa", "basic"))
    assert supports_fabric_faults("homa")
    assert not supports_fabric_faults("pfabric")
    cfg = ExperimentConfig(protocol="pfabric", fabric=_echo_spec(0.05),
                           duration_ms=0.1, warmup_ms=0.0, drain_ms=0.1)
    with pytest.raises(ValueError, match="docs/FABRICS.md") as err:
        run_experiment(cfg)
    assert "not validated under injected" in str(err.value)
    assert "basic, homa" in str(err.value)


def test_validated_protocols_accept_clean_specs():
    spec = TopologySpec(levels=2, racks=1, hosts_per_rack=2, aggrs=1)
    result = run_experiment(ExperimentConfig(
        protocol="pfabric", fabric=spec, workload="W1", load=0.3,
        duration_ms=0.2, warmup_ms=0.0, drain_ms=0.3, seed=2))
    assert result.submitted > 0


def test_install_loss_rejects_cut_through():
    sim, net = small_net(racks=2, hosts_per_rack=2, aggrs=1,
                         cut_through=True)
    with pytest.raises(ValueError, match="cut_through"):
        install_loss(net, LossRates(tor=0.1), seed=1)


def test_fabric_network_rejects_cut_through_override():
    with pytest.raises(ValueError, match="cut_through"):
        FabricNetwork(Simulator(), NARROW3, cut_through=True)


# ---------------------------------------------------------------------------
# section 3.7 bug pins: each test fails on the pre-fix transport
# ---------------------------------------------------------------------------


def _lone_receiver(homa_cfg):
    """A receiver driven by hand-built packets; ctrl goes to its queue."""
    from dataclasses import replace

    from repro.homa.priorities import allocate_priorities
    from repro.homa.transport import HomaTransport
    from repro.workloads.catalog import WORKLOADS

    from tests.helpers import FakeHost

    rtt = 9680
    sim = Simulator()
    cfg = replace(homa_cfg, grant_batch_ns=0)
    alloc = allocate_priorities(
        WORKLOADS["W4"].cdf, cfg.resolved_unsched_limit(rtt),
        n_prios=cfg.n_prios,
        n_unsched_override=cfg.n_unsched_override,
        n_sched_override=cfg.n_sched_override)
    transport = HomaTransport(sim, cfg, alloc, rtt)
    transport.bind(FakeHost(sim, 0))
    return sim, transport


def _data(src, rpc_id, offset, total):
    from repro.core.packet import MAX_PAYLOAD, Packet

    return Packet(src, 0, PacketType.DATA, prio=5,
                  payload=min(MAX_PAYLOAD, total - offset),
                  rpc_id=rpc_id, is_request=True, offset=offset,
                  total_length=total, grant_offset=min(total, 10220))


def test_giveup_frees_the_overcommit_slot():
    """Bug pin: a receiver give-up must run a ranking pass, or the
    freed overcommitment slot leaks and the withheld message is never
    granted (no data arrival can trigger the pass — the withheld
    sender is itself stalled waiting for grants)."""
    from repro.homa.config import HomaConfig

    cfg = HomaConfig(overcommit_override=1, max_resends=1)
    sim, receiver = _lone_receiver(cfg)
    interval = cfg.resend_interval_ps
    receiver.on_packet(_data(1, 100, 0, 40_000))   # M1: shorter, active
    receiver.on_packet(_data(2, 200, 0, 60_000))   # M2: longer, withheld
    m2 = receiver.inbound[(200 << 1) | 1]
    withheld_at = m2.granted
    # Keep M2's retry budget alive while M1's sender stays silent: a
    # fresh in-order packet just before each timer round.
    sim.run(until_ps=int(0.9 * interval))
    receiver.on_packet(_data(2, 200, 1460, 60_000))
    sim.run(until_ps=int(1.9 * interval))
    receiver.on_packet(_data(2, 200, 2920, 60_000))
    sim.run(until_ps=int(2.2 * interval))
    assert (100 << 1) | 1 not in receiver.inbound  # M1 given up on
    assert receiver.inbound_gaveups == 1
    assert (200 << 1) | 1 in receiver.inbound      # M2 survived
    assert m2.granted > withheld_at, "freed slot never reached M2"


def test_ghost_resend_recovers_forgotten_oneway_tail():
    """Bug pin: the sender drops outbound state the moment a one-way
    message is fully sent; a lost tail packet then hits a sender with
    no record of the bytes.  The receiver's timeout RESEND carries the
    message length, so the sender rebuilds a ghost covering exactly
    the missing range instead of ignoring the RESEND until the
    receiver burns its whole retry budget."""
    from tests.helpers import homa_cluster

    sim, net, transports = fabric_cluster(
        TopologySpec(levels=2, racks=1, hosts_per_rack=2, aggrs=1))
    records = collect_completions(transports)
    dropped = []

    def drop_tail_once(pkt):
        if (pkt.kind == PacketType.DATA and not pkt.retx
                and pkt.offset == 2920 and not dropped):
            dropped.append(pkt.offset)
            return True
        return False

    net.set_drop_filter(drop_tail_once)
    msg = transports[0].send_message(1, 4000)  # 3 packets, all unsched
    sim.run()
    assert dropped, "tail packet was never dropped; vacuous test"
    assert [m.rpc_id for _, m, _ in records] == [msg.rpc_id]
    assert transports[0].rtx_data_sent >= 1
    assert transports[1].inbound_gaveups == 0


def test_stalled_request_probe_breaks_grant_deadlock():
    """Bug pin: when the receiver gives up on a partially-received
    request, its give-up is silent — the client, stalled mid-request
    waiting for grants, must probe on its own timer or the RPC hangs
    forever.  The probe reaches a server with no trace of the RPC,
    which answers RESEND-for-request: at-least-once re-execution."""
    from repro.apps.echo import echo_handler

    from tests.helpers import homa_cluster

    sim, net, transports = homa_cluster(hosts_per_rack=2)
    client, server = transports[0], transports[1]
    server.rpc_handler = echo_handler
    done = []
    rpc_id = client.send_rpc(
        1, 120_000,
        on_response=lambda rid, msg: done.append(rid),
        on_error=lambda rid: done.append(-rid))
    sim.run(until_ps=50 * US)  # mid-transfer, into the scheduled phase
    key = (rpc_id << 1) | 1
    assert key in server.inbound, "request not yet in flight; bad setup"
    # Emulate the server's receiver give-up (3.7): state dropped, and
    # no notification of any kind goes back to the client.  A given-up
    # receiver stays deaf, so bytes already granted (or in flight) must
    # not resurrect the inbound — keep discarding until the client has
    # drained its grant window and fully stalled.
    msg = client.outbound[key]
    deadline = sim.now + 200 * US
    while sim.now < deadline:
        server.inbound.pop(key, None)
        server._grantable.pop(key, None)
        sim.run(until_ps=sim.now + 2 * US)
    assert msg.sent == msg.granted < msg.length, "client not stalled"
    assert key not in server.inbound
    sim.run(until_ps=sim.now + 60 * MS)
    assert done == [rpc_id], "client hung after silent server give-up"
    assert server.reexecutions >= 1


def test_resend_range_is_an_implicit_grant_not_blind_rtx():
    """Bug pin: a RESEND range beyond ``granted`` means the receiver
    wants those bytes even though its GRANTs were lost — raise the
    grant limit and send them through the normal path.  Blindly
    queueing the whole range as rtx let the receiver complete off
    bytes the sender never counted as sent; the sender then waited
    forever for grants that could no longer come, leaking the
    message (and, for responses, its server RPC)."""
    from repro.core.packet import Packet

    from tests.helpers import homa_cluster

    sim, net, transports = homa_cluster(hosts_per_rack=2)
    sender = transports[0]
    msg = sender.send_message(1, 50_000)
    sent_before = msg.sent
    assert msg.granted < 30_000  # only the unsched prefix so far
    # grant_offset=length is the receiver-timeout RESEND signature
    # (grant_offset=0 with offset=0 means "peer has nothing" and asks
    # for a restart instead).
    sender.on_packet(Packet(1, 0, PacketType.RESEND, rpc_id=msg.rpc_id,
                            is_request=True, offset=0, range_end=30_000,
                            grant_offset=50_000))
    assert msg.granted == 30_000, "RESEND range must act as a grant"
    for start, end in msg.rtx:
        assert end <= sent_before, "queued rtx for bytes never sent"


# ---------------------------------------------------------------------------
# payload round-trips
# ---------------------------------------------------------------------------


def test_fabric_health_payload_round_trip():
    health = FabricHealth(drops_tor=1, drops_aggr=2, drops_core=3,
                          fault_drops=4, black_holes=5, reroutes=6,
                          faults_applied=7)
    assert FabricHealth.from_payload(health.to_payload()) == health
    assert health.total_drops == 1 + 2 + 3 + 4 + 5
    assert health.any()
    assert FabricHealth.from_payload(None) == FabricHealth()
    assert not FabricHealth().any()


def test_fabric_health_collect_on_plain_network_is_zero():
    sim, net = small_net(racks=2, hosts_per_rack=2, aggrs=1)
    assert FabricHealth.collect(net) == FabricHealth()


def test_topology_spec_payload_round_trip():
    assert TopologySpec.from_payload(LOSSY3.to_payload()) == LOSSY3
    clean = TopologySpec()
    assert TopologySpec.from_payload(clean.to_payload()) == clean
