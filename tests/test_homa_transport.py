"""Integration tests for the Homa transport on small networks."""

from repro.core.packet import MAX_PAYLOAD, PacketType
from repro.core.units import MS, US
from repro.homa.config import HomaConfig

from tests.helpers import collect_completions, homa_cluster


def run_oneway(sim, net, transports, src, dst, length, until_ms=50):
    records = collect_completions(transports)
    transports[src].send_message(dst, length)
    sim.run(until_ps=until_ms * MS)
    return records


def test_small_message_delivered_at_oracle_time():
    sim, net, transports = homa_cluster()
    records = run_oneway(sim, net, transports, 0, 1, 100)
    assert len(records) == 1
    hid, msg, now = records[0]
    assert hid == 1 and msg.length == 100
    assert now == net.min_oneway_ps(100, same_rack=True)


def test_single_packet_message_needs_no_grants():
    sim, net, transports = homa_cluster()
    run_oneway(sim, net, transports, 0, 1, 1000)
    assert transports[1].grants_sent == 0


def test_multi_packet_unscheduled_message():
    """Messages up to the unscheduled limit are sent entirely blind."""
    sim, net, transports = homa_cluster()
    length = transports[0].unsched_limit
    records = run_oneway(sim, net, transports, 0, 1, length)
    assert len(records) == 1
    assert transports[1].grants_sent == 0


def test_large_message_uses_grants_and_completes():
    sim, net, transports = homa_cluster()
    length = 200_000
    records = run_oneway(sim, net, transports, 0, 1, length)
    assert len(records) == 1
    assert transports[1].grants_sent > 0
    _, msg, now = records[0]
    oracle = net.min_oneway_ps(length, same_rack=True)
    # Grant pacing should keep the pipe essentially full.
    assert now < oracle * 1.15


def test_large_message_grant_flow_keeps_line_rate_cross_rack():
    sim, net, transports = homa_cluster(racks=2, hosts_per_rack=4, aggrs=2)
    length = 500_000
    records = run_oneway(sim, net, transports, 0, 7, length)
    assert len(records) == 1
    _, _, now = records[0]
    assert now < net.min_oneway_ps(length) * 1.1


def test_granted_minus_received_bounded():
    """Flow control invariant (3.3): never more than the grant window
    granted but unreceived (modulo packet rounding).  The window is
    RTTbytes, plus one batch interval of line-rate bytes when the grant
    pacer is batching (``HomaConfig.grant_batch_ns``)."""
    sim, net, transports = homa_cluster()
    receiver = transports[1]
    bound = receiver.grant_window + MAX_PAYLOAD
    violations = []

    original = receiver._schedule_grants

    def checked(*args):
        original(*args)
        for m in receiver.inbound.values():
            if m.granted - m.bytes_received > bound:
                violations.append(m.granted - m.bytes_received)

    receiver._schedule_grants = checked
    transports[0].send_message(1, 300_000)
    transports[2].send_message(1, 150_000)
    sim.run(until_ps=50 * MS)
    assert not violations


def test_sender_srpt_shorter_message_finishes_first():
    """Two messages from one sender: the shorter must complete first
    even if created second (head-of-line blocking is impossible)."""
    sim, net, transports = homa_cluster()
    records = collect_completions(transports)
    transports[0].send_message(1, 400_000)
    sim.run(until_ps=10 * US)  # long message mid-transmission
    transports[0].send_message(1, 2000)
    sim.run(until_ps=50 * MS)
    assert len(records) == 2
    assert records[0][1].length == 2000
    assert records[1][1].length == 400_000


def test_receiver_srpt_across_senders():
    """Two senders to one receiver: the shorter message finishes first."""
    sim, net, transports = homa_cluster()
    records = collect_completions(transports)
    transports[0].send_message(3, 400_000)
    transports[1].send_message(3, 50_000)
    sim.run(until_ps=50 * MS)
    assert [r[1].length for r in records] == [50_000, 400_000]


def test_overcommitment_limits_active_senders():
    """With one scheduled level (degree 1), only one message is granted
    at a time; a withheld observer must see the queueing."""
    cfg = HomaConfig(n_sched_override=1)
    sim, net, transports = homa_cluster(hosts_per_rack=6, homa_cfg=cfg)
    receiver = transports[5]
    withheld_events = []
    receiver.withheld_observer = lambda hid, w: withheld_events.append(w)
    records = collect_completions(transports)
    for src in range(3):
        transports[src].send_message(5, 100_000)
    sim.run(until_ps=50 * MS)
    assert len(records) == 3
    assert True in withheld_events   # at some point grants were withheld
    assert withheld_events[-1] is False


def test_unlimited_overcommit_grants_everyone():
    """Basic transport: all senders granted simultaneously."""
    cfg = HomaConfig.basic()
    sim, net, transports = homa_cluster(hosts_per_rack=6, homa_cfg=cfg)
    receiver = transports[5]
    events = []
    receiver.withheld_observer = lambda hid, w: events.append(w)
    records = collect_completions(transports)
    for src in range(4):
        transports[src].send_message(5, 100_000)
    sim.run(until_ps=50 * MS)
    assert len(records) == 4
    assert True not in events  # never withheld


def test_scheduled_priorities_assigned_lowest_first():
    """A single active message gets the lowest scheduled level."""
    sim, net, transports = homa_cluster(workload="W4")
    transports[0].send_message(1, 300_000)
    sim.run(until_ps=100 * US)
    sender_msg = next(iter(transports[0].outbound.values()))
    assert sender_msg.grant_prio == transports[1].alloc.sched_levels[0]


def test_preempting_message_gets_higher_scheduled_priority():
    """A new shorter message must receive a higher scheduled priority
    than the in-progress long one (Figure 5's preemption-lag fix)."""
    sim, net, transports = homa_cluster(workload="W4")
    transports[0].send_message(2, 2_000_000)
    sim.run(until_ps=200 * US)
    transports[1].send_message(2, 120_000)
    sim.run(until_ps=300 * US)
    receiver = transports[2]
    prios = {m.src: m.sched_prio for m in receiver.inbound.values()}
    assert prios[1] > prios[0]


def test_unscheduled_priority_depends_on_message_length():
    sim, net, transports = homa_cluster(workload="W3")
    seen = {}
    receiver = transports[1]
    original = receiver.on_packet

    def spy(pkt):
        if pkt.kind == PacketType.DATA:
            seen.setdefault(pkt.total_length, pkt.prio)
        original(pkt)

    receiver.on_packet = spy
    transports[0].send_message(1, 50)
    transports[0].send_message(1, 1400)
    sim.run(until_ps=5 * MS)
    assert seen[50] > seen[1400]


def test_data_packet_count_is_minimal():
    """No fragmentation waste: ceil(length / payload) data packets."""
    sim, net, transports = homa_cluster()
    counts = []
    receiver = transports[1]
    original = receiver.on_packet

    def spy(pkt):
        if pkt.kind == PacketType.DATA:
            counts.append(pkt.payload)
        original(pkt)

    receiver.on_packet = spy
    length = 100_000
    transports[0].send_message(1, length)
    sim.run(until_ps=20 * MS)
    assert sum(counts) == length
    assert len(counts) == -(-length // MAX_PAYLOAD)
