"""Tests for the Figure 14 delay decomposition collector."""

import pytest

from repro.core.engine import Simulator
from repro.core.packet import Packet, PacketType
from repro.core.topology import NetworkConfig, build_network
from repro.metrics.delays import DelayDecomposition, MessageDelays


class _Sink:
    def bind(self, host):
        pass

    def on_packet(self, pkt):
        pass

    def next_packet(self):
        return None


def make_collector():
    net = build_network(Simulator(), NetworkConfig(racks=1,
                                                   hosts_per_rack=2,
                                                   aggrs=0))
    net.attach_transports(lambda host: _Sink())
    return net, DelayDecomposition(net)


def test_enables_tracing_on_switch_ports():
    net, collector = make_collector()
    assert all(port.trace_delays for port in net.all_switch_ports())


def test_accumulates_packet_waits():
    net, collector = make_collector()
    pkt = Packet(0, 1, PacketType.DATA, rpc_id=5, payload=100,
                 total_length=100)
    pkt.q_wait = 1000
    pkt.p_wait = 2000
    collector.on_data_packet(pkt)
    collector.on_complete(pkt.msg_key)
    assert collector.records == [
        MessageDelays(size=100, q_wait_ps=1000, p_wait_ps=2000)]


def test_multiple_packets_summed():
    net, collector = make_collector()
    for offset in (0, 1460):
        pkt = Packet(0, 1, PacketType.DATA, rpc_id=6, payload=1460,
                     offset=offset, total_length=2920)
        pkt.q_wait = 500
        collector.on_data_packet(pkt)
    collector.on_complete((6 << 1) | 1)
    assert collector.records[0].q_wait_ps == 1000


def test_sender_side_residual_charged():
    net, collector = make_collector()
    host = net.hosts[0]
    sim = net.sim
    # Occupy the uplink with a low-priority full packet.
    blocker = Packet(0, 1, PacketType.DATA, prio=0, payload=1460,
                     rpc_id=1, total_length=1_000_000)
    host.egress._transmit(blocker)
    sim.run(until_ps=100_000)  # mid-transmission
    collector.on_submit(host, msg_key=99, length=100, prio=7)
    entry = collector._accumulating[99]
    assert entry[1] > 0  # preemption lag (blocker has lower priority)
    assert entry[0] == 0
    sim.run()


def test_sender_side_same_prio_counts_as_queueing():
    net, collector = make_collector()
    host = net.hosts[0]
    blocker = Packet(0, 1, PacketType.DATA, prio=7, payload=1460,
                     rpc_id=1, total_length=1460)
    host.egress._transmit(blocker)
    net.sim.run(until_ps=100_000)
    collector.on_submit(host, msg_key=98, length=100, prio=7)
    entry = collector._accumulating[98]
    assert entry[0] > 0 and entry[1] == 0
    net.sim.run()


def test_tail_breakdown_empty():
    net, collector = make_collector()
    assert collector.tail_breakdown() == (0.0, 0.0)


def test_tail_breakdown_selects_short_messages():
    net, collector = make_collector()
    # 80 short messages with small waits, 20 long ones with huge waits.
    for index in range(80):
        collector.records.append(MessageDelays(100, 1_000_000, 2_000_000))
    for index in range(20):
        collector.records.append(MessageDelays(1_000_000, 9_000_000_000,
                                               9_000_000_000))
    q_us, p_us = collector.tail_breakdown(size_percentile=20.0)
    # Only the short messages are considered: ~1 and ~2 us.
    assert q_us == pytest.approx(1.0, rel=0.05)
    assert p_us == pytest.approx(2.0, rel=0.05)


def test_tail_breakdown_window_is_high_percentile():
    net, collector = make_collector()
    for wait in range(100):
        collector.records.append(MessageDelays(100, wait * 1_000_000, 0))
    q_us, _ = collector.tail_breakdown(size_percentile=100.0,
                                       tail_lo=98.0, tail_hi=100.0)
    assert q_us >= 97.0  # only the top of the distribution
