"""Tests for the campaign subsystem: payload round-trips, the shard
scheduler's determinism, the on-disk cache, and max-load collation."""

import dataclasses
import json

import pytest

from repro.core.faults import FaultEvent, LossRates
from repro.core.topology import TopologySpec
from repro.experiments import campaign
from repro.experiments.maxload import (
    MaxLoadResult,
    collate_max_load,
    find_max_load,
    probe_config,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.homa.config import HomaConfig
from repro.metrics.control import ControlTraffic, FabricHealth
from repro.metrics.queues import QueueLevelStats
from repro.metrics.slowdown import SlowdownTracker


def small_cfg(**kw):
    """A sub-second single-rack run."""
    base = dict(protocol="homa", workload="W1", load=0.5,
                racks=1, hosts_per_rack=4, aggrs=0,
                duration_ms=1.0, warmup_ms=0.0, drain_ms=4.0,
                max_messages=120)
    base.update(kw)
    return ExperimentConfig(**base)


def small_grid():
    """The 2-protocol x 2-load determinism grid."""
    return {
        (protocol, load): small_cfg(protocol=protocol, load=load)
        for protocol in ("homa", "pfabric")
        for load in (0.3, 0.5)
    }


# -- payload round-trips -------------------------------------------------


def test_config_payload_round_trip():
    cfg = small_cfg(
        homa=HomaConfig(n_unsched_override=2, cutoff_override=(100, 16129)),
        collect=("queues", "throughput"),
        net_overrides={"preemptive_links": True})
    back = ExperimentConfig.from_payload(
        json.loads(json.dumps(cfg.to_payload())))
    assert back == cfg
    assert isinstance(back.collect, tuple)
    assert isinstance(back.homa.cutoff_override, tuple)


def test_result_payload_round_trip_is_exact():
    result = run_experiment(small_cfg(collect=("queues", "throughput")))
    back = ExperimentResult.from_payload(
        json.loads(json.dumps(result.to_payload())))
    # Byte-exact slowdowns: repr round-trips through JSON.
    assert back.tracker.slowdowns == result.tracker.slowdowns
    assert ([repr(v) for v in back.slowdown_series(99)]
            == [repr(v) for v in result.slowdown_series(99)])
    assert back.cfg == result.cfg
    assert back.completed == result.completed
    assert back.finish_rate == result.finish_rate
    assert [(r.label, r.mean_kb, r.max_kb) for r in back.queue_rows] \
        == [(r.label, r.mean_kb, r.max_kb) for r in result.queue_rows]
    assert back.total_utilization == result.total_utilization
    assert back.delay_breakdown == result.delay_breakdown


def test_payload_round_trip_covers_every_field():
    """Dynamic complement of simlint's static payload-roundtrip rule:
    set EVERY dataclass field of ExperimentConfig and ExperimentResult
    to a non-default value and require an exact JSON round-trip.  A
    field silently dropped by a to_payload/from_payload pair corrupts
    the on-disk campaign cache — the rerun "hits" with a default where
    measured data should be — and this test fails loudly the moment a
    new field is added without extending both the pair and this test."""
    cfg = ExperimentConfig(
        protocol="pfabric", workload="W4", load=0.55, racks=2,
        hosts_per_rack=3, aggrs=1, duration_ms=2.5, warmup_ms=0.5,
        drain_ms=1.5, seed=7, mode="rpc_echo", max_messages=9,
        homa=HomaConfig(n_prios=4, cutoff_override=(100, 16129)),
        collect=("queues",), net_overrides={"cut_through": True},
        fabric=TopologySpec(
            levels=3, pods=2, racks=2, hosts_per_rack=4, aggrs=2,
            cores=4, host_gbps=10, aggr_gbps=25, core_gbps=100,
            loss=LossRates(tor=0.01, aggr=0.02, core=0.03),
            faults=(FaultEvent(1.5, "link", "down", "tor0:aggr0.1"),
                    FaultEvent(2.5, "switch", "down", "core3"))))
    cfg_defaults = ExperimentConfig()
    for f in dataclasses.fields(ExperimentConfig):
        assert getattr(cfg, f.name) != getattr(cfg_defaults, f.name), (
            f"fixture must set a non-default {f.name} "
            f"(new field? extend this test and the payload pair)")
    back = ExperimentConfig.from_payload(
        json.loads(json.dumps(cfg.to_payload())))
    assert back == cfg

    tracker = SlowdownTracker.from_payload(
        {"warmup_ps": 123, "sizes": [100, 200], "slowdowns": [1.5, 2.5]})
    result = ExperimentResult(
        cfg=cfg, tracker=tracker, submitted=5, completed=4, pending=1,
        sim_time_ms=3.5, events=999, wall_seconds=0.25,
        queue_rows=[QueueLevelStats(
            label="TOR->host", mean_kb=1.5, max_kb=9.0)],
        prio_fractions=[0.25, 0.75], wasted_fraction=0.1,
        total_utilization=0.8, app_utilization=0.7,
        delay_breakdown=(1.25, 2.5), aborted=2,
        control=ControlTraffic(grants=3, resends=2, busys=1,
                               grant_ticks=4, rtx_data=6, rtx_recovered=5,
                               give_ups=1),
        backlog_mid_bytes=11, backlog_end_bytes=22,
        fabric=FabricHealth(drops_tor=1, drops_aggr=2, drops_core=3,
                            fault_drops=4, black_holes=5, reroutes=6,
                            faults_applied=7))
    for f in dataclasses.fields(ExperimentResult):
        if f.default is not dataclasses.MISSING:
            assert getattr(result, f.name) != f.default, (
                f"fixture must set a non-default {f.name}")
        elif f.default_factory is not dataclasses.MISSING:
            assert getattr(result, f.name) != f.default_factory(), (
                f"fixture must set a non-default {f.name}")
    back = ExperimentResult.from_payload(
        json.loads(json.dumps(result.to_payload())))
    assert back.to_payload() == result.to_payload()
    assert back.cfg == cfg
    assert isinstance(back.delay_breakdown, tuple)
    assert isinstance(back.cfg.collect, tuple)
    assert back.control == result.control


def test_tracker_from_payload_reports_without_net():
    tracker = SlowdownTracker(None)
    tracker.sizes = [10, 20]
    tracker.slowdowns = [1.5, 2.5]
    back = SlowdownTracker.from_payload(tracker.to_payload())
    assert back.overall(50) == 2.0
    assert back.count == 2


# -- stable hashing ------------------------------------------------------


def test_cell_hash_stable_and_config_sensitive():
    cell_a = campaign.Cell(key="a", spec=small_cfg())
    cell_b = campaign.Cell(key="b", spec=small_cfg())  # key not hashed
    cell_c = campaign.Cell(key="a", spec=small_cfg(load=0.6))
    assert campaign.cell_hash(cell_a) == campaign.cell_hash(cell_b)
    assert campaign.cell_hash(cell_a) != campaign.cell_hash(cell_c)


def test_canonical_rejects_opaque_objects():
    with pytest.raises(TypeError):
        campaign.canonical(object())


def test_canonical_rejects_colliding_dict_keys():
    # 1 and "1" must never share one cache key.
    with pytest.raises(TypeError, match="collide"):
        campaign.canonical({1: "a", "1": "b"})


def test_duplicate_cell_keys_rejected():
    cells = (campaign.Cell(key="x", spec=small_cfg()),
             campaign.Cell(key="x", spec=small_cfg(load=0.6)))
    with pytest.raises(ValueError, match="duplicate"):
        campaign.CampaignSpec(name="dup", cells=cells)


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert campaign.resolve_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert campaign.resolve_jobs() == 3
    assert campaign.resolve_jobs(2) == 2
    with pytest.raises(ValueError):
        campaign.resolve_jobs(0)


# -- the determinism + cache contract ------------------------------------


def test_campaign_sharded_matches_serial_and_caches(tmp_path):
    """jobs=1 and jobs=4 produce byte-identical slowdown digests, and
    a re-run is served entirely from the on-disk cache."""
    spec = campaign.experiment_grid("determinism", small_grid())

    serial = campaign.run(spec, jobs=1, fresh=True,
                          cache_dir=tmp_path, quiet=True)
    assert serial.computed == 4 and serial.cached == 0

    sharded = campaign.run(spec, jobs=4, fresh=True,
                           cache_dir=tmp_path, quiet=True)
    assert sharded.computed == 4
    assert (campaign.slowdown_digest(sharded)
            == campaign.slowdown_digest(serial))

    # Second run: every cell from cache, zero simulations executed.
    rerun = campaign.run(spec, jobs=4, cache_dir=tmp_path, quiet=True)
    assert rerun.computed == 0 and rerun.cached == 4
    assert campaign.slowdown_digest(rerun) == campaign.slowdown_digest(serial)

    # Results arrive in cell order regardless of completion order.
    assert list(rerun) == list(small_grid())


def test_campaign_cache_keyed_by_config(tmp_path):
    cfg = small_cfg()
    spec_a = campaign.experiment_grid("keyed", {"cell": cfg})
    campaign.run(spec_a, jobs=1, cache_dir=tmp_path, quiet=True)
    # A different config is a miss; the same config (rebuilt) is a hit.
    spec_b = campaign.experiment_grid("keyed", {"cell": small_cfg(load=0.4)})
    run_b = campaign.run(spec_b, jobs=1, cache_dir=tmp_path, quiet=True)
    assert run_b.computed == 1
    spec_c = campaign.experiment_grid("keyed", {"cell": small_cfg()})
    run_c = campaign.run(spec_c, jobs=1, cache_dir=tmp_path, quiet=True)
    assert run_c.computed == 0 and run_c.cached == 1


def test_campaign_cell_error_names_the_config(tmp_path):
    spec = campaign.experiment_grid(
        "boom", {"bad": small_cfg(mode="bogus")})
    with pytest.raises(campaign.CampaignCellError) as excinfo:
        campaign.run(spec, jobs=1, cache_dir=tmp_path, quiet=True)
    message = str(excinfo.value)
    assert "boom" in message and "'bad'" in message
    assert '"mode":"bogus"' in message  # the full config is in the error


def test_campaign_pool_failure_keeps_completed_siblings(tmp_path):
    """A crashed cell must not discard siblings that finished: the
    retry (minus the bad cell) is served from cache."""
    good = {"ok1": small_cfg(load=0.3), "ok2": small_cfg(load=0.5)}
    # The global queue dispatches largest-cell-first, so make the bad
    # cell the cheapest: with two workers it only starts after a good
    # cell finishes, which is the scenario this test pins.
    spec = campaign.experiment_grid(
        "partial",
        {**good, "bad": small_cfg(mode="bogus", load=0.1,
                                  duration_ms=0.2)})
    with pytest.raises(campaign.CampaignCellError, match="'bad'"):
        campaign.run(spec, jobs=2, cache_dir=tmp_path, quiet=True)
    # The bad cell only started after a worker finished a good cell,
    # so at least that completed sibling must have been cached.  (The
    # other good cell may still have been in flight when the failure
    # surfaced — that one is legitimately recomputed.)
    retry = campaign.run(campaign.experiment_grid("partial", good),
                         jobs=2, cache_dir=tmp_path, quiet=True)
    assert retry.cached >= 1
    assert retry.cached + retry.computed == 2


# -- speculative max-load collation --------------------------------------


def _probe_result(cfg, *, stable: bool) -> ExperimentResult:
    """A synthetic completed probe (no simulation)."""
    tracker = SlowdownTracker(None)
    return ExperimentResult(
        cfg=cfg, tracker=tracker,
        submitted=100, completed=100 if stable else 10,
        pending=0 if stable else 90,
        sim_time_ms=1.0, events=1000, wall_seconds=0.1,
        total_utilization=cfg.load * 0.9,
        app_utilization=cfg.load * 0.8,
        backlog_mid_bytes=1000,
        backlog_end_bytes=1000 if stable else 10_000_000,
    )


def test_collate_max_load_last_stable():
    base = small_cfg()
    grid = (0.3, 0.5, 0.7, 0.9)
    results = [
        _probe_result(probe_config(base, 0.3), stable=True),
        _probe_result(probe_config(base, 0.5), stable=True),
        _probe_result(probe_config(base, 0.7), stable=False),
        # Speculative probe past the first unstable point: ignored even
        # if it accidentally looks stable (open-loop semantics).
        _probe_result(probe_config(base, 0.9), stable=True),
    ]
    row = collate_max_load(grid, results)
    assert row.max_load == 0.5
    assert row.total_utilization == results[1].total_utilization
    assert [load for load, _ in row.probes] == [0.3, 0.5, 0.7]


def test_collate_max_load_fallback_reuses_first_probe():
    base = small_cfg()
    grid = (0.3, 0.5)
    first = _probe_result(probe_config(base, 0.3), stable=False)
    row = collate_max_load(grid, [first])
    assert row.max_load == 0.0
    # The fallback reports the first probe's already-computed
    # utilization — no re-simulation happened to produce it.
    assert row.total_utilization == first.total_utilization
    assert row.app_utilization == first.app_utilization
    assert len(row.probes) == 1


def test_collate_max_load_requires_probes():
    with pytest.raises(ValueError):
        collate_max_load((0.5,), [])


def test_find_max_load_equals_speculative_collation():
    """The serial early-break sweep and the probe-everything collation
    agree exactly on the same grid."""
    base = small_cfg(workload="W2", duration_ms=1.5)
    grid = (0.3, 0.5)
    serial = find_max_load(base, grid=grid)
    speculative = collate_max_load(
        grid, [run_experiment(probe_config(base, load)) for load in grid])
    assert isinstance(serial, MaxLoadResult)
    assert serial.max_load == speculative.max_load
    assert serial.total_utilization == speculative.total_utilization
    # Serial probes are a prefix of the speculative ones.
    assert serial.probes == speculative.probes[:len(serial.probes)]


# -- cross-figure pooling ------------------------------------------------


def test_pooled_campaigns_match_per_figure_runs(tmp_path):
    """``run_pooled`` (the ``campaign all`` global largest-cell-first
    queue) must produce byte-identical digests to running each
    campaign alone, and must populate the same cache entries."""
    spec_a = campaign.experiment_grid("pool-a", {
        ("homa", load): small_cfg(load=load) for load in (0.3, 0.5)})
    spec_b = campaign.experiment_grid("pool-b", {
        ("pfabric", 0.5): small_cfg(protocol="pfabric", load=0.5),
        ("w5-ish", 0.5): small_cfg(workload="W3", duration_ms=2.0)})

    solo_dir = tmp_path / "solo"
    solo = {s.name: campaign.run(s, jobs=1, cache_dir=solo_dir, quiet=True)
            for s in (spec_a, spec_b)}
    pool_dir = tmp_path / "pool"
    pooled = campaign.run_pooled([spec_a, spec_b], jobs=2,
                                 cache_dir=pool_dir, quiet=True)

    assert set(pooled) == {"pool-a", "pool-b"}
    for name in pooled:
        assert (campaign.slowdown_digest(pooled[name])
                == campaign.slowdown_digest(solo[name]))
    # Same cache keys: a per-figure rerun over the pooled cache is a
    # pure cache hit.
    rerun = campaign.run(spec_a, jobs=1, cache_dir=pool_dir, quiet=True)
    assert rerun.cached == len(spec_a.cells) and rerun.computed == 0
    assert (campaign.slowdown_digest(rerun)
            == campaign.slowdown_digest(solo["pool-a"]))


def test_pooled_queue_orders_largest_first(tmp_path):
    """The global queue dispatches heavy cells first (cost heuristic:
    simulated duration x hosts x load; non-experiment specs lead)."""
    big = small_cfg(duration_ms=3.0, load=0.8)
    small = small_cfg(duration_ms=0.5, load=0.3)
    cells = [
        campaign.Cell(key="small", spec=small),
        campaign.Cell(key="big", spec=big),
    ]
    ordered = sorted(cells, key=campaign._cell_cost, reverse=True)
    assert [c.key for c in ordered] == ["big", "small"]
    custom = campaign.Cell(key="custom", spec={"anything": 1},
                           task="tests.test_campaign:_never_run",
                           decode=campaign.IDENTITY_DECODE)
    ordered = sorted(cells + [custom], key=campaign._cell_cost,
                     reverse=True)
    assert ordered[0].key == "custom"


def _never_run(spec):  # pragma: no cover - scheduling-order fixture
    raise AssertionError("fixture task must not execute")
