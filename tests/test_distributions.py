"""Unit + property tests for EmpiricalCDF."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import EmpiricalCDF


def simple_cdf(unit=1):
    return EmpiricalCDF(
        [(0.0, 10), (0.5, 100), (1.0, 1000)], unit_bytes=unit, name="test")


def test_rejects_bad_quantile_span():
    with pytest.raises(ValueError):
        EmpiricalCDF([(0.1, 1), (1.0, 10)])
    with pytest.raises(ValueError):
        EmpiricalCDF([(0.0, 1), (0.9, 10)])


def test_rejects_non_increasing_quantiles():
    with pytest.raises(ValueError):
        EmpiricalCDF([(0.0, 1), (0.5, 5), (0.5, 7), (1.0, 10)])


def test_rejects_decreasing_sizes():
    with pytest.raises(ValueError):
        EmpiricalCDF([(0.0, 10), (0.5, 5), (1.0, 20)])


def test_rejects_single_anchor():
    with pytest.raises(ValueError):
        EmpiricalCDF([(0.0, 1)])


def test_samples_within_bounds():
    cdf = simple_cdf()
    rng = np.random.default_rng(1)
    sizes = cdf.sample(rng, 10_000)
    assert sizes.min() >= 10
    assert sizes.max() <= 1000


def test_sample_one_matches_bounds():
    cdf = simple_cdf()
    rng = np.random.default_rng(2)
    for _ in range(100):
        assert 10 <= cdf.sample_one(rng) <= 1000


def test_unit_bytes_makes_multiples():
    cdf = simple_cdf(unit=1460)
    rng = np.random.default_rng(3)
    sizes = cdf.sample(rng, 1000)
    assert (sizes % 1460 == 0).all()
    assert sizes.min() >= 1460


def test_median_sample_near_anchor():
    cdf = simple_cdf()
    rng = np.random.default_rng(4)
    sizes = cdf.sample(rng, 50_000)
    median = np.median(sizes)
    assert 90 <= median <= 110  # anchor says exactly 100 at q=0.5


def test_mass_below_at_anchors():
    cdf = simple_cdf()
    assert cdf.mass_below(10) == pytest.approx(0.0, abs=1e-9)
    assert cdf.mass_below(100) == pytest.approx(0.5, abs=1e-9)
    assert cdf.mass_below(1000) == pytest.approx(1.0, abs=1e-9)
    assert cdf.mass_below(5000) == pytest.approx(1.0, abs=1e-9)


def test_quantile_inverts_mass_below():
    cdf = simple_cdf()
    for q in (0.1, 0.25, 0.5, 0.75, 0.9):
        size = cdf.quantile(q)
        assert cdf.mass_below(size) == pytest.approx(q, abs=0.01)


def test_quantile_out_of_range():
    with pytest.raises(ValueError):
        simple_cdf().quantile(1.5)


def test_mean_matches_monte_carlo():
    cdf = simple_cdf()
    rng = np.random.default_rng(5)
    sampled = cdf.sample(rng, 400_000).mean()
    assert cdf.mean() == pytest.approx(sampled, rel=0.02)


def test_mean_truncated_matches_monte_carlo():
    cdf = simple_cdf()
    rng = np.random.default_rng(6)
    sizes = cdf.sample(rng, 400_000)
    cap = 150
    assert cdf.mean_truncated(cap) == pytest.approx(
        np.minimum(sizes, cap).mean(), rel=0.02)


def test_partial_mean_full_range_equals_mean():
    cdf = simple_cdf()
    assert cdf.partial_mean(cdf.max_bytes()) == pytest.approx(cdf.mean())


def test_unsched_mass_below_composition():
    cdf = simple_cdf()
    cap = 200
    total = cdf.unsched_mass_below(cdf.max_bytes(), cap)
    assert total == pytest.approx(cdf.mean_truncated(cap), rel=1e-9)


def test_unsched_mass_below_monte_carlo():
    cdf = simple_cdf()
    rng = np.random.default_rng(7)
    sizes = cdf.sample(rng, 400_000)
    cap, cut = 200, 400
    expected = np.where(sizes <= cut, np.minimum(sizes, cap), 0).mean()
    assert cdf.unsched_mass_below(cut, cap) == pytest.approx(expected, rel=0.03)


def test_byte_fraction_below_is_one_at_max():
    cdf = simple_cdf()
    assert cdf.byte_fraction_below(cdf.max_bytes()) == pytest.approx(1.0)


def test_deciles_are_monotone():
    deciles = simple_cdf().deciles()
    assert deciles == sorted(deciles)
    assert len(deciles) == 9


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------


@st.composite
def cdf_anchors(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    qs = sorted(draw(st.lists(
        st.floats(min_value=0.01, max_value=0.99),
        min_size=n - 2, max_size=n - 2, unique=True)))
    qs = [0.0] + qs + [1.0]
    sizes = sorted(draw(st.lists(
        st.integers(min_value=1, max_value=10**7),
        min_size=n, max_size=n, unique=True)))
    return list(zip(qs, sizes))


@given(cdf_anchors(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_prop_quantile_within_bounds(anchors, q):
    cdf = EmpiricalCDF(anchors)
    size = cdf.quantile(q)
    assert cdf.min_bytes() <= size <= cdf.max_bytes()


@given(cdf_anchors(), st.integers(min_value=1, max_value=10**7),
       st.integers(min_value=1, max_value=10**7))
@settings(max_examples=80, deadline=None)
def test_prop_mass_below_monotone(anchors, s1, s2):
    cdf = EmpiricalCDF(anchors)
    low, high = min(s1, s2), max(s1, s2)
    assert cdf.mass_below(low) <= cdf.mass_below(high) + 1e-12


@given(cdf_anchors(), st.integers(min_value=1, max_value=10**7))
@settings(max_examples=80, deadline=None)
def test_prop_partial_mean_bounded_by_mean(anchors, size):
    cdf = EmpiricalCDF(anchors)
    assert -1e-9 <= cdf.partial_mean(size) <= cdf.mean() + 1e-6


@given(cdf_anchors(), st.integers(min_value=1, max_value=10**7))
@settings(max_examples=80, deadline=None)
def test_prop_mean_truncated_bounds(anchors, cap):
    cdf = EmpiricalCDF(anchors)
    truncated = cdf.mean_truncated(cap)
    assert truncated <= cdf.mean() + 1e-6
    assert truncated <= cap + 1e-6


@given(cdf_anchors())
@settings(max_examples=50, deadline=None)
def test_prop_samples_respect_support(anchors):
    cdf = EmpiricalCDF(anchors)
    rng = np.random.default_rng(0)
    sizes = cdf.sample(rng, 500)
    assert sizes.min() >= cdf.min_bytes()
    assert sizes.max() <= cdf.max_bytes()


@given(cdf_anchors())
@settings(max_examples=30, deadline=None)
def test_prop_mean_close_to_monte_carlo(anchors):
    cdf = EmpiricalCDF(anchors)
    rng = np.random.default_rng(1)
    sampled = cdf.sample(rng, 60_000).astype(float).mean()
    analytic = cdf.mean()
    # Log-linear rounding of tiny sizes costs a little accuracy.
    assert math.isclose(analytic, sampled, rel_tol=0.15, abs_tol=2.0)
