"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for key in ("W1", "W2", "W3", "W4", "W5"):
        assert key in out


def test_alloc_command(capsys):
    assert main(["alloc", "W2"]) == 0
    out = capsys.readouterr().out
    assert "6 unscheduled + 2 scheduled" in out
    assert "P7" in out


def test_alloc_command_with_prios(capsys):
    assert main(["alloc", "W3", "--prios", "4"]) == 0
    out = capsys.readouterr().out
    assert "scheduled" in out


def test_run_command_small(capsys):
    code = main([
        "run", "--protocol", "homa", "--workload", "W1",
        "--load", "0.3", "--racks", "1", "--hosts-per-rack", "4",
        "--aggrs", "0", "--duration-ms", "0.5", "--warmup-ms", "0",
        "--drain-ms", "4", "--max-messages", "200",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "p99" in out
    assert "finish rate" in out


def test_campaign_command_no_sim_figure(capsys):
    # fig01 derives from the workload catalog (zero campaign cells), so
    # this exercises the full campaign CLI path in milliseconds.
    assert main(["campaign", "fig01"]) == 0
    out = capsys.readouterr().out
    assert "artifacts:" in out
    assert "fig01_workloads" in out


def test_campaign_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "fig99"])


def test_campaign_parser_accepts_jobs_and_fresh():
    args = build_parser().parse_args(
        ["campaign", "fig12", "--jobs", "4", "--fresh"])
    assert args.figure == "fig12" and args.jobs == 4 and args.fresh


def test_campaign_parser_accepts_farm_flags():
    args = build_parser().parse_args(
        ["campaign", "fig17", "--farm", "127.0.0.1:0",
         "--farm-wait", "3", "--farm-retries", "1"])
    assert args.farm == "127.0.0.1:0"
    assert args.farm_wait == 3.0 and args.farm_retries == 1


def test_campaign_farm_defaults_to_local_pool():
    args = build_parser().parse_args(["campaign", "fig17"])
    assert args.farm is None


def test_farm_worker_parser():
    args = build_parser().parse_args(
        ["farm-worker", "10.0.0.2:9000", "--name", "w1",
         "--heartbeat", "1.5", "--die-after", "2"])
    assert args.address == "10.0.0.2:9000"
    assert args.name == "w1"
    assert args.heartbeat == 1.5 and args.die_after == 2


def test_farm_worker_rejects_bad_address(capsys):
    assert main(["farm-worker", "not-an-address"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "quic"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
