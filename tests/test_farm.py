"""Tests for the campaign farm: the wire protocol, spec transport, the
resumable journal, and the coordinator's retry/fallback semantics."""

import json
import socket
import threading

import pytest

from repro.experiments import farm
from repro.experiments.campaign import (
    IDENTITY_DECODE,
    CampaignCellError,
    CampaignSpec,
    Cell,
    ResultCache,
    cell_hash,
    run_pooled,
    slowdown_digest,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.wire import (
    PROTOCOL_VERSION,
    FrameConn,
    FrameReader,
    ProtocolError,
    encode_frame,
)


def square_task(spec):
    """Deterministic payload: farmed and serial runs are byte-identical."""
    return {"value": spec["x"] * spec["x"]}


def boom_task(spec):
    raise ValueError(f"boom on {spec['x']}")


def small_cfg(**kw):
    base = dict(protocol="homa", workload="W1", load=0.5,
                racks=1, hosts_per_rack=4, aggrs=0,
                duration_ms=1.0, warmup_ms=0.0, drain_ms=4.0,
                max_messages=120)
    base.update(kw)
    return ExperimentConfig(**base)


def square_spec(n=6, name="farmtest"):
    return CampaignSpec(name=name, cells=[
        Cell(key=i, spec={"x": i}, task="tests.test_farm:square_task",
             decode=IDENTITY_DECODE)
        for i in range(n)])


def run_farm_with_workers(specs, tmp_path, *, workers=2, die_after=None,
                          stagger=False, **kw):
    """run_farm with in-thread workers launched once the port is known.

    ``die_after`` applies to the first worker only.  ``stagger`` joins
    the dying worker before starting the rest, making the death (and
    its requeue) deterministic."""
    threads = []

    def on_listening(port):
        for i in range(workers):
            kwargs = {"name": f"w{i}"}
            if i == 0 and die_after is not None:
                kwargs["die_after"] = die_after
            t = threading.Thread(target=farm.worker_loop,
                                 args=("127.0.0.1", port), kwargs=kwargs,
                                 daemon=True)
            t.start()
            threads.append(t)
            if stagger and i == 0 and die_after is not None:
                t.join(timeout=30)

    kw.setdefault("cache_dir", tmp_path / "cache")
    kw.setdefault("journal_dir", tmp_path / "journal")
    kw.setdefault("quiet", True)
    out = farm.run_farm(specs, on_listening=on_listening, **kw)
    for t in threads:
        t.join(timeout=30)
    return out


# -- wire protocol -------------------------------------------------------


def frames_from(*payloads):
    """A FrameReader over a socket fed the given raw byte strings."""
    a, b = socket.socketpair()
    for chunk in payloads:
        a.sendall(chunk)
    a.close()
    return FrameReader(b)


def test_frame_round_trip_and_clean_eof():
    reader = frames_from(encode_frame({"type": "ping"}),
                         encode_frame({"type": "result", "id": "x",
                                       "payload": {"v": 1.5}}))
    assert reader.read_frame() == {"type": "ping"}
    assert reader.read_frame() == {"type": "result", "id": "x",
                                   "payload": {"v": 1.5}}
    assert reader.read_frame() is None


def test_frame_split_across_recv_boundaries():
    wire = encode_frame({"type": "cell", "id": "a" * 100})
    a, b = socket.socketpair()
    reader = FrameReader(b)
    got = {}

    def feed():
        for i in range(0, len(wire), 7):
            a.sendall(wire[i:i + 7])
        a.close()

    t = threading.Thread(target=feed)
    t.start()
    got = reader.read_frame()
    t.join()
    assert got == {"type": "cell", "id": "a" * 100}


@pytest.mark.parametrize("garbage", [
    b"not json at all\n",
    b"[1, 2, 3]\n",            # not an object
    b'{"no": "type"}\n',       # missing type
    b'{"type": 7}\n',          # non-string type
])
def test_malformed_frames_raise_protocol_error(garbage):
    reader = frames_from(garbage)
    with pytest.raises(ProtocolError):
        reader.read_frame()


def test_eof_mid_frame_raises_protocol_error():
    reader = frames_from(b'{"type": "truncated"')
    with pytest.raises(ProtocolError):
        reader.read_frame()


# -- spec transport ------------------------------------------------------


def test_encode_spec_experiment_config_round_trips_exactly():
    cfg = small_cfg(load=0.8)
    wire_spec = farm.encode_spec(cfg)
    assert wire_spec["kind"] == "experiment"
    # Through actual wire bytes, like a real farm hop.
    back = farm.decode_spec(json.loads(encode_frame(
        {"type": "cell", "spec": wire_spec}).decode())["spec"])
    assert back == cfg


def test_encode_spec_json_native_passes_and_inexact_stays_local():
    assert farm.decode_spec(farm.encode_spec({"x": 3, "y": [1.5]})) \
        == {"x": 3, "y": [1.5]}
    # int keys and tuples do not survive JSON: never shipped.
    assert farm.encode_spec({1: "a"}) is None
    assert farm.encode_spec((1, 2)) is None
    with pytest.raises(ProtocolError):
        farm.decode_spec({"kind": "pickle", "data": "x"})


def test_parse_address():
    assert farm.parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)
    assert farm.parse_address("9000") == ("127.0.0.1", 9000)
    assert farm.parse_address(":9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError):
        farm.parse_address("nonsense")


def test_sweep_id_tracks_cells_and_fresh_flag():
    spec = square_spec()
    base = farm.sweep_id([spec], False)
    assert base == farm.sweep_id([spec], False)
    assert base != farm.sweep_id([spec], True)
    assert base != farm.sweep_id([square_spec(n=5)], False)


# -- the journal ---------------------------------------------------------


def test_journal_records_resume_and_complete(tmp_path):
    spec = square_spec(n=3)
    sweep = farm.sweep_id([spec], False)
    j = farm.Journal(sweep, [spec.name], tmp_path)
    hashes = [cell_hash(c) for c in spec.cells]
    j.record(spec.name, hashes[0], spec.cells[0])
    j.record(spec.name, hashes[1], spec.cells[1])

    resumed = farm.Journal(sweep, [spec.name], tmp_path)
    assert resumed.done[spec.name] == {hashes[0], hashes[1]}

    j.complete()
    assert not (tmp_path / f"{spec.name}.jsonl").exists()
    assert farm.Journal(sweep, [spec.name], tmp_path).done[spec.name] \
        == set()


def test_journal_tolerates_torn_tail_line(tmp_path):
    spec = square_spec(n=2)
    sweep = farm.sweep_id([spec], False)
    j = farm.Journal(sweep, [spec.name], tmp_path)
    h = cell_hash(spec.cells[0])
    j.record(spec.name, h, spec.cells[0])
    path = tmp_path / f"{spec.name}.jsonl"
    with open(path, "a") as fh:
        fh.write('{"v":1,"sweep":"' + sweep)  # crash mid-append
    resumed = farm.Journal(sweep, [spec.name], tmp_path)
    assert resumed.done[spec.name] == {h}


def test_journal_retires_other_sweeps_records(tmp_path):
    spec = square_spec(n=2)
    old = farm.Journal("feedfacefeedface", [spec.name], tmp_path)
    old.record(spec.name, cell_hash(spec.cells[0]), spec.cells[0])

    sweep = farm.sweep_id([spec], False)
    j = farm.Journal(sweep, [spec.name], tmp_path)
    assert j.done[spec.name] == set()  # stale journal not trusted
    h = cell_hash(spec.cells[1])
    j.record(spec.name, h, spec.cells[1])  # truncates the stale file
    lines = (tmp_path / f"{spec.name}.jsonl").read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["sweep"] == sweep
    assert farm.Journal(sweep, [spec.name], tmp_path).done[spec.name] == {h}


# -- farm runs -----------------------------------------------------------


def test_farm_matches_serial_cache_bytes(tmp_path):
    spec = square_spec()
    out = run_farm_with_workers([spec], tmp_path)
    assert dict(out[spec.name]) == {i: {"value": i * i} for i in range(6)}
    assert out[spec.name].computed == 6
    assert out[spec.name].farm_workers == 2
    assert not out[spec.name].farm_fallback

    serial = run_pooled([spec], jobs=1, cache_dir=tmp_path / "serial",
                        quiet=True)
    assert dict(serial[spec.name]) == dict(out[spec.name])
    # Byte-identical cache entries (deterministic payload).
    farm_cache, serial_cache = ResultCache(tmp_path / "cache"), \
        ResultCache(tmp_path / "serial")
    for cell in spec.cells:
        assert farm_cache.path_for(spec.name, cell).read_bytes() \
            == serial_cache.path_for(spec.name, cell).read_bytes()
    # Journal deleted on completion.
    assert not (tmp_path / "journal" / f"{spec.name}.jsonl").exists()


def test_farm_second_run_is_all_cache_hits(tmp_path):
    spec = square_spec()
    run_farm_with_workers([spec], tmp_path)
    again = farm.run_farm([spec], cache_dir=tmp_path / "cache",
                          journal_dir=tmp_path / "journal",
                          farm_wait_s=0.1, quiet=True)
    assert again[spec.name].computed == 0
    assert again[spec.name].cached == 6


def test_farm_experiment_cells_digest_identical_to_serial(tmp_path):
    grid = {load: small_cfg(load=load) for load in (0.3, 0.5)}
    spec = CampaignSpec(name="farmexp", cells=[
        Cell(key=load, spec=cfg) for load, cfg in grid.items()])
    out = run_farm_with_workers([spec], tmp_path)
    serial = run_pooled([spec], jobs=1, cache_dir=tmp_path / "serial",
                        quiet=True)
    assert slowdown_digest(out[spec.name]) \
        == slowdown_digest(serial[spec.name])


def test_worker_death_mid_cell_requeues_and_completes(tmp_path):
    spec = square_spec()
    out = run_farm_with_workers([spec], tmp_path, workers=2, die_after=1,
                                stagger=True, farm_wait_s=30.0)
    results = out[spec.name]
    assert dict(results) == {i: {"value": i * i} for i in range(6)}
    # The dying worker held exactly one cell: exactly one requeue.
    assert results.farm_requeues == 1
    assert results.farm_workers == 2


def test_retry_budget_exhaustion_names_the_cell(tmp_path):
    spec = square_spec(n=2)
    with pytest.raises(CampaignCellError) as err:
        run_farm_with_workers([spec], tmp_path, workers=1, die_after=1,
                              stagger=True, retry_budget=0,
                              farm_wait_s=30.0)
    assert err.value.campaign == spec.name
    assert "retry budget" in str(err.value)


def test_task_error_fails_immediately_without_retry(tmp_path):
    cells = [Cell(key=0, spec={"x": 0}, task="tests.test_farm:boom_task",
                  decode=IDENTITY_DECODE)]
    spec = CampaignSpec(name="farmboom", cells=cells)
    with pytest.raises(CampaignCellError) as err:
        run_farm_with_workers([spec], tmp_path, workers=1,
                              farm_wait_s=30.0)
    assert err.value.campaign == spec.name
    assert "boom on 0" in str(err.value)


def test_duplicate_delivery_is_idempotent(tmp_path):
    spec = square_spec(n=2)
    sweep = farm.sweep_id([spec], False)
    cache = ResultCache(tmp_path / "cache")
    journal = farm.Journal(sweep, [spec.name], tmp_path / "journal")
    items = [farm._Item(campaign=spec.name, cell=c,
                        path=cache.path_for(spec.name, c),
                        chash=cell_hash(c),
                        cell_id=f"{spec.name}/{cell_hash(c)}",
                        wire_spec=farm.encode_spec(c.spec),
                        cost=1.0)
             for c in spec.cells]
    state = farm._FarmState(items, retry_budget=2, cache=cache,
                            journal=journal)
    cell_id = items[0].cell_id
    assert state.deliver(cell_id, {"value": 0}, None) is True
    first_bytes = items[0].path.read_bytes()
    # A presumed-dead worker delivering late: ignored, cache untouched.
    assert state.deliver(cell_id, {"value": 999}, None) is False
    assert state.duplicates == 1
    assert items[0].path.read_bytes() == first_bytes
    assert len(journal.done[spec.name]) == 1


def test_unknown_cell_delivery_is_a_protocol_error(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    journal = farm.Journal("0" * 16, ["x"], tmp_path / "journal")
    state = farm._FarmState([], retry_budget=2, cache=cache,
                            journal=journal)
    with pytest.raises(ProtocolError):
        state.deliver("x/deadbeef", {}, None)


def test_coordinator_crash_then_journal_resume(tmp_path):
    spec = square_spec()
    with pytest.raises(farm.FarmInterrupted):
        farm.run_farm([spec], cache_dir=tmp_path / "cache",
                      journal_dir=tmp_path / "journal", fresh=True,
                      farm_wait_s=0.1, crash_after=2, quiet=True)
    journal_path = tmp_path / "journal" / f"{spec.name}.jsonl"
    assert journal_path.exists()

    # Restarted coordinator, same sweep (still --fresh): completes only
    # the missing cells, trusting the journal for the two finished ones.
    out = farm.run_farm([spec], cache_dir=tmp_path / "cache",
                        journal_dir=tmp_path / "journal", fresh=True,
                        farm_wait_s=0.1, quiet=True)
    results = out[spec.name]
    assert dict(results) == {i: {"value": i * i} for i in range(6)}
    assert results.computed == 4
    assert results.farm_resumed == 2
    assert not journal_path.exists()


def test_local_fallback_when_no_workers_connect(tmp_path):
    spec = square_spec()
    out = farm.run_farm([spec], cache_dir=tmp_path / "cache",
                        journal_dir=tmp_path / "journal",
                        farm_wait_s=0.2, quiet=True)
    results = out[spec.name]
    assert dict(results) == {i: {"value": i * i} for i in range(6)}
    assert results.farm_fallback
    assert results.farm_workers == 0


def test_untransportable_spec_runs_locally_alongside_workers(tmp_path):
    cells = [Cell(key=i, spec={"x": i}, task="tests.test_farm:square_task",
                  decode=IDENTITY_DECODE) for i in range(3)]
    # int-keyed dict: JSON-inexact, must never cross the wire
    cells.append(Cell(key="local", spec={1: 9, "x": 9},
                      task="tests.test_farm:square_task",
                      decode=IDENTITY_DECODE))
    spec = CampaignSpec(name="farmmixed", cells=cells)
    out = run_farm_with_workers([spec], tmp_path, workers=1)
    results = out[spec.name]
    assert results["local"] == {"value": 81}
    assert dict(results) == {0: {"value": 0}, 1: {"value": 1},
                             2: {"value": 4}, "local": {"value": 81}}


def test_malformed_frame_disconnects_without_poisoning_queue(tmp_path):
    spec = square_spec(n=4)
    port_box = {}
    port_ready = threading.Event()
    out_box = {}

    def coordinator():
        def on_listening(port):
            port_box["port"] = port
            port_ready.set()
        out_box["out"] = farm.run_farm(
            [spec], cache_dir=tmp_path / "cache",
            journal_dir=tmp_path / "journal", farm_wait_s=30.0,
            on_listening=on_listening, quiet=True)

    coord = threading.Thread(target=coordinator, daemon=True)
    coord.start()
    assert port_ready.wait(timeout=30)
    port = port_box["port"]

    # A peer that registers, checks out a cell, then sends garbage.
    sock = socket.create_connection(("127.0.0.1", port))
    conn = FrameConn(sock)
    conn.send({"type": "hello", "protocol": PROTOCOL_VERSION,
               "worker": "vandal"})
    assert conn.recv()["type"] == "welcome"
    conn.send({"type": "next"})
    assert conn.recv()["type"] == "cell"  # now holding a cell
    sock.sendall(b"this is not a frame\n")
    assert conn.recv() is None  # coordinator hung up on us
    conn.close()

    # A healthy worker still completes the whole sweep, including the
    # cell the vandal was holding.
    farm.worker_loop("127.0.0.1", port, name="healthy")
    coord.join(timeout=60)
    assert not coord.is_alive()
    results = out_box["out"][spec.name]
    assert dict(results) == {i: {"value": i * i} for i in range(4)}
    assert results.farm_requeues == 1


def test_protocol_version_mismatch_is_rejected(tmp_path):
    spec = square_spec(n=1)
    port_box = {}
    port_ready = threading.Event()

    def coordinator():
        def on_listening(port):
            port_box["port"] = port
            port_ready.set()
        farm.run_farm([spec], cache_dir=tmp_path / "cache",
                      journal_dir=tmp_path / "journal", farm_wait_s=2.0,
                      on_listening=on_listening, quiet=True)

    coord = threading.Thread(target=coordinator, daemon=True)
    coord.start()
    assert port_ready.wait(timeout=30)
    sock = socket.create_connection(("127.0.0.1", port_box["port"]))
    conn = FrameConn(sock)
    conn.send({"type": "hello", "protocol": 999, "worker": "future"})
    reply = conn.recv()
    assert reply["type"] == "abort"
    assert "protocol" in reply["reason"]
    conn.close()
    coord.join(timeout=60)  # fallback still finishes the sweep
    assert not coord.is_alive()
