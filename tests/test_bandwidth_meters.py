"""Direct math tests for throughput and priority-usage meters."""

import pytest

from repro.core.packet import Packet, PacketType, wire_size
from repro.core.units import US
from repro.metrics.bandwidth import ThroughputMeter, WastedBandwidthTracker
from repro.metrics.priousage import PriorityUsage

from tests.helpers import homa_cluster


def test_throughput_meter_counts_downlink_bytes():
    sim, net, transports = homa_cluster(hosts_per_rack=2)
    meter = ThroughputMeter(net)
    transports[0].send_message(1, 10_000)
    sim.run(until_ps=int(0.1 * 1e9))  # 0.1 ms
    total = meter.total_utilization()
    app = meter.app_utilization()
    # 10 KB in 0.1 ms over 2 hosts x 1.25 GB/s = 4% app utilization.
    assert app == pytest.approx(0.04, rel=0.05)
    assert total > app  # headers add overhead


def test_throughput_meter_zero_before_traffic():
    sim, net, transports = homa_cluster(hosts_per_rack=2)
    meter = ThroughputMeter(net)
    assert meter.total_utilization() == 0.0
    assert meter.app_utilization() == 0.0


def test_retransmissions_not_counted_as_app_bytes():
    sim, net, transports = homa_cluster(hosts_per_rack=2)
    meter = ThroughputMeter(net)
    port = net.tor_down_ports[1]
    fresh = Packet(0, 1, PacketType.DATA, payload=1000, rpc_id=1,
                   total_length=1000)
    retx = Packet(0, 1, PacketType.DATA, payload=1000, rpc_id=1,
                  total_length=1000, retx=True)
    port.enqueue(fresh)
    port.enqueue(retx)
    sim.run(until_ps=10 * US)
    downlink_meter = meter.meters[1]
    assert downlink_meter.app_bytes == 1000
    assert downlink_meter.wire_bytes == 2 * wire_size(1000)


def test_priority_usage_fractions_sum_to_utilization():
    sim, net, transports = homa_cluster(hosts_per_rack=4)
    usage = PriorityUsage(net)
    meter = ThroughputMeter(net)
    transports[0].send_message(1, 40_000)
    transports[2].send_message(1, 2_000)
    sim.run(until_ps=int(0.2 * 1e9))
    fractions = usage.fractions()
    assert len(fractions) == 8
    assert sum(fractions) == pytest.approx(meter.total_utilization(),
                                           rel=1e-6)


def test_priority_usage_sees_configured_levels():
    sim, net, transports = homa_cluster(hosts_per_rack=4, workload="W2")
    usage = PriorityUsage(net)
    transports[0].send_message(1, 50)       # smallest: highest unsched prio
    transports[2].send_message(3, 100_000)  # needs scheduled grants
    sim.run(until_ps=int(0.3 * 1e9))
    fractions = usage.fractions()
    assert fractions[7] > 0  # unsched of the tiny message (and grants)
    assert fractions[0] > 0  # scheduled data at the lowest level


def test_wasted_tracker_zero_without_overcommit_pressure():
    sim, net, transports = homa_cluster(hosts_per_rack=2)
    tracker = WastedBandwidthTracker(net, transports)
    transports[0].send_message(1, 5_000)
    sim.run(until_ps=int(0.1 * 1e9))
    assert tracker.wasted_fraction() == 0.0
