"""Unit tests for egress ports: priorities, drops, ECN, trimming, pull."""

from repro.core.engine import Simulator
from repro.core.packet import (
    CTRL_PRIO,
    MAX_PAYLOAD,
    Packet,
    PacketType,
    wire_size,
)
from repro.core.port import PfabricPort, PortProbe, PullPort, QueuedPort


def data(src=0, dst=1, *, prio=0, payload=100, fine=0, offset=0):
    return Packet(src, dst, PacketType.DATA, prio=prio, payload=payload,
                  fine_prio=fine, offset=offset, rpc_id=1)


class Collector:
    def __init__(self):
        self.out = []

    def __call__(self, pkt):
        self.out.append(pkt)


def make_queued(sim, sink, **kwargs):
    return QueuedPort(sim, "p", 10, sink, "tor_down", **kwargs)


def test_single_packet_serialization_time():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    pkt = data(payload=1000)
    port.enqueue(pkt)
    sim.run()
    assert sink.out == [pkt]
    # 1078 wire bytes at 10 Gbps = 800 ps/byte.
    assert sim.now == wire_size(1000) * 800


def test_higher_priority_jumps_queue():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    low1, low2, high = data(prio=1), data(prio=1), data(prio=6)
    port.enqueue(low1)   # starts transmitting immediately
    port.enqueue(low2)
    port.enqueue(high)
    sim.run()
    assert sink.out == [low1, high, low2]


def test_fifo_within_priority():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    pkts = [data(prio=3) for _ in range(4)]
    for pkt in pkts:
        port.enqueue(pkt)
    sim.run()
    assert sink.out == pkts


def test_buffer_overflow_drop_tail():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, buffer_bytes=2 * wire_size(1000))
    kept1, kept2, dropped = data(payload=1000), data(payload=1000), data(payload=1000)
    port.enqueue(data(payload=1000))  # in flight, not buffered
    port.enqueue(kept1)
    port.enqueue(kept2)
    port.enqueue(dropped)
    sim.run()
    assert dropped not in sink.out
    assert port.drops == 1
    assert len(sink.out) == 3


def test_ecn_marking_above_threshold():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, ecn_bytes=wire_size(1000))
    first, second, third = data(payload=1000), data(payload=1000), data(payload=1000)
    port.enqueue(first)    # transmitting; queue empty
    port.enqueue(second)   # queue 0 -> no mark
    port.enqueue(third)    # queue above threshold -> mark
    sim.run()
    assert not first.ecn and not second.ecn
    assert third.ecn


def test_ndp_trimming_converts_data_to_header():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, trim_bytes=2 * 1538)
    packets = [data(prio=0, payload=MAX_PAYLOAD) for _ in range(5)]
    for pkt in packets:
        port.enqueue(pkt)
    sim.run()
    trimmed = [p for p in sink.out if p.trimmed]
    whole = [p for p in sink.out if not p.trimmed]
    # First is transmitted, next two fill the data queue, rest trimmed.
    assert len(whole) == 3
    assert len(trimmed) == 2
    assert all(p.prio == CTRL_PRIO for p in trimmed)
    assert all(p.wire == 84 for p in trimmed)


def test_queued_port_tracks_queue_bytes():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    port.enqueue(data(payload=1000))
    port.enqueue(data(payload=500))
    assert port.qbytes == wire_size(500)
    sim.run()
    assert port.qbytes == 0


def test_tx_counters():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    port.enqueue(data(payload=100))
    port.enqueue(data(payload=200))
    sim.run()
    assert port.tx_packets == 2
    assert port.tx_wire_bytes == wire_size(100) + wire_size(200)


class RecordingProbe(PortProbe):
    def __init__(self):
        self.queue_events = []
        self.busy_events = []
        self.tx = []
        self.dropped = []

    def on_queue_change(self, now, qbytes):
        self.queue_events.append((now, qbytes))

    def on_busy_change(self, now, busy):
        self.busy_events.append((now, busy))

    def on_tx_done(self, now, pkt):
        self.tx.append((now, pkt))

    def on_drop(self, now, pkt):
        self.dropped.append(pkt)


def test_probe_sees_busy_transitions_and_tx():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    probe = RecordingProbe()
    port.probe = probe
    port.enqueue(data(payload=1000))
    sim.run()
    assert probe.busy_events[0] == (0, True)
    assert probe.busy_events[-1][1] is False
    assert len(probe.tx) == 1


def test_probe_sees_drops():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, buffer_bytes=wire_size(1000))
    probe = RecordingProbe()
    port.probe = probe
    port.enqueue(data(payload=1000))  # transmits
    port.enqueue(data(payload=1000))  # buffered (fills the buffer)
    port.enqueue(data(payload=1000))  # dropped: exceeds buffer
    sim.run()
    assert len(probe.dropped) == 1


def test_delay_attribution_preemption_lag():
    """A high-priority packet stuck behind a low-priority transmission
    accumulates preemption lag, not queueing delay (Figure 14)."""
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    port.trace_delays = True
    low = data(prio=0, payload=MAX_PAYLOAD)
    high = data(prio=7, payload=100)
    port.enqueue(low)
    port.enqueue(high)
    sim.run()
    assert high.p_wait == 1538 * 800
    assert high.q_wait == 0


def test_delay_attribution_queueing():
    """Waiting behind equal-or-higher priority counts as queueing."""
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink)
    port.trace_delays = True
    first = data(prio=5, payload=1000)
    second = data(prio=5, payload=100)
    port.enqueue(first)
    port.enqueue(second)
    sim.run()
    assert second.q_wait == wire_size(1000) * 800
    assert second.p_wait == 0


def test_preemptive_link_interrupts_low_priority():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, preemptive=True)
    low = data(prio=0, payload=MAX_PAYLOAD)
    high = data(prio=7, payload=100)
    port.enqueue(low)
    sim.run(until_ps=1000)  # low is mid-transmission
    port.enqueue(high)
    sim.run()
    # High priority finishes first even though low started first.
    assert sink.out[0] is high
    assert sink.out[1] is low
    # Low's total service is unchanged: only its completion moved.
    assert sim.now == 1538 * 800 + wire_size(100) * 800


def test_preemptive_link_delivers_everything():
    sim, sink = Simulator(), Collector()
    port = make_queued(sim, sink, preemptive=True)
    pkts = [data(prio=p % 8, payload=500) for p in range(16)]
    for pkt in pkts:
        port.enqueue(pkt)
    sim.run()
    assert sorted(id(p) for p in sink.out) == sorted(id(p) for p in pkts)  # simlint: ok(det-id-order) — multiset equality of object identities; both sides sort the same run's ids, no cross-run order is asserted


# ---------------------------------------------------------------------------
# pFabric port
# ---------------------------------------------------------------------------


def test_pfabric_dequeues_smallest_remaining():
    sim, sink = Simulator(), Collector()
    port = PfabricPort(sim, "p", 10, sink, "tor_down", buffer_bytes=10 * 1538)
    blocker = data(fine=5000, payload=1000)
    big = data(fine=100_000, payload=1000)
    small = data(fine=200, payload=1000)
    port.enqueue(blocker)  # transmitting
    port.enqueue(big)
    port.enqueue(small)
    sim.run()
    assert sink.out == [blocker, small, big]


def test_pfabric_fifo_among_equal_priorities():
    sim, sink = Simulator(), Collector()
    port = PfabricPort(sim, "p", 10, sink, "tor_down", buffer_bytes=10 * 1538)
    first, second = data(fine=100), data(fine=100)
    port.enqueue(data(fine=1))  # occupy the link
    port.enqueue(first)
    port.enqueue(second)
    sim.run()
    assert sink.out.index(first) < sink.out.index(second)


def test_pfabric_drops_largest_on_overflow():
    sim, sink = Simulator(), Collector()
    port = PfabricPort(sim, "p", 10, sink, "tor_down",
                       buffer_bytes=2 * wire_size(1000))
    port.enqueue(data(fine=10, payload=1000))      # in flight
    victim = data(fine=999_999, payload=1000)
    keeper = data(fine=50, payload=1000)
    newcomer = data(fine=20, payload=1000)
    port.enqueue(victim)
    port.enqueue(keeper)
    port.enqueue(newcomer)  # overflow: victim has lowest urgency
    sim.run()
    assert victim not in sink.out
    assert keeper in sink.out and newcomer in sink.out
    assert port.drops == 1


def test_pfabric_drops_arrival_if_it_is_least_urgent():
    sim, sink = Simulator(), Collector()
    port = PfabricPort(sim, "p", 10, sink, "tor_down",
                       buffer_bytes=2 * wire_size(1000))
    port.enqueue(data(fine=10, payload=1000))
    port.enqueue(data(fine=20, payload=1000))
    port.enqueue(data(fine=30, payload=1000))
    loser = data(fine=999, payload=1000)
    port.enqueue(loser)
    sim.run()
    assert loser not in sink.out


# ---------------------------------------------------------------------------
# Pull port
# ---------------------------------------------------------------------------


class ScriptedSource:
    def __init__(self, packets):
        self.packets = list(packets)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return self.packets.pop(0) if self.packets else None


def test_pull_port_drains_source():
    sim, sink = Simulator(), Collector()
    port = PullPort(sim, "nic", 10, sink, "host_up")
    source = ScriptedSource([data(payload=100), data(payload=200)])
    port.source = source
    port.kick()
    sim.run()
    assert len(sink.out) == 2
    assert sim.now == (wire_size(100) + wire_size(200)) * 800


def test_pull_port_kick_while_busy_is_noop():
    sim, sink = Simulator(), Collector()
    port = PullPort(sim, "nic", 10, sink, "host_up")
    source = ScriptedSource([data(payload=1000)])
    port.source = source
    port.kick()
    port.kick()  # busy: must not double-transmit
    sim.run()
    assert len(sink.out) == 1


def test_pull_port_idle_with_empty_source():
    sim, sink = Simulator(), Collector()
    port = PullPort(sim, "nic", 10, sink, "host_up")
    source = ScriptedSource([])
    port.source = source
    port.kick()
    sim.run()
    assert not sink.out
    assert source.calls == 1
