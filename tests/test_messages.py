"""Tests for the message state machines (Intervals, Outbound, Inbound)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import MAX_PAYLOAD
from repro.transport.messages import InboundMessage, Intervals, OutboundMessage


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


def test_intervals_basic_add():
    iv = Intervals()
    assert iv.add(0, 100) == 100
    assert iv.total == 100


def test_intervals_duplicate_add_counts_zero():
    iv = Intervals()
    iv.add(0, 100)
    assert iv.add(0, 100) == 0
    assert iv.total == 100


def test_intervals_contiguous_merge():
    iv = Intervals()
    iv.add(0, 100)
    iv.add(100, 200)
    assert iv.total == 200
    assert len(iv) == 1
    assert iv.contiguous_prefix() == 200


def test_intervals_out_of_order():
    iv = Intervals()
    iv.add(200, 300)
    iv.add(0, 100)
    assert iv.total == 200
    assert iv.contiguous_prefix() == 100
    assert iv.first_gap(300) == (100, 200)


def test_intervals_partial_overlap():
    iv = Intervals()
    iv.add(0, 150)
    assert iv.add(100, 250) == 100
    assert iv.total == 250


def test_intervals_fill_gap():
    iv = Intervals()
    iv.add(0, 100)
    iv.add(200, 300)
    iv.add(100, 200)
    assert iv.total == 300
    assert len(iv) == 1
    assert iv.first_gap(300) is None


def test_intervals_empty_range_ignored():
    iv = Intervals()
    assert iv.add(50, 50) == 0
    assert iv.add(60, 40) == 0
    assert iv.total == 0


def test_intervals_first_gap_from_zero():
    iv = Intervals()
    iv.add(100, 200)
    assert iv.first_gap(200) == (0, 100)


def test_intervals_first_gap_none_when_empty_horizon():
    iv = Intervals()
    assert iv.first_gap(0) is None
    assert iv.first_gap(10) == (0, 10)


def test_intervals_covers():
    iv = Intervals()
    iv.add(10, 50)
    assert iv.covers(10, 50)
    assert iv.covers(20, 30)
    assert not iv.covers(5, 15)
    assert not iv.covers(40, 60)


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 80)),
                min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_prop_intervals_match_set_semantics(chunks):
    """Intervals must behave exactly like a set of byte indices."""
    iv = Intervals()
    reference = set()
    for start, size in chunks:
        added = iv.add(start, start + size)
        new_bytes = set(range(start, start + size)) - reference
        assert added == len(new_bytes)
        reference |= set(range(start, start + size))
        assert iv.total == len(reference)
    horizon = 600
    gap = iv.first_gap(horizon)
    missing = sorted(set(range(horizon)) - reference)
    if missing:
        assert gap is not None
        assert gap[0] == missing[0]
        assert gap[0] < gap[1] <= horizon
        # Every byte in the reported gap really is missing.
        assert all(b not in reference for b in range(gap[0], gap[1]))
    else:
        assert gap is None


# ---------------------------------------------------------------------------
# OutboundMessage
# ---------------------------------------------------------------------------


def out_msg(length, unsched=10220):
    return OutboundMessage(1, True, 0, 1, length,
                           unsched_limit=unsched, created_ps=0)


def test_outbound_initial_grant_is_unscheduled_portion():
    msg = out_msg(100_000)
    assert msg.granted == 10220
    assert out_msg(500).granted == 500  # short: entire message blind


def test_outbound_rejects_empty():
    with pytest.raises(ValueError):
        out_msg(0)


def test_outbound_chunks_are_packet_sized():
    msg = out_msg(3 * MAX_PAYLOAD)
    chunks = []
    while True:
        chunk = msg.next_chunk()
        if chunk is None:
            break
        chunks.append(chunk)
    assert [c[1] for c in chunks] == [MAX_PAYLOAD] * 3
    assert [c[0] for c in chunks] == [0, MAX_PAYLOAD, 2 * MAX_PAYLOAD]
    assert msg.fully_sent()


def test_outbound_stops_at_grant_boundary():
    msg = out_msg(100_000)
    sent = 0
    while msg.next_chunk() is not None:
        sent += 1
    assert msg.sent == 10220
    assert not msg.fully_sent()
    assert not msg.sendable()


def test_outbound_grant_extends_sendable_region():
    msg = out_msg(100_000)
    while msg.next_chunk() is not None:
        pass
    msg.grant_to(20440, prio=2)
    assert msg.sendable()
    assert msg.grant_prio == 2
    offset, size, is_rtx = msg.next_chunk()
    assert offset == 10220 and not is_rtx


def test_outbound_grant_never_shrinks():
    msg = out_msg(100_000)
    msg.grant_to(50_000, prio=1)
    msg.grant_to(30_000, prio=3)
    assert msg.granted == 50_000
    assert msg.grant_prio == 3  # priority still updates


def test_outbound_grant_capped_at_length():
    msg = out_msg(5000)
    msg.grant_to(99_999, prio=0)
    assert msg.granted == 5000


def test_outbound_rtx_takes_precedence():
    msg = out_msg(100_000)
    msg.next_chunk()
    msg.queue_rtx(0, 1000)
    offset, size, is_rtx = msg.next_chunk()
    assert is_rtx and offset == 0 and size == 1000


def test_outbound_rtx_split_into_packets():
    msg = out_msg(100_000)
    msg.queue_rtx(0, 2 * MAX_PAYLOAD + 10)
    sizes = []
    for _ in range(3):
        offset, size, is_rtx = msg.next_chunk()
        assert is_rtx
        sizes.append(size)
    assert sizes == [MAX_PAYLOAD, MAX_PAYLOAD, 10]


def test_outbound_rtx_clipped_to_length():
    msg = out_msg(500)
    msg.queue_rtx(400, 9999)
    offset, size, _ = msg.next_chunk()
    assert offset == 400 and size == 100


def test_outbound_remaining_is_srpt_metric():
    msg = out_msg(10_000)
    assert msg.remaining == 10_000
    msg.next_chunk()
    assert msg.remaining == 10_000 - MAX_PAYLOAD


# ---------------------------------------------------------------------------
# InboundMessage
# ---------------------------------------------------------------------------


def in_msg(length):
    return InboundMessage(1, True, 0, 1, length, now_ps=0)


def test_inbound_completion():
    msg = in_msg(1000)
    assert msg.record(0, 1000, now_ps=5) == 1000
    assert msg.is_complete()
    assert msg.bytes_remaining == 0


def test_inbound_out_of_order_completion():
    msg = in_msg(3000)
    msg.record(1460, 1460, now_ps=1)
    msg.record(2920, 80, now_ps=2)
    assert not msg.is_complete()
    msg.record(0, 1460, now_ps=3)
    assert msg.is_complete()


def test_inbound_overrun_clipped_to_length():
    msg = in_msg(1000)
    msg.record(0, 1460, now_ps=1)  # retransmission may overshoot
    assert msg.bytes_received == 1000
    assert msg.is_complete()


def test_inbound_progress_resets_resend_count():
    msg = in_msg(5000)
    msg.resends = 3
    msg.record(0, 100, now_ps=1)
    assert msg.resends == 0


def test_inbound_duplicate_does_not_reset_resends():
    msg = in_msg(5000)
    msg.record(0, 100, now_ps=1)
    msg.resends = 3
    msg.record(0, 100, now_ps=2)  # duplicate: no new bytes
    assert msg.resends == 3


def test_inbound_tracks_activity_time():
    msg = in_msg(5000)
    msg.record(0, 100, now_ps=42)
    assert msg.last_activity_ps == 42


def test_keys_match_between_directions():
    out = OutboundMessage(9, False, 0, 1, 10, unsched_limit=100, created_ps=0)
    inc = InboundMessage(9, False, 0, 1, 10, now_ps=0)
    assert out.key == inc.key
