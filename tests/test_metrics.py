"""Unit tests for the metrics package."""

import math

import pytest

from repro.core.engine import Simulator
from repro.core.packet import Packet, PacketType
from repro.core.topology import NetworkConfig, build_network
from repro.metrics.bandwidth import _IdleWithheldAccount
from repro.metrics.probes import CompositeProbe, attach_probe
from repro.metrics.queues import QueueLengthProbe
from repro.metrics.slowdown import SlowdownTracker, bucket_index
from repro.core.port import PortProbe, QueuedPort


def make_net():
    return build_network(Simulator(), NetworkConfig())


# ---------------------------------------------------------------------------
# SlowdownTracker
# ---------------------------------------------------------------------------


def test_tracker_records_relative_to_oracle():
    net = make_net()
    tracker = SlowdownTracker(net)
    oracle = net.min_oneway_ps(100, False)
    tracker.record_oneway(0, 143, 100, 0, 2 * oracle)
    assert tracker.slowdowns == [2.0]


def test_tracker_warmup_filter():
    net = make_net()
    tracker = SlowdownTracker(net, warmup_ps=1000)
    tracker.record_oneway(0, 143, 100, 500, 10_000_000)   # during warmup
    tracker.record_oneway(0, 143, 100, 1500, 10_000_000)  # after
    assert tracker.count == 1


def test_tracker_rpc_uses_round_trip_oracle():
    net = make_net()
    tracker = SlowdownTracker(net)
    oracle = net.min_rpc_ps(200, 200, False)
    tracker.record_rpc(0, 143, 200, 200, 0, oracle)
    assert tracker.slowdowns == [pytest.approx(1.0)]


def test_tracker_bucket_report():
    net = make_net()
    tracker = SlowdownTracker(net)
    for size, slowdown in ((50, 1.0), (50, 3.0), (500, 2.0)):
        tracker._push(size, slowdown)
    report = tracker.bucket_report([0, 100, 1000])
    assert report[0].count == 2
    assert report[0].p50 == pytest.approx(2.0)
    assert report[1].count == 1
    assert report[1].mean == pytest.approx(2.0)


def test_tracker_empty_bucket_is_nan():
    net = make_net()
    tracker = SlowdownTracker(net)
    tracker._push(50, 1.0)
    report = tracker.bucket_report([0, 10, 100])
    assert math.isnan(report[0].p50)
    assert report[1].count == 1


def test_tracker_bad_edges_rejected():
    net = make_net()
    tracker = SlowdownTracker(net)
    with pytest.raises(ValueError):
        tracker.bucket_report([10, 5])
    with pytest.raises(ValueError):
        tracker.bucket_report([0])


def test_tracker_overall_empty_raises():
    net = make_net()
    with pytest.raises(ValueError):
        SlowdownTracker(net).overall(99)


def test_bucket_index():
    edges = [0, 10, 100, 1000]
    assert bucket_index(edges, 5) == 0
    assert bucket_index(edges, 10) == 0
    assert bucket_index(edges, 11) == 1
    assert bucket_index(edges, 1000) == 2


# ---------------------------------------------------------------------------
# QueueLengthProbe
# ---------------------------------------------------------------------------


def test_queue_probe_time_weighted_mean():
    probe = QueueLengthProbe(start_ps=0)
    probe.on_queue_change(0, 100)     # 100 B from t=0
    probe.on_queue_change(50, 300)    # 300 B from t=50
    probe.on_queue_change(100, 0)     # empty from t=100
    # Integral: 100*50 + 300*50 = 20000 over 200 ps -> mean 100.
    assert probe.mean_bytes(200, 0) == pytest.approx(100.0)
    assert probe.max_qbytes == 300


def test_queue_probe_handles_open_interval():
    probe = QueueLengthProbe(start_ps=0)
    probe.on_queue_change(0, 500)
    # Still 500 B at the end: the tail interval counts.
    assert probe.mean_bytes(100, 0) == pytest.approx(500.0)


def test_queue_probe_zero_duration():
    probe = QueueLengthProbe(start_ps=0)
    assert probe.mean_bytes(0, 0) == 0.0


# ---------------------------------------------------------------------------
# wasted-bandwidth accounting
# ---------------------------------------------------------------------------


def test_idle_withheld_intersection():
    account = _IdleWithheldAccount(start_ps=0)
    account.set_withheld(0, True)       # withheld, idle -> accumulating
    account.on_busy_change(100, True)   # busy at t=100: 100 ps wasted
    account.on_busy_change(200, False)  # idle again
    account.set_withheld(250, False)    # stops at t=250: +50 ps
    account._accumulate(300)
    assert account.wasted_ps == 150


def test_idle_busy_without_withheld_not_wasted():
    account = _IdleWithheldAccount(start_ps=0)
    account.on_busy_change(100, True)
    account.on_busy_change(200, False)
    account._accumulate(400)
    assert account.wasted_ps == 0


# ---------------------------------------------------------------------------
# probe composition
# ---------------------------------------------------------------------------


class CountingProbe(PortProbe):
    def __init__(self):
        self.events = 0

    def on_tx_done(self, now, pkt):
        self.events += 1


def test_composite_probe_fans_out():
    first, second = CountingProbe(), CountingProbe()
    composite = CompositeProbe([first, second])
    composite.on_tx_done(0, None)
    assert first.events == 1 and second.events == 1


def test_attach_probe_composes():
    sim = Simulator()
    port = QueuedPort(sim, "p", 10, lambda pkt: None, "tor_down")
    a, b, c = CountingProbe(), CountingProbe(), CountingProbe()
    attach_probe(port, a)
    assert port.probe is a
    attach_probe(port, b)
    assert isinstance(port.probe, CompositeProbe)
    attach_probe(port, c)
    assert len(port.probe.probes) == 3
    port.enqueue(Packet(0, 1, PacketType.DATA, prio=0, payload=10, rpc_id=1))
    sim.run()
    assert a.events == b.events == c.events == 1
