"""Grant pacer coverage: batched GRANT emission in the Homa receiver.

Three layers:

* direct-transport semantics — arrivals arm the pacer instead of
  granting synchronously; a tick runs one ranking pass and emits at
  most one GRANT per active message, carrying the furthest allocation;
* interplay — retransmission timers, BUSY budget resets, and freed
  overcommitment slots all keep working when grants are batched;
* end-to-end — a seeded W4 run conserves messages in both modes and
  the batched mode measurably cuts GRANT control packets.

The byte-identical digest contract of ``grant_batch_ns=0`` is asserted
by tests/test_hotpath_regressions.py::test_w4_digest_byte_identical_to_seed.
"""

import pytest

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.core.units import MS, NS, US, ps_per_byte
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.homa.config import HomaConfig
from repro.homa.priorities import allocate_priorities
from repro.homa.transport import HomaTransport
from repro.workloads.catalog import WORKLOADS

from tests.helpers import FakeHost, drain_ctrl, homa_cluster

RTT = 9680
BATCH_NS = HomaConfig().grant_batch_ns


def make_batched_transport(homa_cfg=None, workload="W4"):
    sim = Simulator()
    cfg = homa_cfg or HomaConfig()
    assert cfg.grant_batch_ns > 0, "these tests exercise batched mode"
    alloc = allocate_priorities(
        WORKLOADS[workload].cdf,
        cfg.resolved_unsched_limit(RTT),
        n_prios=cfg.n_prios,
        n_unsched_override=cfg.n_unsched_override,
        n_sched_override=cfg.n_sched_override,
    )
    transport = HomaTransport(sim, cfg, alloc, RTT)
    transport.bind(FakeHost(sim, 0))
    return sim, transport


def data_packet(src, rpc_id, offset, payload, total):
    return Packet(
        src,
        0,
        PacketType.DATA,
        prio=5,
        payload=payload,
        rpc_id=rpc_id,
        is_request=True,
        offset=offset,
        total_length=total,
        grant_offset=min(total, 10220),
    )


def grants(packets):
    return [p for p in packets if p.kind == PacketType.GRANT]


def aligned(target, length):
    """Grant offsets are rounded up to whole packets, capped at length."""
    return min(-(-target // MAX_PAYLOAD) * MAX_PAYLOAD, length)


def test_grant_window_includes_batch_slack():
    """Batched mode keeps RTTbytes + one tick of line-rate bytes
    outstanding, so paced grants never starve the sender's window."""
    sim, transport = make_batched_transport()
    slack = -(-(BATCH_NS * NS) // ps_per_byte(10))
    assert transport.grant_window == RTT + slack
    assert transport._grant_timer is not None
    assert transport._grant_timer.interval_ps == BATCH_NS * NS


def test_zero_interval_is_legacy_per_packet():
    sim_cfg = HomaConfig(grant_batch_ns=0)
    sim = Simulator()
    alloc = allocate_priorities(
        WORKLOADS["W4"].cdf, sim_cfg.resolved_unsched_limit(RTT), n_prios=8
    )
    transport = HomaTransport(sim, sim_cfg, alloc, RTT)
    transport.bind(FakeHost(sim, 0))
    assert transport._grant_timer is None
    assert transport.grant_window == RTT
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 100_000))
    assert len(grants(drain_ctrl(transport))) == 1  # synchronous GRANT


def test_no_grant_until_tick():
    sim, transport = make_batched_transport()
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 100_000))
    assert not grants(drain_ctrl(transport))  # arrival only arms the pacer
    assert transport._grant_timer.pending
    sim.run(until_ps=5 * US)
    out = grants(drain_ctrl(transport))
    assert len(out) == 1
    assert out[0].grant_offset == aligned(MAX_PAYLOAD + transport.grant_window, 100_000)
    assert transport.grant_ticks == 1


def test_burst_collapses_into_one_grant():
    """Several data packets inside one interval yield one GRANT that
    carries the furthest allocation known at tick time."""
    sim, transport = make_batched_transport()
    for index in range(3):
        pkt = data_packet(1, 100, index * MAX_PAYLOAD, MAX_PAYLOAD, 100_000)
        transport.on_packet(pkt)
    sim.run(until_ps=5 * US)
    out = grants(drain_ctrl(transport))
    assert len(out) == 1
    expected = aligned(3 * MAX_PAYLOAD + transport.grant_window, 100_000)
    assert out[0].grant_offset == expected
    assert transport.grants_sent == 1
    assert transport.grant_ticks == 1


def test_one_grant_per_active_message_ranked_by_remaining():
    sim, transport = make_batched_transport()
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 2_000_000))
    transport.on_packet(data_packet(2, 101, 0, MAX_PAYLOAD, 500_000))
    sim.run(until_ps=5 * US)
    out = grants(drain_ctrl(transport))
    assert len(out) == 2
    by_src = {m.src: m for m in transport.inbound.values()}
    # Most-remaining message sits on the lowest scheduled level so a
    # shorter newcomer preempts without lag (paper Figure 5).
    assert by_src[1].sched_prio < by_src[2].sched_prio
    assert by_src[1].sched_prio == transport.alloc.sched_levels[0]


def test_batched_grants_respect_overcommit_degree():
    cfg = HomaConfig(n_sched_override=2)
    sim, transport = make_batched_transport(cfg)
    for index in range(5):
        pkt = data_packet(index + 1, 100 + index, 0, MAX_PAYLOAD, 500_000 + index)
        transport.on_packet(pkt)
    sim.run(until_ps=5 * US)
    granted_beyond_unsched = [
        m for m in transport.inbound.values() if m.granted > 10220
    ]
    assert len(granted_beyond_unsched) == 2
    assert transport.grants_sent == 2


def test_completion_frees_slot_for_withheld_message():
    """A completion must arm the pacer: the next tick's ranking pass
    promotes the message the overcommitment limit was withholding."""
    cfg = HomaConfig(n_sched_override=1)
    sim, transport = make_batched_transport(cfg)
    for index in range(7):  # 10220 of 11000 bytes: message A stays short
        pkt = data_packet(1, 100, index * MAX_PAYLOAD, MAX_PAYLOAD, 11_000)
        transport.on_packet(pkt)
    transport.on_packet(data_packet(2, 101, 0, MAX_PAYLOAD, 500_000))
    sim.run(until_ps=5 * US)
    by_src = {m.src: m for m in transport.inbound.values()}
    assert by_src[1].granted == 11_000  # degree-1 slot goes to A
    assert by_src[2].granted == 10220  # B withheld at its unscheduled prefix
    transport.on_packet(data_packet(1, 100, 7 * MAX_PAYLOAD, 780, 11_000))
    assert all(m.src != 1 for m in transport.inbound.values())  # A done
    sim.run(until_ps=10 * US)
    msg_b = next(m for m in transport.inbound.values() if m.src == 2)
    assert msg_b.granted == aligned(MAX_PAYLOAD + transport.grant_window, 500_000)


def test_resend_timer_still_fires_under_batching():
    """Batching must not disturb the receiver's loss recovery: a gap in
    granted data still produces a RESEND naming the missing range."""
    sim, transport = make_batched_transport()
    transport.on_packet(data_packet(1, 100, 0, MAX_PAYLOAD, 50_000))
    transport.on_packet(data_packet(1, 100, 2 * MAX_PAYLOAD, MAX_PAYLOAD, 50_000))
    sim.run(until_ps=5 * US)
    assert grants(drain_ctrl(transport))  # pacer granted the message
    sim.run(until_ps=int(3.5 * MS))
    resends = [p for p in drain_ctrl(transport) if p.kind == PacketType.RESEND]
    assert resends
    assert resends[0].offset == MAX_PAYLOAD
    assert resends[0].range_end == 2 * MAX_PAYLOAD
    msg = next(iter(transport.inbound.values()))
    assert msg.resends >= 1


def test_busy_resets_retry_budget_under_batching():
    cfg = HomaConfig()
    assert cfg.grant_batch_ns > 0
    sim, net, transports = homa_cluster(homa_cfg=cfg)
    client = transports[0]
    rpc_id = client.send_rpc(1, 50_000)
    rpc = client.client_rpcs[rpc_id]
    rpc.resends = 2
    busy = Packet(1, 0, PacketType.BUSY, rpc_id=rpc_id, is_request=False)
    client.on_packet(busy)
    assert rpc.resends == 0


W4_SCENARIO = dict(
    protocol="homa",
    workload="W4",
    load=0.8,
    racks=2,
    hosts_per_rack=4,
    aggrs=2,
    duration_ms=2.0,
    warmup_ms=0.5,
    drain_ms=30.0,
    seed=7,
    max_messages=150,
)


@pytest.mark.slow
def test_batched_mode_cuts_grant_packets_and_conserves_messages():
    """The headline claim, at CI scale: batching cuts GRANT control
    packets well past 2x on W4 @ 80% while every message still
    completes.  Counts are deterministic for a seeded run."""
    legacy = run_experiment(
        ExperimentConfig(homa=HomaConfig(grant_batch_ns=0), **W4_SCENARIO)
    )
    batched = run_experiment(
        ExperimentConfig(homa=HomaConfig(), **W4_SCENARIO)
    )
    assert legacy.completed == legacy.submitted > 0
    assert batched.completed == batched.submitted > 0
    assert legacy.control.grant_ticks == 0
    assert batched.control.grant_ticks > 0
    assert legacy.control.grants >= 2.5 * batched.control.grants
    assert batched.events < legacy.events
