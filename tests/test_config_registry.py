"""Tests for HomaConfig and the protocol registry."""

import pytest

from repro.core.engine import Simulator
from repro.core.packet import FULL_WIRE
from repro.core.topology import NetworkConfig, build_network
from repro.homa.config import HomaConfig
from repro.homa.transport import HomaTransport
from repro.transport.registry import (
    OVERHEAD_MODEL,
    PROTOCOLS,
    network_overrides,
    transport_factory,
)
from repro.workloads.catalog import WORKLOADS


def test_config_defaults_match_paper():
    cfg = HomaConfig()
    assert cfg.n_prios == 8
    assert cfg.incast_control
    assert cfg.resend_interval_ps == 2_000_000_000  # "a few milliseconds"


def test_resolved_unsched_limit_packet_aligned():
    cfg = HomaConfig()
    # 9680 RTTbytes -> 7 packets -> 10220 ("about 10 KB", section 2.2).
    assert cfg.resolved_unsched_limit(9680) == 10220
    assert cfg.resolved_unsched_limit(9680) % 1460 == 0


def test_resolved_unsched_limit_override():
    cfg = HomaConfig(unsched_limit=500)
    assert cfg.resolved_unsched_limit(9680) == 500


def test_with_prios_validation():
    cfg = HomaConfig().with_prios(4)
    assert cfg.n_prios == 4
    with pytest.raises(ValueError):
        HomaConfig().with_prios(0)
    with pytest.raises(ValueError):
        HomaConfig().with_prios(9)


def test_basic_config():
    cfg = HomaConfig.basic()
    assert cfg.n_prios == 1
    assert cfg.unlimited_overcommit


def test_network_overrides():
    assert network_overrides("homa") == {}
    assert network_overrides("pfabric") == {"queue_mode": "pfabric"}
    assert "ecn_threshold_bytes" in network_overrides("pias")
    assert network_overrides("ndp") == {"trim_threshold_bytes": 8 * FULL_WIRE}
    with pytest.raises(ValueError):
        network_overrides("swift")


def test_overhead_model_covers_all_protocols():
    assert set(OVERHEAD_MODEL) == set(PROTOCOLS)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_factory_builds_every_protocol(protocol):
    sim = Simulator()
    overrides = network_overrides(protocol)
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=2,
                                           aggrs=0, **overrides))
    factory = transport_factory(protocol, sim, net, WORKLOADS["W3"].cdf)
    transports = net.attach_transports(lambda host: factory(host))
    assert len(transports) == 2
    assert all(t.host is not None for t in transports)


def test_factory_rejects_unknown():
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=2,
                                           aggrs=0))
    with pytest.raises(ValueError):
        transport_factory("dctcp", sim, net, WORKLOADS["W1"].cdf)


def test_homa_factory_respects_config():
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=2,
                                           aggrs=0))
    cfg = HomaConfig(n_prios=2)
    factory = transport_factory("homa", sim, net, WORKLOADS["W3"].cdf, cfg)
    transport = factory(net.hosts[0])
    assert isinstance(transport, HomaTransport)
    assert transport.alloc.n_prios == 2


def test_basic_factory_uses_basic_config():
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=2,
                                           aggrs=0))
    factory = transport_factory("basic", sim, net, WORKLOADS["W3"].cdf)
    transport = factory(net.hosts[0])
    assert transport.cfg.unlimited_overcommit
    assert transport.alloc.n_prios == 1


def test_stream_mc_factory_multi_connection():
    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=1, hosts_per_rack=2,
                                           aggrs=0))
    factory = transport_factory("stream_mc", sim, net, WORKLOADS["W3"].cdf)
    transport = factory(net.hosts[0])
    assert transport.connections_per_pair == 8
