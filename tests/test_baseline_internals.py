"""Unit tests for baseline protocol internals (no full network)."""

import pytest

from repro.baselines.phost import _TokenBucket
from repro.baselines.pias import (
    DCTCP_G,
    INIT_CWND,
    PiasTransport,
    _PiasFlow,
    pias_thresholds,
)
from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.transport.messages import OutboundMessage
from repro.workloads.catalog import WORKLOADS


# ---------------------------------------------------------------------------
# pHost token buckets
# ---------------------------------------------------------------------------


def test_token_bucket_expiry():
    bucket = _TokenBucket()
    bucket.add(expiry_ps=100)
    bucket.add(expiry_ps=300)
    assert bucket.usable(now_ps=50) == 2
    assert bucket.usable(now_ps=200) == 1  # first token expired
    assert bucket.usable(now_ps=400) == 0


def test_token_bucket_spend_consumes_oldest():
    bucket = _TokenBucket()
    bucket.add(100)
    bucket.add(200)
    bucket.spend()
    assert bucket.usable(0) == 1
    assert bucket.deadlines == [200]


# ---------------------------------------------------------------------------
# PIAS DCTCP machinery
# ---------------------------------------------------------------------------


def make_pias_flow(length=1_000_000):
    msg = OutboundMessage(1, True, 0, 1, length, unsched_limit=length,
                          created_ps=0)
    return _PiasFlow(msg)


def make_pias_transport():
    sim = Simulator()
    thresholds = pias_thresholds(WORKLOADS["W3"].cdf)
    transport = PiasTransport(sim, thresholds=thresholds, rtt_ps=7_744_000)

    class FakeHost:
        def __init__(self):
            self.hid = 0
            self.sim = sim

            class E:
                def kick(self):
                    pass
            self.egress = E()
    transport.bind(FakeHost())
    return sim, transport


def test_pias_flow_initial_window():
    flow = make_pias_flow()
    assert flow.cwnd == INIT_CWND
    assert flow.can_send()


def test_pias_window_blocks_when_full():
    flow = make_pias_flow()
    flow.msg.sent = int(flow.cwnd)
    assert not flow.can_send()
    flow.acked_prefix = MAX_PAYLOAD
    assert flow.can_send()


def test_pias_ecn_backoff_math():
    """One fully marked window must shrink cwnd by ~alpha/2 with
    alpha ramping by the DCTCP gain."""
    sim, transport = make_pias_transport()
    msg = transport.send_message(1, 1_000_000)
    flow = transport.flows[msg.key]
    flow.window_end = 0  # force window boundary on next ACK
    before = flow.cwnd
    ack = Packet(1, 0, PacketType.ACK, rpc_id=msg.rpc_id, is_request=True,
                 offset=MAX_PAYLOAD)
    ack.ecn = True
    transport.on_packet(ack)
    assert flow.alpha == pytest.approx(DCTCP_G)
    assert flow.cwnd < before + MAX_PAYLOAD  # backoff countered growth
    assert transport.backoffs == 1


def test_pias_unmarked_window_grows():
    sim, transport = make_pias_transport()
    msg = transport.send_message(1, 1_000_000)
    flow = transport.flows[msg.key]
    before = flow.cwnd
    ack = Packet(1, 0, PacketType.ACK, rpc_id=msg.rpc_id, is_request=True,
                 offset=MAX_PAYLOAD)
    transport.on_packet(ack)
    assert flow.cwnd > before  # slow start growth
    assert transport.backoffs == 0


def test_pias_dupack_fast_retransmit():
    sim, transport = make_pias_transport()
    msg = transport.send_message(1, 1_000_000)
    flow = transport.flows[msg.key]
    msg.sent = 10 * MAX_PAYLOAD
    flow.acked_prefix = MAX_PAYLOAD
    for _ in range(3):
        transport.on_packet(Packet(1, 0, PacketType.ACK, rpc_id=msg.rpc_id,
                                   is_request=True, offset=MAX_PAYLOAD))
    assert transport.retransmissions == 1
    assert msg.sent == MAX_PAYLOAD  # go-back-N rewound


def test_pias_thresholds_balance_bytes():
    cdf = WORKLOADS["W3"].cdf
    thresholds = pias_thresholds(cdf)
    masses = []
    prev = 0.0
    for threshold in thresholds:
        mass = cdf.partial_mean(threshold)
        masses.append(mass - prev)
        prev = mass
    mean_mass = sum(masses) / len(masses)
    for mass in masses:
        assert mass == pytest.approx(mean_mass, rel=0.15)


# ---------------------------------------------------------------------------
# priority demotion order invariant
# ---------------------------------------------------------------------------


def test_pias_priority_never_increases_within_message():
    sim, transport = make_pias_transport()
    last = 8
    for sent in range(0, 2_000_000, 40_000):
        prio = transport._prio_for(sent)
        assert prio <= last
        last = prio
    assert last == 0
