"""Tests for Homa's RPC layer: at-least-once semantics, RESEND/BUSY
loss recovery, and incast control (paper sections 3.1, 3.6-3.8)."""

from repro.core.packet import PacketType
from repro.core.units import MS, US
from repro.homa.config import HomaConfig

from tests.helpers import homa_cluster


def echo_handler(transport, server_rpc):
    """Echo server: respond with the same length as the request, or the
    length the client hinted in app_meta."""
    length = server_rpc.app_meta or server_rpc.request_length
    transport.respond(server_rpc, length)


def setup_rpc_cluster(homa_cfg=None, hosts=4, **overrides):
    sim, net, transports = homa_cluster(
        hosts_per_rack=hosts, homa_cfg=homa_cfg, **overrides)
    for transport in transports:
        transport.rpc_handler = echo_handler
    return sim, net, transports


def test_echo_rpc_completes_at_oracle_time():
    sim, net, transports = setup_rpc_cluster()
    done = []
    transports[0].send_rpc(1, 100, on_response=lambda rid, msg: done.append((rid, msg)))
    sim.run(until_ps=5 * MS)
    assert len(done) == 1
    assert done[0][1].length == 100
    assert sim.now >= net.min_rpc_ps(100, 100, same_rack=True)


def test_rpc_response_time_close_to_oracle():
    sim, net, transports = setup_rpc_cluster()
    times = []
    start = sim.now
    transports[0].send_rpc(1, 100, on_response=lambda rid, msg: times.append(sim.now))
    sim.run(until_ps=5 * MS)
    oracle = net.min_rpc_ps(100, 100, same_rack=True)
    assert times[0] - start == oracle


def test_response_hint_via_app_meta():
    """The incast benchmark needs tiny requests with 10 KB responses."""
    sim, net, transports = setup_rpc_cluster()
    done = []
    transports[0].send_rpc(1, 50, app_meta=10_000,
                           on_response=lambda rid, msg: done.append(msg.length))
    sim.run(until_ps=5 * MS)
    assert done == [10_000]


def test_concurrent_rpcs_complete_in_any_order():
    sim, net, transports = setup_rpc_cluster()
    done = set()
    for i in range(10):
        transports[0].send_rpc(1 + (i % 3), 200 + i,
                               on_response=lambda rid, msg: done.add(rid))
    sim.run(until_ps=20 * MS)
    assert len(done) == 10
    assert not transports[0].client_rpcs


def test_server_state_discarded_after_response():
    """At-least-once (3.8): servers keep no state once the response has
    been handed to the NIC."""
    sim, net, transports = setup_rpc_cluster()
    transports[0].send_rpc(1, 100)
    sim.run(until_ps=5 * MS)
    assert not transports[1].server_rpcs
    assert not transports[1].outbound


def test_lost_request_packet_recovers():
    """Client times out on the response, server answers the RESEND for
    an unknown RPCid with a RESEND for the request (3.7)."""
    cfg = HomaConfig(resend_interval_ps=400 * US)
    sim, net, transports = setup_rpc_cluster(cfg)
    dropped = []

    def drop_first_request(pkt):
        if pkt.kind == PacketType.DATA and pkt.is_request and not dropped:
            dropped.append(pkt)
            return True
        return False

    net.set_drop_filter(drop_first_request)
    done = []
    transports[0].send_rpc(1, 100, on_response=lambda rid, msg: done.append(rid))
    sim.run(until_ps=20 * MS)
    assert len(dropped) == 1
    assert len(done) == 1
    assert transports[1].reexecutions >= 1


def test_lost_response_packet_recovers():
    """Server state is gone when the RESEND arrives, so the request is
    re-executed: at-least-once in action."""
    cfg = HomaConfig(resend_interval_ps=400 * US)
    sim, net, transports = setup_rpc_cluster(cfg)
    dropped = []

    def drop_first_response(pkt):
        if pkt.kind == PacketType.DATA and not pkt.is_request and not dropped:
            dropped.append(pkt)
            return True
        return False

    net.set_drop_filter(drop_first_response)
    done = []
    transports[0].send_rpc(1, 100, on_response=lambda rid, msg: done.append(rid))
    sim.run(until_ps=30 * MS)
    assert len(dropped) == 1
    assert len(done) == 1


def test_lost_middle_packet_of_large_message_resent():
    """Receiver-driven loss detection: the receiver RESENDs the exact
    missing range."""
    cfg = HomaConfig(resend_interval_ps=400 * US)
    sim, net, transports = setup_rpc_cluster(cfg)
    dropped = []

    def drop_one_data(pkt):
        if (pkt.kind == PacketType.DATA and pkt.is_request
                and pkt.offset == 2920 and not dropped):
            dropped.append(pkt)
            return True
        return False

    net.set_drop_filter(drop_one_data)
    done = []
    transports[0].send_rpc(1, 50_000, on_response=lambda rid, msg: done.append(rid))
    sim.run(until_ps=30 * MS)
    assert len(dropped) == 1
    assert len(done) == 1
    assert transports[1].resends_sent >= 1


def test_unresponsive_server_aborts_rpc():
    """After max_resends the client gives up and reports an error."""
    cfg = HomaConfig(resend_interval_ps=200 * US, max_resends=3)
    sim, net, transports = homa_cluster(homa_cfg=cfg)
    # No rpc_handler on host 1: requests complete but are never answered.
    errors = []
    done = []
    transports[0].send_rpc(1, 100,
                           on_response=lambda rid, msg: done.append(rid),
                           on_error=lambda rid: errors.append(rid))
    sim.run(until_ps=50 * MS)
    assert not done
    assert len(errors) == 1
    assert transports[0].rpcs_aborted == 1
    assert not transports[0].client_rpcs


def test_blackholed_receiver_gives_up():
    """All packets to host 1 vanish: client aborts cleanly."""
    cfg = HomaConfig(resend_interval_ps=200 * US, max_resends=3)
    sim, net, transports = setup_rpc_cluster(cfg)
    net.set_drop_filter(lambda pkt: pkt.dst == 1)
    errors = []
    transports[0].send_rpc(1, 100, on_error=lambda rid: errors.append(rid))
    sim.run(until_ps=100 * MS)
    assert len(errors) == 1
    assert not transports[0].client_rpcs
    assert not transports[0].outbound


def test_busy_sent_when_shorter_message_pending():
    """A RESEND for a long message while a shorter one is being sent is
    answered with BUSY (Figure 3: "the sender is busy transmitting
    higher priority messages")."""
    cfg = HomaConfig(resend_interval_ps=50 * US)
    sim, net, transports = setup_rpc_cluster(cfg)
    # Grants from host 1 never reach host 0: the message to host 1
    # stalls after its unscheduled prefix and host 1 starts RESENDing.
    net.set_drop_filter(
        lambda pkt: pkt.kind == PacketType.GRANT and pkt.src == 1)
    transports[0].send_message(1, 200_000)   # stalls, receiver times out
    transports[0].send_message(2, 150_000)   # shorter, actively sending
    sim.run(until_ps=2 * MS)
    assert transports[1].resends_sent >= 1
    assert transports[0].busys_sent >= 1


def test_incast_marking_applied_above_threshold():
    cfg = HomaConfig(incast_threshold=4)
    sim, net, transports = setup_rpc_cluster(cfg, hosts=8)
    # Stall everything so RPCs stay outstanding: drop all responses.
    net.set_drop_filter(lambda pkt: pkt.kind == PacketType.DATA and not pkt.is_request)
    for i in range(8):
        transports[0].send_rpc(1 + (i % 7), 100, app_meta=10_000)
    marked = [rpc.incast for rpc in transports[0].client_rpcs.values()]
    assert sum(marked) == 4  # the ones beyond the threshold
    sim.run(until_ps=1 * MS)


def test_incast_response_unscheduled_limited():
    """Marked RPCs force the server to schedule most of the response."""
    cfg = HomaConfig(incast_threshold=1, incast_response_unsched=400)
    sim, net, transports = setup_rpc_cluster(cfg)
    server = transports[1]
    created = []
    original_respond = server.respond

    def spying_respond(server_rpc, length):
        response = original_respond(server_rpc, length)
        created.append(response)
        return response

    server.respond = spying_respond
    done = []
    transports[0].send_rpc(1, 100, app_meta=10_000)
    transports[0].send_rpc(1, 100, app_meta=10_000,
                           on_response=lambda rid, msg: done.append(msg))
    sim.run(until_ps=20 * MS)
    assert len(created) == 2
    limited = [m for m in created if m.unsched_limit == 400]
    assert limited, "the marked RPC's response must be unsched-limited"
    assert done  # and it still completes


def test_incast_control_disabled():
    cfg = HomaConfig(incast_control=False, incast_threshold=1)
    sim, net, transports = setup_rpc_cluster(cfg)
    for _ in range(5):
        transports[0].send_rpc(1, 100, app_meta=10_000)
    assert all(not rpc.incast for rpc in transports[0].client_rpcs.values())
    sim.run(until_ps=10 * MS)


def test_duplicate_request_while_state_live_is_ignored():
    """A retransmitted request that completes twice while the server
    still holds RPC state must not re-execute."""
    cfg = HomaConfig(resend_interval_ps=300 * US)
    sim, net, transports = homa_cluster(homa_cfg=cfg)
    executions = []

    def slow_handler(transport, server_rpc):
        executions.append(server_rpc.rpc_id)
        # Do not respond: state stays live.

    transports[1].rpc_handler = slow_handler
    transports[0].send_rpc(1, 100)
    sim.run(until_ps=1 * MS)
    # Simulate a duplicate request arriving (client RESEND path would
    # normally cause this): deliver the same data again.
    from repro.core.packet import Packet
    dup = Packet(0, 1, PacketType.DATA, prio=7, payload=100,
                 rpc_id=list(executions)[0], is_request=True,
                 offset=0, total_length=100, grant_offset=100)
    transports[1].on_packet(dup)
    sim.run(until_ps=2 * MS)
    assert len(executions) == 1
