"""Regression tests for the hot-path indexing PR.

Covers the three bugfixes that ride along with the indexing refactor
(each fails on the seed code), the timer-wheel engine's far-event
behavior, the indexed structures' invariants, and the determinism
guarantee: a seeded W4 run must reproduce the seed code's slowdown
digests byte for byte.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import L0_SHIFT, L1_SHIFT, Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.core.port import PfabricPort, QueuedPort
from repro.core.units import US
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.homa.config import HomaConfig
from repro.transport.messages import InboundMessage, Intervals, OutboundMessage

from tests.helpers import homa_cluster


# ---------------------------------------------------------------------------
# Bugfix 1: preemptive-port delay attribution
# ---------------------------------------------------------------------------


def _port(preemptive=True):
    sim = Simulator()
    delivered = []
    port = QueuedPort(sim, "p", 10, delivered.append, "t",
                      preemptive=preemptive)
    port.trace_delays = True
    return sim, port, delivered


def test_preempting_packet_not_charged_residual():
    """A packet that preempts the in-flight transmission never waits out
    its residual, so it must not be billed preemption lag (seed bug:
    the full residual was added to p_wait before _preempt ran)."""
    sim, port, delivered = _port(preemptive=True)
    low = Packet(0, 1, PacketType.DATA, prio=0, payload=1460)
    port.enqueue(low)             # starts transmitting immediately
    sim.run(until_ps=100_000)     # partway through the serialization
    high = Packet(0, 1, PacketType.DATA, prio=5, payload=1460)
    port.enqueue(high)            # preempts: transmits right away
    assert port.cur_pkt is high
    assert high.p_wait == 0
    assert high.q_wait == 0


def test_non_preempting_packet_still_charged():
    """Equal/lower priority arrivals keep the seed's attribution."""
    sim, port, delivered = _port(preemptive=True)
    first = Packet(0, 1, PacketType.DATA, prio=5, payload=1460)
    port.enqueue(first)
    sim.run(until_ps=100_000)
    residual = port.cur_end_ps - sim.now
    same = Packet(0, 1, PacketType.DATA, prio=5, payload=1460)
    port.enqueue(same)            # no preemption: plain queueing wait
    assert same.q_wait == residual
    assert same.p_wait == 0


def test_preemption_charge_on_nonpreemptive_port_unchanged():
    sim, port, delivered = _port(preemptive=False)
    low = Packet(0, 1, PacketType.DATA, prio=0, payload=1460)
    port.enqueue(low)
    sim.run(until_ps=100_000)
    residual = port.cur_end_ps - sim.now
    high = Packet(0, 1, PacketType.DATA, prio=5, payload=1460)
    port.enqueue(high)            # cannot preempt: waits the residual
    assert high.p_wait == residual


# ---------------------------------------------------------------------------
# Bugfix 2: BUSY resets the retry budget
# ---------------------------------------------------------------------------


def test_busy_resets_client_retry_budget():
    """A BUSY reply proves the server is alive (Figure 3's slow-server
    case); the client must not keep accumulating resends toward a false
    abort (seed bug: only last_activity_ps was refreshed)."""
    sim, net, transports = homa_cluster()
    client = transports[0]
    rpc_id = client.send_rpc(1, 50_000)
    rpc = client.client_rpcs[rpc_id]
    rpc.resends = 2
    client.on_packet(Packet(1, 0, PacketType.BUSY,
                            rpc_id=rpc_id, is_request=False))
    assert rpc.resends == 0


def test_busy_resets_inbound_retry_budget():
    sim, net, transports = homa_cluster()
    client = transports[0]
    rpc_id = 77
    msg = InboundMessage(rpc_id, False, 1, 0, 10_000, now_ps=0)
    msg.resends = 3
    client.inbound[msg.key] = msg
    client.on_packet(Packet(1, 0, PacketType.BUSY,
                            rpc_id=rpc_id, is_request=False))
    assert msg.resends == 0


# ---------------------------------------------------------------------------
# Bugfix 3: retransmission ranges coalesce
# ---------------------------------------------------------------------------


def _drain_rtx(msg):
    chunks = []
    while True:
        chunk = msg.next_chunk()
        if chunk is None:
            break
        assert chunk[2], "only rtx bytes expected"
        chunks.append(chunk)
    return chunks


def test_queue_rtx_coalesces_overlaps():
    """Racing RESENDs for overlapping ranges must not queue the same
    bytes twice (seed bug: blind append doubled Figure 16's wasted
    bandwidth measurement)."""
    msg = OutboundMessage(1, True, 0, 1, 100_000,
                          unsched_limit=0, created_ps=0)
    msg.queue_rtx(0, 3000)
    msg.queue_rtx(1000, 4000)   # overlaps the first request
    msg.queue_rtx(0, 2000)      # fully contained duplicate
    assert sum(size for _, size, _ in _drain_rtx(msg)) == 4000


def test_queue_rtx_keeps_disjoint_ranges():
    msg = OutboundMessage(1, True, 0, 1, 100_000,
                          unsched_limit=0, created_ps=0)
    msg.queue_rtx(10_000, 10_500)
    msg.queue_rtx(0, 500)
    chunks = _drain_rtx(msg)
    assert [(c[0], c[1]) for c in chunks] == [(0, 500), (10_000, 500)]


def test_queue_rtx_adjacent_ranges_merge():
    msg = OutboundMessage(1, True, 0, 1, 100_000,
                          unsched_limit=0, created_ps=0)
    msg.queue_rtx(0, 1000)
    msg.queue_rtx(1000, 1400)   # touching: one contiguous range
    chunks = _drain_rtx(msg)
    assert [(c[0], c[1]) for c in chunks] == [(0, 1400)]


@given(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 15)),
                min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_prop_rtx_bytes_match_requested_union(ranges):
    """The drained rtx byte set equals the union of requested ranges."""
    msg = OutboundMessage(1, True, 0, 1, 1000, unsched_limit=0,
                          created_ps=0)
    expected = set()
    for start, size in ranges:
        msg.queue_rtx(start, start + size)
        expected |= set(range(start, min(start + size, 1000)))
    got = set()
    for offset, size, _ in _drain_rtx(msg):
        chunk = set(range(offset, offset + size))
        assert not (chunk & got), "byte retransmitted twice"
        got |= chunk
    assert got == expected


# ---------------------------------------------------------------------------
# Intervals: bisect rewrite vs a naive byte-set oracle
# ---------------------------------------------------------------------------


@given(st.lists(st.tuples(st.integers(0, 800), st.integers(1, 120)),
                min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_prop_intervals_oracle(chunks):
    iv = Intervals()
    oracle = set()
    for start, size in chunks:
        added = iv.add(start, start + size)
        new_bytes = set(range(start, start + size)) - oracle
        assert added == len(new_bytes)
        oracle |= set(range(start, start + size))
        assert iv.total == len(oracle)
        # The internal representation stays sorted and disjoint.
        ranges = iv._ranges
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 < s2
        assert iv._starts == [r[0] for r in ranges]
    # covers/first_gap/contiguous_prefix agree with the oracle.
    horizon = 1000
    gap = iv.first_gap(horizon)
    missing = sorted(set(range(horizon)) - oracle)
    if missing:
        assert gap is not None and gap[0] == missing[0]
        assert all(b not in oracle for b in range(gap[0], gap[1]))
    else:
        assert gap is None
    prefix = iv.contiguous_prefix()
    assert all(b in oracle for b in range(prefix))
    assert prefix not in oracle or prefix == 0 and 0 not in oracle \
        or prefix == max(oracle) + 1


@given(st.lists(st.tuples(st.integers(0, 300), st.integers(1, 60)),
                min_size=1, max_size=25),
       st.integers(0, 300), st.integers(1, 60))
@settings(max_examples=150, deadline=None)
def test_prop_intervals_covers(chunks, qstart, qsize):
    iv = Intervals()
    oracle = set()
    for start, size in chunks:
        iv.add(start, start + size)
        oracle |= set(range(start, start + size))
    expected = all(b in oracle for b in range(qstart, qstart + qsize))
    assert iv.covers(qstart, qstart + qsize) == expected


# ---------------------------------------------------------------------------
# Engine: hierarchical timer wheel
# ---------------------------------------------------------------------------


def test_wheel_far_events_fire_in_order():
    """Events spread across both wheel levels fire in exact time order."""
    sim = Simulator()
    rng = random.Random(3)
    delays = ([rng.randrange(1, 1 << L0_SHIFT) for _ in range(50)]
              + [rng.randrange(1 << L0_SHIFT, 1 << L1_SHIFT)
                 for _ in range(50)]
              + [rng.randrange(1 << L1_SHIFT, 1 << (L1_SHIFT + 4))
                 for _ in range(50)])
    rng.shuffle(delays)
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run()
    assert fired == sorted(delays)
    assert sim.events_processed == len(delays)


def test_wheel_cancel_far_event():
    sim = Simulator()
    fired = []
    sim.schedule(3 << L1_SHIFT, fired.append, "keep")
    drop = sim.schedule(2 << L1_SHIFT, fired.append, "drop")
    assert sim.pending_events() == 2
    Simulator.cancel(drop)
    assert sim.pending_events() == 1
    sim.run()
    assert fired == ["keep"]


def test_wheel_peek_time_reaches_into_wheels():
    sim = Simulator()
    sim.schedule(5 << L1_SHIFT, lambda: None)
    assert sim.peek_time() == 5 << L1_SHIFT


def test_wheel_near_events_scheduled_during_run_precede_far():
    sim = Simulator()
    order = []

    def early():
        order.append("early")
        sim.schedule(10, order.append, "nested")

    sim.schedule(1, early)
    sim.schedule(2 << L1_SHIFT, order.append, "far")
    sim.run()
    assert order == ["early", "nested", "far"]


def test_wheel_run_until_between_buckets():
    sim = Simulator()
    fired = []
    sim.schedule((1 << L1_SHIFT) + 7, fired.append, "x")
    sim.run(until_ps=1 << L1_SHIFT)
    assert fired == [] and sim.now == 1 << L1_SHIFT
    sim.run()
    assert fired == ["x"]


# ---------------------------------------------------------------------------
# Indexed structures: behavioral invariants
# ---------------------------------------------------------------------------


def test_sender_srpt_order_served_from_heap():
    """The send index must serve strictly by (remaining, created)."""
    sim, net, transports = homa_cluster()
    sender = transports[0]
    sender.send_message(1, 8 * MAX_PAYLOAD)
    sender.send_message(1, 3 * MAX_PAYLOAD)
    sender.send_message(1, 5 * MAX_PAYLOAD)
    sizes = []
    while True:
        pkt = sender._next_data()
        if pkt is None:
            break
        sizes.append(pkt.total_length)
    # The idle NIC already pulled one packet of the first (8-packet)
    # message when it was submitted; from then on SRPT rules: the
    # 3-packet message drains first, then 5, then the longest message's
    # remaining unscheduled prefix (no receiver runs, so no grants ever
    # extend it past unsched_limit).
    blind = -(-min(8 * MAX_PAYLOAD, sender.unsched_limit) // MAX_PAYLOAD)
    expected = ([3 * MAX_PAYLOAD] * 3 + [5 * MAX_PAYLOAD] * 5
                + [8 * MAX_PAYLOAD] * (blind - 1))
    assert sizes == expected


def test_sender_is_busy_tracks_shortest_sendable():
    sim, net, transports = homa_cluster()
    sender = transports[0]
    long_msg = sender.send_message(1, 50 * MAX_PAYLOAD)
    assert not sender._sender_is_busy(long_msg)
    sender.send_message(1, 2 * MAX_PAYLOAD)
    assert sender._sender_is_busy(long_msg)


def test_grantable_index_matches_inbound_filter():
    """After a run, the receiver's O(1) grantable set must equal the
    filter the seed code recomputed per packet.  Pinned to legacy
    per-packet grants: that is the mode whose grantable set contract is
    exactly {m : granted < length} (the batched pacer keeps
    slack-completed messages in the set while they drain — see
    _schedule_grants)."""
    # Built by hand so we can inspect the transports afterwards.
    sim, net, transports = homa_cluster(
        racks=1, hosts_per_rack=4, homa_cfg=HomaConfig(grant_batch_ns=0))
    rng = random.Random(5)
    for _ in range(40):
        src, dst = rng.sample(range(4), 2)
        transports[src].send_message(dst, rng.randrange(1, 400_000))
    sim.run(until_ps=300 * US)
    for transport in transports:
        expected = {key: m for key, m in transport.inbound.items()
                    if m.granted < m.length}
        assert transport._grantable == expected


def test_pfabric_port_fifo_on_priority_ties():
    sim = Simulator()
    out = []
    port = PfabricPort(sim, "p", 10, out.append, "t",
                       buffer_bytes=10 * 1538)
    first = Packet(0, 1, PacketType.DATA, prio=0, fine_prio=500,
                   payload=100, rpc_id=1)
    second = Packet(0, 1, PacketType.DATA, prio=0, fine_prio=500,
                    payload=100, rpc_id=2)
    urgent = Packet(0, 1, PacketType.DATA, prio=0, fine_prio=10,
                    payload=100, rpc_id=3)
    port.enqueue(first)           # starts transmitting
    port.enqueue(second)
    port.enqueue(urgent)
    sim.run()
    assert [p.rpc_id for p in out] == [1, 3, 2]


def test_pfabric_port_drops_oldest_largest_on_ties():
    sim = Simulator()
    out = []
    port = PfabricPort(sim, "p", 10, out.append, "t", buffer_bytes=400)
    blocker = Packet(0, 1, PacketType.DATA, fine_prio=1, payload=100,
                     rpc_id=1)
    port.enqueue(blocker)         # on the wire; buffer now empty
    a = Packet(0, 1, PacketType.DATA, fine_prio=900, payload=100, rpc_id=2)
    b = Packet(0, 1, PacketType.DATA, fine_prio=900, payload=100, rpc_id=3)
    port.enqueue(a)
    port.enqueue(b)
    arrival = Packet(0, 1, PacketType.DATA, fine_prio=5, payload=100,
                     rpc_id=4)
    port.enqueue(arrival)         # overflow: first-queued max dropped
    assert port.drops == 1
    sim.run()
    assert [p.rpc_id for p in out] == [1, 4, 3]


# ---------------------------------------------------------------------------
# Determinism: the indexing refactor must not change simulation results
# ---------------------------------------------------------------------------

#: seed-code digests for the scenario below, captured before the
#: refactor (repr() of every slowdown percentile).
GOLDEN_P50 = [
    "1.5009050975091716", "1.1670182719005746", "1.0279255319148937",
    "1.0441817406143346", "1.1406033720287452", "1.1435432982355214",
    "1.0559966867005701", "1.0824325191564734", "1.0700807123640126",
    "1.1932839408099105",
]
GOLDEN_P99 = [
    "1.7767629172975146", "1.2863380476441835", "1.598025011635208",
    "1.806829926099352", "1.4417672882216506", "1.4726971202640802",
    "1.222181939521681", "1.0980201786448214", "2.0018056622704568",
    "1.9745655835647904",
]


@pytest.mark.slow
def test_w4_digest_byte_identical_to_seed():
    """A seeded W4 run reproduces the pre-refactor slowdown digests
    exactly: same traffic, same schedules, same percentiles.

    ``grant_batch_ns=0`` pins legacy per-packet grants — that is the
    mode whose digests are contractually byte-identical to the seed
    (the default batched pacer drifts by design; its coverage lives in
    tests/test_grant_batching.py)."""
    cfg = ExperimentConfig(protocol="homa", workload="W4", load=0.8,
                           racks=2, hosts_per_rack=4, aggrs=2,
                           duration_ms=2.0, warmup_ms=0.5, drain_ms=8.0,
                           seed=7, max_messages=150,
                           homa=HomaConfig(grant_batch_ns=0))
    result = run_experiment(cfg)
    assert [repr(x) for x in result.slowdown_series(50)] == GOLDEN_P50
    assert [repr(x) for x in result.slowdown_series(99)] == GOLDEN_P99
    assert result.completed == result.submitted == 83


# ---------------------------------------------------------------------------
# Idle-path cut-through: digest identity and conflict fallback
# ---------------------------------------------------------------------------


def _digests(workload, *, cut, seed=7, **overrides):
    cfg = ExperimentConfig(protocol="homa", workload=workload, load=0.8,
                           racks=2, hosts_per_rack=4, aggrs=2,
                           duration_ms=1.5, warmup_ms=0.3, drain_ms=8.0,
                           seed=seed, max_messages=120,
                           homa=HomaConfig(grant_batch_ns=0),
                           net_overrides={"cut_through": cut, **overrides})
    result = run_experiment(cfg)
    return ([repr(x) for x in result.slowdown_series(50)],
            [repr(x) for x in result.slowdown_series(99)],
            result)


@pytest.mark.parametrize("workload", ["W1", "W2", "W3", "W4", "W5"])
def test_cut_through_digests_byte_identical(workload):
    """The cut-through contract: slowdown digests are byte-identical
    with the fast path on and off, for every paper workload.  Event
    counts must not grow (idle paths exist in all of them)."""
    p50_on, p99_on, on = _digests(workload, cut=True)
    p50_off, p99_off, off = _digests(workload, cut=False)
    assert p50_on == p50_off
    assert p99_on == p99_off
    assert on.completed == off.completed
    assert on.events <= off.events


def test_cut_through_fallback_under_contention():
    """W4 at 80% load forces queues to form mid-chain: reservations
    must divert or materialize back onto the slow path, and the
    digests must still match byte for byte (this scenario exercised
    every conflict class during development)."""
    from repro.experiments import runner as runner_mod

    nets = []
    orig = runner_mod.build_network

    def capture(sim, cfg):
        net = orig(sim, cfg)
        nets.append(net)
        return net

    runner_mod.build_network = capture
    try:
        p50_on, p99_on, on = _digests("W4", cut=True, seed=1)
    finally:
        runner_mod.build_network = orig
    p50_off, p99_off, off = _digests("W4", cut=False, seed=1)
    net = nets[0]
    assert net.cut_through_chains > 0
    # Contention actually happened: chains were diverted back to the
    # slow path and reservations materialized mid-window...
    assert net.cut_through_diverts > 0
    assert net.cut_through_materializes > 0
    # ...and none of it changed the simulation.
    assert p50_on == p50_off
    assert p99_on == p99_off
    assert on.completed == off.completed


def test_cut_through_skips_observed_ports():
    """Probes and delay tracing make queue state observable, so runs
    that collect queue or delay metrics must keep byte-identical
    results too (chains must exclude observed ports)."""
    p50_on, p99_on, on = _digests("W3", cut=True)
    base_rows = None
    for cut in (True, False):
        cfg = ExperimentConfig(protocol="homa", workload="W3", load=0.8,
                               racks=2, hosts_per_rack=4, aggrs=2,
                               duration_ms=1.5, warmup_ms=0.3, drain_ms=8.0,
                               seed=7, max_messages=120,
                               homa=HomaConfig(grant_batch_ns=0),
                               collect=("queues", "delays"),
                               net_overrides={"cut_through": cut})
        result = run_experiment(cfg)
        rows = [(row.label, row.mean_kb, row.max_kb)
                for row in result.queue_rows]
        rows.append(tuple(result.delay_breakdown))
        if base_rows is None:
            base_rows = rows
        else:
            assert rows == base_rows


def test_cut_ready_reference_predicate():
    """``BasePort.cut_ready`` is the documented reference for the
    predicates inlined in cutthrough's planners: keep it honest
    against real port state transitions."""
    from repro.core.topology import NetworkConfig, build_network

    sim = Simulator()
    net = build_network(sim, NetworkConfig(racks=2, hosts_per_rack=2,
                                           aggrs=1, cut_through=True))
    port = net.tor_up_ports[0]
    assert port.cut_ready(0)
    port.busy = True
    assert not port.cut_ready(0)
    port.busy = False
    port.res_chain = object()
    port.res_end_ps = 100
    assert not port.cut_ready(50)   # live reservation blocks planning
    assert port.cut_ready(100)      # ...until its window has passed
    port.res_chain = None
    port.last_arrival_ps = 10
    assert not port.cut_ready(10)   # strictly after any pending arrival
    assert port.cut_ready(11)
