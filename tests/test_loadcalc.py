"""Tests for offered-load computation."""

import pytest

from repro.core.packet import FULL_WIRE, MAX_PAYLOAD, MIN_WIRE
from repro.workloads.catalog import WORKLOADS
from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.loadcalc import (
    PROTOCOLS,
    arrival_rate_per_host,
    estimate_traffic,
    mean_interarrival_ps,
    per_message_wire_bytes,
)


def fixed_size_cdf(size):
    # A distribution concentrated at one size (tiny spread for validity).
    return EmpiricalCDF([(0.0, size), (1.0, size + 1e-9 + 0)] if False else
                        [(0.0, size), (1.0, size)])


def test_estimate_traffic_single_full_packet():
    cdf = EmpiricalCDF([(0.0, MAX_PAYLOAD), (1.0, MAX_PAYLOAD)])
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=1000)
    assert traffic.mean_bytes == pytest.approx(MAX_PAYLOAD)
    assert traffic.mean_packets == pytest.approx(1.0)
    assert traffic.mean_data_wire == pytest.approx(FULL_WIRE)
    assert traffic.mean_sched_packets == pytest.approx(0.0)


def test_estimate_traffic_large_message():
    size = 10 * MAX_PAYLOAD
    cdf = EmpiricalCDF([(0.0, size), (1.0, size)])
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=1000)
    assert traffic.mean_packets == pytest.approx(10.0)
    # 14600 - 9680 = 4920 scheduled bytes -> 4 scheduled packets.
    assert traffic.mean_sched_packets == pytest.approx(4.0)


def test_homa_wire_includes_grants():
    size = 10 * MAX_PAYLOAD
    cdf = EmpiricalCDF([(0.0, size), (1.0, size)])
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=1000)
    homa = per_message_wire_bytes("homa", traffic)
    assert homa == pytest.approx(traffic.mean_data_wire + 4 * MIN_WIRE)


def test_pfabric_wire_includes_per_packet_acks():
    size = 10 * MAX_PAYLOAD
    cdf = EmpiricalCDF([(0.0, size), (1.0, size)])
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=1000)
    pfab = per_message_wire_bytes("pfabric", traffic)
    assert pfab == pytest.approx(traffic.mean_data_wire + 10 * MIN_WIRE)


def test_all_protocols_have_overhead_models():
    cdf = WORKLOADS["W3"].cdf
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=20_000)
    for protocol in PROTOCOLS:
        wire = per_message_wire_bytes(protocol, traffic)
        assert wire >= traffic.mean_data_wire


def test_unknown_protocol_rejected():
    cdf = WORKLOADS["W1"].cdf
    traffic = estimate_traffic(cdf, unsched_limit=9680, samples=1000)
    with pytest.raises(ValueError):
        per_message_wire_bytes("tcp-reno", traffic)


def test_arrival_rate_scales_with_load():
    cdf = WORKLOADS["W1"].cdf
    r40 = arrival_rate_per_host("homa", cdf, 0.4, samples=20_000)
    r80 = arrival_rate_per_host("homa", cdf, 0.8, samples=20_000)
    assert r80 == pytest.approx(2 * r40, rel=1e-6)


def test_arrival_rate_rejects_bad_load():
    cdf = WORKLOADS["W1"].cdf
    with pytest.raises(ValueError):
        arrival_rate_per_host("homa", cdf, 0.0)
    with pytest.raises(ValueError):
        arrival_rate_per_host("homa", cdf, 1.2)


def test_arrival_rate_sane_magnitude_w4():
    """W4 mean wire bytes ~230 KB -> ~4e3 msgs/s/host at 80% of 10 Gbps."""
    cdf = WORKLOADS["W4"].cdf
    rate = arrival_rate_per_host("homa", cdf, 0.8, samples=50_000)
    assert 2e3 < rate < 2e4


def test_mean_interarrival_ps():
    assert mean_interarrival_ps(1e6) == pytest.approx(1e6)  # 1M msg/s -> 1 us
    with pytest.raises(ValueError):
        mean_interarrival_ps(0)
