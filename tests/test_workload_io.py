"""Tests for workload trace file I/O."""

import pytest

from repro.workloads.catalog import WORKLOADS
from repro.workloads.io import load_cdf, save_cdf


def test_round_trip(tmp_path):
    original = WORKLOADS["W2"].cdf
    path = tmp_path / "w2.txt"
    save_cdf(original, path, comment="Google search RPCs")
    loaded = load_cdf(path)
    assert loaded.min_bytes() == original.min_bytes()
    assert loaded.max_bytes() == original.max_bytes()
    assert loaded.mean() == pytest.approx(original.mean(), rel=1e-6)
    assert loaded.deciles() == original.deciles()


def test_load_with_comments_and_blanks(tmp_path):
    path = tmp_path / "custom.txt"
    path.write_text("""
# production RPC sizes
1 0.0

128 0.35
512 0.80
1048576 1.0
""")
    cdf = load_cdf(path, name="prod")
    assert cdf.name == "prod"
    assert cdf.min_bytes() == 1
    assert cdf.max_bytes() == 1_048_576
    assert cdf.quantile(0.35) == 128


def test_load_normalizes_missing_zero(tmp_path):
    path = tmp_path / "nozero.txt"
    path.write_text("100 0.5\n1000 1.0\n")
    cdf = load_cdf(path)
    assert cdf.min_bytes() == 99  # pinned just below the first anchor


def test_load_rejects_bad_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("100 0.5 extra\n")
    with pytest.raises(ValueError, match="expected"):
        load_cdf(path)


def test_load_rejects_non_numeric(tmp_path):
    path = tmp_path / "nan.txt"
    path.write_text("abc 0.5\n")
    with pytest.raises(ValueError):
        load_cdf(path)


def test_load_rejects_empty(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# only comments\n")
    with pytest.raises(ValueError, match="no data"):
        load_cdf(path)


def test_load_rejects_incomplete_cdf(tmp_path):
    path = tmp_path / "partial.txt"
    path.write_text("1 0.0\n100 0.7\n")
    with pytest.raises(ValueError, match="end at probability"):
        load_cdf(path)


def test_loaded_cdf_usable_for_allocation(tmp_path):
    from repro.homa.priorities import allocate_priorities

    path = tmp_path / "w1.txt"
    save_cdf(WORKLOADS["W1"].cdf, path)
    cdf = load_cdf(path)
    alloc = allocate_priorities(cdf, 10220)
    assert alloc.n_unsched == 7  # same as the built-in W1
