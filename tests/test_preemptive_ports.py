"""Additional edge-case tests for the preemptive-link ablation port."""

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType, wire_size
from repro.core.port import QueuedPort


def data(prio, payload=1000, rpc=1):
    return Packet(0, 1, PacketType.DATA, prio=prio, payload=payload,
                  rpc_id=rpc)


def make_port(sink):
    sim = Simulator()
    port = QueuedPort(sim, "p", 10, sink.append, "tor_down",
                      preemptive=True)
    return sim, port


def test_nested_preemption():
    """P0 preempted by P3 preempted by P7: completion order 7, 3, 0."""
    sink = []
    sim, port = make_port(sink)
    low = data(0, MAX_PAYLOAD)
    mid = data(3, MAX_PAYLOAD)
    high = data(7, 100)
    port.enqueue(low)
    sim.run(until_ps=100_000)
    port.enqueue(mid)
    sim.run(until_ps=200_000)
    port.enqueue(high)
    sim.run()
    assert sink == [high, mid, low]


def test_preemption_preserves_total_service():
    sink = []
    sim, port = make_port(sink)
    low = data(0, MAX_PAYLOAD)
    high = data(7, 100)
    port.enqueue(low)
    sim.run(until_ps=400_000)
    port.enqueue(high)
    sim.run()
    total = (wire_size(MAX_PAYLOAD) + wire_size(100)) * 800
    assert sim.now == total


def test_equal_priority_does_not_preempt():
    sink = []
    sim, port = make_port(sink)
    first = data(5, MAX_PAYLOAD)
    second = data(5, 100)
    port.enqueue(first)
    sim.run(until_ps=100_000)
    port.enqueue(second)
    sim.run()
    assert sink == [first, second]


def test_lower_priority_does_not_preempt():
    sink = []
    sim, port = make_port(sink)
    first = data(5, MAX_PAYLOAD)
    second = data(2, 100)
    port.enqueue(first)
    sim.run(until_ps=100_000)
    port.enqueue(second)
    sim.run()
    assert sink == [first, second]


def test_resume_happens_before_lower_priority_queue():
    """A paused P3 packet resumes before a freshly queued P1 packet."""
    sink = []
    sim, port = make_port(sink)
    mid = data(3, MAX_PAYLOAD)
    low = data(1, 500)
    high = data(7, 100)
    port.enqueue(mid)
    sim.run(until_ps=100_000)
    port.enqueue(high)  # preempts mid
    port.enqueue(low)
    sim.run()
    assert sink == [high, mid, low]


def test_higher_priority_queue_beats_paused_packet():
    """A queued P6 packet is served before resuming a paused P3."""
    sink = []
    sim, port = make_port(sink)
    mid = data(3, MAX_PAYLOAD)
    high1 = data(7, 100)
    high2 = data(6, 100)
    port.enqueue(mid)
    sim.run(until_ps=100_000)
    port.enqueue(high1)  # preempts
    port.enqueue(high2)  # queued at 6
    sim.run()
    assert sink == [high1, high2, mid]


def test_preemption_stress_delivers_everything():
    import random
    sink = []
    sim, port = make_port(sink)
    rng = random.Random(5)
    packets = []
    t = 0
    for _ in range(200):
        pkt = data(rng.randrange(8), rng.randrange(1, 1461), rpc=len(packets))
        packets.append(pkt)
        t += rng.randrange(0, 1_500_000)
        sim.schedule_at(t, port.enqueue, pkt)
    sim.run()
    assert len(sink) == 200
    assert sorted(id(p) for p in sink) == sorted(id(p) for p in packets)  # simlint: ok(det-id-order) — multiset equality of object identities; both sides sort the same run's ids, no cross-run order is asserted
