"""Per-rule fixture tests for simlint (src/repro/analysis).

Each rule gets a minimal failing snippet, a passing snippet, and a
pragma-waiver case; the suite ends with the self-check the acceptance
contract names: the real repo is clean modulo the committed baseline,
and the CLI exits non-zero when a violation is injected.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import (
    DEFAULT_TARGETS,
    REPO_ROOT,
    RULES,
    Module,
    Project,
    analyze_source,
    diff_baseline,
    load_baseline,
    run,
)
from repro.analysis.core import DEFAULT_BASELINE


def findings(source, *, rel="src/repro/core/snippet.py", rules=None, **kw):
    return analyze_source(
        textwrap.dedent(source), rel=rel, rules=rules, **kw
    ).findings


def rule_hits(source, rule, **kw):
    return [f for f in findings(source, rules=[rule], **kw) if f.rule == rule]


# -- registry completeness ----------------------------------------------


def test_every_rule_has_fixture_coverage():
    """The registry holds exactly the documented rule families."""
    assert set(RULES) == {
        "det-unseeded-rng",
        "det-wallclock",
        "det-set-order",
        "det-id-order",
        "det-float-time-eq",
        "fault-determinism",
        "hot-alloc",
        "payload-roundtrip",
        "doc-drift",
        "registry-hooks",
        "sched-arity",
        "campaign-registry",
        "units",
    }
    assert RULES["hot-alloc"].tier == "advisory"


# -- det-unseeded-rng ---------------------------------------------------


def test_unseeded_rng_fails():
    hits = rule_hits(
        """
        import random
        x = random.random()
        """,
        "det-unseeded-rng",
    )
    assert [f.detail for f in hits] == ["random.random"]


def test_unseeded_rng_catches_zero_arg_ctors_and_aliases():
    src = """
        import numpy as np
        from random import Random
        a = np.random.default_rng()
        b = np.random.rand(3)
        c = Random()
        np.random.seed(1)
        """
    assert sorted(f.detail for f in rule_hits(src, "det-unseeded-rng")) == [
        "numpy.random.default_rng",
        "numpy.random.rand",
        "numpy.random.seed",
        "random.Random",
    ]


def test_seeded_rng_passes():
    src = """
        import random
        import numpy as np
        r = random.Random(42)
        g = np.random.default_rng(7 * 99_991)
        x = r.random() + g.random()
        """
    assert rule_hits(src, "det-unseeded-rng") == []


def test_unseeded_rng_pragma_waives():
    src = """
        import random
        x = random.random()  # simlint: ok(det-unseeded-rng) — fixture: entropy is the point here
        """
    result = analyze_source(
        textwrap.dedent(src), rules=["det-unseeded-rng"]
    )
    assert result.findings == []
    assert [f.rule for f in result.waived] == ["det-unseeded-rng"]


# -- det-wallclock ------------------------------------------------------


def test_wallclock_fails_in_sim_packages():
    src = """
        import time
        t = time.perf_counter()
        """
    hits = rule_hits(src, "det-wallclock", rel="src/repro/core/engine2.py")
    assert [f.detail for f in hits] == ["time.perf_counter"]


def test_wallclock_allowed_outside_sim_packages():
    src = """
        import time
        t = time.perf_counter()
        """
    assert rule_hits(src, "det-wallclock", rel="benchmarks/bench_x.py") == []
    assert (
        rule_hits(src, "det-wallclock", rel="src/repro/experiments/x.py")
        == []
    )


def test_wallclock_pragma_waives():
    src = """
        import time
        t = time.monotonic()  # simlint: ok(det-wallclock) — fixture: profiling hook, not sim state
        """
    result = analyze_source(
        textwrap.dedent(src),
        rel="src/repro/core/engine2.py",
        rules=["det-wallclock"],
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- det-set-order ------------------------------------------------------


def test_set_iteration_fails():
    hits = rule_hits(
        """
        def f(xs):
            for x in set(xs):
                pass
            return [y for y in {1, 2}] + list(xs.keys())
        """,
        "det-set-order",
    )
    assert len(hits) == 3


def test_sorted_set_iteration_passes():
    src = """
        def f(xs, d):
            for x in sorted(set(xs)):
                pass
            for k in d:
                pass
            return sorted(d.keys())
        """
    assert rule_hits(src, "det-set-order") == []


def test_set_order_outside_src_not_flagged():
    src = """
        for x in {1, 2}:
            pass
        """
    assert rule_hits(src, "det-set-order", rel="tests/test_x.py") == []


def test_set_order_pragma_waives():
    src = """
        def f(xs):
            total = 0
            for x in set(xs):  # simlint: ok(det-set-order) — fixture: order-insensitive sum
                total += x
            return total
        """
    result = analyze_source(textwrap.dedent(src), rules=["det-set-order"])
    assert result.findings == []
    assert len(result.waived) == 1


# -- det-id-order -------------------------------------------------------


def test_id_order_fails():
    hits = rule_hits(
        """
        def f(objs):
            objs.sort(key=id)
            return sorted(id(o) for o in objs)
        """,
        "det-id-order",
        rel="tests/test_x.py",
    )
    assert len(hits) == 2


def test_stable_key_sort_passes():
    src = """
        def f(ports):
            return sorted(ports, key=lambda p: p.name)
        """
    assert rule_hits(src, "det-id-order") == []


def test_id_order_pragma_waives():
    src = """
        def f(a, b):
            assert sorted(id(p) for p in a) == sorted(id(p) for p in b)  # simlint: ok(det-id-order) — fixture: multiset identity equality
        """
    result = analyze_source(
        textwrap.dedent(src), rel="tests/test_x.py", rules=["det-id-order"]
    )
    assert result.findings == []
    assert len(result.waived) == 2  # both sorted() calls on the line


# -- det-float-time-eq --------------------------------------------------


def test_float_time_eq_fails():
    hits = rule_hits(
        """
        def f(t_ps, total):
            if t_ps == total / 2:
                return True
            return t_ps != 1.5
        """,
        "det-float-time-eq",
    )
    assert len(hits) == 2


def test_integer_time_eq_passes():
    src = """
        def f(t_ps, total):
            return t_ps == total // 2 or t_ps != 0
        """
    assert rule_hits(src, "det-float-time-eq") == []


def test_float_time_eq_pragma_waives():
    src = """
        def f(t_ps):
            return t_ps == float("inf")  # simlint: ok(det-float-time-eq) — fixture: inf sentinel compares exactly
        """
    result = analyze_source(
        textwrap.dedent(src), rules=["det-float-time-eq"]
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- hot-alloc ----------------------------------------------------------

HOT_MANIFEST = {"src/repro/core/engine.py": frozenset({"hot"})}


def test_hot_alloc_flags_per_call_constructs():
    hits = rule_hits(
        """
        def hot(xs):
            fn = lambda x: x + 1
            squares = [fn(x) for x in xs]
            return "total: {}".format(len(squares))
        """,
        "hot-alloc",
        rel="src/repro/core/engine.py",
        hot_manifest=HOT_MANIFEST,
    )
    kinds = sorted(f.detail.split(":")[0] for f in hits)
    assert kinds == ["closure", "comprehension", "format"]


def test_hot_alloc_ignores_failure_paths_and_cold_functions():
    src = """
        def hot(x):
            if x < 0:
                raise ValueError(f"negative: {x}")
            assert x < 100, f"too big: {x}"
            return x

        def cold(xs):
            return [x for x in xs]
        """
    assert (
        rule_hits(
            src,
            "hot-alloc",
            rel="src/repro/core/engine.py",
            hot_manifest=HOT_MANIFEST,
        )
        == []
    )


def test_hot_alloc_try_in_loop():
    hits = rule_hits(
        """
        def hot(xs):
            for x in xs:
                try:
                    x()
                except KeyError:
                    pass
        """,
        "hot-alloc",
        rel="src/repro/core/engine.py",
        hot_manifest=HOT_MANIFEST,
    )
    assert [f.detail.split(":")[0] for f in hits] == ["try-in-loop"]


def test_hot_alloc_stale_manifest_entry():
    hits = rule_hits(
        "def other():\n    pass\n",
        "hot-alloc",
        rel="src/repro/core/engine.py",
        hot_manifest=HOT_MANIFEST,
    )
    assert [f.detail for f in hits] == ["stale-entry"]


def test_hot_alloc_pragma_waives():
    src = """
        def hot(xs):
            return [x for x in xs]  # simlint: ok(hot-alloc) — fixture: cold branch despite manifest
        """
    result = analyze_source(
        textwrap.dedent(src),
        rel="src/repro/core/engine.py",
        rules=["hot-alloc"],
        hot_manifest=HOT_MANIFEST,
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- sched-arity --------------------------------------------------------


def test_sched_arity_flags_self_method_mismatch():
    hits = rule_hits(
        """
        class Port:
            def _tx_done(self, pkt):
                pass

            def start(self, duration):
                self.sim.schedule0(duration, self._tx_done)
        """,
        "sched-arity",
    )
    assert [f.detail for f in hits] == ["schedule0:_tx_done:expected=0"]


def test_sched_arity_flags_variadic_undercount():
    hits = rule_hits(
        """
        def deliver(pkt, port):
            pass

        def kick(sim, pkt):
            sim.schedule(10, deliver, pkt)
        """,
        "sched-arity",
    )
    assert [f.detail for f in hits] == ["schedule:deliver:expected=1"]


def test_sched_arity_flags_lambda_and_local_def():
    hits = rule_hits(
        """
        def kick(sim, pkt):
            def fire():
                pass
            sim.schedule1(10, fire, pkt)
            sim.schedule_at1(20, lambda: None, pkt)
        """,
        "sched-arity",
    )
    assert sorted(f.detail for f in hits) == [
        "schedule1:fire:expected=1",
        "schedule_at1:<lambda>:expected=1",
    ]


def test_sched_arity_passes_matching_and_flexible_signatures():
    src = """
        class Timer:
            def _fire(self):
                pass

            def _fire1(self, key, extra=None):
                pass

            def arm(self, sim, key):
                sim.schedule0(10, self._fire)
                sim.schedule1(10, self._fire1, key)
                sim.schedule(10, self._fire1, key, 3)
                sim.schedule_at(20, catchall, key, key, key)

        def catchall(*args):
            pass
        """
    assert rule_hits(src, "sched-arity") == []


def test_sched_arity_skips_unresolvable_callbacks():
    src = """
        def arm(sim, collector, pkt, cbs):
            sim.schedule_at(10, collector.snapshot)
            sim.schedule1(10, cbs[0], pkt)
            sim.schedule(10, collector.route(pkt).enqueue, pkt)
            sim.schedule(10, forward, *pkt)
            sim.schedule1(10, self_bound, arg=pkt)
        """
    assert rule_hits(src, "sched-arity") == []


def test_sched_arity_pragma_waives():
    src = """
        def fire():
            pass

        def arm(sim, pkt):
            sim.schedule1(10, fire, pkt)  # simlint: ok(sched-arity) — fixture: callback swallows via C shim
        """
    result = analyze_source(
        textwrap.dedent(src),
        rel="src/repro/core/snippet.py",
        rules=["sched-arity"],
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- payload-roundtrip --------------------------------------------------


def test_payload_unread_field_fails():
    hits = rule_hits(
        """
        class C:
            def to_payload(self):
                return {"a": self.a, "b": self.b}
            @classmethod
            def from_payload(cls, payload):
                return cls(a=payload["a"])
        """,
        "payload-roundtrip",
    )
    assert [f.detail for f in hits] == ["unread:b"]


def test_payload_dropped_dataclass_field_fails():
    hits = rule_hits(
        """
        from dataclasses import dataclass

        @dataclass
        class C:
            a: int = 0
            b: int = 0

            def to_payload(self):
                return {"a": self.a}

            @classmethod
            def from_payload(cls, payload):
                return cls(a=payload["a"])
        """,
        "payload-roundtrip",
    )
    # b is never written, so only the dropped-field case fires (unread
    # requires a written-but-unread key).
    assert [f.detail for f in hits] == ["dropped:b"]


def test_payload_exhaustive_pair_passes():
    src = """
        from dataclasses import asdict, dataclass

        @dataclass
        class C:
            a: int = 0
            b: int = 0

            def to_payload(self):
                return asdict(self)

            @classmethod
            def from_payload(cls, payload):
                data = dict(payload)
                data["a"] = int(data.get("a") or 0)
                return cls(**data)
        """
    assert rule_hits(src, "payload-roundtrip") == []


def test_payload_nested_dict_reads_not_counted():
    """Regression: reads on a *nested* sub-dict belong to that class's
    round-trip, not this one's (ExperimentConfig's homa handling)."""
    src = """
        class C:
            def to_payload(self):
                return {"sub": self.sub.to_payload()}
            @classmethod
            def from_payload(cls, payload):
                sub = dict(payload["sub"])
                if sub.get("extra") is not None:
                    sub["extra"] = tuple(sub["extra"])
                return cls(sub=Sub(**sub))
        """
    assert rule_hits(src, "payload-roundtrip") == []


def test_payload_opaque_to_payload_flagged():
    hits = rule_hits(
        """
        class C:
            def to_payload(self):
                out = {}
                for k in self.keys:
                    out[k] = getattr(self, k)
                return out
            @classmethod
            def from_payload(cls, payload):
                return cls(**payload)
        """,
        "payload-roundtrip",
    )
    assert [f.detail for f in hits] == ["opaque-to_payload"]


def test_payload_pragma_waives():
    src = """
        class C:
            def to_payload(self):  # simlint: ok(payload-roundtrip) — fixture: keys proven exhaustive elsewhere
                out = {}
                for k in self.keys:
                    out[k] = getattr(self, k)
                return out
            @classmethod
            def from_payload(cls, payload):
                return cls(**payload)
        """
    result = analyze_source(
        textwrap.dedent(src), rules=["payload-roundtrip"]
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- doc-drift ----------------------------------------------------------

CONFIG_SRC = """
    from dataclasses import dataclass

    @dataclass
    class HomaConfig:
        n_prios: int = 8
        shiny_new_knob: int = 0
"""


def test_doc_drift_fails_on_undocumented_field():
    hits = rule_hits(
        CONFIG_SRC,
        "doc-drift",
        rel="src/repro/homa/config.py",
        docs={"docs/CONFIG.md": "| `n_prios` | 8 | levels |"},
    )
    assert [f.detail for f in hits] == ["undocumented:shiny_new_knob"]


def test_doc_drift_passes_when_documented():
    docs = {"docs/CONFIG.md": "mentions n_prios and shiny_new_knob."}
    assert (
        rule_hits(
            CONFIG_SRC,
            "doc-drift",
            rel="src/repro/homa/config.py",
            docs=docs,
        )
        == []
    )


def test_doc_drift_flags_stale_doc_rows():
    docs = {
        "docs/CONFIG.md": (
            "n_prios shiny_new_knob\n| `removed_knob` | 1 | gone |"
        )
    }
    hits = rule_hits(
        CONFIG_SRC, "doc-drift", rel="src/repro/homa/config.py", docs=docs
    )
    assert [f.detail for f in hits] == ["stale-doc:removed_knob"]
    assert hits[0].path == "docs/CONFIG.md"


def test_doc_drift_pragma_waives():
    src = """
        from dataclasses import dataclass

        @dataclass
        class HomaConfig:
            internal_knob: int = 0  # simlint: ok(doc-drift) — fixture: internal-only knob
        """
    result = analyze_source(
        textwrap.dedent(src),
        rel="src/repro/homa/config.py",
        rules=["doc-drift"],
        docs={},
    )
    assert result.findings == []
    assert len(result.waived) == 1


# -- registry-hooks -----------------------------------------------------

BASE_SRC = textwrap.dedent(
    """
    class Transport:
        def next_packet(self):
            if self.ctrl:
                return self.ctrl.popleft()
            return self._next_data()

        def _next_data(self):
            raise NotImplementedError

        def send_message(self, dst, length, **kwargs):
            raise NotImplementedError

        def on_packet(self, pkt):
            raise NotImplementedError
    """
)

REGISTRY_SRC = textwrap.dedent(
    """
    from repro.baselines.foo import FooTransport

    def transport_factory(protocol):
        return lambda host: FooTransport()
    """
)


def _registry_project(transport_src):
    modules = [
        Module("src/repro/transport/base.py", BASE_SRC),
        Module("src/repro/transport/registry.py", REGISTRY_SRC),
        Module("src/repro/baselines/foo.py", textwrap.dedent(transport_src)),
    ]
    return run(Project(modules), rules=["registry-hooks"])


def test_registry_missing_hook_fails():
    result = _registry_project(
        """
        from repro.transport.base import Transport

        class FooTransport(Transport):
            def _next_data(self):
                return None

            def send_message(self, dst, length, **kwargs):
                pass
        """
    )
    assert [f.detail for f in result.findings] == [
        "missing-hook:FooTransport.on_packet"
    ]


def test_registry_hooks_inherited_through_repo_base_pass():
    result = _registry_project(
        """
        from repro.transport.base import Transport

        class _Common(Transport):
            def on_packet(self, pkt):
                pass

        class FooTransport(_Common):
            def _next_data(self):
                return None

            def send_message(self, dst, length, **kwargs):
                pass
        """
    )
    assert result.findings == []


def test_registry_base_raising_stubs_do_not_count():
    result = _registry_project(
        """
        from repro.transport.base import Transport

        class FooTransport(Transport):
            pass
        """
    )
    assert sorted(f.detail for f in result.findings) == [
        "missing-hook:FooTransport._next_data",
        "missing-hook:FooTransport.on_packet",
        "missing-hook:FooTransport.send_message",
    ]


def test_registry_pragma_waives():
    result = _registry_project(
        """
        from repro.transport.base import Transport

        class FooTransport(Transport):  # simlint: ok(registry-hooks) — fixture: hooks added dynamically
            pass
        """
    )
    assert result.findings == []
    assert len(result.waived) == 3


# -- campaign-registry --------------------------------------------------

PAPER_DATA_SRC = textwrap.dedent(
    """
    CAMPAIGNS = {
        "fig99": ("bench_fig99_demo", "demo figure"),
    }
    """
)

COMPLETE_BENCH_SRC = textwrap.dedent(
    """
    from repro.experiments.campaign import CampaignSpec, Cell

    def campaign_spec():
        return CampaignSpec(name="fig99", cells=[Cell(key=1, spec={})])

    def run_figure(jobs=None, fresh=False):
        return []
    """
)


def _campaign_project(bench_src, bench_rel="benchmarks/bench_fig99_demo.py"):
    modules = [
        Module("src/repro/experiments/paper_data.py", PAPER_DATA_SRC),
        Module(bench_rel, textwrap.dedent(bench_src)),
    ]
    return run(Project(modules), rules=["campaign-registry"])


def test_campaign_complete_bench_passes():
    assert _campaign_project(COMPLETE_BENCH_SRC).findings == []


def test_campaign_missing_hooks_fail():
    result = _campaign_project(
        """
        from repro.experiments.campaign import CampaignSpec, Cell

        SPEC = CampaignSpec(name="fig99", cells=[Cell(key=1, spec={})])
        """
    )
    assert sorted(f.detail for f in result.findings) == [
        "missing-campaign-specs",
        "missing-run-figure",
    ]


def test_campaign_unregistered_module_fails():
    result = _campaign_project(
        COMPLETE_BENCH_SRC, bench_rel="benchmarks/bench_fig98_rogue.py"
    )
    assert [f.detail for f in result.findings] == [
        "unregistered:bench_fig98_rogue"
    ]


def test_campaign_rule_ignores_non_bench_and_specless_files():
    # CampaignSpec constructed outside benchmarks/bench_*.py: not scoped.
    assert rule_hits(
        """
        from repro.experiments.campaign import CampaignSpec
        SPEC = CampaignSpec(name="x", cells=[])
        """,
        "campaign-registry",
        rel="tests/helpers_farm.py",
    ) == []
    # A bench module with no CampaignSpec owes nothing.
    assert _campaign_project(
        """
        def run_bench():
            return 42
        """
    ).findings == []


def test_campaign_specs_plural_hook_counts():
    result = _campaign_project(
        """
        from repro.experiments.campaign import CampaignSpec, Cell

        def campaign_specs():
            return [CampaignSpec(name="fig99", cells=[Cell(key=1, spec={})])]

        def run_figure(jobs=None, fresh=False):
            return []
        """
    )
    assert result.findings == []


def test_campaign_non_dict_campaigns_reported():
    modules = [
        Module("src/repro/experiments/paper_data.py",
               "CAMPAIGNS = dict(fig99=('bench_fig99_demo', 'demo'))\n"),
        Module("benchmarks/bench_fig99_demo.py", COMPLETE_BENCH_SRC),
    ]
    result = run(Project(modules), rules=["campaign-registry"])
    assert [f.detail for f in result.findings] == [
        "campaigns-not-a-dict-literal"
    ]


def test_campaign_registry_pragma_waives():
    result = _campaign_project(
        COMPLETE_BENCH_SRC.replace(
            "return CampaignSpec(",
            "return CampaignSpec(  # simlint: ok(campaign-registry) — fixture: scratch bench\n            ",
        ),
        bench_rel="benchmarks/bench_fig98_rogue.py",
    )
    assert result.findings == []
    assert [f.rule for f in result.waived] == ["campaign-registry"]


# -- fault-determinism --------------------------------------------------


def test_fault_determinism_flags_wallclock_in_observer():
    src = """
        import time

        def watch(event, now_ps):
            stamp = time.time()
            print(event, stamp)

        injector.subscribe(watch)
        """
    hits = rule_hits(src, "fault-determinism", rel="benchmarks/bench_f.py")
    assert [f.detail for f in hits] == ["watch:time.time"]


def test_fault_determinism_flags_unseeded_rng_in_lambda_and_method():
    src = """
        import random

        class Harness:
            def arm(self, injector):
                injector.subscribe(self.on_fault)
                injector.subscribe(lambda ev, now: random.random())

            def on_fault(self, event, now_ps):
                self.jitter = random.Random()
        """
    hits = rule_hits(src, "fault-determinism", rel="tests/helper.py")
    assert sorted(f.detail for f in hits) == [
        "<lambda>:random.random",
        "on_fault:random.Random",
    ]


def test_fault_determinism_passes_seeded_and_simtime_observers():
    src = """
        import random

        def make_observer(seed):
            rng = random.Random(seed * 7919)

            def watch(event, now_ps):
                return (now_ps, rng.random())

            injector.subscribe(watch)
        """
    assert rule_hits(src, "fault-determinism", rel="benchmarks/bench_f.py") == []


def test_fault_determinism_skips_unresolvable_callbacks():
    src = """
        import helpers

        injector.subscribe(helpers.observer)
        injector.subscribe(obj.method)
        """
    assert rule_hits(src, "fault-determinism", rel="tests/helper.py") == []


def test_fault_determinism_pragma_waives():
    src = """
        import time

        def watch(event, now_ps):
            stamp = time.time()  # simlint: ok(fault-determinism) — fixture: wall profiling beside sim state
            return stamp

        injector.subscribe(watch)
        """
    result = analyze_source(
        textwrap.dedent(src), rel="tests/helper.py",
        rules=["fault-determinism"]
    )
    assert result.findings == []
    assert [f.rule for f in result.waived] == ["fault-determinism"]


# -- units --------------------------------------------------------------


def test_units_flags_mixed_suffix_arithmetic():
    hits = rule_hits(
        """
        def budget(self, deadline_ns, timeout_ps):
            return deadline_ns + timeout_ps
        """,
        "units",
    )
    assert [f.detail for f in hits] == ["binop:ns:ps"]


def test_units_flags_mixed_suffix_compare_and_augassign():
    hits = rule_hits(
        """
        def tick(self, elapsed_us, budget_ms, total_ps, step_ns):
            if elapsed_us > budget_ms:
                total_ps += step_ns
        """,
        "units",
    )
    assert sorted(f.detail for f in hits) == [
        "augassign:ps:ns",
        "compare:ms:us",
    ]


def test_units_flags_non_ps_schedule_argument():
    hits = rule_hits(
        """
        def arm(self, delay_ns, at_ms):
            self.sim.schedule(delay_ns, self._fire)
            self.sim.schedule_at(at_ms, self._fire)
            self.sim.schedule(self.sim.now + delay_ns * NS, self._fire)
        """,
        "units",
    )
    assert sorted(f.detail for f in hits) == [
        "schedule:ms",
        "schedule:ns",
    ]


def test_units_passes_conversion_idioms_and_same_unit_chains():
    src = """
        def arm(self, delay_ns, budget_ms, total_ps, count):
            deadline_ps = delay_ns * NS + budget_ms * MS
            self.sim.schedule(delay_ns * NS, self._fire)
            self.sim.schedule_at(now + 3 * total_ps, self._fire)
            spent_ms = total_ps // MS
            if total_ps // 2 > deadline_ps - total_ps:
                return spent_ms + budget_ms
            return count + total_ps  # unsuffixed operand: unknown unit
        """
    assert rule_hits(src, "units") == []


def test_units_pragma_waives():
    src = """
        def arm(self, delay_ns):
            self.sim.schedule(delay_ns, self._fire)  # simlint: ok(units) — fixture: shim converts inside schedule()
        """
    result = analyze_source(
        textwrap.dedent(src),
        rel="src/repro/core/snippet.py",
        rules=["units"],
    )
    assert result.findings == []
    assert [f.rule for f in result.waived] == ["units"]


# -- pragma hygiene -----------------------------------------------------


def test_pragma_without_justification_is_a_finding():
    src = """
        import random
        x = random.random()  # simlint: ok(det-unseeded-rng)
        """
    result = analyze_source(
        textwrap.dedent(src), rules=["det-unseeded-rng"]
    )
    assert [f.detail for f in result.findings] == [
        "unjustified:det-unseeded-rng"
    ]


def test_unused_pragma_is_a_finding():
    src = """
        x = 1  # simlint: ok(det-unseeded-rng) — nothing here to waive
        """
    result = analyze_source(
        textwrap.dedent(src), rules=["det-unseeded-rng"]
    )
    assert [f.detail for f in result.findings] == [
        "unused:det-unseeded-rng"
    ]


def test_unknown_rule_pragma_is_a_finding():
    src = """
        x = 1  # simlint: ok(not-a-rule) — typo'd rule name
        """
    result = analyze_source(textwrap.dedent(src), rules=["det-id-order"])
    assert [f.detail for f in result.findings] == [
        "unknown-rule:not-a-rule"
    ]


# -- identity / baseline machinery --------------------------------------


def test_identity_has_no_line_numbers():
    src = """
        import random
        x = random.random()
        """
    shifted = "\n\n\n" + textwrap.dedent(src)
    a = rule_hits(src, "det-unseeded-rng")[0]
    b = analyze_source(
        shifted,
        rel="src/repro/core/snippet.py",
        rules=["det-unseeded-rng"],
    ).findings[0]
    assert a.identity == b.identity
    assert a.line != b.line


def test_baseline_counts_grandfather_and_flag_excess():
    src = """
        import random
        a = random.random()
        b = random.random()
        """
    found = rule_hits(src, "det-unseeded-rng")
    assert len(found) == 2
    baseline = {found[0].identity: 1}
    diff = diff_baseline(found, baseline)
    assert len(diff.new) == 1  # one grandfathered, one new
    assert diff.stale == {}
    diff_fixed = diff_baseline(found[:0], baseline)
    assert diff_fixed.stale == {found[0].identity: 1}


# -- the real repo ------------------------------------------------------


def test_repo_clean_modulo_committed_baseline():
    """The acceptance self-check: zero non-baselined findings on the
    tree, and no stale baseline entries (debt only shrinks explicitly)."""
    project = Project.load(REPO_ROOT, DEFAULT_TARGETS)
    assert project.errors == []
    result = run(project)
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
    diff = diff_baseline(result.findings, baseline)
    assert diff.new == [], "\n".join(f.render() for f in diff.new)
    assert diff.stale == {}, (
        "baseline is stale; run: python -m repro.analysis --write-baseline"
    )


def test_cli_strict_gates_on_injected_violation(tmp_path):
    """python -m repro.analysis --strict exits 0 on a clean tree and
    non-zero once a violating file is injected."""
    src_dir = tmp_path / "src" / "repro" / "core"
    src_dir.mkdir(parents=True)
    (src_dir / "clean.py").write_text(
        "import random\n\nRNG = random.Random(42)\n"
    )
    env_cmd = [
        sys.executable,
        "-m",
        "repro.analysis",
        "--root",
        str(tmp_path),
        "--strict",
    ]
    kw = dict(
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    # A bare tree legitimately has stale hot-manifest findings (the
    # manifest names files this tmp repo lacks); grandfather them the
    # way a real adopter would, then the clean tree gates green.
    wb = subprocess.run(
        env_cmd[:-1] + ["--write-baseline"], **kw
    )
    assert wb.returncode == 0, wb.stdout + wb.stderr
    clean = subprocess.run(env_cmd, **kw)
    assert clean.returncode == 0, clean.stdout + clean.stderr

    (src_dir / "bad.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n"
    )
    dirty = subprocess.run(env_cmd, **kw)
    assert dirty.returncode == 1, dirty.stdout + dirty.stderr
    assert "det-unseeded-rng" in dirty.stdout

    dirty_json = subprocess.run(env_cmd + ["--json"], **kw)
    payload = json.loads(dirty_json.stdout)
    assert payload["new"][0]["rule"] == "det-unseeded-rng"
