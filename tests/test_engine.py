"""Unit tests for the discrete event engine."""

import pytest

from repro.core.engine import Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30, seen.append, "c")
    sim.schedule(10, seen.append, "a")
    sim.schedule(20, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    seen = []
    for tag in range(5):
        sim.schedule(100, seen.append, tag)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_times():
    sim = Simulator()
    stamps = []
    sim.schedule(7, lambda: stamps.append(sim.now))
    sim.schedule(19, lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == [7, 19]


def test_run_until_horizon_is_inclusive():
    sim = Simulator()
    seen = []
    sim.schedule(10, seen.append, "early")
    sim.schedule(20, seen.append, "edge")
    sim.schedule(21, seen.append, "late")
    sim.run(until_ps=20)
    assert seen == ["early", "edge"]
    assert sim.now == 20


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until_ps=12345)
    assert sim.now == 12345


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(5, seen.append, "second")

    sim.schedule(1, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 6


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    event = sim.schedule(10, seen.append, "no")
    sim.schedule(20, seen.append, "yes")
    Simulator.cancel(event)
    sim.run()
    assert seen == ["yes"]


def test_is_pending_reflects_cancellation():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    assert Simulator.is_pending(event)
    Simulator.cancel(event)
    assert not Simulator.is_pending(event)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.schedule(tag + 1, seen.append, tag)
    processed = sim.run(max_events=3)
    assert processed == 3
    assert seen == [0, 1, 2]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    Simulator.cancel(event)
    assert sim.peek_time() == 9


def test_peek_time_empty():
    sim = Simulator()
    assert sim.peek_time() is None


def test_new_id_unique_and_monotonic():
    sim = Simulator()
    ids = [sim.new_id() for _ in range(100)]
    assert len(set(ids)) == 100
    assert ids == sorted(ids)


def test_pending_events_counts_live_only():
    sim = Simulator()
    keep = sim.schedule(10, lambda: None)
    drop = sim.schedule(20, lambda: None)
    Simulator.cancel(drop)
    assert sim.pending_events() == 1
    assert Simulator.is_pending(keep)


def test_events_processed_accumulates():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert sim.events_processed == 2


# ---------------------------------------------------------------------------
# CoalescingTimer: the batching primitive (grant pacer et al.)
# ---------------------------------------------------------------------------


def test_coalescing_timer_collapses_arms_into_one_fire():
    from repro.core.engine import CoalescingTimer

    sim = Simulator()
    fired = []
    timer = CoalescingTimer(sim, 1000, lambda: fired.append(sim.now))
    for _ in range(5):
        timer.arm()  # five arms inside one interval: one callback
    assert timer.pending
    sim.run()
    assert fired == [1000]
    assert not timer.pending


def test_coalescing_timer_rearms_after_firing():
    from repro.core.engine import CoalescingTimer

    sim = Simulator()
    fired = []
    timer = CoalescingTimer(sim, 1000, lambda: fired.append(sim.now))
    timer.arm()
    sim.run()
    timer.arm()  # a fresh interval, measured from now
    sim.run()
    assert fired == [1000, 2000]


def test_coalescing_timer_callback_may_rearm_itself():
    from repro.core.engine import CoalescingTimer

    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.arm()

    timer = CoalescingTimer(sim, 500, tick)
    timer.arm()
    sim.run()
    assert fired == [500, 1000, 1500]


def test_coalescing_timer_cancel_drops_pending_fire():
    from repro.core.engine import CoalescingTimer

    sim = Simulator()
    fired = []
    timer = CoalescingTimer(sim, 1000, lambda: fired.append(sim.now))
    timer.arm()
    timer.cancel()
    assert not timer.pending
    sim.run()
    assert fired == []
    timer.arm()  # cancel must not wedge the timer
    sim.run()
    assert fired == [1000]


def test_coalescing_timer_rejects_nonpositive_interval():
    from repro.core.engine import CoalescingTimer

    sim = Simulator()
    with pytest.raises(ValueError):
        CoalescingTimer(sim, 0, lambda: None)
