"""Tests for time/rate units."""

import pytest

from repro.core import units


def test_ps_per_byte_exact_rates():
    assert units.ps_per_byte(10) == 800
    assert units.ps_per_byte(40) == 200
    assert units.ps_per_byte(25) == 320
    assert units.ps_per_byte(100) == 80


def test_ps_per_byte_rejects_inexact():
    with pytest.raises(ValueError):
        units.ps_per_byte(3)  # 8000/3 is not an integer


def test_ps_per_byte_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.ps_per_byte(0)
    with pytest.raises(ValueError):
        units.ps_per_byte(-10)


def test_tx_time():
    # A full 1538-byte frame at 10 Gbps takes 1.2304 us.
    assert units.tx_time_ps(1538, 10) == 1_230_400


def test_bytes_per_sec():
    assert units.bytes_per_sec(10) == 1.25e9


def test_constants_consistent():
    assert units.US == 1000 * units.NS
    assert units.MS == 1000 * units.US
    assert units.SEC == 1000 * units.MS


@pytest.mark.parametrize("ps,expected", [
    (500, "500ps"),
    (1_500, "1.5ns"),
    (2_500_000, "2.500us"),
    (3_000_000_000, "3.000ms"),
    (4_000_000_000_000, "4.000s"),
])
def test_fmt_time(ps, expected):
    assert units.fmt_time(ps) == expected
