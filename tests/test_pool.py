"""PacketPool (src/repro/core/pool.py): the array-core allocator.

Three contracts from the array-core PR:

* recycling safety — a slot is never handed out twice while live, a
  double free raises, and a recycled slot re-initializes to exact
  constructor state;
* growth determinism — slot numbering and growth chunking depend only
  on the operation sequence, never on timing or sizing accidents;
* sizing neutrality — the pool size is a pure performance knob: a
  pool forced to grow from one slot produces byte-identical slowdown
  digests to a fully preallocated one, across workloads and seeds.
"""

import random

import pytest

from repro.core.packet import Packet, PacketType
from repro.core.pool import PacketPool, free_packet
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.homa.config import HomaConfig


def _alloc_args(rng):
    """Plausible randomized alloc_data argument tuple."""
    return (rng.randrange(64), rng.randrange(64), rng.randrange(8),
            rng.randrange(1461), rng.randrange(1 << 20), bool(rng.randrange(2)),
            rng.randrange(1 << 16), rng.randrange(1, 1 << 20),
            bool(rng.randrange(2)), False, False, None,
            rng.randrange(1 << 16), rng.randrange(1 << 30))


# ---------------------------------------------------------------------------
# recycling safety
# ---------------------------------------------------------------------------


def test_no_slot_reused_while_live_under_churn():
    """Random alloc/free churn: every handed-out slot is distinct from
    all currently-live slots, across growth boundaries."""
    rng = random.Random(42)
    pool = PacketPool(prealloc=8, grow_chunk=4)
    live = {}
    for _ in range(5000):
        if live and rng.random() < 0.45:
            slot = rng.choice(list(live))
            pool.free(live.pop(slot))
        else:
            if rng.random() < 0.2:
                pkt = pool.alloc_ctrl(PacketType.GRANT, 1, 2, 7, True)
            else:
                pkt = pool.alloc_data(*_alloc_args(rng))
            assert pkt.slot not in live, "live slot handed out twice"
            assert pool.live[pkt.slot] == 1
            live[pkt.slot] = pkt
    assert pool.in_flight() == len(live)
    stats = pool.stats()
    assert stats["data_allocs"] + stats["ctrl_allocs"] == stats["recycled"] + len(live)


def test_double_free_and_foreign_free_raise():
    pool = PacketPool(prealloc=2)
    pkt = pool.alloc_ctrl(PacketType.GRANT, 0, 1, 1, True)
    pool.free(pkt)
    with pytest.raises(RuntimeError, match="double free"):
        pool.free(pkt)
    other = PacketPool(prealloc=2)
    foreign = other.alloc_ctrl(PacketType.GRANT, 0, 1, 1, True)
    with pytest.raises(ValueError, match="does not belong"):
        pool.free(foreign)


def test_free_packet_helper_ignores_unpooled():
    plain = Packet(0, 1, PacketType.DATA, payload=100)
    free_packet(plain)  # must not raise: plain packets are not pooled
    pool = PacketPool(prealloc=1)
    pooled = pool.alloc_ctrl(PacketType.BUSY, 0, 1, 3, False)
    free_packet(pooled)
    assert pool.in_flight() == 0


def test_recycled_slot_matches_constructor_state():
    """Allocate, scribble over every flight-mutable field, free, then
    re-allocate: the recycled packet must be field-for-field identical
    to a freshly constructed one."""
    pool = PacketPool(prealloc=1)
    pkt = pool.alloc_data(3, 9, 5, 1460, 77, True, 2920, 9999,
                          True, False, False, None, 4380, 123456)
    # Simulate in-flight mutation by ports/switches/cut-through.
    pkt.ecn = True
    pkt.trimmed = True
    pkt.q_wait = 11
    pkt.p_wait = 22
    pkt.tx_start_ps = 33
    pkt.alloc_ps = 44
    pkt.alloc2_ps = 55
    pkt.alloc3_ps = 66
    pkt.arrival_ps = 77
    pkt.rank_seq = 88
    pkt.prev_arrival_ps = 99
    pkt.prev_rank_seq = 111
    pkt.cutoffs = (1, 2, 3)
    pkt.app_meta = object()
    pool.free(pkt)
    args = (4, 8, 6, 900, 55, False, 1460, 5000,
            False, True, True, None, 2920, 654321)
    recycled = pool.alloc_data(*args)
    fresh = Packet(*args[:2], PacketType.DATA, *args[2:])
    for field in Packet.__slots__:
        if field in ("pool", "slot"):
            continue
        assert getattr(recycled, field) == getattr(fresh, field), field


# ---------------------------------------------------------------------------
# growth determinism
# ---------------------------------------------------------------------------


def test_growth_is_deterministic_and_chunked():
    pool = PacketPool(prealloc=0, grow_chunk=3)
    assert len(pool.slots) == 0 and pool.grows == 0
    held = [pool.alloc_ctrl(PacketType.GRANT, 0, 1, i, True) for i in range(7)]
    # ceil(7/3) = 3 growth chunks of exactly grow_chunk slots each.
    assert pool.grows == 3
    assert len(pool.slots) == 9
    assert [p.slot for p in pool.slots] == list(range(9))
    assert len({p.slot for p in held}) == 7
    # Same operation sequence, same slot assignment order.
    twin = PacketPool(prealloc=0, grow_chunk=3)
    twin_held = [twin.alloc_ctrl(PacketType.GRANT, 0, 1, i, True)
                 for i in range(7)]
    assert [p.slot for p in twin_held] == [p.slot for p in held]


def test_prealloc_counts_as_no_growth():
    pool = PacketPool(prealloc=16)
    assert pool.grows == 0 and len(pool.slots) == 16
    held = [pool.alloc_ctrl(PacketType.GRANT, 0, 1, i, True)
            for i in range(16)]
    assert pool.grows == 0
    held.append(pool.alloc_ctrl(PacketType.GRANT, 0, 1, 16, True))
    assert pool.grows == 1  # 17th packet crosses the preallocation


# ---------------------------------------------------------------------------
# sizing neutrality: digests never depend on the pool knob
# ---------------------------------------------------------------------------


def _digests(workload, seed, prealloc):
    cfg = ExperimentConfig(protocol="homa", workload=workload, load=0.8,
                           racks=2, hosts_per_rack=4, aggrs=2,
                           duration_ms=1.0, warmup_ms=0.2, drain_ms=8.0,
                           seed=seed, max_messages=90,
                           homa=HomaConfig(grant_batch_ns=0,
                                           pool_prealloc=prealloc))
    result = run_experiment(cfg)
    return ([repr(x) for x in result.slowdown_series(50)],
            [repr(x) for x in result.slowdown_series(99)],
            result.completed, result.events)


@pytest.mark.parametrize("workload,seed", [("W1", 3), ("W3", 11), ("W4", 7)])
def test_pool_sizing_is_digest_neutral(workload, seed):
    """A one-slot pool (maximum growth pressure: every high-water mark
    triggers a deterministic grow) and a fully preallocated pool produce
    byte-identical slowdown digests, completions, and event counts."""
    grown = _digests(workload, seed, prealloc=1)
    pre = _digests(workload, seed, prealloc=4096)
    assert grown == pre
