"""Behavioural tests for the baseline transports.

Each baseline must reproduce the *mechanism* the paper attributes its
performance to: stream HOL blocking, pHost single-active-sender tokens,
pFabric fine-priority drops and retransmission, PIAS demotion + ECN
backoff, NDP trimming + fair-share pulls.
"""

from repro.baselines.ndp import NdpTransport
from repro.baselines.pfabric import PfabricTransport
from repro.baselines.phost import PHostTransport
from repro.baselines.pias import PiasTransport, pias_thresholds
from repro.baselines.stream import StreamTransport
from repro.core.engine import Simulator
from repro.core.packet import FULL_WIRE, MAX_PAYLOAD, N_PRIORITIES
from repro.core.topology import NetworkConfig, build_network
from repro.core.units import MS, US
from repro.workloads.catalog import WORKLOADS


def build(protocol_factory, **net_overrides):
    sim = Simulator()
    cfg = NetworkConfig(racks=1, hosts_per_rack=6, aggrs=0, **net_overrides)
    net = build_network(sim, cfg)
    transports = net.attach_transports(protocol_factory(sim, net))
    records = []

    def make_hook(hid):
        def hook(msg, now):
            records.append((hid, msg.length, msg.created_ps, now))
        return hook

    for transport in transports:
        transport.on_message_complete = make_hook(transport.hid)
    return sim, net, transports, records


# ---------------------------------------------------------------------------
# stream
# ---------------------------------------------------------------------------


def stream_factory(connections):
    def outer(sim, net):
        def factory(host):
            return StreamTransport(sim, window_bytes=net.rtt_bytes(),
                                   connections_per_pair=connections)
        return factory
    return outer


def test_stream_delivers_in_fifo_order():
    sim, net, transports, records = build(stream_factory(1))
    transports[0].send_message(1, 50_000)
    transports[0].send_message(1, 200)
    sim.run(until_ps=20 * MS)
    assert len(records) == 2
    # FIFO: the long message finishes first — head-of-line blocking.
    assert records[0][1] == 50_000
    assert records[1][1] == 200


def test_multi_connection_removes_hol_blocking():
    sim, net, transports, records = build(stream_factory(8))
    transports[0].send_message(1, 1_000_000)
    sim.run(until_ps=50 * US)
    transports[0].send_message(1, 200)
    sim.run(until_ps=50 * MS)
    sizes_in_order = [r[1] for r in records]
    # The short message overtakes on its own connection.
    assert sizes_in_order.index(200) < sizes_in_order.index(1_000_000)


def test_stream_hol_blocking_magnitude():
    """Section 5.1: streaming adds orders of magnitude for short
    messages stuck behind a long one."""
    sim, net, transports, records = build(stream_factory(1))
    transports[0].send_message(1, 2_000_000)
    sim.run(until_ps=10 * US)
    transports[0].send_message(1, 100)
    sim.run(until_ps=100 * MS)
    short = next(r for r in records if r[1] == 100)
    latency = short[3] - short[2]
    assert latency > 50 * net.min_oneway_ps(100, True)


def test_stream_window_limits_inflight():
    sim, net, transports, records = build(stream_factory(1))
    transports[0].send_message(1, 10_000_000)
    sim.run(until_ps=30 * US)
    conn = transports[0].connections[1][0]
    assert conn.in_flight <= net.rtt_bytes() + MAX_PAYLOAD
    sim.run(until_ps=40 * MS)  # drain


# ---------------------------------------------------------------------------
# pHost
# ---------------------------------------------------------------------------


def phost_factory(sim, net):
    def factory(host):
        return PHostTransport(sim, rtt_bytes=net.rtt_bytes(),
                              host_gbps=net.cfg.host_gbps,
                              rtt_ps=net.rtt_ps())
    return factory


def test_phost_delivers_large_message():
    sim, net, transports, records = build(phost_factory)
    transports[0].send_message(1, 300_000)
    sim.run(until_ps=30 * MS)
    assert [r[1] for r in records] == [300_000]


def test_phost_tokens_used_for_scheduled_bytes():
    sim, net, transports, records = build(phost_factory)
    transports[0].send_message(1, 100_000)
    sim.run(until_ps=20 * MS)
    assert transports[1].tokens_sent > 0


def test_phost_short_message_needs_no_tokens():
    sim, net, transports, records = build(phost_factory)
    transports[0].send_message(1, 1000)
    sim.run(until_ps=5 * MS)
    assert records and transports[1].tokens_sent == 0


def test_phost_srpt_at_receiver():
    sim, net, transports, records = build(phost_factory)
    transports[0].send_message(2, 400_000)
    transports[1].send_message(2, 60_000)
    sim.run(until_ps=60 * MS)
    assert [r[1] for r in records] == [60_000, 400_000]


def test_phost_single_active_sender():
    """No overcommitment: tokens pace to one flow at a time, so token
    counts accumulate only slightly above one flow's worth."""
    sim, net, transports, records = build(phost_factory)
    for src in range(3):
        transports[src].send_message(4, 200_000)
    sim.run(until_ps=2 * MS)
    receiver = transports[4]
    # Tokens issued - received must stay within about one RTT of data
    # in total (one active flow), not three RTTs.
    outstanding = sum(
        receiver.tokens_issued.get(m.key, 0) - m.bytes_received
        for m in receiver.inbound.values())
    assert outstanding <= net.rtt_bytes() + 3 * MAX_PAYLOAD
    sim.run(until_ps=60 * MS)
    assert len(records) == 3


# ---------------------------------------------------------------------------
# pFabric
# ---------------------------------------------------------------------------


def pfabric_factory(sim, net):
    def factory(host):
        return PfabricTransport(sim, rtt_bytes=net.rtt_bytes(),
                                rtt_ps=net.rtt_ps())
    return factory


def test_pfabric_delivers_with_priority_queues():
    sim, net, transports, records = build(pfabric_factory,
                                          queue_mode="pfabric")
    transports[0].send_message(1, 100_000)
    sim.run(until_ps=20 * MS)
    assert [r[1] for r in records] == [100_000]


def test_pfabric_recovers_from_drops():
    """Overflowing the tiny buffers drops packets; the RTO recovers."""
    sim, net, transports, records = build(
        pfabric_factory, queue_mode="pfabric",
        pfabric_buffer_bytes=6 * FULL_WIRE)
    for src in range(4):
        transports[src].send_message(5, 150_000)
    sim.run(until_ps=100 * MS)
    assert len(records) == 4
    drops = sum(p.drops for p in net.tor_down_ports)
    assert drops > 0
    assert sum(t.retransmissions for t in transports) > 0


def test_pfabric_short_message_wins():
    sim, net, transports, records = build(pfabric_factory,
                                          queue_mode="pfabric")
    transports[0].send_message(2, 500_000)
    transports[1].send_message(2, 10_000)
    sim.run(until_ps=60 * MS)
    assert [r[1] for r in records] == [10_000, 500_000]


# ---------------------------------------------------------------------------
# PIAS
# ---------------------------------------------------------------------------


def pias_factory(sim, net):
    thresholds = pias_thresholds(WORKLOADS["W3"].cdf)

    def factory(host):
        return PiasTransport(sim, thresholds=thresholds, rtt_ps=net.rtt_ps())
    return factory


def test_pias_thresholds_ascending():
    thresholds = pias_thresholds(WORKLOADS["W3"].cdf)
    assert list(thresholds) == sorted(thresholds)
    assert len(thresholds) == N_PRIORITIES


def test_pias_priority_demotion():
    sim, net, transports, _ = build(pias_factory,
                                    ecn_threshold_bytes=2 * 9680)
    transport = transports[0]
    thresholds = transport.thresholds
    assert transport._prio_for(0) == 7
    assert transport._prio_for(thresholds[0]) == 6
    assert transport._prio_for(thresholds[-1] + 1) == 0


def test_pias_delivers_and_acks():
    sim, net, transports, records = build(pias_factory,
                                          ecn_threshold_bytes=2 * 9680)
    transports[0].send_message(1, 200_000)
    sim.run(until_ps=40 * MS)
    assert [r[1] for r in records] == [200_000]


def test_pias_ecn_backoff_under_congestion():
    sim, net, transports, records = build(pias_factory,
                                          ecn_threshold_bytes=9680)
    for src in range(4):
        transports[src].send_message(5, 400_000)
    sim.run(until_ps=60 * MS)
    assert len(records) == 4
    assert sum(t.backoffs for t in transports) > 0


# ---------------------------------------------------------------------------
# NDP
# ---------------------------------------------------------------------------


def ndp_factory(sim, net):
    def factory(host):
        return NdpTransport(sim, rtt_bytes=net.rtt_bytes(),
                            host_gbps=net.cfg.host_gbps)
    return factory


def test_ndp_delivers_full_packet_message():
    sim, net, transports, records = build(
        ndp_factory, trim_threshold_bytes=8 * FULL_WIRE)
    transports[0].send_message(1, 100 * MAX_PAYLOAD)
    sim.run(until_ps=30 * MS)
    assert [r[1] for r in records] == [100 * MAX_PAYLOAD]


def test_ndp_trimming_and_nack_recovery():
    """Enough simultaneous senders overflow the 8-packet queue: packets
    are trimmed, NACKed, and retransmitted via pulls."""
    sim, net, transports, records = build(
        ndp_factory, trim_threshold_bytes=8 * FULL_WIRE)
    for src in range(5):
        transports[src].send_message(5, 100 * MAX_PAYLOAD)
    sim.run(until_ps=200 * MS)
    assert len(records) == 5
    assert sum(t.nacks_received for t in transports) > 0


def test_ndp_fair_share_round_robin():
    """NDP pulls round-robin: two equal flows finish about together
    (unlike SRPT where one would run to completion first)."""
    sim, net, transports, records = build(
        ndp_factory, trim_threshold_bytes=8 * FULL_WIRE)
    transports[0].send_message(3, 200 * MAX_PAYLOAD)
    transports[1].send_message(3, 200 * MAX_PAYLOAD)
    sim.run(until_ps=200 * MS)
    assert len(records) == 2
    finish_gap = abs(records[0][3] - records[1][3])
    total = records[-1][3] - min(r[2] for r in records)
    assert finish_gap < 0.25 * total
