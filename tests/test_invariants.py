"""Property-based end-to-end invariants of the Homa implementation.

Hypothesis drives randomized message schedules through a real network
and checks the properties the protocol must never violate:

* conservation — every submitted message is delivered exactly once;
* physicality — nothing completes faster than the unloaded oracle;
* flow control — granted-but-unreceived never exceeds RTTbytes
  (modulo packet rounding) for any inbound message;
* overcommitment — the number of simultaneously granted-but-unfinished
  messages never exceeds the configured degree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import MS
from repro.homa.config import HomaConfig

from tests.helpers import collect_completions, homa_cluster

# A schedule is a list of (src, dst_offset, size, gap_us) tuples.
schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),   # sender
        st.integers(min_value=1, max_value=5),   # dst = (src + off) % 6
        st.integers(min_value=1, max_value=120_000),  # size
        st.integers(min_value=0, max_value=200),      # gap in us
    ),
    min_size=1, max_size=12,
)


def run_schedule(schedule, homa_cfg=None):
    sim, net, transports = homa_cluster(
        racks=2, hosts_per_rack=3, aggrs=2, homa_cfg=homa_cfg)
    records = collect_completions(transports)
    submitted = []

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        dst = (src + offset) % 6
        sim.schedule_at(clock, transports[src].send_message, dst, size)
        submitted.append((src, dst, size))
    sim.run(until_ps=clock + 400 * MS)
    return sim, net, transports, records, submitted


@given(schedules)
@settings(max_examples=25, deadline=None)
def test_prop_conservation_and_physicality(schedule):
    sim, net, transports, records, submitted = run_schedule(schedule)
    assert len(records) == len(submitted)
    delivered = sorted((msg.src, hid, msg.length) for hid, msg, _ in records)
    assert delivered == sorted(submitted)
    for hid, msg, now in records:
        oracle = net.min_oneway_ps(msg.length,
                                   net.same_rack(msg.src, hid))
        assert now - msg.created_ps >= oracle


@given(schedules)
@settings(max_examples=15, deadline=None)
def test_prop_flow_control_bound(schedule):
    sim, net, transports = homa_cluster(racks=2, hosts_per_rack=3, aggrs=2)
    bound = transports[0].rtt_bytes + 1460
    violations = []

    for transport in transports:
        original = transport._schedule_grants

        def checked(*args, t=transport, original=original):
            original(*args)
            for m in t.inbound.values():
                excess = m.granted - m.bytes_received
                if excess > bound:
                    violations.append(excess)

        transport._schedule_grants = checked

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        sim.schedule_at(clock, transports[src].send_message,
                        (src + offset) % 6, size)
    sim.run(until_ps=clock + 300 * MS)
    assert not violations


@given(schedules, st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_prop_overcommitment_degree_respected(schedule, degree):
    cfg = HomaConfig(n_sched_override=degree)
    sim, net, transports = homa_cluster(racks=2, hosts_per_rack=3, aggrs=2,
                                        homa_cfg=cfg)
    over_limit = []

    for transport in transports:
        original = transport._schedule_grants
        unsched = transport.unsched_limit

        def checked(*args, t=transport, original=original, unsched=unsched):
            original(*args)
            # Messages being actively granted: beyond their unscheduled
            # prefix but not yet granted to completion.  A message whose
            # grant already reached its length is merely draining its
            # last RTTbytes and frees its overcommitment slot (the
            # receiver stops granting it), so it does not count.
            active = sum(
                1 for m in t.inbound.values()
                if min(unsched, m.length) < m.granted < m.length)
            if active > degree:
                over_limit.append(active)
        transport._schedule_grants = checked

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        sim.schedule_at(clock, transports[src].send_message,
                        (src + offset) % 6, size)
    sim.run(until_ps=clock + 300 * MS)
    assert not over_limit


@given(st.lists(st.integers(min_value=1, max_value=60_000),
                min_size=2, max_size=8))
@settings(max_examples=20, deadline=None)
def test_prop_rpc_conservation(sizes):
    """Every RPC completes exactly once with the echoed length."""
    from repro.apps.echo import echo_handler

    sim, net, transports = homa_cluster(racks=1, hosts_per_rack=4, aggrs=0)
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    done = []
    for index, size in enumerate(sizes):
        transports[0].send_rpc(1 + index % 3, size,
                               on_response=lambda rid, msg:
                               done.append(msg.length))
    sim.run(until_ps=400 * MS)
    assert sorted(done) == sorted(sizes)
    assert not transports[0].client_rpcs
