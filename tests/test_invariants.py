"""Property-based end-to-end invariants of the Homa implementation.

Hypothesis drives randomized message schedules through a real network
and checks the properties the protocol must never violate:

* conservation — every submitted message is delivered exactly once;
* physicality — nothing completes faster than the unloaded oracle;
* flow control — granted-but-unreceived never exceeds the grant window
  (RTTbytes plus the batch pacing slack, modulo packet rounding) for
  any inbound message;
* overcommitment — no single scheduling pass extends grants to more
  messages than the configured degree.

Conservation/physicality run in both grant-pacing modes (legacy
per-packet and the default batched pacer); the other invariants hold
for whichever mode the default config selects, with bounds read off
the transport so they track the configuration.

The loss axis re-checks conservation on lossy fabrics: with drops
injected at every tier, an RPC may fail, but it must fail *loudly*
(section 3.7 abort) — at event exhaustion every submitted RPC is
accounted for as a completion or an error, client state has drained,
and any leftover server response is a bounded dead-peer orphan
(docs/FABRICS.md).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import MS
from repro.homa.config import HomaConfig

from tests.helpers import collect_completions, fabric_cluster, homa_cluster

# A schedule is a list of (src, dst_offset, size, gap_us) tuples.
schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),   # sender
        st.integers(min_value=1, max_value=5),   # dst = (src + off) % 6
        st.integers(min_value=1, max_value=120_000),  # size
        st.integers(min_value=0, max_value=200),      # gap in us
    ),
    min_size=1, max_size=12,
)


def run_schedule(schedule, homa_cfg=None):
    sim, net, transports = homa_cluster(
        racks=2, hosts_per_rack=3, aggrs=2, homa_cfg=homa_cfg)
    records = collect_completions(transports)
    submitted = []

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        dst = (src + offset) % 6
        sim.schedule_at(clock, transports[src].send_message, dst, size)
        submitted.append((src, dst, size))
    sim.run(until_ps=clock + 400 * MS)
    return sim, net, transports, records, submitted


@pytest.mark.parametrize("grant_batch_ns", [0, HomaConfig().grant_batch_ns],
                         ids=["per-packet", "batched"])
@given(schedules)
@settings(max_examples=25, deadline=None)
def test_prop_conservation_and_physicality(grant_batch_ns, schedule):
    cfg = HomaConfig(grant_batch_ns=grant_batch_ns)
    sim, net, transports, records, submitted = run_schedule(
        schedule, homa_cfg=cfg)
    assert len(records) == len(submitted)
    delivered = sorted((msg.src, hid, msg.length) for hid, msg, _ in records)
    assert delivered == sorted(submitted)
    for hid, msg, now in records:
        oracle = net.min_oneway_ps(msg.length,
                                   net.same_rack(msg.src, hid))
        assert now - msg.created_ps >= oracle


@given(schedules)
@settings(max_examples=15, deadline=None)
def test_prop_flow_control_bound(schedule):
    sim, net, transports = homa_cluster(racks=2, hosts_per_rack=3, aggrs=2)
    # grant_window = RTTbytes + the batch pacing slack (0 when the
    # pacer is off); grants are rounded up to whole packets.
    bound = transports[0].grant_window + 1460
    violations = []

    for transport in transports:
        original = transport._schedule_grants

        def checked(*args, t=transport, original=original):
            original(*args)
            for m in t.inbound.values():
                excess = m.granted - m.bytes_received
                if excess > bound:
                    violations.append(excess)

        transport._schedule_grants = checked

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        sim.schedule_at(clock, transports[src].send_message,
                        (src + offset) % 6, size)
    sim.run(until_ps=clock + 300 * MS)
    assert not violations


@given(schedules, st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_prop_overcommitment_degree_respected(schedule, degree):
    """No single scheduling pass extends grants to more than ``degree``
    messages.  That is the contract the receiver actually enforces:
    grants are never retracted, so a message granted while it ranked in
    the top-K keeps its outstanding window after a shorter message
    preempts it — the *cumulative* number of partially-granted messages
    can therefore legitimately exceed the degree (hypothesis finds such
    schedules: two concurrent ~8-packet messages at degree 1), but each
    pass only ever feeds the top-K active set."""
    cfg = HomaConfig(n_sched_override=degree)
    sim, net, transports = homa_cluster(racks=2, hosts_per_rack=3, aggrs=2,
                                        homa_cfg=cfg)
    over_limit = []

    for transport in transports:
        original = transport._schedule_grants

        def checked(*args, t=transport, original=original):
            before = {key: m.granted for key, m in t.inbound.items()}
            original(*args)
            # No inbound message appears between the snapshot and the
            # pass, so every increase is a GRANT this pass emitted.
            extended = sum(
                1 for key, m in t.inbound.items()
                if m.granted > before.get(key, m.granted))
            if extended > degree:
                over_limit.append(extended)
        transport._schedule_grants = checked

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        sim.schedule_at(clock, transports[src].send_message,
                        (src + offset) % 6, size)
    sim.run(until_ps=clock + 300 * MS)
    assert not over_limit


@given(st.lists(st.integers(min_value=1, max_value=60_000),
                min_size=2, max_size=8))
@settings(max_examples=20, deadline=None)
def test_prop_rpc_conservation(sizes):
    """Every RPC completes exactly once with the echoed length."""
    from repro.apps.echo import echo_handler

    sim, net, transports = homa_cluster(racks=1, hosts_per_rack=4, aggrs=0)
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    done = []
    for index, size in enumerate(sizes):
        transports[0].send_rpc(1 + index % 3, size,
                               on_response=lambda rid, msg:
                               done.append(msg.length))
    sim.run(until_ps=400 * MS)
    assert sorted(done) == sorted(sizes)
    assert not transports[0].client_rpcs


@given(schedules,
       st.sampled_from([0.01, 0.03, 0.08]),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None)
def test_prop_rpc_conservation_under_loss(schedule, rate, seed):
    """Conservation at event exhaustion on a lossy fabric.

    With drops injected at every TOR an RPC may fail, but it must fail
    loudly: every submission ends as exactly one completion or one
    error (3.7 abort), client-side state drains completely, and the
    only leftover sender state is dead-peer response orphans — bounded
    by the errors and re-executions that created them.
    """
    from repro.apps.echo import echo_handler
    from repro.core.faults import LossRates
    from repro.core.topology import TopologySpec

    spec = TopologySpec(levels=2, racks=2, hosts_per_rack=3, aggrs=1,
                        loss=LossRates(tor=rate))
    sim, net, transports = fabric_cluster(spec, seed=seed)
    for transport in transports:
        transport.rpc_handler = echo_handler
    stats = {"done": 0, "errors": 0}

    def submit(src, dst, size):
        transports[src].send_rpc(
            dst, size,
            on_response=lambda rid, msg: stats.update(
                done=stats["done"] + 1),
            on_error=lambda rid: stats.update(
                errors=stats["errors"] + 1))

    clock = 0
    for src, offset, size, gap_us in schedule:
        clock += gap_us * 1_000_000
        sim.schedule_at(clock, submit, src, (src + offset) % 6, size)
    sim.run()  # to exhaustion: retry budgets guarantee termination

    assert stats["done"] + stats["errors"] == len(schedule)
    orphans = 0
    for transport in transports:
        assert not transport.client_rpcs
        assert not transport.inbound
        for msg in transport.outbound.values():
            # Dead-peer orphan: an inert response whose client is gone.
            assert not msg.is_request
            assert msg.rpc_id not in transports[msg.dst].client_rpcs
            orphans += 1
    allowance = (stats["errors"]
                 + sum(t.reexecutions for t in transports))
    assert orphans <= allowance
