"""Cross-protocol recovery battery (docs/FABRICS.md).

Every registered protocol must survive injected loss and fabric
faults.  The contract, per protocol, at event exhaustion:

* **conservation** — every submitted message is delivered at most
  once, and every undelivered message is accounted for: a sender
  give-up (``outbound_gaveups``), or — Homa one-ways only — a blind
  loss (the entire unscheduled transmission destroyed before either
  end held recoverable state, bounded by the fabric's drop count);
* **no leaks** — no transport dictionary (inbound, outbound, flows,
  token buckets, recovery trackers) retains an entry once the event
  queue drains; the give-up budgets guarantee exhaustion itself;
* **clean fabrics untouched** — with no loss filters and no fault
  schedule, the recovery machinery schedules zero events, pinned
  here by byte-exact slowdown digests for all eight protocols.

The deterministic batteries fix a schedule and sweep loss rates and
fault schedules; the hypothesis battery fuzzes schedules x loss x
seed per protocol.  Edge cases at the bottom pin the bug classes the
wiring is most prone to: duplicate delivery after a lost final ACK,
late ACKs racing a give-up, and outages shorter than the retry
budget (fault-restore mid-backoff).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Simulator
from repro.core.faults import FaultEvent, LossRates
from repro.core.packet import Packet, PacketType
from repro.core.topology import TopologySpec
from repro.core.units import MS, US
from repro.experiments.campaign import slowdown_digest
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.metrics.control import FabricHealth
from repro.transport.registry import PROTOCOLS

from tests.helpers import collect_completions, protocol_cluster

# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------

#: 2 racks x 2 hosts (hids 0,1 | 2,3) behind one aggregation switch.
def _spec(loss=None, faults=()):
    return TopologySpec(levels=2, racks=2, hosts_per_rack=2, aggrs=1,
                        loss=loss or LossRates(), faults=tuple(faults))


#: every dict a transport may hold per-message state in; all must be
#: empty at event exhaustion (give-ups pop them, completions pop them).
STATE_DICTS = (
    "inbound", "outbound", "flows", "tokens", "client_rpcs",
    "server_rpcs", "_sent_msgs", "_msg_conn", "_lingering",
    "_pulls_issued", "_orphan_rounds", "_grantable",
    "last_data_ps", "token_grant_ps", "blacklisted_until",
)

#: recovery trackers; must have forgotten every key at exhaustion.
TRACKERS = ("_in_watch", "_out_watch", "_flow_watch")


def assert_no_leaks(transports):
    for t in transports:
        for attr in STATE_DICTS:
            held = getattr(t, attr, None)
            assert not held, (
                f"{t.protocol_name} host {t.hid} leaked {attr}: "
                f"{list(held)[:4]}")
        for attr in TRACKERS:
            tracker = getattr(t, attr, None)
            assert tracker is None or len(tracker) == 0, (
                f"{t.protocol_name} host {t.hid} leaked tracker {attr}")
        # Stream connections: residual queue entries must be inert
        # (fully sent, nothing queued for retransmission).
        for conns in getattr(t, "connections", {}).values():
            for conn in conns:
                for msg in conn.queue:
                    assert msg.fully_sent() and not msg.rtx, (
                        f"stream host {t.hid} leaked live queued message")


def run_battery(protocol, schedule, spec, seed, horizon_ps=500 * MS):
    """Drive ``schedule`` = [(src, dst, size, gap_ps)] to exhaustion."""
    sim, net, transports = protocol_cluster(protocol, spec, seed=seed)
    records = collect_completions(transports)
    submitted = []
    clock = 0
    for src, dst, size, gap_ps in schedule:
        clock += gap_ps
        sim.schedule_at(clock, transports[src].send_message, dst, size)
        submitted.append((src, dst, size))
    sim.run(until_ps=clock + horizon_ps)
    # The give-up budgets bound every retry path: the queue must be
    # *exhausted* at the horizon, not merely truncated by it.
    assert sim.run(until_ps=sim.now + 50 * MS) == 0, (
        f"{protocol}: events still pending past the recovery horizon")
    return sim, net, transports, records, submitted


def assert_conserved(protocol, net, transports, records, submitted):
    # At-most-once delivery: no (src, dst, rpc) completes twice.
    keys = [(msg.src, hid, msg.rpc_id, msg.is_request)
            for hid, msg, _ in records]
    assert len(set(keys)) == len(keys), f"{protocol}: duplicate delivery"
    delivered = sorted((msg.src, hid, msg.length) for hid, msg, _ in records)
    assert len(delivered) <= len(submitted)
    remaining = sorted(submitted)
    for item in delivered:
        remaining.remove(item)  # raises if a phantom message completed
    missing = len(remaining)
    health = FabricHealth.collect(net)
    if health.total_drops == 0:
        assert missing == 0, f"{protocol}: lost messages without drops"
    out_gaveups = sum(t.outbound_gaveups for t in transports)
    if protocol in ("homa", "basic"):
        # Homa one-ways can be blind-lost: the whole unscheduled
        # transmission destroyed before any state existed (senders
        # keep no timers, section 3.7; end-to-end retry is the
        # application's job, section 3.8).  Bounded by the drops.
        assert missing <= out_gaveups + health.total_drops
    else:
        # Baseline senders hold state until acked: every undelivered
        # message must have been given up, loudly.
        assert missing <= out_gaveups, (
            f"{protocol}: {missing} missing > {out_gaveups} give-ups")
    rtx = sum(t.rtx_data_sent for t in transports)
    recovered = sum(t.rtx_recovered for t in transports)
    assert recovered <= rtx
    assert_no_leaks(transports)
    return missing, health


# A deterministic mixed-size schedule: single-packet messages, a few
# multi-packet ones crossing the aggregation layer, some intra-rack.
SCHEDULE = [
    (0, 2, 40_000, 0),
    (1, 3, 1_400, 2 * US),
    (2, 1, 12_000, 1 * US),
    (3, 0, 90_000, 3 * US),
    (0, 1, 800, 1 * US),
    (2, 3, 6_000, 2 * US),
    (1, 2, 56_000, 4 * US),
    (3, 2, 300, 1 * US),
    (0, 3, 20_000, 5 * US),
    (2, 0, 3_000, 2 * US),
]


# ---------------------------------------------------------------------------
# deterministic battery: every protocol x loss rates x a fault schedule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("rate,seed", [(0.02, 3), (0.08, 11)])
def test_conservation_under_loss(protocol, rate, seed):
    spec = _spec(loss=LossRates(tor=rate, aggr=rate / 2))
    sim, net, transports, records, submitted = run_battery(
        protocol, SCHEDULE, spec, seed)
    missing, health = assert_conserved(
        protocol, net, transports, records, submitted)
    assert health.total_drops > 0, "loss rate produced no drops; vacuous"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_conservation_under_loss_and_faults(protocol):
    """Loss plus a mid-run outage of the only aggregation uplink from
    rack 0: packets black-hole while it is down, then recovery resumes
    on the restored path."""
    spec = _spec(
        loss=LossRates(tor=0.02),
        faults=[FaultEvent(0.01, "link", "down", "tor0:aggr0.0"),
                FaultEvent(0.08, "link", "up", "tor0:aggr0.0")])
    sim, net, transports, records, submitted = run_battery(
        protocol, SCHEDULE, spec, seed=7)
    missing, health = assert_conserved(
        protocol, net, transports, records, submitted)
    assert health.faults_applied == 2


# ---------------------------------------------------------------------------
# hypothesis battery: schedules x loss rates x seeds, per protocol
# ---------------------------------------------------------------------------

lossy_cases = st.tuples(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),       # src
            st.integers(min_value=1, max_value=3),       # dst offset
            st.integers(min_value=1, max_value=60_000),  # size
            st.integers(min_value=0, max_value=5),       # gap in us
        ),
        min_size=1, max_size=6,
    ),
    st.sampled_from([0.01, 0.04, 0.10]),                 # loss rate
    st.integers(min_value=0, max_value=40),              # fabric seed
)


@pytest.mark.parametrize("protocol", PROTOCOLS)
@given(lossy_cases)
@settings(max_examples=6, deadline=None)
def test_prop_conservation_under_loss(protocol, case):
    raw, rate, seed = case
    schedule = [(src, (src + off) % 4, size, gap_us * US)
                for src, off, size, gap_us in raw]
    spec = _spec(loss=LossRates(tor=rate))
    sim, net, transports, records, submitted = run_battery(
        protocol, schedule, spec, seed)
    assert_conserved(protocol, net, transports, records, submitted)


# ---------------------------------------------------------------------------
# clean fabrics: recovery must not schedule a single event
# ---------------------------------------------------------------------------

#: slowdown digests of the growth seed, byte-for-byte.  Recovery is
#: armed only when ``net.may_drop()``; any drift here means the loss
#: machinery leaked into the clean path (see docs/FABRICS.md).
CLEAN_DIGESTS = {
    "homa":      "9c91f2cf261c3606794741cb55f6ec34871ecb52a708ece13b96528c66749d7e",
    "basic":     "094997854d98af8cb044fa1edaaf64c3786e17b38872db8e4ad52fe3f589ad36",
    "pfabric":   "8e7e2d8dd9720ba2b66d39c524830d80cc9a8aa6bdd6ab46644af052c1ea8179",
    "phost":     "a7c977a12023e9f4a4397a3697b700574a8cd373878f5fa5b4e4f2b1e23dedb0",
    "pias":      "b13b6851bdcbf1c101df754ed2557208f9d11722dd046aa01d878ba5639de626",
    "ndp":       "dbeec719ce48974a4621945624c86683a5da06f4ef015c756de1e316cf534d7a",
    "stream":    "7c9a28c49d98ed3b84eb00b0a717d08dfabb99442f25f645a4269378f953d31a",
    "stream_mc": "193cd890f8092b4d7df042ceaf2c9df984355480b0c48c9a40818ff867bd8005",
}


@pytest.mark.parametrize("protocol", sorted(CLEAN_DIGESTS))
def test_clean_fabric_digest_pinned(protocol):
    kwargs = dict(protocol=protocol, workload="W2", racks=2,
                  hosts_per_rack=2, aggrs=1, duration_ms=2.0,
                  warmup_ms=0.0, drain_ms=6.0, max_messages=120,
                  load=0.4, seed=3)
    if protocol == "ndp":
        kwargs.update(workload="W5", load=0.3, duration_ms=30.0,
                      drain_ms=40.0, max_messages=6)
    result = run_experiment(ExperimentConfig(**kwargs))
    assert result.completed > 0
    assert result.control.rtx_data == 0
    assert result.control.give_ups == 0
    assert slowdown_digest({protocol: result}) == CLEAN_DIGESTS[protocol]


def test_clean_fabric_disarms_recovery():
    sim, net, transports = protocol_cluster("stream", _spec(), seed=1)
    for t in transports:
        assert t.recovery is None
        assert t._out_watch is None and t._in_watch is None


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------

#: negligible but nonzero loss: arms the recovery machinery through the
#: registry exactly like a real lossy fabric, while (at these seeds) no
#: packet of the tiny driving schedules is actually dropped.
ARMED = _spec(loss=LossRates(tor=1e-9))


def _one_delivery(protocol, size=900):
    sim, net, transports = protocol_cluster(protocol, ARMED, seed=1)
    records = collect_completions(transports)
    msg = transports[0].send_message(2, size)
    # A short horizon: the duplicate below must land inside the
    # receiver's done-memory, as a real bounded-budget retrier would.
    sim.run(until_ps=200 * US)
    assert len(records) == 1
    return sim, transports, records, msg


@pytest.mark.parametrize("protocol",
                         ["pfabric", "phost", "pias", "ndp", "stream"])
def test_duplicate_data_after_completion_is_idempotent(protocol):
    """An rtx raced by the original (or a lost final ACK) re-delivers
    DATA for a completed message: the receiver must re-acknowledge,
    never re-register — a fresh partial inbound is a duplicate
    delivery waiting to complete."""
    sim, transports, records, msg = _one_delivery(protocol)
    receiver = transports[2]
    dup = Packet(0, 2, PacketType.DATA, payload=msg.length,
                 rpc_id=msg.rpc_id, is_request=True, offset=0,
                 total_length=msg.length, retx=True,
                 created_ps=msg.created_ps)
    receiver.on_packet(dup)
    sim.run(until_ps=sim.now + 1 * MS)
    assert len(records) == 1, f"{protocol}: duplicate delivery"
    assert not receiver.inbound, f"{protocol}: re-registered a done message"


@pytest.mark.parametrize("protocol",
                         ["pfabric", "phost", "pias", "ndp", "stream"])
def test_late_ack_after_give_up_is_a_noop(protocol):
    """The sender's give-up races a late ACK still in flight: the ACK
    must not crash, resurrect sender state, or double-count."""
    sim, net, transports = protocol_cluster(protocol, ARMED, seed=1)
    sender = transports[0]
    msg = sender.send_message(2, 4_000)
    # Force the give-up before anything is acked.
    for attr in ("flows", "outbound", "_sent_msgs"):
        state = getattr(sender, attr, None)
        if state and msg.key in state:
            hook = {"pfabric": None, "pias": None,
                    "phost": getattr(sender, "_out_give_up", None),
                    "ndp": getattr(sender, "_flow_give_up", None),
                    "stream": getattr(sender, "_rtx_give_up", None),
                    }[protocol]
            if hook is not None:
                hook(msg.key)
            else:
                state.pop(msg.key)
                sender.outbound_gaveups += 1
            break
    before = sender.outbound_gaveups
    ack = Packet(2, 0, PacketType.ACK, rpc_id=msg.rpc_id, is_request=True,
                 offset=0, range_end=msg.length)
    sender.on_packet(ack)
    sim.run(until_ps=sim.now + 50 * MS)
    for attr in ("flows", "outbound", "_sent_msgs"):
        state = getattr(sender, attr, None)
        assert not state or msg.key not in state, (
            f"{protocol}: late ACK resurrected sender state")
    assert sender.outbound_gaveups == before


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fault_restore_mid_backoff_delivers_everything(protocol):
    """An outage shorter than every retry budget: the only rack-0
    uplink dies at 50 us with three large messages mid-flight and comes
    back at 150 us.  Backed-off retries must span the outage and finish
    the job — no give-ups, no losses."""
    spec = _spec(faults=[FaultEvent(0.05, "link", "down", "tor0:aggr0.0"),
                         FaultEvent(0.15, "link", "up", "tor0:aggr0.0")])
    schedule = [(0, 2, 150_000, 0), (3, 1, 90_000, 0), (1, 3, 30_000, 0)]
    sim, net, transports, records, submitted = run_battery(
        protocol, schedule, spec, seed=2)
    missing, health = assert_conserved(
        protocol, net, transports, records, submitted)
    assert missing == 0, f"{protocol}: outage inside budget still lost data"
    assert sum(t.outbound_gaveups + t.inbound_gaveups
               for t in transports) == 0
    assert health.faults_applied == 2
    assert health.total_drops > 0  # the outage really destroyed packets


def test_homa_peer_gc_retires_wedged_outbound():
    """A permanent outage strands rack-0 senders mid-message with
    granted-but-unsendable outbound state.  Without the peer-liveness
    GC that state (and its timer) leaks forever; with it, every side
    retires within the resend budget and the event queue drains."""
    spec = _spec(faults=[FaultEvent(0.05, "link", "down", "tor0:aggr0.0")])
    schedule = [(0, 2, 150_000, 0), (2, 0, 150_000, 0), (0, 1, 12_000, 0)]
    sim, net, transports, records, submitted = run_battery(
        "homa", schedule, spec, seed=2)
    # The intra-rack message never crossed the dead link.
    assert (0, 1, 12_000) in [(m.src, h, m.length) for h, m, _ in records]
    assert_no_leaks(transports)
    assert sum(t.outbound_gaveups for t in transports) >= 1, \
        "peer GC never fired"


def test_pias_late_gobackn_never_redelivers():
    """Regression pin: PIAS's sender retries on its RTO scale (>=200 us
    floor), far past the generic recovery horizon — the receiver's
    done-memory expired mid-backoff and a late go-back-N re-registered
    a completed message as a fresh inbound, which then *completed
    again* (observed: 81 completions of 80 submissions, W2/seed 5).
    Done-memory now refreshes on every re-ACK and PIAS raises its
    horizon to the RTO scale."""
    spec = _spec(loss=LossRates(tor=0.02, aggr=0.01))
    result = run_experiment(ExperimentConfig(
        protocol="pias", workload="W2", load=0.4, duration_ms=2.0,
        warmup_ms=0.0, drain_ms=30.0, max_messages=80, seed=5,
        fabric=spec, racks=2, hosts_per_rack=2, aggrs=1))
    assert result.submitted == 80
    assert result.completed <= result.submitted, "duplicate delivery"
    assert result.completed + result.pending == result.submitted
