"""Calibration tests: the W1-W5 reconstructions must reproduce the
byte-weighted properties the paper states (DESIGN.md section 6)."""

import numpy as np
import pytest

from repro.core.packet import MAX_PAYLOAD
from repro.workloads.catalog import WORKLOADS, get_workload

RTT_BYTES = 9680  # paper: "about 9.7 Kbytes"


def unsched_fraction(workload) -> float:
    cdf = workload.cdf
    return cdf.mean_truncated(RTT_BYTES) / cdf.mean()


def test_catalog_has_all_five():
    assert sorted(WORKLOADS) == ["W1", "W2", "W3", "W4", "W5"]


def test_get_workload_case_insensitive():
    assert get_workload("w3").key == "W3"


def test_get_workload_unknown():
    with pytest.raises(KeyError):
        get_workload("W9")


def test_ordering_by_mean_size():
    """Figure 1: workloads ordered by average message size, W1 smallest."""
    means = [WORKLOADS[k].cdf.mean() for k in ("W1", "W2", "W3", "W4", "W5")]
    assert means == sorted(means)


def test_w1_bytes_mostly_under_1000():
    """Paper section 2.1: >70% of W1 bytes in messages < 1000 B."""
    assert WORKLOADS["W1"].cdf.byte_fraction_below(1000) > 0.60


def test_w1_messages_mostly_tiny():
    """Figure 1: >85% of W1 messages below 1000 bytes."""
    assert WORKLOADS["W1"].cdf.mass_below(1000) > 0.85


def test_w2_unscheduled_fraction_near_80_percent():
    """Figure 4: about 80% of W2 bytes are unscheduled."""
    assert 0.70 <= unsched_fraction(WORKLOADS["W2"]) <= 0.88


def test_w3_unscheduled_fraction_near_half():
    """Figure 21: W3 splits priorities evenly (4 unscheduled, 4 scheduled)."""
    assert 0.44 <= unsched_fraction(WORKLOADS["W3"]) <= 0.56


def test_w4_w5_unscheduled_fraction_small():
    """Section 5.2: W4 and W5 get only one unscheduled priority level."""
    assert unsched_fraction(WORKLOADS["W4"]) < 0.15
    assert unsched_fraction(WORKLOADS["W5"]) < 0.05


def test_w5_sizes_are_whole_packets():
    rng = np.random.default_rng(0)
    sizes = WORKLOADS["W5"].cdf.sample(rng, 5000)
    assert (sizes % MAX_PAYLOAD == 0).all()


def test_w5_heavy_tail():
    """DCTCP websearch: the vast majority of bytes in messages > 1 MB."""
    cdf = WORKLOADS["W5"].cdf
    assert 1.0 - cdf.byte_fraction_below(1_000_000) > 0.80


def test_deciles_match_paper_ticks():
    """Sanity: quantile() must return the anchor values at the deciles."""
    w3 = WORKLOADS["W3"].cdf
    expected = [36, 77, 110, 158, 268, 313, 402, 573, 1755]
    assert w3.deciles() == expected


def test_w4_deciles_match_paper_ticks():
    w4 = WORKLOADS["W4"].cdf
    expected = [315, 376, 502, 561, 662, 960, 6387, 49408, 120373]
    assert w4.deciles() == expected


def test_bucket_edges_cover_support():
    for workload in WORKLOADS.values():
        edges = workload.bucket_edges()
        assert edges[0] == 0
        assert edges[-1] == workload.cdf.max_bytes()
        assert edges == sorted(edges)


def test_means_are_plausible():
    """Loose absolute scales (documented in DESIGN.md): W1 a few hundred
    bytes, W5 a few megabytes."""
    assert 100 <= WORKLOADS["W1"].cdf.mean() <= 500
    assert 1e6 <= WORKLOADS["W5"].cdf.mean() <= 5e6
