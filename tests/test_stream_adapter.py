"""Tests for the byte-stream-over-Homa adapter (section 3.1)."""

from repro.core.units import MS
from repro.homa.stream_adapter import StreamOverHoma, StreamReceiver

from tests.helpers import homa_cluster


def make_pair():
    sim, net, transports = homa_cluster()
    sender_side = StreamOverHoma(transports[0])
    receiver_side = StreamOverHoma(transports[1])
    return sim, sender_side, receiver_side


def test_in_order_delivery():
    sim, tx, rx = make_pair()
    chunks = []
    stream = tx.open(peer=1)
    rx.listen(stream.stream_id, lambda seq, size: chunks.append((seq, size)))
    for size in (100, 5000, 30, 20000):
        stream.write(size)
    sim.run(until_ps=20 * MS)
    assert chunks == [(0, 100), (1, 5000), (2, 30), (3, 20000)]


def test_order_preserved_despite_srpt():
    """Homa delivers the small chunk's message first (SRPT), but the
    stream layer must hold it until earlier chunks arrive."""
    sim, tx, rx = make_pair()
    chunks = []
    stream = tx.open(peer=1)
    rx.listen(stream.stream_id, lambda seq, size: chunks.append(seq))
    stream.write(400_000)  # slow chunk
    stream.write(50)       # fast chunk: completes first at the transport
    sim.run(until_ps=50 * MS)
    assert chunks == [0, 1]


def test_multiple_streams_independent():
    sim, tx, rx = make_pair()
    a_chunks, b_chunks = [], []
    stream_a = tx.open(peer=1)
    stream_b = tx.open(peer=1)
    rx.listen(stream_a.stream_id, lambda seq, size: a_chunks.append(size))
    rx.listen(stream_b.stream_id, lambda seq, size: b_chunks.append(size))
    stream_a.write(100)
    stream_b.write(200)
    stream_a.write(300)
    sim.run(until_ps=20 * MS)
    assert a_chunks == [100, 300]
    assert b_chunks == [200]


def test_duplicate_chunks_dropped():
    receiver = StreamReceiver(lambda seq, size: None)
    receiver.deliver(0, 100)
    receiver.deliver(0, 100)   # duplicate of a delivered chunk
    receiver.deliver(2, 300)
    receiver.deliver(2, 300)   # duplicate of a pending chunk
    assert receiver.duplicates_dropped == 2
    receiver.deliver(1, 200)
    assert receiver.bytes_delivered == 600
    assert receiver.expected_seq == 3


def test_out_of_order_buffering():
    delivered = []
    receiver = StreamReceiver(lambda seq, size: delivered.append(seq))
    receiver.deliver(2, 10)
    receiver.deliver(1, 10)
    assert delivered == []
    receiver.deliver(0, 10)
    assert delivered == [0, 1, 2]


def test_chained_completion_hook_still_fires():
    sim, net, transports = homa_cluster()
    seen = []
    transports[1].on_message_complete = lambda msg, now: seen.append(msg.length)
    tx = StreamOverHoma(transports[0])
    rx = StreamOverHoma(transports[1])
    stream = tx.open(peer=1)
    rx.listen(stream.stream_id, lambda seq, size: None)
    stream.write(123)
    sim.run(until_ps=5 * MS)
    assert seen == [123]
