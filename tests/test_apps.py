"""Tests for the traffic-generating applications."""

from repro.apps.echo import EchoClient, attach_echo_workload, echo_handler
from repro.apps.incast import IncastClient
from repro.apps.openloop import attach_openloop_workload
from repro.core.units import MS
from repro.workloads.catalog import WORKLOADS

from tests.helpers import collect_completions, homa_cluster


def test_openloop_generates_near_requested_rate():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    rate = 200_000.0  # messages/sec/host
    senders = attach_openloop_workload(
        net, transports, WORKLOADS["W1"].cdf, rate,
        stop_ps=int(5 * MS), seed=5)
    sim.run(until_ps=5 * MS)
    expected = rate * 0.005
    for sender in senders:
        assert expected * 0.6 < sender.submitted < expected * 1.5


def test_openloop_respects_stop_time():
    sim, net, transports = homa_cluster()
    senders = attach_openloop_workload(
        net, transports, WORKLOADS["W1"].cdf, 1e6,
        stop_ps=int(1 * MS), seed=2)
    sim.run(until_ps=10 * MS)
    count_at_stop = sum(s.submitted for s in senders)
    sim.run(until_ps=20 * MS)
    assert sum(s.submitted for s in senders) == count_at_stop


def test_openloop_respects_message_cap():
    sim, net, transports = homa_cluster()
    senders = attach_openloop_workload(
        net, transports, WORKLOADS["W1"].cdf, 1e6,
        stop_ps=int(100 * MS), seed=3, max_messages_total=40)
    sim.run(until_ps=100 * MS)
    assert sum(s.submitted for s in senders) <= 40


def test_openloop_uniform_destinations():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    records = collect_completions(transports)
    attach_openloop_workload(net, transports, WORKLOADS["W1"].cdf,
                             500_000, stop_ps=int(3 * MS), seed=7)
    sim.run(until_ps=10 * MS)
    destinations = {hid for hid, _, _ in records}
    assert len(destinations) == 8  # every host receives something


def test_openloop_never_sends_to_self():
    sim, net, transports = homa_cluster()
    records = collect_completions(transports)
    attach_openloop_workload(net, transports, WORKLOADS["W1"].cdf,
                             500_000, stop_ps=int(2 * MS), seed=9)
    sim.run(until_ps=10 * MS)
    for hid, msg, _ in records:
        assert msg.src != hid


def test_echo_workload_client_server_split():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    done = []
    clients = attach_echo_workload(
        net, transports, WORKLOADS["W1"].cdf, 100_000,
        stop_ps=int(3 * MS), seed=1,
        on_complete=lambda *args: done.append(args))
    sim.run(until_ps=20 * MS)
    assert len(clients) == 4  # half the hosts
    assert done
    for src, dst, size, t0, t1 in done:
        assert src < 4 and dst >= 4
        assert t1 > t0


def test_echo_response_matches_request_size():
    sim, net, transports = homa_cluster()
    transports[1].rpc_handler = echo_handler
    sizes = []
    client = EchoClient(sim, transports[0], [1], WORKLOADS["W1"].cdf,
                        50_000, seed=3, stop_ps=int(4 * MS),
                        on_complete=lambda src, dst, size, t0, t1:
                        sizes.append(size))
    sim.run(until_ps=30 * MS)
    assert client.completed == client.submitted > 0
    assert client.errors == 0


def test_incast_client_keeps_concurrency():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    client = IncastClient(sim, transports[0], list(range(1, 8)), 16)
    assert len(transports[0].client_rpcs) == 16
    sim.run(until_ps=10 * MS)
    # Completions are replaced one for one.
    assert len(transports[0].client_rpcs) == 16
    assert client.completed > 0


def test_incast_client_goodput_positive():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    client = IncastClient(sim, transports[0], list(range(1, 8)), 8)
    sim.run(until_ps=10 * MS)
    assert 0.0 < client.goodput_gbps() <= 10.0


def test_incast_round_robins_servers():
    sim, net, transports = homa_cluster(hosts_per_rack=8)
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    IncastClient(sim, transports[0], list(range(1, 8)), 14)
    destinations = [rpc.dst for rpc in transports[0].client_rpcs.values()]
    assert all(destinations.count(d) == 2 for d in range(1, 8))
    sim.run(until_ps=5 * MS)
