"""Shared test fixtures: small networks with Homa transports attached."""

from __future__ import annotations

from repro.core.engine import Simulator
from repro.core.topology import NetworkConfig, build_fabric, build_network
from repro.homa.config import HomaConfig
from repro.homa.priorities import allocate_priorities
from repro.homa.transport import HomaTransport
from repro.workloads.catalog import get_workload


def small_net(racks=1, hosts_per_rack=4, aggrs=0, **overrides):
    """A small single- or multi-rack network."""
    sim = Simulator()
    cfg = NetworkConfig(racks=racks, hosts_per_rack=hosts_per_rack,
                        aggrs=aggrs, **overrides)
    return sim, build_network(sim, cfg)


def homa_cluster(
    racks=1,
    hosts_per_rack=4,
    aggrs=0,
    homa_cfg: HomaConfig | None = None,
    workload: str = "W3",
    **net_overrides,
):
    """Network + one HomaTransport per host, statically allocated."""
    sim, net = small_net(racks, hosts_per_rack, aggrs, **net_overrides)
    cfg = homa_cfg or HomaConfig()
    rtt = net.rtt_bytes()
    unsched = cfg.resolved_unsched_limit(rtt)
    alloc = allocate_priorities(
        get_workload(workload).cdf, unsched,
        n_prios=cfg.n_prios,
        n_unsched_override=cfg.n_unsched_override,
        n_sched_override=cfg.n_sched_override,
        cutoff_override=cfg.cutoff_override,
    )
    transports = net.attach_transports(
        lambda host: HomaTransport(sim, cfg, alloc, rtt,
                                   link_gbps=net.cfg.host_gbps))
    return sim, net, transports


def fabric_cluster(
    spec,
    seed=1,
    homa_cfg: HomaConfig | None = None,
    workload: str = "W3",
    **net_overrides,
):
    """Fabric from a TopologySpec + one HomaTransport per host.

    ``build_fabric`` installs the spec's loss filters and arms its fault
    schedule; clean 2-level specs lower to the canonical ``Network``.
    """
    sim = Simulator()
    net = build_fabric(sim, spec, seed=seed, overrides=net_overrides)
    cfg = homa_cfg or HomaConfig()
    rtt = net.rtt_bytes()
    unsched = cfg.resolved_unsched_limit(rtt)
    alloc = allocate_priorities(
        get_workload(workload).cdf, unsched,
        n_prios=cfg.n_prios,
        n_unsched_override=cfg.n_unsched_override,
        n_sched_override=cfg.n_sched_override,
        cutoff_override=cfg.cutoff_override,
    )
    transports = net.attach_transports(
        lambda host: HomaTransport(sim, cfg, alloc, rtt,
                                   link_gbps=net.cfg.host_gbps))
    return sim, net, transports


def protocol_cluster(
    protocol: str,
    spec,
    seed=1,
    workload: str = "W2",
    **net_overrides,
):
    """Fabric from a TopologySpec + one transport per host via the
    protocol registry.

    The registry arms loss recovery iff the spec can drop packets
    (``net.may_drop()``), exactly as the experiment runner does — so
    these clusters exercise the same recovery wiring the battery
    validates (tests/test_recovery.py).
    """
    from repro.transport.registry import network_overrides, transport_factory

    sim = Simulator()
    overrides = dict(network_overrides(protocol))
    overrides.update(net_overrides)
    net = build_fabric(sim, spec, seed=seed, overrides=overrides)
    cdf = get_workload(workload).cdf
    transports = net.attach_transports(
        transport_factory(protocol, sim, net, cdf))
    return sim, net, transports


class FakeEgress:
    """Stub NIC egress for direct-transport tests.

    Reports "wire busy" so ``send_ctrl`` queues control packets in
    ``transport.ctrl``, where tests inspect them.
    """

    busy = True

    def __init__(self):
        self.kicks = 0

    def kick(self):
        self.kicks += 1

    def _next(self):
        pass


class FakeHost:
    """Stub host binding for driving a transport without a network."""

    def __init__(self, sim, hid):
        self.sim = sim
        self.hid = hid
        self.egress = FakeEgress()


def drain_ctrl(transport):
    """Pop and return every queued control packet."""
    out = []
    while transport.ctrl:
        out.append(transport.ctrl.popleft())
    return out


def collect_completions(transports):
    """Attach completion recorders; returns the shared record list."""
    records = []

    def make_hook(hid):
        def hook(msg, now):
            records.append((hid, msg, now))
        return hook

    for transport in transports:
        transport.on_message_complete = make_hook(transport.hid)
    return records
