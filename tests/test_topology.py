"""Tests for topology construction and the paper's timing constants."""

import pytest

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.core.topology import Network, NetworkConfig, build_network
from repro.core.units import US


def make_net(**overrides) -> Network:
    return build_network(Simulator(), NetworkConfig(**overrides))


def test_default_topology_matches_figure_11():
    net = make_net()
    assert len(net.hosts) == 144
    assert len(net.tors) == 9
    assert len(net.aggrs) == 4
    assert len(net.tor_down_ports) == 144
    assert len(net.tor_up_ports) == 9 * 4
    assert len(net.aggr_down_ports) == 4 * 9


def test_rtt_matches_paper_7_8_us():
    net = make_net()
    rtt = net.rtt_ps()
    # Paper section 5.2: "about 7.8 us".
    assert abs(rtt - 7_744_000) < 1_000
    assert 7.5 * US < rtt < 8.0 * US


def test_rtt_bytes_matches_paper_9_7_kb():
    net = make_net()
    # Paper: "RTTbytes is about 9.7 Kbytes".
    assert net.rtt_bytes() == 9680


def test_min_oneway_small_message_close_to_paper():
    net = make_net()
    t = net.min_oneway_ps(1)
    # Paper: "The minimum one-way time for a small message is 2.3 us";
    # our framing gives 2.418 us (documented in DESIGN.md).
    assert 2_300_000 <= t <= 2_500_000


def test_min_oneway_same_rack_faster():
    net = make_net()
    assert net.min_oneway_ps(1000, same_rack=True) < net.min_oneway_ps(1000)


def test_min_oneway_monotone_in_size():
    net = make_net()
    times = [net.min_oneway_ps(s) for s in (1, 100, 1460, 5000, 100_000)]
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_min_oneway_large_message_dominated_by_serialization():
    net = make_net()
    size = 100 * MAX_PAYLOAD
    t = net.min_oneway_ps(size)
    serialization = 100 * 1538 * 800
    assert t > serialization
    assert t < serialization + 6 * US


def test_min_rpc_is_sum_of_legs():
    net = make_net()
    assert net.min_rpc_ps(100, 100) == 2 * net.min_oneway_ps(100)


def test_min_oneway_cache_consistent():
    net = make_net()
    first = net.min_oneway_ps(12345)
    second = net.min_oneway_ps(12345)
    assert first == second


def test_single_rack_topology_has_no_aggrs():
    net = make_net(racks=1, hosts_per_rack=16, aggrs=0)
    assert len(net.hosts) == 16
    assert not net.aggrs
    assert not net.tor_up_ports


def test_single_rack_rtt_shorter_than_fat_tree():
    single = make_net(racks=1, hosts_per_rack=16, aggrs=0)
    fat = make_net()
    assert single.rtt_ps() < fat.rtt_ps()


def test_rack_helpers():
    net = make_net()
    assert net.rack_of(0) == 0
    assert net.rack_of(15) == 0
    assert net.rack_of(16) == 1
    assert net.same_rack(3, 12)
    assert not net.same_rack(3, 20)


def test_multi_rack_requires_aggrs():
    with pytest.raises(ValueError):
        make_net(racks=2, aggrs=0)


def test_bad_queue_mode_rejected():
    with pytest.raises(ValueError):
        make_net(queue_mode="fifo")


class _Sink:
    """Transport stand-in that records deliveries and sends nothing."""

    def __init__(self):
        self.received = []

    def bind(self, host):
        self.host = host

    def on_packet(self, pkt):
        self.received.append((self.host.sim.now, pkt))

    def next_packet(self):
        return None


def test_cross_rack_delivery_time_matches_oracle():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    sinks = net.attach_transports(lambda host: _Sink())
    src, dst = 0, 143  # different racks
    pkt = Packet(src, dst, PacketType.DATA, payload=1000, prio=5,
                 rpc_id=1, total_length=1000)
    net.hosts[src].egress._transmit(pkt)
    sim.run()
    assert len(sinks[dst].received) == 1
    arrival, received = sinks[dst].received[0]
    assert received is pkt
    assert arrival == net.min_oneway_ps(1000)


def test_same_rack_delivery_time_matches_oracle():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    sinks = net.attach_transports(lambda host: _Sink())
    src, dst = 0, 1
    pkt = Packet(src, dst, PacketType.DATA, payload=200, prio=5, rpc_id=1)
    net.hosts[src].egress._transmit(pkt)
    sim.run()
    arrival, _ = sinks[dst].received[0]
    assert arrival == net.min_oneway_ps(200, same_rack=True)


def test_spraying_distributes_across_aggrs():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    net.attach_transports(lambda host: _Sink())
    counts = [0] * 4
    tor = net.tors[0]
    for _ in range(400):
        pkt = Packet(0, 143, PacketType.DATA, payload=100, prio=4, rpc_id=1)
        port = tor.route(pkt)
        index = net.tor_up_ports.index(port)
        counts[index % 4] += 1
    # Uniform spraying: each of 4 uplinks should get a fair share.
    assert min(counts) > 50
    assert sum(counts) == 400


def test_scaled_config_overrides():
    cfg = NetworkConfig().scaled(racks=3, hosts_per_rack=4)
    assert cfg.racks == 3 and cfg.n_hosts == 12
    assert NetworkConfig().racks == 9  # original untouched


# ---------------------------------------------------------------------------
# declarative TopologySpec fabrics (3-level, asymmetric speeds)
# ---------------------------------------------------------------------------

from repro.core.topology import TopologySpec, build_fabric  # noqa: E402

# 2 pods x 2 racks x 2 hosts with a 10/25/100 speed mix: every tier
# serializes at a different rate, so the oracle must mix per-layer
# ps-per-byte correctly or the exactness asserts below catch it.
SPEC3 = TopologySpec(levels=3, pods=2, racks=2, hosts_per_rack=2,
                     aggrs=2, cores=4, host_gbps=10, aggr_gbps=25,
                     core_gbps=100)


def make_fabric(spec=SPEC3, seed=1):
    sim = Simulator()
    return sim, build_fabric(sim, spec, seed=seed)


@pytest.mark.parametrize("dst,tier", [
    (1, "same-rack"),       # one ToR hop
    (2, "intra-pod"),       # ToR-aggr-ToR, the 2-level bound
    (7, "cross-pod"),       # ToR-aggr-core-aggr-ToR
])
@pytest.mark.parametrize("size", [200, 1000, 1460])
def test_fabric_delivery_time_matches_tier_oracle(dst, tier, size):
    """Idle single-packet delivery is byte-exact against
    ``min_oneway_between`` on every tier of an asymmetric 3-level
    fabric — the oracle is the contract slowdown normalizes by."""
    sim, net = make_fabric()
    sinks = net.attach_transports(lambda host: _Sink())
    pkt = Packet(0, dst, PacketType.DATA, payload=size, prio=5,
                 rpc_id=1, total_length=size)
    net.hosts[0].egress._transmit(pkt)
    sim.run()
    assert len(sinks[dst].received) == 1, tier
    arrival, received = sinks[dst].received[0]
    assert received is pkt
    assert arrival == net.min_oneway_between(0, dst, size), tier


def test_fabric_oracle_tiers_strictly_ordered():
    sim, net = make_fabric()
    same_rack = net.min_oneway_between(0, 1, 1000)
    intra_pod = net.min_oneway_between(0, 2, 1000)
    cross_pod = net.min_oneway_between(0, 7, 1000)
    assert same_rack < intra_pod < cross_pod
    # Intra-pod is exactly the 2-level cross-rack bound.
    assert intra_pod == net.min_oneway_ps(1000, False)


def test_fabric_rpc_oracle_is_sum_of_legs():
    sim, net = make_fabric()
    assert net.min_rpc_between(0, 7, 400, 2000) == (
        net.min_oneway_between(0, 7, 400)
        + net.min_oneway_between(7, 0, 2000))


def test_fabric_pod_helpers():
    sim, net = make_fabric()
    assert net.pod_of(0) == 0 and net.pod_of(3) == 0
    assert net.pod_of(4) == 1 and net.pod_of(7) == 1
    assert net.same_pod(0, 3) and not net.same_pod(3, 4)


def test_oversubscription_is_emergent_arithmetic():
    # 2 hosts x 10G into 2 aggr uplinks x 25G: undersubscribed ToRs;
    # 2 racks x 25G into 2 core links x 100G per aggr.
    assert SPEC3.tor_oversubscription == pytest.approx(2 * 10 / (2 * 25))
    assert SPEC3.aggr_oversubscription == pytest.approx(2 * 25 / (2 * 100))
    assert SPEC3.core_links_per_aggr == 2
    assert SPEC3.racks_total == 4 and SPEC3.n_hosts == 8
    # 3:1 oversubscribed ToRs, the paper's Figure 11 flavor.
    fat = TopologySpec(levels=2, racks=3, hosts_per_rack=12, aggrs=2,
                       host_gbps=10, aggr_gbps=20)
    assert fat.tor_oversubscription == pytest.approx(3.0)
    assert fat.aggr_oversubscription == 0.0  # no core layer
    # A single rack has no uplinks to oversubscribe.
    lone = TopologySpec(levels=2, racks=1, hosts_per_rack=16, aggrs=1)
    assert lone.tor_oversubscription == 0.0


_BASE3 = dict(levels=3, pods=2, racks=2, hosts_per_rack=2, aggrs=2,
              cores=4, aggr_gbps=40, core_gbps=100)


@pytest.mark.parametrize("kwargs,field", [
    ({"levels": 4}, "levels"),
    ({"pods": 2}, "pods"),                      # pods on a 2-level tree
    ({"cores": 4}, "cores"),                    # cores on a 2-level tree
    ({**_BASE3, "pods": 1}, "pods"),            # 3-level needs >= 2 pods
    ({**_BASE3, "cores": 3}, "cores"),          # not a multiple of aggrs
    ({"racks": 0}, "racks"),
    ({"hosts_per_rack": 0}, "hosts_per_rack"),
    ({"racks": 2, "aggrs": 0}, "aggrs"),
    ({"host_gbps": 0}, "host_gbps"),
    ({"aggr_gbps": 5}, "aggr_gbps"),            # slower than hosts
    ({**_BASE3, "core_gbps": 20}, "core_gbps"),  # slower than aggrs
    ({"switch_delay_ns": -1}, "switch_delay_ns"),
    ({"software_delay_ns": -5}, "software_delay_ns"),
    ({"loss": 0.1}, "loss"),
])
def test_malformed_spec_names_the_field(kwargs, field):
    with pytest.raises(ValueError, match=rf"TopologySpec\.{field}"):
        TopologySpec(**kwargs)
