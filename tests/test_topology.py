"""Tests for topology construction and the paper's timing constants."""

import pytest

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.core.topology import Network, NetworkConfig, build_network
from repro.core.units import US


def make_net(**overrides) -> Network:
    return build_network(Simulator(), NetworkConfig(**overrides))


def test_default_topology_matches_figure_11():
    net = make_net()
    assert len(net.hosts) == 144
    assert len(net.tors) == 9
    assert len(net.aggrs) == 4
    assert len(net.tor_down_ports) == 144
    assert len(net.tor_up_ports) == 9 * 4
    assert len(net.aggr_down_ports) == 4 * 9


def test_rtt_matches_paper_7_8_us():
    net = make_net()
    rtt = net.rtt_ps()
    # Paper section 5.2: "about 7.8 us".
    assert abs(rtt - 7_744_000) < 1_000
    assert 7.5 * US < rtt < 8.0 * US


def test_rtt_bytes_matches_paper_9_7_kb():
    net = make_net()
    # Paper: "RTTbytes is about 9.7 Kbytes".
    assert net.rtt_bytes() == 9680


def test_min_oneway_small_message_close_to_paper():
    net = make_net()
    t = net.min_oneway_ps(1)
    # Paper: "The minimum one-way time for a small message is 2.3 us";
    # our framing gives 2.418 us (documented in DESIGN.md).
    assert 2_300_000 <= t <= 2_500_000


def test_min_oneway_same_rack_faster():
    net = make_net()
    assert net.min_oneway_ps(1000, same_rack=True) < net.min_oneway_ps(1000)


def test_min_oneway_monotone_in_size():
    net = make_net()
    times = [net.min_oneway_ps(s) for s in (1, 100, 1460, 5000, 100_000)]
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_min_oneway_large_message_dominated_by_serialization():
    net = make_net()
    size = 100 * MAX_PAYLOAD
    t = net.min_oneway_ps(size)
    serialization = 100 * 1538 * 800
    assert t > serialization
    assert t < serialization + 6 * US


def test_min_rpc_is_sum_of_legs():
    net = make_net()
    assert net.min_rpc_ps(100, 100) == 2 * net.min_oneway_ps(100)


def test_min_oneway_cache_consistent():
    net = make_net()
    first = net.min_oneway_ps(12345)
    second = net.min_oneway_ps(12345)
    assert first == second


def test_single_rack_topology_has_no_aggrs():
    net = make_net(racks=1, hosts_per_rack=16, aggrs=0)
    assert len(net.hosts) == 16
    assert not net.aggrs
    assert not net.tor_up_ports


def test_single_rack_rtt_shorter_than_fat_tree():
    single = make_net(racks=1, hosts_per_rack=16, aggrs=0)
    fat = make_net()
    assert single.rtt_ps() < fat.rtt_ps()


def test_rack_helpers():
    net = make_net()
    assert net.rack_of(0) == 0
    assert net.rack_of(15) == 0
    assert net.rack_of(16) == 1
    assert net.same_rack(3, 12)
    assert not net.same_rack(3, 20)


def test_multi_rack_requires_aggrs():
    with pytest.raises(ValueError):
        make_net(racks=2, aggrs=0)


def test_bad_queue_mode_rejected():
    with pytest.raises(ValueError):
        make_net(queue_mode="fifo")


class _Sink:
    """Transport stand-in that records deliveries and sends nothing."""

    def __init__(self):
        self.received = []

    def bind(self, host):
        self.host = host

    def on_packet(self, pkt):
        self.received.append((self.host.sim.now, pkt))

    def next_packet(self):
        return None


def test_cross_rack_delivery_time_matches_oracle():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    sinks = net.attach_transports(lambda host: _Sink())
    src, dst = 0, 143  # different racks
    pkt = Packet(src, dst, PacketType.DATA, payload=1000, prio=5,
                 rpc_id=1, total_length=1000)
    net.hosts[src].egress._transmit(pkt)
    sim.run()
    assert len(sinks[dst].received) == 1
    arrival, received = sinks[dst].received[0]
    assert received is pkt
    assert arrival == net.min_oneway_ps(1000)


def test_same_rack_delivery_time_matches_oracle():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    sinks = net.attach_transports(lambda host: _Sink())
    src, dst = 0, 1
    pkt = Packet(src, dst, PacketType.DATA, payload=200, prio=5, rpc_id=1)
    net.hosts[src].egress._transmit(pkt)
    sim.run()
    arrival, _ = sinks[dst].received[0]
    assert arrival == net.min_oneway_ps(200, same_rack=True)


def test_spraying_distributes_across_aggrs():
    sim = Simulator()
    net = build_network(sim, NetworkConfig())
    net.attach_transports(lambda host: _Sink())
    counts = [0] * 4
    tor = net.tors[0]
    for _ in range(400):
        pkt = Packet(0, 143, PacketType.DATA, payload=100, prio=4, rpc_id=1)
        port = tor.route(pkt)
        index = net.tor_up_ports.index(port)
        counts[index % 4] += 1
    # Uniform spraying: each of 4 uplinks should get a fair share.
    assert min(counts) > 50
    assert sum(counts) == 400


def test_scaled_config_overrides():
    cfg = NetworkConfig().scaled(racks=3, hosts_per_rack=4)
    assert cfg.racks == 3 and cfg.n_hosts == 12
    assert NetworkConfig().racks == 9  # original untouched
