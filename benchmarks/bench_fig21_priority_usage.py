"""Figure 21: how W3 traffic spreads across the 8 priority levels as
load grows.

"The four unscheduled priorities are used evenly ... At 50% load, a
receiver typically has only one schedulable message at a time, in which
case the message uses the lowest priority level (P0) ... By the time
network load reaches 90%, receivers typically have at least four
partially-received messages, so they use all of the scheduled levels."
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG21_NOTE
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import campaign_kwargs, current_scale

from _shared import run_once, save_result

LOADS = {"tiny": (0.5, 0.8), "quick": (0.5, 0.8, 0.9),
         "paper": (0.5, 0.8, 0.9)}


def campaign_spec() -> campaign.CampaignSpec:
    # Bandwidth fractions need continuous generation (no message cap).
    kwargs = campaign_kwargs("W3", uncapped=True, duration_cap_ms=3.0)
    cfgs = {
        load: ExperimentConfig(protocol="homa", workload="W3", load=load,
                               collect=("priousage",), **kwargs)
        for load in LOADS[current_scale().name]}
    return campaign.experiment_grid("fig21", cfgs)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render(results) -> str:
    lines = ["== Figure 21: priority level usage, W3 "
             "(% of downlink bandwidth per level) =="]
    header = f"{'load':>6} |" + "".join(f"{'P' + str(p):>7}" for p in range(8))
    lines.append(header)
    lines.append("-" * len(header))
    for load, result in results.items():
        row = f"{int(load * 100):>5}% |"
        for fraction in result.prio_fractions:
            row += f"{fraction * 100:>7.2f}"
        lines.append(row)
    lines.append("")
    lines.append(f"paper: {FIG21_NOTE}")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig21_priority_usage", render(results))]


def test_fig21_priority_usage(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("fig21_priority_usage", render(results))
    loads = sorted(results)
    low = results[loads[0]].prio_fractions
    high = results[loads[-1]].prio_fractions
    # Scheduled traffic rides P0 first at low load; as load grows,
    # concurrent messages push usage onto the higher scheduled levels
    # (preemption), which is Figure 21's observation.
    assert low[0] >= low[3] - 0.01  # P0 is the default scheduled level
    assert sum(high[1:4]) >= sum(low[1:4])
    if current_scale().name != "tiny":
        # Unscheduled levels (P4-P7 for W3) carry roughly equal bytes
        # (needs enough samples to be meaningful).
        unsched = high[4:8]
        assert max(unsched) < 4 * max(min(unsched), 1e-9)
