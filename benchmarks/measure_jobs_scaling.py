"""Measure fresh-run process-pool scaling: ``--jobs 1`` vs ``--jobs N``.

Closes the measurement gap ROADMAP has carried since PR 2: the pooled
campaign path claimed ~min(jobs, cores) fresh-run scaling, but the dev
container had one CPU, so the recorded numbers (BENCH_hotpaths.json,
trajectory notes) only ever showed pool *overhead*.  CI runners have 4
vCPUs; the ``jobs-scaling`` job runs this script there, asserts the
speedup floor, and uploads the JSON as an artifact.

Method: the fig12/13 slowdown grid at tiny scale (5 workloads, ~21
cells — the same campaign PR 2 measured), run fresh into a throwaway
cache per rep, interleaved serial/pooled reps, best-of-N per arm.  The
slowdown digests of the two arms are also compared: scaling must not
cost identity.

On a machine with fewer cores than ``--jobs-high`` the measurement is
meaningless (the PR 2 trap); the script then records ``"skipped"`` and
exits 0 rather than manufacturing a number.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.experiments.campaign import run_pooled, slowdown_digest  # noqa: E402

import bench_fig12_fig13_slowdown as bench  # noqa: E402


def fresh_run_seconds(specs, jobs: int) -> tuple[float, dict[str, str]]:
    """One fresh pooled run into a throwaway cache; wall + digests."""
    cache = tempfile.mkdtemp(prefix=f"jobs{jobs}-")
    try:
        t0 = time.perf_counter()
        out = run_pooled(specs, jobs=jobs, fresh=True, cache_dir=cache,
                         quiet=True)
        wall = time.perf_counter() - t0
        digests = {name: slowdown_digest(results)
                   for name, results in out.items()}
        return wall, digests
    finally:
        shutil.rmtree(cache, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--jobs-high", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--reps", type=int, default=3,
                        help="fresh runs per arm (best-of)")
    parser.add_argument("--out", default=str(
        REPO / "benchmarks" / "results" / "jobs_scaling.json"))
    args = parser.parse_args()

    assert os.environ.get("REPRO_BENCH_SCALE") == "tiny", \
        "run me with REPRO_BENCH_SCALE=tiny (CI sets this)"
    specs = bench.campaign_specs()
    cells = sum(len(s.cells) for s in specs)
    cores = os.cpu_count() or 1
    report = {
        "campaign": "fig12/fig13 slowdown grid, REPRO_BENCH_SCALE=tiny",
        "cells": cells,
        "cpu_count": cores,
        "jobs_high": args.jobs_high,
        "min_speedup": args.min_speedup,
        "reps": args.reps,
    }
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)

    if cores < args.jobs_high:
        report["skipped"] = (
            f"only {cores} CPU(s): pool scaling cannot be measured here "
            f"(the PR 2 trap); run on >= {args.jobs_high} cores")
        out_path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"[jobs-scaling] SKIPPED: {report['skipped']}")
        return 0

    serial_walls: list[float] = []
    pooled_walls: list[float] = []
    serial_digests = pooled_digests = None
    for rep in range(args.reps):
        wall, serial_digests = fresh_run_seconds(specs, 1)
        serial_walls.append(round(wall, 3))
        print(f"[jobs-scaling] rep {rep + 1}: jobs=1 {wall:.1f}s",
              flush=True)
        wall, pooled_digests = fresh_run_seconds(specs, args.jobs_high)
        pooled_walls.append(round(wall, 3))
        print(f"[jobs-scaling] rep {rep + 1}: jobs={args.jobs_high} "
              f"{wall:.1f}s", flush=True)

    speedup = min(serial_walls) / min(pooled_walls)
    identical = serial_digests == pooled_digests
    report.update({
        "serial_walls_seconds": serial_walls,
        "pooled_walls_seconds": pooled_walls,
        "serial_best_seconds": min(serial_walls),
        "pooled_best_seconds": min(pooled_walls),
        "speedup_best_of": round(speedup, 3),
        "digest_identical": identical,
    })
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"[jobs-scaling] {cells} cells: jobs=1 best "
          f"{min(serial_walls):.1f}s, jobs={args.jobs_high} best "
          f"{min(pooled_walls):.1f}s -> {speedup:.2f}x "
          f"(floor {args.min_speedup}x), digests "
          f"{'identical' if identical else 'DIFFER'}; wrote {out_path}")
    assert identical, "pooled digests differ from serial — identity broken"
    assert speedup >= args.min_speedup, (
        f"fresh-run scaling {speedup:.2f}x is below the "
        f"{args.min_speedup}x floor on {cores} cores")
    return 0


if __name__ == "__main__":
    sys.exit(main())
