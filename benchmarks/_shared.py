"""Shared benchmark infrastructure.

Each benchmark regenerates one paper figure/table, prints a text
rendering, and writes it under ``benchmarks/results/`` so the artifacts
survive pytest's output capture.  Simulation results themselves are
memoized by the campaign runner's on-disk cache
(``repro.experiments.campaign``), so figure pairs that share runs
(8/9, 12/13) and repeated invocations reuse cells across processes —
the old in-process ``cached`` memo is gone.
"""

from __future__ import annotations

from pathlib import Path

try:
    import pytest
except ModuleNotFoundError:  # runtime-only install: the campaign CLI
    pytest = None            # imports these modules without test deps

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def parametrize(argnames: str, argvalues):
    """``pytest.mark.parametrize`` when pytest is available, a no-op
    decorator otherwise, so ``python -m repro campaign`` can import the
    benchmark modules in an environment without test dependencies."""
    if pytest is None:
        return lambda fn: fn
    return pytest.mark.parametrize(argnames, argvalues)


def save_result(name: str, text: str) -> str:
    """Write a figure's text rendering to benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    return str(path)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation-campaign benchmarks (minutes), not
    microbenchmarks; one round is the honest measurement.  When the
    benchmark fixture is absent or disabled, ``fn`` runs directly so
    any failure propagates unwrapped — a dying campaign cell raises
    ``CampaignCellError`` naming the failing cell's config instead of
    being masked by the fixture plumbing.
    """
    if benchmark is not None and getattr(benchmark, "enabled", True):
        return benchmark.pedantic(fn, rounds=1, iterations=1)
    return fn()
