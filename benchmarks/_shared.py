"""Shared benchmark infrastructure.

Each benchmark regenerates one paper figure/table, prints a text
rendering, and writes it under ``benchmarks/results/`` so the artifacts
survive pytest's output capture.  Figure pairs that share simulation
runs (8/9, 12/13) cache results in-process.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_cache: dict = {}


def cached(key, compute):
    """Process-wide memo so figure pairs reuse the same runs."""
    if key not in _cache:
        _cache[key] = compute()
    return _cache[key]


def save_result(name: str, text: str) -> str:
    """Write a figure's text rendering to benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)
    return str(path)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are simulation-campaign benchmarks (minutes), not
    microbenchmarks; one round is the honest measurement.
    """
    if benchmark is not None and getattr(benchmark, "enabled", True):
        return benchmark.pedantic(fn, rounds=1, iterations=1)
    return fn()
