"""Figure 1: the five workloads' message-count and byte-weighted CDFs.

No simulation: the figure derives from the workload catalog alone, so
its "campaign" has zero cells; it still routes through the campaign
runner so ``python -m repro campaign fig01`` treats every figure
uniformly.
"""

from repro.experiments import campaign
from repro.workloads.catalog import WORKLOADS

from _shared import run_once, save_result


def campaign_spec() -> campaign.CampaignSpec:
    return campaign.CampaignSpec(name="fig01", cells=())


def render_fig01() -> str:
    lines = ["== Figure 1: workload CDFs (reconstructed) =="]
    lines.append(f"{'':>4} {'mean(B)':>10} {'deciles (10%..90% of messages)':<62}")
    for key, workload in WORKLOADS.items():
        deciles = " ".join(str(d) for d in workload.deciles)
        lines.append(f"{key:>4} {workload.cdf.mean():>10.0f} {deciles}")
    lines.append("")
    lines.append("byte-weighted CDF checkpoints (fraction of bytes in "
                 "messages <= size):")
    lines.append(f"{'':>4} {'<=1KB':>8} {'<=10KB':>8} {'<=100KB':>9} {'<=1MB':>8}")
    for key, workload in WORKLOADS.items():
        cdf = workload.cdf
        row = [cdf.byte_fraction_below(s) for s in (1_000, 10_000, 100_000, 1_000_000)]
        lines.append(f"{key:>4} " + " ".join(f"{v:>8.2f}" for v in row))
    lines.append("")
    lines.append("paper anchors: W1 >70% of bytes <1000B; W5 ~95% of bytes "
                 ">1MB; ordering by mean size W1<W2<W3<W4<W5")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return [save_result("fig01_workloads", render_fig01())]


def test_fig01_workloads(benchmark):
    text = run_once(benchmark, render_fig01)
    save_result("fig01_workloads", text)
    assert "W5" in text
