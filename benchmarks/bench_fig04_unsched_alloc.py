"""Figure 4: unscheduled priority allocation for workload W2.

No simulation: allocation is a pure function of the workload CDF, so
the "campaign" has zero cells; it still routes through the campaign
runner so ``python -m repro campaign fig04`` treats every figure
uniformly.
"""

from repro.experiments import campaign
from repro.homa.priorities import allocate_priorities
from repro.workloads.catalog import WORKLOADS

from _shared import run_once, save_result

UNSCHED_LIMIT = 10220


def campaign_spec() -> campaign.CampaignSpec:
    return campaign.CampaignSpec(name="fig04", cells=())


def render_fig04() -> str:
    lines = ["== Figure 4: unscheduled priority allocation =="]
    for key in ("W1", "W2", "W3", "W4", "W5"):
        cdf = WORKLOADS[key].cdf
        alloc = allocate_priorities(cdf, UNSCHED_LIMIT)
        frac = cdf.mean_truncated(UNSCHED_LIMIT) / cdf.mean()
        cut_desc = []
        lo = 1
        for level, cutoff in zip(reversed(alloc.unsched_levels), alloc.cutoffs):
            cut_desc.append(f"P{level}:{lo}-{cutoff}")
            lo = cutoff + 1
        lines.append(
            f"  {key}: unsched bytes {frac * 100:5.1f}%  -> "
            f"{alloc.n_unsched} unsched + {alloc.n_sched} sched levels")
        lines.append(f"      cutoffs: {'  '.join(cut_desc)}")
    lines.append("")
    lines.append("paper: W2 ~80% unscheduled -> 6 of 8 levels; P7 covers "
                 "1-280 B; level splits 7/6/4/1/1 for W1..W5")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return [save_result("fig04_unsched_alloc", render_fig04())]


def test_fig04_unsched_allocation(benchmark):
    text = run_once(benchmark, render_fig04)
    save_result("fig04_unsched_alloc", text)
    # Hard shape assertions (also covered by unit tests).
    alloc = allocate_priorities(WORKLOADS["W2"].cdf, UNSCHED_LIMIT)
    assert alloc.n_unsched == 6
