"""Fabric stress grid: oversubscription, loss, and failure injection.

The homa-centric cells stress the declarative-fabric layer
(docs/FABRICS.md) end to end, plus a golden pair pinning that the
layer is free when unused:

* ``clean-plain`` / ``clean-spec`` — the same 2-level shape built from
  a ``NetworkConfig`` and from a clean ``TopologySpec``; their
  slowdown digests must be byte-identical (the lowering guarantee).
* ``lossy-2level`` — Bernoulli drops at the ToRs and aggrs, recovered
  by the section 3.7 machinery.
* ``lossy-3level`` — a mixed-speed (10/25/100 Gbps) two-pod fabric
  with loss on every tier.
* ``faulty-3level`` — the same fabric plus a link-down / switch-down /
  link-restore schedule firing mid-generation.

On top of that, a recovery grid runs **every loss-validated protocol**
(``registry.LOSS_VALIDATED`` — the full registry) through two loss
rates and one mid-run link-outage schedule on the 2-level shape:
``<proto>-loss-lo``, ``<proto>-loss-hi``, and ``<proto>-faulty``.

``--smoke`` asserts the battery's contract: digest identity for the
clean pair; nonzero drops on every degraded cell; for every protocol,
nonzero retransmissions with at least one *successful* recovery across
its cells; applied faults on every faulty cell; and zero invariant
violations (physicality, accounting, recovery counters) anywhere.
"""

import argparse
import sys

from repro.core.faults import FaultEvent, LossRates
from repro.core.topology import TopologySpec
from repro.experiments import campaign
from repro.experiments.campaign import slowdown_digest
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import campaign_kwargs, current_scale
from repro.transport.registry import LOSS_VALIDATED

from _shared import run_once, save_result

# W3's multi-packet messages make drops produce *gaps*, which the
# receiver-driven RESEND machinery recovers; a fully-lost single-packet
# one-way message leaves no state on either side and is unrecoverable
# by design (docs/FABRICS.md), so a mostly-single-packet workload would
# show drops but no retransmissions.
WORKLOAD = "W3"
LOAD = 0.5
LOSS2 = LossRates(tor=0.01, aggr=0.01)
LOSS3 = LossRates(tor=0.01, aggr=0.01, core=0.01)
#: recovery-grid loss rates (every protocol runs at both)
LOSS_LO = LossRates(tor=0.005, aggr=0.005)
LOSS_HI = LossRates(tor=0.03, aggr=0.015)

#: 3-level two-pod shapes per scale (2-level cells reuse the scale's
#: canonical racks/hosts_per_rack/aggrs so the clean pair stays the
#: published topology).
SHAPES3 = {
    "tiny": dict(pods=2, racks=1, hosts_per_rack=4, aggrs=2, cores=4),
    "quick": dict(pods=2, racks=2, hosts_per_rack=4, aggrs=2, cores=4),
    "paper": dict(pods=3, racks=3, hosts_per_rack=16, aggrs=4, cores=8),
}

DEGRADED = ("lossy-2level", "lossy-3level", "faulty-3level")


def _fault_schedule(window_ms: float) -> tuple:
    """Down a ToR uplink and a core mid-generation, restore the link."""
    return (
        FaultEvent(0.35 * window_ms, "link", "down", "tor0:aggr0.1"),
        FaultEvent(0.55 * window_ms, "switch", "down", "core0"),
        FaultEvent(0.80 * window_ms, "link", "up", "tor0:aggr0.1"),
    )


def campaign_spec() -> campaign.CampaignSpec:
    scale = current_scale()
    # Cap generation so the lossy cells' long drains (recovery needs
    # several 2 ms resend intervals) still bound each cell's wall time.
    kwargs = campaign_kwargs(WORKLOAD, duration_cap_ms=2.0)
    spec2 = TopologySpec(levels=2, racks=kwargs["racks"],
                         hosts_per_rack=kwargs["hosts_per_rack"],
                         aggrs=kwargs["aggrs"])
    shape3 = SHAPES3[scale.name]
    spec3 = TopologySpec(levels=3, host_gbps=10, aggr_gbps=25,
                         core_gbps=100, **shape3)
    window_ms = kwargs["warmup_ms"] + kwargs["duration_ms"]
    base = dict(protocol="homa", workload=WORKLOAD, load=LOAD, **kwargs)
    cfgs = {
        "clean-plain": ExperimentConfig(**base),
        "clean-spec": ExperimentConfig(fabric=spec2, **base),
        "lossy-2level": ExperimentConfig(
            fabric=TopologySpec(levels=2, racks=spec2.racks,
                                hosts_per_rack=spec2.hosts_per_rack,
                                aggrs=spec2.aggrs, loss=LOSS2),
            **base),
        "lossy-3level": ExperimentConfig(
            fabric=TopologySpec(levels=3, host_gbps=10, aggr_gbps=25,
                                core_gbps=100, loss=LOSS3, **shape3),
            **base),
        "faulty-3level": ExperimentConfig(
            fabric=TopologySpec(levels=3, host_gbps=10, aggr_gbps=25,
                                core_gbps=100, loss=LOSS3,
                                faults=_fault_schedule(window_ms),
                                **shape3),
            **base),
    }
    # Recovery grid: every validated protocol x {loss-lo, loss-hi,
    # faulty}.  The outage downs one rack-0 uplink mid-generation and
    # restores it, so backed-off retries must span the hole.
    shape2 = dict(levels=2, racks=spec2.racks,
                  hosts_per_rack=spec2.hosts_per_rack, aggrs=spec2.aggrs)
    outage = (FaultEvent(0.35 * window_ms, "link", "down", "tor0:aggr0.0"),
              FaultEvent(0.80 * window_ms, "link", "up", "tor0:aggr0.0"))
    proto_base = dict(base)
    del proto_base["protocol"]
    for proto in LOSS_VALIDATED:
        for tag, rates in (("loss-lo", LOSS_LO), ("loss-hi", LOSS_HI)):
            cfgs[f"{proto}-{tag}"] = ExperimentConfig(
                protocol=proto,
                fabric=TopologySpec(loss=rates, **shape2), **proto_base)
        cfgs[f"{proto}-faulty"] = ExperimentConfig(
            protocol=proto,
            fabric=TopologySpec(loss=LOSS_LO, faults=outage, **shape2),
            **proto_base)
    assert "homa" in LOSS_VALIDATED  # the grid's protocol must be gated in
    assert spec3.aggr_oversubscription > 0  # genuinely oversubscribed core
    return campaign.experiment_grid("fabric", cfgs)


def _violations(key, result) -> list[str]:
    """Invariants no fabric configuration may break."""
    out = []
    if result.completed + result.pending != result.submitted:
        out.append(f"{key}: completed+pending != submitted")
    if result.completed > result.submitted:
        out.append(f"{key}: more completions than submissions "
                   "(duplicate delivery)")
    if any(s < 1.0 for s in result.tracker.slowdowns):
        out.append(f"{key}: slowdown below the idle-network oracle")
    if result.control.rtx_recovered > result.control.rtx_data:
        out.append(f"{key}: more recoveries than retransmissions")
    if min(result.fabric.to_payload().values()) < 0:
        out.append(f"{key}: negative fabric counter")
    return out


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render(results) -> str:
    lines = ["== fabric stress: loss + failure injection =="]
    lines.append(f"{'cell':>14} {'finish':>7} {'drops':>7} {'faultdrop':>9} "
                 f"{'blackhole':>9} {'reroute':>8} {'rtx':>6} {'rtxok':>6}")
    for key, result in results.items():
        fh, ct = result.fabric, result.control
        lines.append(
            f"{key:>14} {result.finish_rate:>7.3f} "
            f"{fh.drops_tor + fh.drops_aggr + fh.drops_core:>7} "
            f"{fh.fault_drops:>9} {fh.black_holes:>9} {fh.reroutes:>8} "
            f"{ct.rtx_data:>6} {ct.rtx_recovered:>6}")
    clean = slowdown_digest({"cell": results["clean-plain"]})
    spec = slowdown_digest({"cell": results["clean-spec"]})
    lines.append(f"clean lowering digest match: {clean == spec} "
                 f"({clean[:12]})")
    violations = [v for key, result in results.items()
                  for v in _violations(key, result)]
    lines.append(f"invariant violations: {violations or 'none'}")
    return "\n".join(lines)


def check(results) -> None:
    """The smoke contract (CI's fabric-stress leg)."""
    assert (slowdown_digest({"cell": results["clean-plain"]})
            == slowdown_digest({"cell": results["clean-spec"]})), \
        "clean TopologySpec changed the published digests"
    assert not results["clean-spec"].fabric.any()
    for key in DEGRADED:
        result = results[key]
        assert result.tracker.slowdowns, f"{key}: vacuous run"
        assert result.fabric.total_drops > 0, f"{key}: no drops injected"
        assert result.control.rtx_data > 0, f"{key}: nothing retransmitted"
        assert result.control.rtx_recovered > 0, \
            f"{key}: no message ever completed via retransmission"
    faulty = results["faulty-3level"]
    assert faulty.fabric.faults_applied == 3
    assert faulty.fabric.reroutes > 0
    # Recovery grid: every validated protocol survives both loss rates
    # and the outage — drops everywhere, and retransmission genuinely
    # recovers data (not merely fires) somewhere in its cells.
    for proto in LOSS_VALIDATED:
        cells = {tag: results[f"{proto}-{tag}"]
                 for tag in ("loss-lo", "loss-hi", "faulty")}
        for tag, result in cells.items():
            assert result.tracker.slowdowns, f"{proto}-{tag}: vacuous run"
            assert result.fabric.total_drops > 0, \
                f"{proto}-{tag}: no drops injected"
        assert cells["faulty"].fabric.faults_applied == 2
        rtx = sum(c.control.rtx_data for c in cells.values())
        recovered = sum(c.control.rtx_recovered for c in cells.values())
        assert rtx > 0, f"{proto}: nothing retransmitted in any cell"
        assert recovered > 0, \
            f"{proto}: no message ever completed via retransmission"
    violations = [v for key, result in results.items()
                  for v in _violations(key, result)]
    assert not violations, violations


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fabric_stress", render(results))]


def test_fabric_stress(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("fabric_stress", render(results))
    check(results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="assert the battery contract after the run")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--fresh", action="store_true",
                        help="bypass the campaign result cache")
    args = parser.parse_args(argv)
    results = run_campaign(jobs=args.jobs, fresh=args.fresh)
    save_result("fabric_stress", render(results))
    if args.smoke:
        check(results)
        print("fabric-stress smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
