"""Figure 14: sources of tail delay for short messages under Homa.

"Tail latency is almost entirely due to link-level preemption lag,
where a packet from a short message arrives at a link while it is busy
transmitting a packet from a longer message."
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG14_DELAYS_US
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs

from _shared import run_once, save_result

WORKLOADS = {"tiny": ("W3",), "quick": ("W1", "W2", "W3", "W4", "W5"),
             "paper": ("W1", "W2", "W3", "W4", "W5")}


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        workload: ExperimentConfig(
            protocol="homa", workload=workload, load=0.8,
            collect=("delays",), **scaled_kwargs(workload))
        for workload in WORKLOADS[current_scale().name]}
    return campaign.experiment_grid("fig14", cfgs)


def run_campaign(jobs=None, fresh=False):
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return [(workload, *result.delay_breakdown)
            for workload, result in results.items()]


def render(rows) -> str:
    lines = ["== Figure 14: tail delay decomposition for short messages "
             "(us, 80% load) =="]
    lines.append(f"{'workload':>10} {'queueing':>10} {'preemption lag':>15}"
                 f"   {'paper (q, p)':>16}")
    for workload, q_us, p_us in rows:
        paper = FIG14_DELAYS_US.get(workload, {})
        ref = (f"({paper.get('queueing', '?')}, "
               f"{paper.get('preemption', '?')})")
        lines.append(f"{workload:>10} {q_us:>10.2f} {p_us:>15.2f}   {ref:>16}")
    lines.append("")
    lines.append("paper: preemption lag dominates; total tail delay is a "
                 "few microseconds")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    rows = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig14_delay_sources", render(rows))]


def test_fig14_delay_sources(benchmark):
    rows = run_once(benchmark, run_campaign)
    save_result("fig14_delay_sources", render(rows))
    # Shape: preemption lag dominates queueing for most workloads.
    # W5 is excluded: with one unscheduled level its blind multi-packet
    # bursts collide at equal priority (queueing), and quick-scale W5
    # samples are tiny; the paper's bar uses single-packet messages.
    considered = [r for r in rows if r[0] != "W5"]
    dominated = sum(1 for _, q_us, p_us in considered if p_us > q_us)
    assert dominated >= max(1, len(considered) - 1)
