"""Figure 20: the number of unscheduled bytes per message, W4.

"Messages smaller than RTTbytes but larger than the unscheduled limit
suffer 2.5x worse latency.  Increasing the unscheduled limit beyond
RTTbytes results in worse performance for messages smaller than
RTTbytes."
"""

from repro.experiments import campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs
from repro.experiments.tables import series_table
from repro.homa.config import HomaConfig
from repro.workloads.catalog import get_workload

from _shared import run_once, save_result

#: the paper sweeps 1, 500, 1000, RTTbytes, 2xRTTbytes
LIMITS = {"tiny": (500, 9680), "quick": (1, 500, 1000, 9680, 19360),
          "paper": (1, 500, 1000, 9680, 19360)}


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        limit: ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            homa=HomaConfig(unsched_limit=limit),
            **scaled_kwargs("W4"))
        for limit in LIMITS[current_scale().name]}
    return campaign.experiment_grid("fig20", cfgs)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render(results) -> str:
    edges = get_workload("W4").bucket_edges()
    columns = {}
    for limit, result in results.items():
        label = {9680: "RTTbytes", 19360: "2xRTT"}.get(limit, str(limit))
        columns[label] = result.slowdown_series(99)
    text = series_table(
        "Figure 20: 99th-percentile slowdown, W4, 80% load, "
        "varying unscheduled byte limit",
        edges, columns)
    text += ("\n   paper: messages between the limit and RTTbytes suffer "
             "~2.5x; going beyond RTTbytes hurts small messages")
    return text


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig20_unsched_bytes", render(results))]


def test_fig20_unsched_bytes(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("fig20_unsched_bytes", render(results))
    limits = sorted(results)
    # Shape: small-message latency with a tiny unscheduled limit is
    # worse than with the RTTbytes default (they must wait a full RTT
    # for grants).
    tiny = results[limits[0]].slowdown_series(99)
    rtt = results[9680].slowdown_series(99)
    pairs = [(a, b) for a, b in zip(tiny[:6], rtt[:6]) if a == a and b == b]
    assert pairs
    assert max(a / b for a, b in pairs) > 1.2
