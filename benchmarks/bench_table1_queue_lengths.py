"""Table 1: average and maximum switch queue lengths at 80% load."""

from repro.experiments import campaign
from repro.experiments.paper_data import TABLE1
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import campaign_kwargs, current_scale

from _shared import run_once, save_result

WORKLOADS = {"tiny": ("W3",), "quick": ("W1", "W2", "W3", "W4", "W5"),
             "paper": ("W1", "W2", "W3", "W4", "W5")}


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {}
    for workload in WORKLOADS[current_scale().name]:
        # Time-averaged queue lengths need continuous generation: a
        # message cap would leave the tail of the window idle.
        cap_ms = {"W4": 12.0, "W5": 30.0}.get(workload, 2.5)
        kwargs = campaign_kwargs(workload, uncapped=True,
                                 duration_cap_ms=cap_ms)
        cfgs[workload] = ExperimentConfig(
            protocol="homa", workload=workload, load=0.8,
            collect=("queues",), **kwargs)
    return campaign.experiment_grid("table1", cfgs)


def run_campaign(jobs=None, fresh=False):
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return {workload: result.queue_rows
            for workload, result in results.items()}


def render(rows) -> str:
    lines = ["== Table 1: switch egress queue lengths at 80% load "
             "(KB; measured vs paper) =="]
    for workload, levels in rows.items():
        lines.append(f"  {workload}:")
        for stats in levels:
            paper = TABLE1.get(workload, {}).get(stats.label)
            ref = (f"paper mean {paper[0]:>5.1f} max {paper[1]:>6.1f}"
                   if paper else "")
            lines.append(f"    {stats.label:<10} mean {stats.mean_kb:>6.1f} "
                         f"max {stats.max_kb:>7.1f}   {ref}")
    lines.append("")
    lines.append("paper: core queues ~1-2 KB mean; TOR->host up to "
                 "~17 KB mean / 146 KB max; buffering bounded by "
                 "overcommitment x RTTbytes")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    rows = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("table1_queue_lengths", render(rows))]


def test_table1_queue_lengths(benchmark):
    rows = run_once(benchmark, run_campaign)
    save_result("table1_queue_lengths", render(rows))
    for workload, levels in rows.items():
        by_label = {s.label: s for s in levels}
        # Downlinks hold the queues; the core stays nearly empty.
        assert by_label["TOR->host"].mean_kb >= by_label["TOR->Aggr"].mean_kb
        # Homa's bound: max queue stays within ~2x the paper's 146 KB
        # worst case (overcommitment x RTTbytes + unscheduled bursts).
        assert by_label["TOR->host"].max_kb < 300
