"""Figure 19: how many scheduled priority levels does W4 need?

"Additional scheduled priorities beyond 4 have little impact on
latency.  However, [they] have a significant impact on the network load
that can be sustained ... This workload could not run at 80% network
load with fewer than 4 scheduled priorities."
"""

from repro.experiments import campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs
from repro.experiments.tables import series_table
from repro.homa.config import HomaConfig
from repro.workloads.catalog import get_workload

from _shared import run_once, save_result

DEGREES = {"tiny": (2, 7), "quick": (2, 4, 7), "paper": (2, 4, 7)}


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        n_sched: ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            homa=HomaConfig(n_sched_override=n_sched,
                            n_unsched_override=1),
            **scaled_kwargs("W4"))
        for n_sched in DEGREES[current_scale().name]}
    return campaign.experiment_grid("fig19", cfgs)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render(results) -> str:
    edges = get_workload("W4").bucket_edges()
    columns = {f"{n} sched": r.slowdown_series(99)
               for n, r in results.items()}
    text = series_table(
        "Figure 19: 99th-percentile slowdown, W4, 80% load, "
        "1 unscheduled priority, varying scheduled levels",
        edges, columns)
    rates = ", ".join(f"{n}:{r.finish_rate:.3f}"
                      for n, r in results.items())
    text += f"\n   finish rates (stability at 80% load): {rates}"
    text += ("\n   paper: >=4 scheduled levels needed to sustain 80% load; "
             "beyond 4, little latency impact")
    return text


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig19_sched_prios", render(results))]


def test_fig19_sched_prios(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("fig19_sched_prios", render(results))
    degrees = sorted(results)
    # Shape: more scheduled levels -> at least as good throughput.
    assert (results[degrees[-1]].finish_rate
            >= results[degrees[0]].finish_rate - 0.02)
