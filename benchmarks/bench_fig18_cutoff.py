"""Figure 18: the cutoff point between two unscheduled priorities, W3.

"Up until about 2000 bytes, the penalty for smaller messages is
negligible; however, increasing the cutoff to 4000 bytes results in a
noticeable penalty ... Homa's policy of balancing traffic in the levels
would choose a cutoff point of 1930 bytes."
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG18_BALANCED_CUTOFF
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs
from repro.experiments.tables import series_table
from repro.homa.config import HomaConfig
from repro.homa.priorities import compute_cutoffs
from repro.workloads.catalog import get_workload

from _shared import run_once, save_result

CUTOFFS = {"tiny": (100, 2000), "quick": (100, 400, 1000, 2000, 4000),
           "paper": (100, 400, 1000, 2000, 4000)}


def campaign_spec() -> campaign.CampaignSpec:
    max_bytes = get_workload("W3").cdf.max_bytes()
    cfgs = {
        cutoff: ExperimentConfig(
            protocol="homa", workload="W3", load=0.8,
            homa=HomaConfig(n_unsched_override=2,
                            cutoff_override=(cutoff, max_bytes)),
            **scaled_kwargs("W3"))
        for cutoff in CUTOFFS[current_scale().name]}
    return campaign.experiment_grid("fig18", cfgs)


def run_campaign(jobs=None, fresh=False):
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    balanced = compute_cutoffs(get_workload("W3").cdf, 2, 10220)[0]
    return results, balanced


def render(results, balanced) -> str:
    edges = get_workload("W3").bucket_edges()
    columns = {f"cut={c}": r.slowdown_series(99)
               for c, r in results.items()}
    text = series_table(
        "Figure 18: 99th-percentile slowdown, W3, 80% load, "
        "2 unscheduled priorities, varying cutoff",
        edges, columns)
    text += (f"\n   byte-balancing policy picks {balanced} B "
             f"(paper: {FIG18_BALANCED_CUTOFF} B)")
    return text


def run_figure(jobs=None, fresh=False) -> list[str]:
    results, balanced = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig18_cutoff", render(results, balanced))]


def test_fig18_cutoff(benchmark):
    results, balanced = run_once(benchmark, run_campaign)
    save_result("fig18_cutoff", render(results, balanced))
    # The balancing policy must land in the paper's sweet-spot region.
    assert 1000 <= balanced <= 4000
