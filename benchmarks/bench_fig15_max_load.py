"""Figure 15: the maximum network load each protocol can sustain.

"Homa can operate at higher network loads than either pFabric, pHost,
NDP, or PIAS, and its capacity is more stable across workloads."
"""

import pytest

from repro.experiments.maxload import find_max_load
from repro.experiments.paper_data import FIG15_MAX_LOAD
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs

from _shared import cached, run_once, save_result

#: (workload, protocols) pairs exercised per scale; paper mode covers
#: the full matrix, quick mode a representative slice.
MATRIX = {
    "tiny": [("W3", ("homa", "phost"))],
    "quick": [
        ("W3", ("homa", "pfabric", "phost", "pias")),
        ("W4", ("homa", "pfabric", "phost", "pias")),
        ("W5", ("homa", "ndp")),
    ],
    "paper": [
        (w, ("homa", "pfabric", "phost", "pias") + (("ndp",) if w == "W5" else ()))
        for w in ("W1", "W2", "W3", "W4", "W5")
    ],
}

GRID = {"tiny": (0.5, 0.7, 0.8),
        "quick": (0.6, 0.7, 0.8, 0.9),
        "paper": (0.5, 0.58, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95)}


def run_campaign():
    scale = current_scale()
    rows = []
    for workload, protocols in MATRIX[scale.name]:
        kwargs = scaled_kwargs(workload)
        # Stability detection needs uncapped open-loop generation:
        # a message cap would let even an overloaded run drain.
        kwargs["max_messages"] = None
        if workload == "W4":
            kwargs["duration_ms"] = min(kwargs["duration_ms"], 12.0)
        if workload == "W5":
            kwargs["duration_ms"] = min(kwargs["duration_ms"], 30.0)
        for protocol in protocols:
            base = ExperimentConfig(protocol=protocol, workload=workload,
                                    **kwargs)
            rows.append(find_max_load(base, grid=GRID[scale.name]))
    return rows


def render(rows) -> str:
    lines = ["== Figure 15: maximum sustainable network load =="]
    lines.append(f"{'workload':>9} {'protocol':>9} {'max load':>9} "
                 f"{'total util':>11} {'app util':>9} {'paper max':>10}")
    for row in rows:
        paper = FIG15_MAX_LOAD.get(row.workload, {}).get(row.protocol, "?")
        lines.append(
            f"{row.workload:>9} {row.protocol:>9} "
            f"{row.max_load * 100:>8.0f}% {row.total_utilization * 100:>10.1f}% "
            f"{row.app_utilization * 100:>8.1f}% {paper!s:>9}%")
    lines.append("")
    lines.append("paper: Homa sustains the highest loads (87-92%); pHost "
                 "58-79%; NDP 73% on W5; probes are grid-resolution limited")
    return "\n".join(lines)


def test_fig15_max_load(benchmark):
    rows = run_once(benchmark, lambda: cached("fig15", run_campaign))
    save_result("fig15_max_load", render(rows))
    by_key = {(r.workload, r.protocol): r.max_load for r in rows}
    # Shape: Homa sustains at least as much load as pHost everywhere.
    for (workload, protocol), load in by_key.items():
        if protocol == "homa":
            phost = by_key.get((workload, "phost"))
            if phost is not None:
                assert load >= phost
