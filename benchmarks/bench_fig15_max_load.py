"""Figure 15: the maximum network load each protocol can sustain.

"Homa can operate at higher network loads than either pFabric, pHost,
NDP, or PIAS, and its capacity is more stable across workloads."

The ascending sweep runs as a **speculative shard**: every grid load
for every (workload, protocol) pair is one independent campaign cell,
all probed in parallel, and ``collate_max_load`` re-applies the serial
sweep's last-stable semantics afterwards (probes past the first
unstable load are discarded), so the reported rows are identical to
the classic early-break search.
"""

from repro.experiments import campaign
from repro.experiments.maxload import collate_max_load, probe_config
from repro.experiments.paper_data import FIG15_MAX_LOAD
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import campaign_kwargs, current_scale

from _shared import run_once, save_result

#: (workload, protocols) pairs exercised per scale; paper mode covers
#: the full matrix, quick mode a representative slice.
MATRIX = {
    "tiny": [("W3", ("homa", "phost"))],
    "quick": [
        ("W3", ("homa", "pfabric", "phost", "pias")),
        ("W4", ("homa", "pfabric", "phost", "pias")),
        ("W5", ("homa", "ndp")),
    ],
    "paper": [
        (w, ("homa", "pfabric", "phost", "pias") + (("ndp",) if w == "W5" else ()))
        for w in ("W1", "W2", "W3", "W4", "W5")
    ],
}

GRID = {"tiny": (0.5, 0.7, 0.8),
        "quick": (0.6, 0.7, 0.8, 0.9),
        "paper": (0.5, 0.58, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95)}


def _base_config(workload: str, protocol: str) -> ExperimentConfig:
    # Stability detection needs uncapped open-loop generation: a
    # message cap would let even an overloaded run drain.
    cap_ms = {"W4": 12.0, "W5": 30.0}.get(workload)
    kwargs = campaign_kwargs(workload, uncapped=True, duration_cap_ms=cap_ms)
    return ExperimentConfig(protocol=protocol, workload=workload, **kwargs)


def campaign_spec() -> campaign.CampaignSpec:
    scale = current_scale()
    cfgs = {}
    for workload, protocols in MATRIX[scale.name]:
        for protocol in protocols:
            base = _base_config(workload, protocol)
            for load in GRID[scale.name]:
                cfgs[(workload, protocol, load)] = probe_config(base, load)
    return campaign.experiment_grid("fig15", cfgs)


def run_campaign(jobs=None, fresh=False):
    scale = current_scale()
    grid = GRID[scale.name]
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    rows = []
    for workload, protocols in MATRIX[scale.name]:
        for protocol in protocols:
            probes = [results[(workload, protocol, load)] for load in grid]
            rows.append(collate_max_load(grid, probes))
    return rows


def render(rows) -> str:
    lines = ["== Figure 15: maximum sustainable network load =="]
    lines.append(f"{'workload':>9} {'protocol':>9} {'max load':>9} "
                 f"{'total util':>11} {'app util':>9} {'paper max':>10}")
    for row in rows:
        paper = FIG15_MAX_LOAD.get(row.workload, {}).get(row.protocol, "?")
        lines.append(
            f"{row.workload:>9} {row.protocol:>9} "
            f"{row.max_load * 100:>8.0f}% {row.total_utilization * 100:>10.1f}% "
            f"{row.app_utilization * 100:>8.1f}% {paper!s:>9}%")
    lines.append("")
    lines.append("paper: Homa sustains the highest loads (87-92%); pHost "
                 "58-79%; NDP 73% on W5; probes are grid-resolution limited")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    rows = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig15_max_load", render(rows))]


def test_fig15_max_load(benchmark):
    rows = run_once(benchmark, run_campaign)
    save_result("fig15_max_load", render(rows))
    by_key = {(r.workload, r.protocol): r.max_load for r in rows}
    # Shape: Homa sustains at least as much load as pHost everywhere.
    for (workload, protocol), load in by_key.items():
        if protocol == "homa":
            phost = by_key.get((workload, "phost"))
            if phost is not None:
                assert load >= phost
