"""Figures 8 and 9: the implementation measurements, reproduced in
simulation on the 16-host single-switch CloudLab-like cluster.

Echo RPC clients/servers at 80% load compare: Homa, HomaP4/P2/P1
(priority levels collapsed), Basic (no priorities, unlimited
overcommitment), and the streaming transport with one connection per
pair ("TCP"/"InfRC" analogue) and many connections ("TCP-MC").

Substitution note (DESIGN.md): the original figure measures RAMCloud on
real hardware; absolute microseconds differ here, but the protocol-level
ordering — Homa < HomaP2 < Basic << single-stream — is the claim under
test.
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG8
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale
from repro.experiments.tables import series_table
from repro.homa.config import HomaConfig
from repro.workloads.catalog import get_workload

from _shared import parametrize, run_once, save_result

VARIANTS = (
    ("Homa", "homa", None),
    ("HomaP4", "homa", 4),
    ("HomaP2", "homa", 2),
    ("HomaP1", "homa", 1),
    ("Basic", "basic", None),
    ("Stream-MC", "stream_mc", None),
    ("Stream", "stream", None),
)

WORKLOADS_BY_SCALE = {"tiny": ("W3",), "quick": ("W3", "W4"),
                      "paper": ("W3", "W4", "W5")}


def cluster_kwargs():
    scale = current_scale()
    return dict(racks=1, hosts_per_rack=16, aggrs=0,
                duration_ms=scale.duration_ms,
                warmup_ms=0.0 if scale.name == "tiny" else 0.5,
                drain_ms=scale.drain_ms,
                max_messages=scale.max_messages, mode="rpc_echo")


def campaign_spec(workload: str) -> campaign.CampaignSpec:
    heavy = workload in ("W4", "W5")
    scale = current_scale()
    kwargs = cluster_kwargs()
    if heavy:
        kwargs["duration_ms"] = scale.heavy_duration_ms
        kwargs["drain_ms"] = scale.heavy_drain_ms
        kwargs["max_messages"] = scale.heavy_max_messages
    cfgs = {}
    for label, protocol, n_prios in VARIANTS:
        homa_cfg = None  # protocol defaults (Basic keeps basic())
        if n_prios is not None:
            homa_cfg = HomaConfig().with_prios(n_prios)
        cfgs[label] = ExperimentConfig(protocol=protocol, workload=workload,
                                       load=0.8, homa=homa_cfg, **kwargs)
    return campaign.experiment_grid(f"fig08-{workload}", cfgs)


def campaign_specs() -> list[campaign.CampaignSpec]:
    """Every per-workload campaign (the ``campaign all`` pool)."""
    return [campaign_spec(workload)
            for workload in WORKLOADS_BY_SCALE[current_scale().name]]


def run_campaign(workload: str, jobs=None, fresh=False):
    return campaign.run(campaign_spec(workload), jobs=jobs, fresh=fresh)


def render(workload: str, results, percentile: float, figure: str) -> str:
    edges = get_workload(workload).bucket_edges()
    columns = {label: results[label].slowdown_series(percentile)
               for label, _, _ in VARIANTS}
    pct = "99th-percentile" if percentile == 99 else "median"
    text = series_table(
        f"Figure {figure}: implementation proxy, {pct} echo-RPC slowdown, "
        f"{workload}, 80% load (16-host cluster)",
        edges, columns)
    text += ("\n   paper: Basic 5-15x worse than Homa; single stream "
             f"~{FIG8['stream_vs_multi']}x worse than multi-connection "
             "for small RPCs")
    return text


def run_figure(jobs=None, fresh=False) -> list[str]:
    """CLI entry: regenerate Figures 8 and 9 at the current scale."""
    paths = []
    for workload in WORKLOADS_BY_SCALE[current_scale().name]:
        results = run_campaign(workload, jobs=jobs, fresh=fresh)
        paths.append(save_result(f"fig08_implementation_p99_{workload}",
                                 render(workload, results, 99, "8")))
        paths.append(save_result(f"fig09_implementation_median_{workload}",
                                 render(workload, results, 50, "9")))
    return paths


@parametrize("workload", WORKLOADS_BY_SCALE[current_scale().name])
def test_fig08_implementation_p99(benchmark, workload):
    results = run_once(benchmark, lambda: run_campaign(workload))
    text = render(workload, results, 99, "8")
    save_result(f"fig08_implementation_p99_{workload}", text)
    homa = results["Homa"]
    stream = results["Stream"]
    assert homa.completed > 100
    # Shape assertions: priorities + overcommitment beat Basic; a single
    # FIFO stream is far worse for small RPCs (HOL blocking).
    small_homa = homa.slowdown_series(99)[0]
    small_stream = stream.slowdown_series(99)[0]
    if small_homa == small_homa and small_stream == small_stream:
        assert small_stream > small_homa


@parametrize("workload", WORKLOADS_BY_SCALE[current_scale().name])
def test_fig09_implementation_median(benchmark, workload):
    results = run_once(benchmark, lambda: run_campaign(workload))
    text = render(workload, results, 50, "9")
    save_result(f"fig09_implementation_median_{workload}", text)
    assert results["Homa"].tracker.overall(50) >= 1.0
