"""Figure 17: how many unscheduled priority levels does W1 need?

"With only a single unscheduled priority, the 99th percentile slowdown
increases by more than 2.5x for most message sizes.  A second priority
level improves latency for more than 80% of messages; additional levels
provide smaller gains."
"""

from repro.experiments import campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, scaled_kwargs
from repro.experiments.tables import series_table
from repro.homa.config import HomaConfig
from repro.workloads.catalog import get_workload

from _shared import run_once, save_result

LEVELS = {"tiny": (1, 7), "quick": (1, 2, 3, 7), "paper": (1, 2, 3, 7)}


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        n_unsched: ExperimentConfig(
            protocol="homa", workload="W1", load=0.8,
            homa=HomaConfig(n_unsched_override=n_unsched,
                            n_sched_override=1),
            **scaled_kwargs("W1"))
        for n_unsched in LEVELS[current_scale().name]}
    return campaign.experiment_grid("fig17", cfgs)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render(results) -> str:
    edges = get_workload("W1").bucket_edges()
    columns = {f"{n} unsched": r.slowdown_series(99)
               for n, r in results.items()}
    text = series_table(
        "Figure 17: 99th-percentile slowdown, W1, 80% load, "
        "1 scheduled priority, varying unscheduled levels",
        edges, columns)
    text += ("\n   paper: 1 level is >2.5x worse for most sizes; "
             "2 levels recover most of the gain")
    return text


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig17_unsched_prios", render(results))]


def test_fig17_unsched_prios(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("fig17_unsched_prios", render(results))
    levels = sorted(results)
    one = results[levels[0]].slowdown_series(99)
    many = results[levels[-1]].slowdown_series(99)
    pairs = [(a, b) for a, b in zip(one, many) if a == a and b == b]
    assert pairs
    # Shape: a single unscheduled level is clearly worse somewhere.
    assert max(a / b for a, b in pairs) > 1.3
