"""Ablations for design choices the paper discusses but does not plot:

* **link-level packet preemption** (Figure 14's conclusion: "the only
  way to improve tail latency significantly is with changes to the
  networking hardware, such as implementing link-level packet
  preemption") — we can actually build that hardware in simulation;
* **granting to the oldest message** (section 5.1: "we speculate that
  the performance of these outliers could be improved by dedicating a
  small fraction of downlink bandwidth to the oldest message");
* **online priority estimation** (section 4: the RAMCloud
  implementation precomputed priorities; the full mechanism measures
  incoming message lengths on the fly).

All six runs (three baseline/variant pairs) are cells of one campaign.
"""

from repro.experiments import campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import scaled_kwargs
from repro.homa.config import HomaConfig

from _shared import run_once, save_result


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        ("preempt", "normal"): ExperimentConfig(
            protocol="homa", workload="W3", load=0.8,
            **scaled_kwargs("W3")),
        ("preempt", "preemptive"): ExperimentConfig(
            protocol="homa", workload="W3", load=0.8,
            net_overrides={"preemptive_links": True},
            **scaled_kwargs("W3")),
        ("oldest", "normal"): ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            **scaled_kwargs("W4")),
        ("oldest", "reserved"): ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            homa=HomaConfig(grant_oldest=True), **scaled_kwargs("W4")),
        ("online", "static"): ExperimentConfig(
            protocol="homa", workload="W2", load=0.8,
            **scaled_kwargs("W2")),
        ("online", "online"): ExperimentConfig(
            protocol="homa", workload="W2", load=0.8,
            homa=HomaConfig(online_priorities=True,
                            online_refresh_ps=2_000_000_000),
            **scaled_kwargs("W2")),
    }
    return campaign.experiment_grid("ablations", cfgs)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render_preemption(results) -> str:
    normal = results[("preempt", "normal")]
    preemptive = results[("preempt", "preemptive")]
    return "\n".join([
        "== Ablation: ideal link-level packet preemption (W3, 80%) ==",
        f"  normal links:      p99 slowdown {normal.tracker.overall(99):.2f}",
        f"  preemptive links:  p99 slowdown {preemptive.tracker.overall(99):.2f}",
        "  paper (Fig 14): remaining tail delay is almost entirely "
        "preemption lag, so preemptive links should approach slowdown 1",
    ])


def render_grant_oldest(results) -> str:
    normal_tail = results[("oldest", "normal")].slowdown_series(99)[-1]
    oldest_tail = results[("oldest", "reserved")].slowdown_series(99)[-1]
    return "\n".join([
        "== Ablation: reserve a grant slot for the oldest message "
        "(W4, 80%) ==",
        f"  pure SRPT:        largest-bucket p99 slowdown {normal_tail:.2f}",
        f"  oldest reserved:  largest-bucket p99 slowdown {oldest_tail:.2f}",
        "  paper (5.1): speculated to improve the 100x outliers for the "
        "very largest messages",
    ])


def render_online(results) -> str:
    static = results[("online", "static")]
    online = results[("online", "online")]
    return "\n".join([
        "== Ablation: online priority estimation vs precomputed (W2, 80%) ==",
        f"  precomputed: p99 slowdown {static.tracker.overall(99):.2f}",
        f"  online:      p99 slowdown {online.tracker.overall(99):.2f}",
        "  paper (4): the implementation precomputed priorities from the "
        "benchmark workload; online estimation should converge close",
    ])


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [
        save_result("ablation_preemption", render_preemption(results)),
        save_result("ablation_grant_oldest", render_grant_oldest(results)),
        save_result("ablation_online_priorities", render_online(results)),
    ]


def test_ablation_link_preemption(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_preemption", render_preemption(results))
    normal = results[("preempt", "normal")]
    preemptive = results[("preempt", "preemptive")]
    assert preemptive.tracker.overall(99) <= normal.tracker.overall(99) + 0.05


def test_ablation_grant_oldest(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_grant_oldest", render_grant_oldest(results))
    assert results[("oldest", "reserved")].finish_rate > 0.9


def test_ablation_online_priorities(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_online_priorities", render_online(results))
    static = results[("online", "static")]
    online = results[("online", "online")]
    # Online estimation must be in the same ballpark as precomputed.
    assert online.tracker.overall(99) < 3.0 * static.tracker.overall(99)
