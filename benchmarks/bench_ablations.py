"""Ablations for design choices the paper discusses but does not plot:

* **link-level packet preemption** (Figure 14's conclusion: "the only
  way to improve tail latency significantly is with changes to the
  networking hardware, such as implementing link-level packet
  preemption") — we can actually build that hardware in simulation;
* **granting to the oldest message** (section 5.1: "we speculate that
  the performance of these outliers could be improved by dedicating a
  small fraction of downlink bandwidth to the oldest message");
* **online priority estimation** (section 4: the RAMCloud
  implementation precomputed priorities; the full mechanism measures
  incoming message lengths on the fly).

* **grant-pacer coalescing** (ROADMAP follow-up to the PR 4 batched
  grant pacer): sweep the batch interval per workload (W1-W5 at
  1/2/4/8 µs) and compare against count-based coalescing — grant every
  N data packets, as the Linux kernel Homa implementation does — and
  the legacy per-packet mode.  The recommended per-workload settings
  are recorded in docs/PERFORMANCE.md.

All runs are cells of one campaign.
"""

from repro.experiments import campaign
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import scaled_kwargs
from repro.homa.config import HomaConfig

from _shared import run_once, save_result


def campaign_spec() -> campaign.CampaignSpec:
    cfgs = {
        ("preempt", "normal"): ExperimentConfig(
            protocol="homa", workload="W3", load=0.8,
            **scaled_kwargs("W3")),
        ("preempt", "preemptive"): ExperimentConfig(
            protocol="homa", workload="W3", load=0.8,
            net_overrides={"preemptive_links": True},
            **scaled_kwargs("W3")),
        ("oldest", "normal"): ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            **scaled_kwargs("W4")),
        ("oldest", "reserved"): ExperimentConfig(
            protocol="homa", workload="W4", load=0.8,
            homa=HomaConfig(grant_oldest=True), **scaled_kwargs("W4")),
        ("online", "static"): ExperimentConfig(
            protocol="homa", workload="W2", load=0.8,
            **scaled_kwargs("W2")),
        ("online", "online"): ExperimentConfig(
            protocol="homa", workload="W2", load=0.8,
            homa=HomaConfig(online_priorities=True,
                            online_refresh_ps=2_000_000_000),
            **scaled_kwargs("W2")),
    }
    for wl in GRANT_WORKLOADS:
        for label, homa in GRANT_SETTINGS:
            cfgs[("grant", f"{wl}:{label}")] = ExperimentConfig(
                protocol="homa", workload=wl, load=0.8, homa=homa,
                **scaled_kwargs(wl))
    return campaign.experiment_grid("ablations", cfgs)


#: grant-pacer sweep: timer intervals (µs), count-based coalescing
#: (the Linux kernel grants roughly once per ~10 incoming data
#: packets), and the legacy per-packet baseline
GRANT_WORKLOADS = ("W1", "W2", "W3", "W4", "W5")
GRANT_SETTINGS = (
    ("per-packet", HomaConfig(grant_batch_ns=0)),
    ("1us", HomaConfig(grant_batch_ns=1000)),
    ("2us", HomaConfig(grant_batch_ns=2000)),
    ("4us", HomaConfig(grant_batch_ns=4000)),
    ("8us", HomaConfig(grant_batch_ns=8000)),
    ("per-10-pkts", HomaConfig(grant_batch_ns=0, grant_batch_pkts=10)),
)


def run_campaign(jobs=None, fresh=False):
    return campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)


def render_preemption(results) -> str:
    normal = results[("preempt", "normal")]
    preemptive = results[("preempt", "preemptive")]
    return "\n".join([
        "== Ablation: ideal link-level packet preemption (W3, 80%) ==",
        f"  normal links:      p99 slowdown {normal.tracker.overall(99):.2f}",
        f"  preemptive links:  p99 slowdown {preemptive.tracker.overall(99):.2f}",
        "  paper (Fig 14): remaining tail delay is almost entirely "
        "preemption lag, so preemptive links should approach slowdown 1",
    ])


def render_grant_oldest(results) -> str:
    normal_tail = results[("oldest", "normal")].slowdown_series(99)[-1]
    oldest_tail = results[("oldest", "reserved")].slowdown_series(99)[-1]
    return "\n".join([
        "== Ablation: reserve a grant slot for the oldest message "
        "(W4, 80%) ==",
        f"  pure SRPT:        largest-bucket p99 slowdown {normal_tail:.2f}",
        f"  oldest reserved:  largest-bucket p99 slowdown {oldest_tail:.2f}",
        "  paper (5.1): speculated to improve the 100x outliers for the "
        "very largest messages",
    ])


def render_online(results) -> str:
    static = results[("online", "static")]
    online = results[("online", "online")]
    return "\n".join([
        "== Ablation: online priority estimation vs precomputed (W2, 80%) ==",
        f"  precomputed: p99 slowdown {static.tracker.overall(99):.2f}",
        f"  online:      p99 slowdown {online.tracker.overall(99):.2f}",
        "  paper (4): the implementation precomputed priorities from the "
        "benchmark workload; online estimation should converge close",
    ])


def recommend_grant_setting(results, workload: str) -> str:
    """The recommended coalescing setting for one workload: the
    batched/counted mode with the best 99th-percentile slowdown; ties
    go to the coarser setting (fewer control packets)."""
    candidates = []
    for idx, (label, _) in enumerate(GRANT_SETTINGS):
        if label == "per-packet":
            continue
        result = results[("grant", f"{workload}:{label}")]
        candidates.append((round(result.tracker.overall(99), 3), -idx, label))
    return min(candidates)[2]


def render_grant_pacer(results) -> str:
    lines = [
        "== Ablation: grant-pacer coalescing (W1-W5, 80% load) ==",
        f"{'workload':<9}{'setting':<13}{'p50':>7}{'p99':>8}"
        f"{'grants':>9}{'events':>10}",
    ]
    for wl in GRANT_WORKLOADS:
        for label, _ in GRANT_SETTINGS:
            r = results[("grant", f"{wl}:{label}")]
            lines.append(
                f"{wl:<9}{label:<13}{r.tracker.overall(50):>7.2f}"
                f"{r.tracker.overall(99):>8.2f}{r.control.grants:>9}"
                f"{r.events:>10}")
        lines.append(f"{wl:<9}recommended: "
                     f"{recommend_grant_setting(results, wl)}")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    results = run_campaign(jobs=jobs, fresh=fresh)
    return [
        save_result("ablation_preemption", render_preemption(results)),
        save_result("ablation_grant_oldest", render_grant_oldest(results)),
        save_result("ablation_online_priorities", render_online(results)),
        save_result("ablation_grant_pacer", render_grant_pacer(results)),
    ]


def test_ablation_link_preemption(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_preemption", render_preemption(results))
    normal = results[("preempt", "normal")]
    preemptive = results[("preempt", "preemptive")]
    assert preemptive.tracker.overall(99) <= normal.tracker.overall(99) + 0.05


def test_ablation_grant_oldest(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_grant_oldest", render_grant_oldest(results))
    assert results[("oldest", "reserved")].finish_rate > 0.9


def test_ablation_online_priorities(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_online_priorities", render_online(results))
    static = results[("online", "static")]
    online = results[("online", "online")]
    # Online estimation must be in the same ballpark as precomputed.
    assert online.tracker.overall(99) < 3.0 * static.tracker.overall(99)


def test_ablation_grant_pacer(benchmark):
    results = run_once(benchmark, run_campaign)
    save_result("ablation_grant_pacer", render_grant_pacer(results))
    for wl in GRANT_WORKLOADS:
        legacy = results[("grant", f"{wl}:per-packet")]
        assert legacy.finish_rate > 0.9
        for label in ("4us", "per-10-pkts"):
            coalesced = results[("grant", f"{wl}:{label}")]
            # Coalescing must cut control packets without collapsing
            # the tail (wide bound: heavy-tailed workloads are noisy
            # at bench scale).  Workloads that fit in unscheduled
            # bytes send no grants at all at small scales (W1 at
            # tiny), so the cut is only required where grants exist.
            if legacy.control.grants:
                assert coalesced.control.grants < legacy.control.grants
            else:
                assert coalesced.control.grants == 0
            assert (coalesced.tracker.overall(99)
                    < 3.0 * legacy.tracker.overall(99) + 1.0)
