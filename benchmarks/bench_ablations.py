"""Ablations for design choices the paper discusses but does not plot:

* **link-level packet preemption** (Figure 14's conclusion: "the only
  way to improve tail latency significantly is with changes to the
  networking hardware, such as implementing link-level packet
  preemption") — we can actually build that hardware in simulation;
* **granting to the oldest message** (section 5.1: "we speculate that
  the performance of these outliers could be improved by dedicating a
  small fraction of downlink bandwidth to the oldest message");
* **online priority estimation** (section 4: the RAMCloud
  implementation precomputed priorities; the full mechanism measures
  incoming message lengths on the fly).
"""

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scale import scaled_kwargs
from repro.homa.config import HomaConfig

from _shared import cached, run_once, save_result


def run_preemption():
    base = ExperimentConfig(protocol="homa", workload="W3", load=0.8,
                            **scaled_kwargs("W3"))
    normal = run_experiment(base)
    preempt = ExperimentConfig(
        protocol="homa", workload="W3", load=0.8,
        net_overrides={"preemptive_links": True},
        **scaled_kwargs("W3"))
    preemptive = run_experiment(preempt)
    return normal, preemptive


def run_grant_oldest():
    kwargs = scaled_kwargs("W4")
    normal = run_experiment(ExperimentConfig(
        protocol="homa", workload="W4", load=0.8, **kwargs))
    oldest = run_experiment(ExperimentConfig(
        protocol="homa", workload="W4", load=0.8,
        homa=HomaConfig(grant_oldest=True), **kwargs))
    return normal, oldest


def run_online_priorities():
    kwargs = scaled_kwargs("W2")
    static = run_experiment(ExperimentConfig(
        protocol="homa", workload="W2", load=0.8, **kwargs))
    online = run_experiment(ExperimentConfig(
        protocol="homa", workload="W2", load=0.8,
        homa=HomaConfig(online_priorities=True, online_refresh_ps=2_000_000_000),
        **kwargs))
    return static, online


def test_ablation_link_preemption(benchmark):
    normal, preemptive = run_once(
        benchmark, lambda: cached("abl_preempt", run_preemption))
    text = "\n".join([
        "== Ablation: ideal link-level packet preemption (W3, 80%) ==",
        f"  normal links:      p99 slowdown {normal.tracker.overall(99):.2f}",
        f"  preemptive links:  p99 slowdown {preemptive.tracker.overall(99):.2f}",
        "  paper (Fig 14): remaining tail delay is almost entirely "
        "preemption lag, so preemptive links should approach slowdown 1",
    ])
    save_result("ablation_preemption", text)
    assert preemptive.tracker.overall(99) <= normal.tracker.overall(99) + 0.05


def test_ablation_grant_oldest(benchmark):
    normal, oldest = run_once(
        benchmark, lambda: cached("abl_oldest", run_grant_oldest))
    # Compare the very largest messages (the SRPT outliers).
    normal_tail = normal.slowdown_series(99)[-1]
    oldest_tail = oldest.slowdown_series(99)[-1]
    text = "\n".join([
        "== Ablation: reserve a grant slot for the oldest message "
        "(W4, 80%) ==",
        f"  pure SRPT:        largest-bucket p99 slowdown {normal_tail:.2f}",
        f"  oldest reserved:  largest-bucket p99 slowdown {oldest_tail:.2f}",
        "  paper (5.1): speculated to improve the 100x outliers for the "
        "very largest messages",
    ])
    save_result("ablation_grant_oldest", text)
    assert oldest.finish_rate > 0.9


def test_ablation_online_priorities(benchmark):
    static, online = run_once(
        benchmark, lambda: cached("abl_online", run_online_priorities))
    text = "\n".join([
        "== Ablation: online priority estimation vs precomputed (W2, 80%) ==",
        f"  precomputed: p99 slowdown {static.tracker.overall(99):.2f}",
        f"  online:      p99 slowdown {online.tracker.overall(99):.2f}",
        "  paper (4): the implementation precomputed priorities from the "
        "benchmark workload; online estimation should converge close",
    ])
    save_result("ablation_online_priorities", text)
    # Online estimation must be in the same ballpark as precomputed.
    assert online.tracker.overall(99) < 3.0 * static.tracker.overall(99)
