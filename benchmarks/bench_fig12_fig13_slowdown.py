"""Figures 12 and 13: slowdown vs message size for Homa, pFabric,
pHost, PIAS (and NDP on W5) at high and moderate network load.

The two figures share simulation runs (12 = 99th percentile, 13 =
median): both render from one campaign per workload, whose cells land
in the on-disk cache, so the second figure (and any re-run) costs no
simulations.  pHost and NDP run at the highest load they sustain,
exactly as footnoted in the paper's Figure 12 caption.
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG12_SHORT_MSG_P99_80
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import current_scale, effective_load, scaled_kwargs
from repro.experiments.tables import series_table
from repro.workloads.catalog import get_workload

from _shared import parametrize, run_once, save_result

WORKLOADS = ("W1", "W2", "W3", "W4", "W5")


def protocols_for(workload: str) -> tuple[str, ...]:
    if workload == "W5":
        return ("homa", "pfabric", "phost", "pias", "ndp")
    return ("homa", "pfabric", "phost", "pias")


def loads_for_scale() -> tuple[float, ...]:
    # Figure 12(a) is 80%; (b) is 50%.  Quick mode runs only the
    # 80% panel (the paper's headline) to bound wall time.
    return (0.8, 0.5) if current_scale().name == "paper" else (0.8,)


def campaign_spec(workload: str) -> campaign.CampaignSpec:
    cfgs = {}
    for load in loads_for_scale():
        for protocol in protocols_for(workload):
            cfgs[(protocol, load)] = ExperimentConfig(
                protocol=protocol, workload=workload,
                load=effective_load(protocol, load),
                **scaled_kwargs(workload))
    return campaign.experiment_grid(f"fig12-{workload}", cfgs)


def campaign_specs() -> list[campaign.CampaignSpec]:
    """Every per-workload campaign (the ``campaign all`` pool)."""
    return [campaign_spec(workload) for workload in WORKLOADS]


def run_campaign(workload: str, jobs=None, fresh=False):
    return campaign.run(campaign_spec(workload), jobs=jobs, fresh=fresh)


def render(workload: str, results, percentile: float, figure: str) -> str:
    edges = get_workload(workload).bucket_edges()
    chunks = []
    for load in loads_for_scale():
        columns = {}
        for protocol in protocols_for(workload):
            result = results[(protocol, load)]
            label = protocol
            actual = result.cfg.load
            if actual != load:
                label = f"{protocol}@{int(actual * 100)}"
            columns[label] = result.slowdown_series(percentile)
        pct = "99th-percentile" if percentile == 99 else "median"
        chunks.append(series_table(
            f"Figure {figure}: {pct} slowdown, {workload}, "
            f"{int(load * 100)}% load",
            edges, columns,
            note="pHost/NDP at their max sustainable load, as in the paper"))
        counts = ", ".join(
            f"{p}:{results[(p, load)].tracker.count}"
            for p in protocols_for(workload))
        chunks.append(f"   messages measured: {counts}")
        if percentile == 99 and load == 0.8:
            paper = FIG12_SHORT_MSG_P99_80.get(workload, {})
            ref = ", ".join(f"{k}~{v}" for k, v in paper.items())
            chunks.append(f"   paper short-message p99 reference: {ref}")
    return "\n\n".join(chunks)


def run_figure(jobs=None, fresh=False) -> list[str]:
    """CLI entry: regenerate Figures 12 and 13 for every workload."""
    paths = []
    for workload in WORKLOADS:
        results = run_campaign(workload, jobs=jobs, fresh=fresh)
        paths.append(save_result(f"fig12_slowdown_p99_{workload}",
                                 render(workload, results, 99, "12")))
        paths.append(save_result(f"fig13_slowdown_median_{workload}",
                                 render(workload, results, 50, "13")))
    return paths


@parametrize("workload", WORKLOADS)
def test_fig12_slowdown_p99(benchmark, workload):
    results = run_once(benchmark, lambda: run_campaign(workload))
    text = render(workload, results, 99, "12")
    save_result(f"fig12_slowdown_p99_{workload}", text)
    homa = results[("homa", 0.8)]
    min_count = 10 if current_scale().name == "tiny" else 100
    assert homa.tracker.count > min_count
    # Shape: Homa's short-message p99 stays small at 80% load.
    short_p99 = homa.slowdown_series(99)[:5]
    finite = [v for v in short_p99 if v == v]
    assert finite and min(finite) < 4.0


@parametrize("workload", WORKLOADS)
def test_fig13_slowdown_median(benchmark, workload):
    results = run_once(benchmark, lambda: run_campaign(workload))
    text = render(workload, results, 50, "13")
    save_result(f"fig13_slowdown_median_{workload}", text)
    homa = results[("homa", 0.8)]
    assert homa.tracker.overall(50) < 3.0
