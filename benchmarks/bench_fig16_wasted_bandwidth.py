"""Figure 16: wasted receiver bandwidth vs load, per overcommitment
degree (number of scheduled priority levels), workload W4.

"If receivers grant to only one message at a time, Homa can only
support a network load of about 63% for workload W4, versus 89% with an
overcommitment level of 7."
"""

from repro.experiments import campaign
from repro.experiments.paper_data import FIG16_W4_MAX_LOAD_BY_DEGREE
from repro.experiments.runner import ExperimentConfig
from repro.experiments.scale import campaign_kwargs, current_scale
from repro.homa.config import HomaConfig

from _shared import run_once, save_result

DEGREES = {"tiny": (1, 7), "quick": (1, 2, 4, 7), "paper": (1, 2, 3, 4, 5, 7)}
LOADS = {"tiny": (0.5, 0.8), "quick": (0.5, 0.63, 0.8, 0.89),
         "paper": (0.3, 0.5, 0.63, 0.7, 0.8, 0.89)}


def campaign_spec() -> campaign.CampaignSpec:
    scale = current_scale()
    # Wasted-bandwidth fractions need continuous open-loop generation.
    kwargs = campaign_kwargs("W4", uncapped=True, duration_cap_ms=12.0)
    cfgs = {}
    for degree in DEGREES[scale.name]:
        for load in LOADS[scale.name]:
            cfgs[(degree, load)] = ExperimentConfig(
                protocol="homa", workload="W4", load=load,
                homa=HomaConfig(n_sched_override=degree),
                collect=("wasted",),
                **kwargs)
    return campaign.experiment_grid("fig16", cfgs)


def run_campaign(jobs=None, fresh=False):
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return [(degree, load, result.wasted_fraction, result.finish_rate)
            for (degree, load), result in results.items()]


def render(rows) -> str:
    lines = ["== Figure 16: wasted receiver bandwidth, W4 =="]
    lines.append(f"{'sched prios':>12} {'load':>6} {'wasted bw':>10} "
                 f"{'finish rate':>12}")
    for degree, load, wasted, finish in rows:
        lines.append(f"{degree:>12} {load * 100:>5.0f}% "
                     f"{wasted * 100:>9.1f}% {finish:>12.3f}")
    lines.append("")
    paper = ", ".join(f"{k} prio:{v}%"
                      for k, v in FIG16_W4_MAX_LOAD_BY_DEGREE.items())
    lines.append(f"paper max sustainable load by degree: {paper}")
    lines.append("(wasted bandwidth cannot exceed surplus = 100% - load; "
                 "a finish rate << 1 marks an unsustainable point)")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    rows = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig16_wasted_bandwidth", render(rows))]


def test_fig16_wasted_bandwidth(benchmark):
    rows = run_once(benchmark, run_campaign)
    save_result("fig16_wasted_bandwidth", render(rows))
    by_key = {(d, l): (w, f) for d, l, w, f in rows}
    degrees = sorted({d for d, _, _, _ in rows})
    high_load = max(l for _, l, _, _ in rows)
    # Shape: more overcommitment -> less wasted bandwidth at high load.
    low_degree_waste = by_key[(degrees[0], high_load)][0]
    high_degree_waste = by_key[(degrees[-1], high_load)][0]
    assert high_degree_waste <= low_degree_waste + 0.02
