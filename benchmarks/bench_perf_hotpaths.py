"""Hot-path performance benchmark: the indexed simulator vs. the seed.

Runs the canonical 144-host W4 @ 80% load scenario (the paper's
Figure 11 topology) on the current tree, verifies that the slowdown
percentiles are byte-identical to the recorded seed digests (the
indexing refactor must not change simulation results), and reports the
wall-time speedup against the seed.  Results land in
``BENCH_hotpaths.json`` at the repository root so later PRs can track
the trajectory; see docs/PERFORMANCE.md for how to read it.

Because shared machines drift in speed from minute to minute, the only
rigorous comparison is *interleaved*: ``--against-worktree PATH`` runs
the scenario alternately in a seed checkout and the current tree
(subprocess per run, best-of-N each) — this is how the committed
artifact was produced.  Without the flag, the current tree is measured
alone and compared against the recorded seed baseline, which is
approximate across sessions.

Both canonical scenarios pin ``grant_batch_ns=0`` (legacy per-packet
grants): the digest contract is defined against the seed code, and the
batched grant pacer intentionally changes grant timing.  The pacer's
own claim — fewer GRANT control packets at the default batch interval —
is measured by ``--grant-batching``, which runs the 144-host W4 @ 80%
scenario in both modes and records the reduction (grant counts are
deterministic, so one run per mode suffices) under the
``grant_batching`` key of ``BENCH_hotpaths.json``.

``--dispatch-micro`` measures the dispatch-layer primitives that the
array-core design rests on — storage-layout read costs (slot attribute
vs list index vs ``array('q')``), queue disciplines (C ``deque`` vs a
pure-Python ring buffer), event-heap push+pop at the canonical
scenario's working heap size, and the pooled alloc/free cycle vs plain
``Packet`` construction.  With ``--smoke`` it also gates CI: the pooled
control-packet cycle must be strictly cheaper than the keyword-argument
construction the grant path used before pooling, and the smoke
scenario's digests must equal the recorded seed digests.

Usage:
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py
        [--smoke] [--repeats N] [--against-worktree PATH]
        [--grant-batching] [--cut-through] [--dispatch-micro]

``--smoke`` runs a seconds-long 2-rack variant (no JSON overwrite, no
speedup claim) so CI catches harness bitrot.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_hotpaths.json"
SMOKE_RESULT_PATH = (Path(__file__).resolve().parent / "results"
                     / "BENCH_hotpaths_smoke.json")

#: the canonical scenario: full Figure 11 topology, heavy-tailed W4.
#: ``homa.grant_batch_ns=0`` pins legacy per-packet grants — the digest
#: contract is against the seed code (the batched pacer drifts by
#: design; ``--grant-batching`` measures that mode separately).
SCENARIO = dict(protocol="homa", workload="W4", load=0.8,
                racks=9, hosts_per_rack=16, aggrs=4,
                duration_ms=3.0, warmup_ms=0.5, drain_ms=10.0,
                seed=42, max_messages=1200,
                homa={"grant_batch_ns": 0})

SMOKE_SCENARIO = dict(protocol="homa", workload="W4", load=0.8,
                      racks=2, hosts_per_rack=4, aggrs=2,
                      duration_ms=2.0, warmup_ms=0.5, drain_ms=8.0,
                      seed=7, max_messages=150,
                      homa={"grant_batch_ns": 0})

#: seed-code slowdown digests for SMOKE_SCENARIO — the same scenario
#: (and bytes) tests/test_hotpath_regressions.py pins as GOLDEN_P50/P99.
#: ``--dispatch-micro --smoke`` asserts digest identity against these.
SMOKE_P50 = [
    "1.5009050975091716", "1.1670182719005746", "1.0279255319148937",
    "1.0441817406143346", "1.1406033720287452", "1.1435432982355214",
    "1.0559966867005701", "1.0824325191564734", "1.0700807123640126",
    "1.1932839408099105",
]
SMOKE_P99 = [
    "1.7767629172975146", "1.2863380476441835", "1.598025011635208",
    "1.806829926099352", "1.4417672882216506", "1.4726971202640802",
    "1.222181939521681", "1.0980201786448214", "2.0018056622704568",
    "1.9745655835647904",
]


def build_config(scenario: dict):
    """Scenario dict -> ExperimentConfig (expands the ``homa`` entry)."""
    from repro.experiments.runner import ExperimentConfig
    from repro.homa.config import HomaConfig
    data = dict(scenario)
    homa = data.pop("homa", None)
    if homa is not None:
        homa = HomaConfig(**homa)
    return ExperimentConfig(homa=homa, **data)

#: seed-commit reference (eb72f9c) for single-tree trajectory runs,
#: recorded from an interleaved best-of-5 session (see methodology).
SEED_BASELINE = {
    "commit": "eb72f9c",
    "wall_seconds": 11.1273,
    "events": 2735403,
    "events_per_sec": 245829,
    "walls_seconds": [12.089, 11.127, 11.375, 12.903, 13.543],
    "methodology": "best-of-5, interleaved with the refactored tree "
                   "on the same machine",
}

#: seed-code slowdown digests for SCENARIO (repr() of every percentile):
#: the refactor must reproduce these bytes exactly.
SEED_P50 = [
    "1.0521930256610235", "1.0825844486934353", "1.0378528481012659",
    "1.0276892825259134", "1.0564862891519016", "1.0421184042314313",
    "1.0966928276380024", "1.0666524831472126", "1.0514078119190127",
    "1.0826304750380495",
]
SEED_P99 = [
    "1.5369225366870063", "1.5122067931895813", "1.513742523324163",
    "1.614270697072381", "1.4093682606704407", "1.4908855324912582",
    "1.3398409970445109", "1.5552276061822574", "1.4166485326631628",
    "1.8938824628532993",
]

#: subprocess payload: run SCENARIO once in the tree given as argv[1].
#: The ``homa`` entry is filtered to the fields that tree's HomaConfig
#: knows, so the seed checkout (no ``grant_batch_ns``) accepts the
#: pinned legacy scenario — dropping ``grant_batch_ns=0`` there is a
#: no-op because 0 *is* the seed behavior.
_WORKER = """
import sys, json, dataclasses
sys.path.insert(0, sys.argv[1] + "/src")
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.homa.config import HomaConfig
spec = json.loads(sys.argv[2])
homa = spec.pop("homa", None)
if homa is not None:
    known = {f.name for f in dataclasses.fields(HomaConfig)}
    homa = HomaConfig(**{k: v for k, v in homa.items() if k in known})
cfg = ExperimentConfig(homa=homa, **spec)
r = run_experiment(cfg)
control = getattr(r, "control", None)
print(json.dumps({
    "wall": r.wall_seconds, "events": r.events,
    "completed": r.completed,
    "grants": getattr(control, "grants", 0),
    "p50": [repr(x) for x in r.slowdown_series(50)],
    "p99": [repr(x) for x in r.slowdown_series(99)],
}))
"""


def run_in_tree(tree: Path, scenario: dict) -> dict:
    if not (tree / "src" / "repro").is_dir():
        raise SystemExit(f"error: {tree} does not contain src/repro")
    # Strip PYTHONPATH so the tree argument is authoritative — an
    # inherited path would silently measure the wrong checkout.
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    out = subprocess.run(
        [sys.executable, "-c", _WORKER, str(tree), json.dumps(scenario)],
        capture_output=True, text=True, check=True, env=env)
    return json.loads(out.stdout.splitlines()[-1])


def run_scenario(scenario: dict, repeats: int):
    """Run in-process ``repeats`` times; returns (best_result, walls)."""
    from repro.experiments.runner import run_experiment
    best = None
    walls = []
    for _ in range(repeats):
        result = run_experiment(build_config(scenario))
        walls.append(result.wall_seconds)
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    return best, walls


def _merge_into_results(key: str, value: dict) -> None:
    """Set one top-level key of BENCH_hotpaths.json, preserving the rest."""
    try:
        payload = json.loads(RESULT_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload[key] = value
    RESULT_PATH.write_text(json.dumps(payload, indent=1) + "\n")


def cut_through_comparison(smoke: bool = False) -> dict:
    """Run the canonical (or smoke) scenario with idle-path cut-through
    on and off; digests must be byte-identical (the cut-through
    contract) and the fused event count strictly lower.

    Event counts are deterministic for a seeded scenario, so one run
    per mode is exact.  Wall times are recorded for honesty: in
    CPython the chain bookkeeping costs about as much as the events it
    elides, so the event reduction does not translate into a wall win
    on this runtime (see docs/PERFORMANCE.md).
    """
    import dataclasses

    scenario = SMOKE_SCENARIO if smoke else SCENARIO

    def measure(cut: bool):
        cfg = build_config(scenario)
        cfg = dataclasses.replace(
            cfg, net_overrides=dict(cfg.net_overrides, cut_through=cut))
        result = run_experiment_once(cfg)
        return result, {
            "events": result.events,
            "completed": result.completed,
            "wall_seconds": round(result.wall_seconds, 4),
            "p50": [repr(x) for x in result.slowdown_series(50)],
            "p99": [repr(x) for x in result.slowdown_series(99)],
        }

    off_result, off = measure(False)
    on_result, on = measure(True)
    payload = {
        "scenario": scenario,
        "off": off,
        "on": on,
        "event_reduction": round(off["events"] / on["events"], 3),
        "digest_identical": (off["p50"] == on["p50"]
                             and off["p99"] == on["p99"]),
    }
    if not smoke:
        payload["digest_identical_to_seed"] = (
            on["p50"] == SEED_P50 and on["p99"] == SEED_P99)
    return payload


def run_experiment_once(cfg):
    from repro.experiments.runner import run_experiment
    return run_experiment(cfg)


class _Ring:
    """Pure-Python power-of-two ring buffer — the ``array-backed port``
    candidate the tentpole named.  Measured here against ``deque`` so
    the choice in ``QueuedPort`` stays evidence-backed (the C deque
    wins on CPython; see docs/PERFORMANCE.md)."""

    __slots__ = ("buf", "mask", "head", "tail")

    def __init__(self, capacity: int = 256) -> None:
        self.buf = [None] * capacity
        self.mask = capacity - 1
        self.head = 0
        self.tail = 0

    def append(self, item) -> None:
        self.buf[self.tail & self.mask] = item
        self.tail += 1

    def popleft(self):
        head = self.head
        item = self.buf[head & self.mask]
        self.head = head + 1
        return item


def _best_ns_per_op(fn, iters: int, repeats: int = 5) -> float:
    """Minimum over ``repeats`` timed calls of ``fn(iters)``, per op."""
    import time
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn(iters)
        dt = time.perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best / iters


def dispatch_micro(smoke: bool = False) -> dict:
    """Measure the dispatch-layer primitives underpinning the array
    core.  Reported numbers include the Python loop overhead (the
    ``loop_baseline`` row), which is identical across rows — the
    *ratios* between rows are the design evidence."""
    import gc
    from array import array
    from collections import deque
    from heapq import heappush, heappop

    from repro.core.packet import CTRL_PRIO, Packet, PacketType
    from repro.core.pool import PacketPool

    iters = 20_000 if smoke else 200_000
    pkt = Packet(1, 2, PacketType.DATA, payload=1460, rpc_id=7,
                 offset=11, total_length=99999)
    lst = list(range(32))
    arr = array("q", range(32))
    dq: deque = deque()
    ring = _Ring(256)
    pool = PacketPool(prealloc=64)
    heap: list = []
    # Canonical-scenario working heap size (measured median ~150); keys
    # from a fixed multiplicative hash so the sift depth is realistic
    # rather than sorted-input degenerate.
    for i in range(150):
        heappush(heap, [(i * 2654435761) % (1 << 32), i, None, None])

    def read_slot_attr(n):
        for _ in range(n):
            pkt.offset; pkt.offset; pkt.offset; pkt.offset  # noqa: B018

    def read_list_index(n):
        for _ in range(n):
            lst[7]; lst[7]; lst[7]; lst[7]  # noqa: B018

    def read_array_q(n):
        for _ in range(n):
            arr[7]; arr[7]; arr[7]; arr[7]  # noqa: B018

    def loop_baseline(n):
        for _ in range(n):
            pkt; pkt; pkt; pkt  # noqa: B018

    def deque_cycle(n):
        append, popleft = dq.append, dq.popleft
        for i in range(n):
            append(i)
            popleft()

    def ring_cycle(n):
        for i in range(n):
            ring.append(i)
            ring.popleft()

    def packet_ctor(n):
        for i in range(n):
            Packet(1, 2, PacketType.DATA, 3, 1460, i, True, 0, 99999,
                   True, False, False, None, 0, 12345)

    def pool_cycle(n):
        alloc, free = pool.alloc_data, pool.free
        for i in range(n):
            free(alloc(1, 2, 3, 1460, i, True, 0, 99999,
                       True, False, False, None, 0, 12345))

    def ctrl_ctor_kwargs(n):
        # Mirrors the pre-pool grant path's call style: keyword-argument
        # Packet construction for every control packet.
        for i in range(n):
            Packet(3, 7, PacketType.GRANT, prio=CTRL_PRIO,
                   rpc_id=i, is_request=True,
                   grant_offset=14600, grant_prio=2)

    def ctrl_pool_cycle(n):
        alloc, free = pool.alloc_ctrl, pool.free
        for i in range(n):
            free(alloc(PacketType.GRANT, 3, 7, i, True, 14600, 2))

    def heap_cycle(n):
        seq = 1 << 33
        for i in range(n):
            heappush(heap, [(i * 2654435761) % (1 << 32), seq + i,
                            None, None])
            heappop(heap)

    rows = {
        "loop_baseline": loop_baseline,
        "slot_attr_read": read_slot_attr,
        "list_index_read": read_list_index,
        "array_q_read": read_array_q,
        "deque_cycle": deque_cycle,
        "ring_cycle": ring_cycle,
        "packet_ctor": packet_ctor,
        "pool_cycle": pool_cycle,
        "ctrl_ctor_kwargs": ctrl_ctor_kwargs,
        "ctrl_pool_cycle": ctrl_pool_cycle,
        "heap_cycle_at_150": heap_cycle,
    }
    gc_was = gc.isenabled()
    gc.disable()
    try:
        ns = {name: round(_best_ns_per_op(fn, iters), 2)
              for name, fn in rows.items()}
    finally:
        if gc_was:
            gc.enable()
    # The 4x-unrolled read rows measure 4 reads per iteration.
    for name in ("loop_baseline", "slot_attr_read", "list_index_read",
                 "array_q_read"):
        ns[name] = round(ns[name] / 4, 2)

    result = run_experiment_once(build_config(SMOKE_SCENARIO))
    digest_ok = (
        [repr(x) for x in result.slowdown_series(50)] == SMOKE_P50
        and [repr(x) for x in result.slowdown_series(99)] == SMOKE_P99)
    return {
        "iters": iters,
        "ns_per_op": ns,
        "data_pool_vs_ctor_speedup":
            round(ns["packet_ctor"] / ns["pool_cycle"], 3),
        "ctrl_pool_vs_ctor_speedup":
            round(ns["ctrl_ctor_kwargs"] / ns["ctrl_pool_cycle"], 3),
        "deque_vs_ring_speedup": round(ns["ring_cycle"] / ns["deque_cycle"], 3),
        "digest_identical_to_seed": digest_ok,
        "notes": "ns/op includes Python loop overhead (loop_baseline row);"
                 " compare rows, not absolutes.  The data-packet pool cycle"
                 " is roughly cost-neutral vs positional construction (the"
                 " seed's data path was already positional); the win the CI"
                 " gate asserts is the control path, where pooling replaced"
                 " keyword-argument construction per grant.",
    }


def grant_batching_comparison() -> dict:
    """Run SCENARIO with legacy and batched grants; report the cut.

    Grant/event counts are deterministic for a seeded scenario, so one
    run per mode is exact; wall times are incidental here.
    """
    from repro.homa.config import HomaConfig

    legacy_scn = dict(SCENARIO, homa={"grant_batch_ns": 0})
    batch_ns = HomaConfig().grant_batch_ns
    batched_scn = dict(SCENARIO, homa={"grant_batch_ns": batch_ns})

    def measure(scenario):
        result, _ = run_scenario(scenario, 1)
        return result, {
            "grants": result.control.grants,
            "grant_ticks": result.control.grant_ticks,
            "ctrl_packets": result.control.total,
            "events": result.events,
            "completed": result.completed,
            "submitted": result.submitted,
            "wall_seconds": round(result.wall_seconds, 4),
            "p50": [repr(x) for x in result.slowdown_series(50)],
            "p99": [repr(x) for x in result.slowdown_series(99)],
        }

    legacy_result, legacy = measure(legacy_scn)
    batched_result, batched = measure(batched_scn)
    return {
        "scenario": SCENARIO,
        "grant_batch_ns": batch_ns,
        "legacy": legacy,
        "batched": batched,
        "grant_reduction": round(legacy["grants"] / batched["grants"], 3),
        "event_reduction": round(legacy["events"] / batched["events"], 3),
        "digest_identical_to_seed_at_batch_0":
            legacy["p50"] == SEED_P50 and legacy["p99"] == SEED_P99,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI variant (no JSON overwrite)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per measurement; best (min wall) wins")
    parser.add_argument("--against-worktree", metavar="PATH",
                        help="seed checkout to measure interleaved with "
                             "the current tree (rigorous mode)")
    parser.add_argument("--grant-batching", action="store_true",
                        help="measure the grant pacer: legacy vs batched "
                             "GRANT counts on the canonical scenario "
                             "(updates BENCH_hotpaths.json)")
    parser.add_argument("--cut-through", action="store_true",
                        help="measure idle-path cut-through: event counts "
                             "and digest identity with the mode on vs off "
                             "(canonical scenario updates "
                             "BENCH_hotpaths.json; with --smoke runs the "
                             "CI variant and writes nothing)")
    parser.add_argument("--dispatch-micro", action="store_true",
                        help="measure dispatch-layer primitives (storage "
                             "reads, queue disciplines, heap cycle, pool "
                             "vs ctor) plus a digest check; with --smoke "
                             "gates CI and writes nothing, otherwise "
                             "updates BENCH_hotpaths.json")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    if args.cut_through:
        comparison = cut_through_comparison(smoke=args.smoke)
        reduction = comparison["event_reduction"]
        print(json.dumps(comparison, indent=1))
        print(f"events: {comparison['off']['events']} -> "
              f"{comparison['on']['events']} ({reduction:.2f}x fewer, "
              f"digest identical: {comparison['digest_identical']})")
        if args.smoke:
            ok = (comparison["digest_identical"]
                  and comparison["on"]["events"]
                  < comparison["off"]["events"])
            if not ok:
                print("FAIL: cut-through must keep digests identical and "
                      "strictly lower the event count", file=sys.stderr)
            return 0 if ok else 1
        _merge_into_results("cut_through", comparison)
        ok = (reduction >= 1.3 and comparison["digest_identical"]
              and comparison["digest_identical_to_seed"])
        if not ok:
            print("FAIL: expected >= 1.3x event reduction with "
                  "byte-identical digests", file=sys.stderr)
        return 0 if ok else 1

    if args.dispatch_micro:
        micro = dispatch_micro(smoke=args.smoke)
        print(json.dumps(micro, indent=1))
        print(f"ctrl pool cycle vs kwargs ctor: "
              f"{micro['ctrl_pool_vs_ctor_speedup']:.2f}x cheaper "
              f"(digest identical: {micro['digest_identical_to_seed']})")
        ok = (micro["digest_identical_to_seed"]
              and micro["ns_per_op"]["ctrl_pool_cycle"]
              < micro["ns_per_op"]["ctrl_ctor_kwargs"])
        if not ok:
            print("FAIL: pooled ctrl alloc+free must be strictly cheaper "
                  "than the kwargs Packet construction it replaced, with "
                  "seed-identical digests", file=sys.stderr)
            return 1
        if not args.smoke:
            _merge_into_results("dispatch_micro", micro)
        return 0

    if args.grant_batching:
        comparison = grant_batching_comparison()
        _merge_into_results("grant_batching", comparison)
        print(json.dumps(comparison, indent=1))
        reduction = comparison["grant_reduction"]
        print(f"grant packets: {comparison['legacy']['grants']} -> "
              f"{comparison['batched']['grants']} "
              f"({reduction:.2f}x cut at "
              f"grant_batch_ns={comparison['grant_batch_ns']})")
        ok = (reduction >= 1.8
              and comparison["digest_identical_to_seed_at_batch_0"])
        if not ok:
            print("FAIL: expected >= 1.8x grant reduction and a "
                  "seed-identical legacy digest", file=sys.stderr)
        return 0 if ok else 1

    if args.smoke:
        best, walls = run_scenario(SMOKE_SCENARIO, 1)
        payload = {
            "scenario": SMOKE_SCENARIO,
            "wall_seconds": round(best.wall_seconds, 4),
            "events": best.events,
            "messages_completed": best.completed,
            "grants_sent": best.control.grants,
        }
        SMOKE_RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SMOKE_RESULT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
        print(json.dumps(payload, indent=1))
        print("smoke OK")
        return 0

    if args.against_worktree:
        seed_tree = Path(args.against_worktree)
        cur_tree = REPO_ROOT
        seed_runs, cur_runs = [], []
        for _ in range(args.repeats):
            seed_runs.append(run_in_tree(seed_tree, SCENARIO))
            cur_runs.append(run_in_tree(cur_tree, SCENARIO))
        seed_best = min(seed_runs, key=lambda r: r["wall"])
        cur_best = min(cur_runs, key=lambda r: r["wall"])
        digest_ok = (cur_best["p50"] == seed_best["p50"]
                     and cur_best["p99"] == seed_best["p99"])
        # Headline speedup: the median of the adjacent-pair ratios.
        # Each pair shares one time window, so common-mode machine
        # drift cancels inside the ratio; best-vs-best instead compares
        # minima from different windows of a drifting machine.
        pairwise = sorted(s["wall"] / c["wall"]
                          for s, c in zip(seed_runs, cur_runs))
        mid = len(pairwise) // 2
        if len(pairwise) % 2:
            speedup = pairwise[mid]
        else:
            speedup = (pairwise[mid - 1] + pairwise[mid]) / 2
        payload = {
            "scenario": SCENARIO,
            "methodology": f"interleaved best-of-{args.repeats}, "
                           "one subprocess per run",
            "seed": {
                "commit": SEED_BASELINE["commit"],
                "walls_seconds": [round(r["wall"], 4) for r in seed_runs],
                "wall_seconds": round(seed_best["wall"], 4),
                "events": seed_best["events"],
                "events_per_sec": int(seed_best["events"]
                                      / seed_best["wall"]),
            },
            "current": {
                "walls_seconds": [round(r["wall"], 4) for r in cur_runs],
                "wall_seconds": round(cur_best["wall"], 4),
                "events": cur_best["events"],
                "events_per_sec": int(cur_best["events"]
                                      / cur_best["wall"]),
                "effective_events_per_sec": int(seed_best["events"]
                                                / cur_best["wall"]),
            },
            "speedup_wall": round(speedup, 3),
            "speedup_best_of": round(seed_best["wall"] / cur_best["wall"], 3),
            "speedup_pairwise": [round(x, 3) for x in pairwise],
            "digest_identical": digest_ok,
            "p50": cur_best["p50"],
            "p99": cur_best["p99"],
        }
        # Carry over every section other tooling owns (trajectory
        # notes, the grant-batching comparison, future side keys):
        # anything this mode does not itself write survives the rewrite.
        try:
            previous = json.loads(RESULT_PATH.read_text())
        except (OSError, ValueError):
            previous = {}
        for key, value in previous.items():
            payload.setdefault(key, value)
        RESULT_PATH.write_text(json.dumps(payload, indent=1) + "\n")
        print(json.dumps(payload, indent=1))
        print(f"speedup vs seed (interleaved): {speedup:.2f}x "
              f"(digest identical: {digest_ok})")
        return 0 if digest_ok else 1

    best, walls = run_scenario(SCENARIO, args.repeats)
    p50 = [repr(x) for x in best.slowdown_series(50)]
    p99 = [repr(x) for x in best.slowdown_series(99)]
    digest_ok = p50 == SEED_P50 and p99 == SEED_P99
    speedup = SEED_BASELINE["wall_seconds"] / best.wall_seconds
    payload = {
        "scenario": SCENARIO,
        "methodology": "current tree only vs recorded seed baseline "
                       "(approximate across sessions)",
        "walls_seconds": [round(w, 4) for w in walls],
        "wall_seconds": round(best.wall_seconds, 4),
        "events": best.events,
        "events_per_sec": int(best.events / best.wall_seconds),
        "effective_events_per_sec": int(SEED_BASELINE["events"]
                                        / best.wall_seconds),
        "seed_baseline": SEED_BASELINE,
        "speedup_wall": round(speedup, 3),
        "digest_identical_to_seed": digest_ok,
    }
    print(json.dumps(payload, indent=1))
    print(f"speedup vs recorded seed baseline: {speedup:.2f}x "
          f"(digest identical: {digest_ok})")
    if not digest_ok:
        print("FAIL: slowdown digests diverged from the seed", file=sys.stderr)
        return 1
    return 0


def test_perf_hotpaths_smoke():
    """Tier-1 guard: the bench harness runs and stays deterministic."""
    best, _ = run_scenario(SMOKE_SCENARIO, 1)
    assert best.completed == best.submitted > 0


if __name__ == "__main__":
    raise SystemExit(main())
