"""Figure 10: incast — throughput of one client receiving responses
from RPCs issued concurrently to 15 servers, with and without Homa's
incast control.

With control enabled, marked RPCs carry only a few hundred unscheduled
bytes, so TOR buffer occupancy stays bounded and throughput stays flat.
Without it, every 10 KB response arrives blind; past the point where
concurrent responses exceed the TOR downlink buffer, drops and
millisecond RESEND timeouts crater goodput (the paper sees the cliff
around 300 concurrent RPCs).

This benchmark is not an ``ExperimentConfig`` grid — each cell drives
a bespoke incast client — so it registers its own campaign task
(:func:`incast_task`); the shard scheduler and cache treat it exactly
like the standard cells.
"""

from repro.apps.incast import IncastClient
from repro.core.engine import Simulator
from repro.core.topology import NetworkConfig, build_network
from repro.core.units import MS
from repro.experiments import campaign
from repro.experiments.scale import current_scale
from repro.homa.config import HomaConfig
from repro.transport.registry import transport_factory
from repro.workloads.catalog import get_workload

from _shared import run_once, save_result

#: shared-buffer bytes one bursting port may occupy (typical shallow
#: datacenter switch: a few MB of shared pool); sets the no-control
#: cliff at ~ buffer / 10 KB concurrent RPCs, as in the paper.
PORT_BUFFER = 3_000_000

CONCURRENCIES = {"tiny": (10, 100, 400),
                 "quick": (10, 50, 150, 300, 500, 1000, 2000),
                 "paper": (10, 50, 150, 300, 500, 1000, 2000, 5000)}

INCAST_TASK = "bench_fig10_incast:incast_task"


def run_incast(concurrency: int, control: bool, scale_name: str) -> float:
    sim = Simulator()
    net = build_network(sim, NetworkConfig(
        racks=1, hosts_per_rack=16, aggrs=0,
        port_buffer_bytes=PORT_BUFFER))
    homa_cfg = HomaConfig(incast_control=control)
    factory = transport_factory("homa", sim, net,
                                get_workload("W3").cdf, homa_cfg)
    transports = net.attach_transports(lambda host: factory(host))
    from repro.apps.echo import echo_handler
    for transport in transports[1:]:
        transport.rpc_handler = echo_handler
    warmup = 5 * MS
    sim.run(until_ps=0)
    client = IncastClient(sim, transports[0], list(range(1, 16)),
                          concurrency)
    sim.run(until_ps=warmup)
    client.response_bytes_received = 0
    client.started_ps = sim.now
    duration = (10 if scale_name != "tiny" else 4) * MS
    sim.run(until_ps=warmup + duration)
    return client.goodput_gbps()


def incast_task(spec: dict) -> dict:
    """Campaign cell task: one incast scenario to a JSON payload.

    The scale is baked into the spec (rather than read from the
    environment) so the cache key distinguishes tiny from quick runs.
    """
    return {"goodput_gbps": run_incast(spec["concurrency"], spec["control"],
                                       spec["scale"])}


def campaign_spec() -> campaign.CampaignSpec:
    scale_name = current_scale().name
    cells = []
    for concurrency in CONCURRENCIES[scale_name]:
        for control in (True, False):
            cells.append(campaign.Cell(
                key=(concurrency, control),
                spec={"concurrency": concurrency, "control": control,
                      "scale": scale_name},
                task=INCAST_TASK,
                decode=campaign.IDENTITY_DECODE))
    return campaign.CampaignSpec(name="fig10", cells=tuple(cells))


def run_campaign(jobs=None, fresh=False):
    results = campaign.run(campaign_spec(), jobs=jobs, fresh=fresh)
    return [(concurrency,
             results[(concurrency, True)]["goodput_gbps"],
             results[(concurrency, False)]["goodput_gbps"])
            for concurrency in CONCURRENCIES[current_scale().name]]


def render(rows) -> str:
    lines = ["== Figure 10: incast throughput (client goodput, Gbps) =="]
    lines.append(f"{'#concurrent RPCs':>18} {'incast control':>16} "
                 f"{'no control':>12}")
    for concurrency, with_control, without in rows:
        lines.append(f"{concurrency:>18} {with_control:>16.2f} "
                     f"{without:>12.2f}")
    lines.append("")
    lines.append("paper: with control ~flat near 9 Gbps through thousands "
                 "of RPCs; without control, packet drops degrade "
                 "throughput past ~300 RPCs")
    return "\n".join(lines)


def run_figure(jobs=None, fresh=False) -> list[str]:
    rows = run_campaign(jobs=jobs, fresh=fresh)
    return [save_result("fig10_incast", render(rows))]


def test_fig10_incast(benchmark):
    rows = run_once(benchmark, run_campaign)
    save_result("fig10_incast", render(rows))
    small = rows[0]
    big = rows[-1]
    # With incast control, throughput holds up at high concurrency.
    assert big[1] > 0.5 * small[1]
    # Without control, large incasts lose badly to drops and timeouts.
    if big[0] >= 500:
        assert big[2] < 0.7 * big[1]
