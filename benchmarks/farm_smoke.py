"""Farm acceptance battery: the CI ``farm-smoke`` job's entry point.

One process plays coordinator (in a thread, via ``run_farm``) while
real ``python -m repro farm-worker`` subprocesses play the fleet, so
every protocol frame crosses an actual loopback socket and every worker
death is an actual SIGKILL.  Three stages, all at tiny scale on the
Fig 17 campaign (docs/CAMPAIGNS.md, farm section):

1. **Identity** — a 2-worker farmed run must match the serial run:
   byte-identical cache entries (modulo the nondeterministic
   ``wall_seconds`` timing field, which differs between *any* two
   fresh runs) and byte-identical slowdown digests.
2. **Worker death** — one worker is spawned with ``--die-after 1``
   (it SIGKILLs itself upon receiving its first cell); the sweep must
   still complete, via exactly one requeue, with the same digest.
3. **Coordinator death** — a ``--fresh`` sweep is interrupted by the
   deterministic crash hook after one journaled cell; the journal must
   survive, and a restarted coordinator must complete only the missing
   cells and then retire the journal.

Exit status is the assertion: non-zero on any violated contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.experiments import farm  # noqa: E402
from repro.experiments.campaign import (  # noqa: E402
    ResultCache,
    run_pooled,
    slowdown_digest,
)

import bench_fig17_unsched_prios as bench  # noqa: E402


def log(message: str) -> None:
    print(f"[farm-smoke] {message}", flush=True)


def worker_cmd(port: int, name: str, die_after: int | None = None
               ) -> list[str]:
    cmd = [sys.executable, "-m", "repro",
           "farm-worker", f"127.0.0.1:{port}", "--name", name,
           "--heartbeat", "1"]
    if die_after is not None:
        cmd += ["--die-after", str(die_after)]
    return cmd


def worker_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return env


def scrubbed_bytes(path: Path) -> bytes:
    """Cache entry bytes with the wall-clock timing field nulled."""
    entry = json.loads(path.read_bytes())
    payload = entry.get("payload")
    if isinstance(payload, dict) and "wall_seconds" in payload:
        payload["wall_seconds"] = None
    return json.dumps(entry, sort_keys=True).encode()


def farm_run(spec, cache_dir, journal_dir, launch, **kw):
    """run_farm in a thread; ``launch(port)`` runs in the main thread."""
    box: dict[str, object] = {}
    ready = threading.Event()

    def on_listening(port: int) -> None:
        box["port"] = port
        ready.set()

    def coordinator() -> None:
        try:
            box["out"] = farm.run_farm(
                [spec], cache_dir=cache_dir, journal_dir=journal_dir,
                on_listening=on_listening, **kw)
        except BaseException as exc:  # surfaced to the main thread
            box["error"] = exc

    thread = threading.Thread(target=coordinator, daemon=True)
    thread.start()
    assert ready.wait(timeout=60), "coordinator never bound its socket"
    launch(box["port"])
    thread.join(timeout=600)
    assert not thread.is_alive(), "coordinator did not finish"
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["out"]


def main() -> int:
    assert os.environ.get("REPRO_BENCH_SCALE") == "tiny", \
        "run me with REPRO_BENCH_SCALE=tiny (CI sets this)"
    spec = bench.campaign_spec()
    log(f"campaign {spec.name}: {len(spec.cells)} cells at tiny scale")

    tmp = Path(tempfile.mkdtemp(prefix="farm-smoke-"))
    serial_cache, farmed_cache = tmp / "serial", tmp / "farmed"
    resume_cache, journals = tmp / "resume", tmp / "journal"

    # -- stage 0: the serial baseline -----------------------------------
    t0 = time.perf_counter()
    serial = run_pooled([spec], jobs=1, cache_dir=serial_cache, quiet=True)
    serial_digest = slowdown_digest(serial[spec.name])
    log(f"serial baseline: {time.perf_counter() - t0:.1f}s, "
        f"digest {serial_digest[:16]}")

    # -- stage 1: 2-worker farm, byte identity --------------------------
    def launch_pair(port: int) -> None:
        procs = [subprocess.Popen(worker_cmd(port, f"w{i}"),
                                  env=worker_env()) for i in (1, 2)]
        for proc in procs:
            assert proc.wait(timeout=600) == 0, "worker failed"

    farmed = farm_run(spec, farmed_cache, journals, launch_pair,
                      farm_wait_s=60.0, quiet=False)
    results = farmed[spec.name]
    assert results.farm_workers == 2, results.farm_workers
    assert not results.farm_fallback, "workers connected, yet fell back"
    farmed_digest = slowdown_digest(results)
    assert farmed_digest == serial_digest, \
        f"digest mismatch: farmed {farmed_digest} != serial {serial_digest}"
    a, b = ResultCache(farmed_cache), ResultCache(serial_cache)
    for cell in spec.cells:
        fa, fb = a.path_for(spec.name, cell), b.path_for(spec.name, cell)
        assert scrubbed_bytes(fa) == scrubbed_bytes(fb), \
            f"cache entry differs beyond wall_seconds: {fa.name}"
    log(f"stage 1 ok: farmed digest + {len(spec.cells)} cache entries "
        f"identical to serial")

    # -- stage 2: SIGKILLed worker mid-sweep ----------------------------
    def launch_dier_then_healthy(port: int) -> None:
        dier = subprocess.Popen(worker_cmd(port, "dier", die_after=1),
                                env=worker_env())
        code = dier.wait(timeout=600)
        assert code != 0, "the --die-after worker exited cleanly?!"
        log(f"dier exited with {code} (SIGKILL) while holding a cell")
        healthy = subprocess.Popen(worker_cmd(port, "healthy"),
                                   env=worker_env())
        assert healthy.wait(timeout=600) == 0, "healthy worker failed"

    death = farm_run(spec, tmp / "death", journals,
                     launch_dier_then_healthy,
                     farm_wait_s=120.0, quiet=False)
    results = death[spec.name]
    assert results.farm_requeues == 1, \
        f"expected exactly 1 requeue, got {results.farm_requeues}"
    assert slowdown_digest(results) == serial_digest
    log("stage 2 ok: worker SIGKILL absorbed via one requeue, "
        "digest still identical")

    # -- stage 3: coordinator killed, journal resume --------------------
    try:
        farm_run(spec, resume_cache, journals, lambda port: None,
                 fresh=True, farm_wait_s=0.2, crash_after=1, quiet=True)
        raise AssertionError("crash hook did not fire")
    except farm.FarmInterrupted as exc:
        log(f"stage 3: coordinator killed as planned ({exc})")
    journal_path = journals / f"{spec.name}.jsonl"
    assert journal_path.exists(), "journal did not survive the crash"
    resumed = farm_run(spec, resume_cache, journals, lambda port: None,
                       fresh=True, farm_wait_s=0.2, quiet=True)
    results = resumed[spec.name]
    assert results.farm_resumed == 1, results.farm_resumed
    assert results.computed == len(spec.cells) - 1, results.computed
    assert slowdown_digest(results) == serial_digest
    assert not journal_path.exists(), "journal not retired on completion"
    log("stage 3 ok: restart completed only the missing cells from the "
        "journal, digest still identical")

    log("all stages passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
