"""A byte-stream interface layered over Homa (paper section 3.1/3.8).

"We believe that traditional applications could be supported by
implementing a socket-like byte stream interface above Homa.  ...  a
TCP-like streaming mechanism can be implemented as a very thin layer on
top of Homa that discards duplicate data and preserves order."

This is that thin layer: each ``write`` becomes one Homa message
carrying a stream id and sequence number; the receiving adapter buffers
out-of-order completions, delivers chunks in sequence order, and drops
duplicates (which Homa's at-least-once semantics can produce after
retransmissions).
"""

from __future__ import annotations

from typing import Callable

from repro.homa.transport import HomaTransport


def _meta(stream_id: int, seq: int) -> int:
    return (stream_id << 28) | seq


def _unmeta(meta: int) -> tuple[int, int]:
    return meta >> 28, meta & ((1 << 28) - 1)


class StreamSender:
    """Write side of one ordered stream to a fixed peer."""

    def __init__(self, adapter: "StreamOverHoma", stream_id: int,
                 peer: int) -> None:
        self.adapter = adapter
        self.stream_id = stream_id
        self.peer = peer
        self.next_seq = 0
        self.bytes_written = 0

    def write(self, length: int) -> int:
        """Send ``length`` bytes as one stream chunk; returns its seq."""
        seq = self.next_seq
        self.next_seq += 1
        self.bytes_written += length
        self.adapter.transport.send_message(
            self.peer, length, app_meta=_meta(self.stream_id, seq))
        return seq


class StreamReceiver:
    """Read side: reorders chunks and filters duplicates."""

    def __init__(self, on_chunk: Callable[[int, int], None]) -> None:
        self.on_chunk = on_chunk          # fn(seq, length)
        self.expected_seq = 0
        self.pending: dict[int, int] = {}  # seq -> length
        self.duplicates_dropped = 0
        self.bytes_delivered = 0

    def deliver(self, seq: int, length: int) -> None:
        if seq < self.expected_seq or seq in self.pending:
            self.duplicates_dropped += 1  # at-least-once re-delivery
            return
        self.pending[seq] = length
        while self.expected_seq in self.pending:
            chunk_len = self.pending.pop(self.expected_seq)
            self.bytes_delivered += chunk_len
            self.on_chunk(self.expected_seq, chunk_len)
            self.expected_seq += 1


class StreamOverHoma:
    """Per-host adapter multiplexing ordered streams over one transport."""

    def __init__(self, transport: HomaTransport) -> None:
        self.transport = transport
        self._next_stream_id = 1
        self._receivers: dict[int, StreamReceiver] = {}
        self._chain = transport.on_message_complete
        transport.on_message_complete = self._on_complete

    def open(self, peer: int) -> StreamSender:
        """Open an outgoing ordered stream to ``peer``."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        return StreamSender(self, stream_id, peer)

    def listen(self, stream_id: int,
               on_chunk: Callable[[int, int], None]) -> StreamReceiver:
        """Register the read side of a stream id."""
        receiver = StreamReceiver(on_chunk)
        self._receivers[stream_id] = receiver
        return receiver

    def _on_complete(self, msg, now) -> None:
        if msg.app_meta is not None:
            stream_id, seq = _unmeta(msg.app_meta)
            receiver = self._receivers.get(stream_id)
            if receiver is not None:
                receiver.deliver(seq, msg.length)
        if self._chain is not None:
            self._chain(msg, now)
