"""The Homa transport (paper section 3).

One ``HomaTransport`` instance runs on each host and plays both roles:

* **Sender** (3.2): transmits the unscheduled prefix of each message
  blindly, then only granted bytes; picks the outgoing packet with SRPT
  (fewest remaining bytes first); control packets always go first.
* **Receiver** (3.3-3.5): keeps each active message RTTbytes
  granted-but-not-received; grants to the top-K shortest messages
  simultaneously (controlled overcommitment, K = number of scheduled
  priority levels); assigns a distinct scheduled priority per active
  message, lowest levels first to avoid preemption lag (Figure 5).
  GRANT emission is paced by ``HomaConfig.grant_batch_ns``: per
  arriving data packet in legacy mode (0, the paper's simulator), or
  coalesced by a per-receiver batch timer that runs the ranking pass
  once per interval and emits at most one GRANT per active message
  (nonzero, as real implementations do — arXiv:1803.09615 section 4).
* **RPC layer** (3.1, 3.6-3.8): connectionless at-least-once RPCs; the
  response acknowledges the request; servers discard all RPC state once
  the last response byte is handed to the NIC; incast control marks
  requests of clients with many outstanding RPCs so servers limit the
  unscheduled portion of responses.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heapreplace
from typing import Callable, Optional

from repro.core.engine import CoalescingTimer, Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.core.pool import PacketPool
from repro.core.units import NS, ps_per_byte
from repro.homa.config import HomaConfig
from repro.homa.priorities import (
    OnlineEstimator,
    PriorityAllocation,
    allocate_priorities,
)
from repro.transport.base import Transport
from repro.transport.messages import InboundMessage, OutboundMessage


class ClientRpc:
    """Client-side state of one outstanding RPC."""

    __slots__ = ("rpc_id", "dst", "request", "response_started", "resends",
                 "last_activity_ps", "on_response", "on_error", "created_ps",
                 "incast")

    def __init__(self, rpc_id, dst, request, now_ps, on_response, on_error,
                 incast):
        self.rpc_id = rpc_id
        self.dst = dst
        self.request = request
        self.response_started = False
        self.resends = 0
        self.last_activity_ps = now_ps
        self.on_response = on_response
        self.on_error = on_error
        self.created_ps = now_ps
        self.incast = incast


class ServerRpc:
    """Server-side state of one RPC (discarded once the response is sent)."""

    __slots__ = ("rpc_id", "client", "request_length", "response", "incast",
                 "app_meta")

    def __init__(self, rpc_id, client, request_length, incast, app_meta):
        self.rpc_id = rpc_id
        self.client = client
        self.request_length = request_length
        self.response: Optional[OutboundMessage] = None
        self.incast = incast
        self.app_meta = app_meta


def _rank_key(m) -> tuple:
    """Grant-ranking sort key: most remaining bytes first, then oldest
    first arrival, then insertion order (module-level: no per-call
    closure allocation in the hot ranking pass)."""
    return (-m.bytes_remaining, -m.first_arrival_ps, m.sort_seq)


class HomaTransport(Transport):
    """Full Homa protocol implementation."""

    protocol_name = "homa"

    def __init__(
        self,
        sim: Simulator,
        cfg: HomaConfig,
        allocation: PriorityAllocation,
        rtt_bytes: int,
        link_gbps: int = 10,
        pool: PacketPool | None = None,
        peer_gc: bool = False,
    ) -> None:
        super().__init__(sim)
        self.cfg = cfg
        # Slot pool for every packet this transport emits; normally the
        # per-run pool shared across hosts (transport/registry.py) so
        # receivers recycle senders' slots.  A private pool is only a
        # fallback for directly constructed transports in tests.
        self.pool = pool if pool is not None else PacketPool(cfg.pool_prealloc)
        self.alloc = allocation
        self.rtt_bytes = cfg.rtt_bytes or rtt_bytes
        self.unsched_limit = cfg.resolved_unsched_limit(self.rtt_bytes)
        # Bytes kept granted-but-not-received per active message.  Legacy
        # per-packet mode: exactly RTTbytes (the paper's simulator).  In
        # batched mode the target also covers the grant emission delay —
        # one batch interval of line-rate bytes — otherwise the sender's
        # window hits zero between ticks and large-message throughput
        # drops by ~tick/RTT (see docs/PERFORMANCE.md).
        if cfg.grant_batch_pkts:
            # Count-based coalescing: the emission delay is at worst N
            # packet serializations, so the window covers N payloads.
            batch_slack = cfg.grant_batch_pkts * MAX_PAYLOAD
        elif cfg.grant_batch_ns:
            batch_slack = -(-(cfg.grant_batch_ns * NS)
                            // ps_per_byte(link_gbps))
        else:
            batch_slack = 0
        self.grant_window = self.rtt_bytes + batch_slack
        self.outbound: dict[int, OutboundMessage] = {}
        self.inbound: dict[int, InboundMessage] = {}
        self.client_rpcs: dict[int, ClientRpc] = {}
        self.server_rpcs: dict[int, ServerRpc] = {}
        # Incremental SRPT indexes (all lazy-deletion heaps; see
        # docs/PERFORMANCE.md for the staleness invariants).
        #
        # Sender: every sendable outbound message has a live entry
        # [remaining, created_ps, sort_seq, msg]; an entry is stale when
        # the message left ``outbound``, stopped being sendable, or its
        # remaining-bytes key changed (a fresh entry is pushed whenever
        # any of those change back).
        self._send_heap: list[list] = []
        # Receiver: ``_grantable`` holds exactly the inbound messages
        # with granted < length; ``_grant_heap`` entries are
        # [bytes_remaining, first_arrival_ps, sort_seq, msg] refreshed on
        # every data arrival; ``_arrival_heap`` serves the grant_oldest
        # ablation ([first_arrival_ps, sort_seq, msg], one per message).
        self._grantable: dict[int, InboundMessage] = {}
        self._grant_heap: list[list] = []
        # The grant heap only ranks messages when more are grantable
        # than the overcommitment degree.  In the common case (active
        # set fits the degree) it stays quiescent — no per-data-packet
        # refresh pushes — and is rebuilt from live state on the
        # transition above the degree.  False = quiescent.
        self._heap_live = False
        self._arrival_heap: list[list] = []
        # Tie-break counter reproducing the dict-insertion order the
        # pre-index linear scans used to resolve equal SRPT keys.
        self._sort_seq = 0
        # Set when the grantable membership or the allocation changed;
        # forces the next _schedule_grants through the full ranking pass
        # (the single-message fast path is only sound in steady state).
        self._grant_dirty = True
        # Grant pacer: with grant_batch_ns nonzero, data arrivals only
        # arm this timer and the ranking pass runs once per tick,
        # emitting at most one GRANT per active message (batched mode).
        # None = legacy per-packet grants, byte-identical to the seed.
        self._grant_timer = (
            CoalescingTimer(sim, cfg.grant_batch_ns * NS, self._grant_tick)
            if cfg.grant_batch_ns and not cfg.grant_batch_pkts else None)
        # Count-based coalescing (grant_batch_pkts > 0, the Linux
        # kernel's approach): a data-arrival counter replaces the timer.
        self._grant_batch_pkts = cfg.grant_batch_pkts
        self._data_since_grant = 0
        #: server application: fn(transport, server_rpc) -> None.
        #: When unset, inbound requests are treated as one-way messages.
        self.rpc_handler: Optional[Callable[["HomaTransport", ServerRpc], None]] = None
        #: observer for Figure 16: fn(host_id, withheld: bool)
        self.withheld_observer: Optional[Callable[[int, bool], None]] = None
        self._withheld = False
        self._timer_event = None
        # Cached views of the allocation, refreshed only when it
        # changes: the overcommitment degree and the rank -> scheduled
        # priority table (both are read per data packet; the properties
        # behind them cost a len()/min() chain each).
        self._degree = 0
        self._sched_tab: tuple[int, ...] = (0,)
        self._refresh_alloc_cache()
        # Online priority estimation (section 3.4 dissemination).
        self.estimator = OnlineEstimator() if cfg.online_priorities else None
        self._next_refresh_ps = 0
        self.peer_alloc: dict[int, PriorityAllocation] = {}
        # Counters.
        self.grants_sent = 0
        self.grant_ticks = 0
        self.resends_sent = 0
        self.busys_sent = 0
        self.rpcs_aborted = 0
        self.rpcs_completed = 0
        self.reexecutions = 0
        # Loss-recovery accounting (lossy fabrics, core/faults.py).
        self.rtx_data_sent = 0      # retransmitted DATA packets
        self.rtx_recovered = 0      # retransmitted DATA that filled a gap
        self.inbound_gaveups = 0    # inbound messages dropped at max_resends
        # Peer-liveness GC (degraded fabrics only; docs/FABRICS.md):
        # retires outbound messages stalled waiting on grants from a
        # peer that stopped answering — dead-peer response orphans and
        # orphaned one-way requests — so echo conservation closes
        # exactly at event exhaustion.  Off (False) on clean fabrics:
        # the scan never runs and digests stay byte-identical.
        self._peer_gc = peer_gc
        self._orphan_rounds: dict[int, list] = {}  # key -> [sig, rounds]

    # ------------------------------------------------------------------
    # public sending API
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, *, unsched_limit: int | None = None,
                     app_meta: int | None = None) -> OutboundMessage:
        """Send a one-way message (the paper's simulation workloads)."""
        rpc_id = self.sim.new_id()
        return self._new_outbound(rpc_id, True, dst, length,
                                  unsched_limit=unsched_limit,
                                  app_meta=app_meta, incast=False)

    def send_rpc(
        self,
        dst: int,
        length: int,
        *,
        on_response: Optional[Callable[[int, InboundMessage], None]] = None,
        on_error: Optional[Callable[[int], None]] = None,
        app_meta: int | None = None,
    ) -> int:
        """Issue an RPC; returns its globally unique id (section 3.1)."""
        rpc_id = self.sim.new_id()
        incast = (self.cfg.incast_control
                  and len(self.client_rpcs) >= self.cfg.incast_threshold)
        request = self._new_outbound(rpc_id, True, dst, length,
                                     app_meta=app_meta, incast=incast)
        self.client_rpcs[rpc_id] = ClientRpc(
            rpc_id, dst, request, self.sim.now, on_response, on_error, incast)
        self._ensure_timer()
        return rpc_id

    def respond(self, server_rpc: ServerRpc, length: int) -> OutboundMessage:
        """Server application sends the response for an RPC."""
        unsched = None
        if server_rpc.incast:
            # Incast control (3.6): scheduled delivery for marked RPCs.
            unsched = min(self.cfg.incast_response_unsched, length)
        response = self._new_outbound(server_rpc.rpc_id, False,
                                      server_rpc.client, length,
                                      unsched_limit=unsched, incast=False)
        server_rpc.response = response
        return response

    def _new_outbound(self, rpc_id, is_request, dst, length, *,
                      unsched_limit=None, app_meta=None, incast=False) -> OutboundMessage:
        msg = OutboundMessage(
            rpc_id, is_request, self.hid, dst, length,
            unsched_limit=unsched_limit if unsched_limit is not None
            else self.unsched_limit,
            created_ps=self.sim.now, app_meta=app_meta)
        msg.incast = incast
        self._index_outbound(msg)
        self.kick()
        return msg

    # ------------------------------------------------------------------
    # sender: SRPT packet selection (3.2)
    # ------------------------------------------------------------------

    def next_packet(self) -> Optional[Packet]:
        # Transport.next_packet with the ctrl check and the SRPT pull
        # inlined: this is the NIC's per-pull entry point.
        ctrl = self.ctrl
        if ctrl:
            return ctrl.popleft()
        heap = self._send_heap
        outbound = self.outbound
        while heap:
            entry = heap[0]
            msg = entry[3]
            if (outbound.get(msg.key) is not msg
                    or entry[0] != msg.length - msg.sent
                    or not (msg.sent < msg.granted or msg.rtx)):
                heappop(heap)  # stale: a fresher entry supersedes it
                continue
            offset, size, is_rtx = msg.next_chunk()
            if msg.fully_sent():
                heappop(heap)
                self._outbound_finished(msg)
            elif msg.sent < msg.granted or msg.rtx:
                heapreplace(heap, [msg.length - msg.sent, msg.created_ps,
                                   msg.sort_seq, msg])
            else:
                heappop(heap)
            return self._make_data_packet(msg, offset, size, is_rtx)
        return None

    def _index_outbound(self, msg: OutboundMessage) -> None:
        """(Re)register a message with the sender's SRPT index."""
        if self.outbound.get(msg.key) is not msg:
            self._sort_seq += 1
            msg.sort_seq = self._sort_seq
            self.outbound[msg.key] = msg
        self._push_sendable(msg)

    def _push_sendable(self, msg: OutboundMessage) -> None:
        if msg.sendable():
            heappush(self._send_heap,
                     [msg.remaining, msg.created_ps, msg.sort_seq, msg])

    def _next_data(self) -> Optional[Packet]:
        # The SRPT pull lives inlined in next_packet (the NIC entry
        # point); with nothing queued in ctrl they are the same pull.
        return self.next_packet() if not self.ctrl else None

    def _make_data_packet(self, msg: OutboundMessage, offset: int, size: int,
                          is_rtx: bool) -> Packet:
        if is_rtx:
            self.rtx_data_sent += 1
        sched = offset >= msg.unsched_limit
        if sched:
            prio = msg.grant_prio
        else:
            alloc = self.peer_alloc.get(msg.dst, self.alloc)
            prio = alloc.unsched_prio(msg.length)
        unsched = msg.unsched_limit
        return self.pool.alloc_data(
            self.hid, msg.dst,
            prio, size, msg.rpc_id, msg.is_request, offset,
            msg.length, sched, is_rtx, msg.incast, msg.app_meta,
            msg.length if msg.length < unsched else unsched,
            msg.created_ps,
        )

    def _outbound_finished(self, msg: OutboundMessage) -> None:
        """All bytes handed to the NIC: drop sender state where allowed."""
        self.outbound.pop(msg.key, None)
        if msg.is_request:
            rpc = self.client_rpcs.get(msg.rpc_id)
            if rpc is not None:
                # Start the response timeout clock only now.
                rpc.last_activity_ps = self.sim.now
        else:
            # Server: discard all RPC state once the last response byte
            # is transmitted (at-least-once semantics, section 3.8).
            self.server_rpcs.pop(msg.rpc_id, None)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        kind = pkt.kind
        if kind is PacketType.DATA:  # enum members are singletons
            self._on_data(pkt)
        elif kind is PacketType.GRANT:
            self._on_grant(pkt)
        elif kind is PacketType.RESEND:
            self._on_resend(pkt)
        elif kind is PacketType.BUSY:
            self._on_busy(pkt)
        else:  # pragma: no cover - no other kinds reach a Homa host
            raise ValueError(f"unexpected packet kind {kind}")
        # Delivery is the packet's consumption point: every handler
        # above reads fields synchronously and retains none, so the
        # slot recycles here (foreign/plain packets are a no-op).
        pool = pkt.pool
        if pool is not None:
            pool.free(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            if not pkt.is_request and pkt.rpc_id not in self.client_rpcs:
                return  # duplicate response for a completed RPC: drop
            msg = InboundMessage(pkt.rpc_id, pkt.is_request, pkt.src,
                                 self.hid, pkt.total_length, now_ps=self.sim.now)
            msg.app_meta = pkt.app_meta
            msg.incast = pkt.incast
            msg.created_ps = pkt.created_ps
            self._sort_seq += 1
            msg.sort_seq = self._sort_seq
            self.inbound[key] = msg
            self._grantable[key] = msg
            self._grant_dirty = True
            if self.cfg.grant_oldest:
                heappush(self._arrival_heap,
                         [msg.first_arrival_ps, msg.sort_seq, msg])
            if self.estimator is not None:
                self.estimator.record(pkt.total_length)
            if not pkt.is_request:
                rpc = self.client_rpcs.get(pkt.rpc_id)
                if rpc is not None:
                    rpc.response_started = True
        if pkt.grant_offset > msg.granted:
            msg.granted = min(pkt.grant_offset, msg.length)
            if msg.granted >= msg.length and self._grantable.pop(key, None):
                self._grant_dirty = True
        # InboundMessage.record, inlined (per data packet).
        msg.last_activity_ps = self.sim.now
        end = pkt.offset + pkt.payload
        if msg.received.add(pkt.offset,
                            end if end < msg.length else msg.length):
            msg.resends = 0  # progress resets the retry budget
            if pkt.retx:
                self.rtx_recovered += 1
        if msg.is_complete():
            del self.inbound[key]
            if self._grantable.pop(key, None):
                self._grant_dirty = True
            self._inbound_finished(msg)
        elif self._heap_live and key in self._grantable:
            # Refresh this message's SRPT key (only it changed).  With
            # the heap quiescent (active set fits the overcommitment
            # degree) there is nothing to refresh: the ranking pass
            # reads the live set directly.
            heap = self._grant_heap
            heappush(heap,
                     [msg.length - msg.received.total,
                      msg.first_arrival_ps, msg.sort_seq, msg])
            if len(heap) > 128 and len(heap) > 4 * len(self._grantable):
                self._prune_grant_heap()
        pacer = self._grant_timer
        if pacer is None:
            n = self._grant_batch_pkts
            if n:
                # Count-based coalescing: one ranking pass per N data
                # arrivals.  Protocol-critical events — a new grantable
                # message or freed overcommitment slot (both set
                # _grant_dirty) and an exhausted sender window — still
                # grant immediately, as the kernel implementation does.
                self._data_since_grant += 1
                if (self._data_since_grant >= n or self._grant_dirty
                        or msg.received.total >= msg.granted):
                    self._data_since_grant = 0
                    self.grant_ticks += 1
                    self._schedule_grants()
            else:
                self._schedule_grants(msg)
        elif self._grantable:
            # Batched mode: mark grant-dirty work by arming the pacer —
            # covers both "this message can take a further grant" and
            # "a completion/full-grant freed an overcommitment slot"
            # (the tick's full ranking pass handles either).  An empty
            # grantable set has no grants to extend, so the receiver
            # goes quiescent with no pending tick.
            pacer.arm()
        timer = self._timer_event
        if timer is None or timer[2] is None:  # inline is_pending
            self._ensure_timer()
        if self.estimator is not None:
            self._maybe_refresh_allocation()

    def _inbound_finished(self, msg: InboundMessage) -> None:
        self._report_complete(msg)
        if msg.is_request:
            if self.rpc_handler is not None:
                if msg.rpc_id in self.server_rpcs:
                    # Duplicate request arriving while we still hold
                    # state: at-least-once allows re-execution, but with
                    # live state we simply ignore the duplicate.
                    return
                server_rpc = ServerRpc(msg.rpc_id, msg.src, msg.length,
                                       msg.incast, msg.app_meta)
                self.server_rpcs[msg.rpc_id] = server_rpc
                self.rpc_handler(self, server_rpc)
        else:
            rpc = self.client_rpcs.pop(msg.rpc_id, None)
            if rpc is not None:
                self.rpcs_completed += 1
                if rpc.on_response is not None:
                    rpc.on_response(msg.rpc_id, msg)

    # ------------------------------------------------------------------
    # receiver: grants, overcommitment, priorities (3.3-3.5)
    # ------------------------------------------------------------------

    def _grant_tick(self) -> None:
        """One pacer firing: run the full ranking pass once.

        ``changed=None`` forces ``_schedule_grants`` through the full
        pass, which ranks the active set and emits at most one GRANT per
        active message, each carrying the furthest allocation
        (bytes_received + RTTbytes, packet-aligned) known at tick time —
        a burst of data arrivals inside one interval collapses into one
        batch of control packets.  The pacer is re-armed by the next
        data arrival, so an idle receiver schedules no ticks.
        """
        self.grant_ticks += 1
        self._schedule_grants()

    def _refresh_alloc_cache(self) -> None:
        """Recompute the degree/priority-table caches from ``alloc``."""
        if self.cfg.unlimited_overcommit:
            self._degree = 1 << 30
        elif self.cfg.overcommit_override is not None:
            self._degree = self.cfg.overcommit_override
        else:
            self._degree = self.alloc.n_sched
        # sched_prio saturates at the highest scheduled level, so a
        # table of length n_sched plus saturating lookup reproduces it.
        self._sched_tab = tuple(self.alloc.sched_prio(r)
                                for r in range(self.alloc.n_sched))

    def _grant_degree(self) -> int:
        return self._degree

    def _schedule_grants(self, changed: Optional[InboundMessage] = None) -> None:
        grantable = self._grantable
        total = len(grantable)
        degree = self._degree
        if (changed is not None and not self._grant_dirty
                and not self._withheld and total <= degree):
            # Steady-state fast path: membership and allocation are
            # unchanged since the last full pass, so every other active
            # message already holds its full grant (the pass raised
            # ``granted`` to its RTTbytes target and nothing about those
            # messages moved since).  Only the message that just
            # received data can need a new GRANT; its rank is computed
            # against the live active set so the priority it would get
            # from the full sort is preserved exactly.
            msg = changed
            if grantable.get(msg.key) is not msg:
                return  # fully granted: nothing further to extend
            new_grant = msg.received.total + self.grant_window
            new_grant = -(-new_grant // MAX_PAYLOAD) * MAX_PAYLOAD
            if new_grant > msg.length:
                new_grant = msg.length
            if new_grant <= msg.granted:
                return
            self._emit_changed_grant(msg, new_grant, grantable)
            return
        if (total > degree) != self._withheld:
            self._set_withheld(total > degree)
        if not total or not degree:
            self._grant_dirty = False
            return
        # Top-K (K = overcommitment degree) by (bytes_remaining,
        # first_arrival_ps, sort_seq) straight off the lazy heap:
        # O(K log n) per data packet instead of sorting every inbound
        # message.  Stale entries (message completed/fully granted, or
        # key out of date) and duplicates are discarded as they surface.
        if total <= degree:
            # Fast path (the common case at sane overcommitment): every
            # grantable message is active, no ranking needed — the
            # priority sort below establishes the final order anyway.
            # The grant heap is not consulted here, so it goes (or
            # stays) quiescent: no refresh pushes until the active set
            # outgrows the degree again.
            if self._heap_live:
                self._heap_live = False
                self._grant_heap.clear()
            active = list(grantable.values())
        else:
            heap = self._grant_heap
            if not self._heap_live:
                # Coming out of quiescence: rebuild from live state.
                # Every entry is fresh, so the top-K pops below see
                # exactly what incremental maintenance would have kept
                # (stale entries would have been filtered anyway).
                for m in grantable.values():
                    heap.append([m.length - m.received.total,
                                 m.first_arrival_ps, m.sort_seq, m])
                heapify(heap)
                self._heap_live = True
            entries: list[list] = []
            active: list[InboundMessage] = []
            seen: set[int] = set()
            while heap and len(entries) < degree:
                entry = heappop(heap)
                msg = entry[3]
                key = msg.key
                if (grantable.get(key) is not msg or key in seen
                        or entry[0] != msg.length - msg.received.total):
                    continue
                seen.add(key)
                entries.append(entry)
                active.append(msg)
            for entry in entries:
                heappush(heap, entry)
            if self.cfg.grant_oldest:
                # Section 5.1 speculation: always keep the oldest
                # partially-received message schedulable so the very
                # largest messages cannot starve.
                oldest = self._oldest_grantable()
                if oldest is not None and oldest not in active:
                    active[-1] = oldest
        if not active:
            return
        # Most remaining bytes -> rank 0 -> lowest scheduled level, so a
        # newly arriving shorter message preempts without lag (Fig 5).
        if len(active) == 1:
            ordered = active
        else:
            ordered = sorted(active, key=_rank_key)
        cutoffs = None if self.estimator is None else self._cutoffs_to_advertise()
        tab = self._sched_tab
        ntab = len(tab)
        for rank, msg in enumerate(ordered):
            prio = tab[rank] if rank < ntab else tab[ntab - 1]
            msg.sched_prio = prio
            received = msg.bytes_received
            new_grant = received + self.grant_window
            # Grant in whole packets, as the implementation does.
            new_grant = -(-new_grant // MAX_PAYLOAD) * MAX_PAYLOAD
            if new_grant > msg.length:
                new_grant = msg.length
            # The overcommitment slot frees when the message would be
            # fully granted under *per-packet* pacing: received +
            # RTTbytes covers the remainder.  The batch slack may push
            # ``granted`` to the end one tick earlier, but the message
            # keeps holding its slot until then — otherwise every tick
            # would release a fresh top-K of near-RTT-sized messages
            # (incast!) at K*length per tick instead of the drain rate.
            # With zero slack both targets coincide, byte-identically.
            base = received + self.rtt_bytes
            if -(-base // MAX_PAYLOAD) * MAX_PAYLOAD >= msg.length:
                self._grantable.pop(msg.key, None)
            if new_grant > msg.granted:
                msg.granted = new_grant
                self.grants_sent += 1
                self.send_ctrl(self._grant_packet(msg, new_grant, prio,
                                                  cutoffs))
        self._grant_dirty = False

    def _grant_packet(self, msg: InboundMessage, new_grant: int, prio: int,
                      cutoffs: tuple | None) -> Packet:
        # One per granted data packet: a recycled slot re-initialized
        # by the pool (the flight-mutable fields were reset at free).
        return self.pool.alloc_ctrl(
            PacketType.GRANT, self.hid, msg.src, msg.rpc_id, msg.is_request,
            new_grant, prio, 0, 0, cutoffs)

    def _emit_changed_grant(self, msg: InboundMessage, new_grant: int,
                            grantable: dict[int, InboundMessage]) -> None:
        """Emit the one GRANT for the message that just progressed."""
        # Rank among the active set by (-bytes_remaining,
        # -first_arrival_ps, sort_seq), exactly as the full sort would
        # (tuple-free: this loop runs per data packet).
        m_br = msg.length - msg.received.total
        m_fa = msg.first_arrival_ps
        m_seq = msg.sort_seq
        rank = 0
        for other in grantable.values():
            if other is msg:
                continue
            o_br = other.length - other.received.total
            if o_br > m_br:
                rank += 1
            elif o_br == m_br:
                o_fa = other.first_arrival_ps
                if o_fa > m_fa or (o_fa == m_fa and other.sort_seq < m_seq):
                    rank += 1
        tab = self._sched_tab
        ntab = len(tab)
        prio = tab[rank] if rank < ntab else tab[ntab - 1]
        msg.sched_prio = prio
        msg.granted = new_grant
        if new_grant >= msg.length:
            del grantable[msg.key]
            self._grant_dirty = True
        self.grants_sent += 1
        cutoffs = None if self.estimator is None else self._cutoffs_to_advertise()
        self.send_ctrl(self._grant_packet(msg, new_grant, prio, cutoffs))

    def _prune_grant_heap(self) -> None:
        """Drop stale/duplicate entries so the heap tracks the live set.

        Amortized O(1) per push: triggered only when stale entries
        outnumber live messages 4:1.  Valid duplicates for one message
        are byte-identical lists, so keeping one per key is lossless.
        """
        grantable = self._grantable
        fresh: dict[int, list] = {}
        for entry in self._grant_heap:
            msg = entry[3]
            if (grantable.get(msg.key) is msg
                    and entry[0] == msg.length - msg.received.total):
                fresh[msg.key] = entry
        heap = list(fresh.values())
        heapify(heap)
        self._grant_heap = heap

    def _oldest_grantable(self) -> Optional[InboundMessage]:
        """Live head of the arrival index (oldest grantable message)."""
        heap = self._arrival_heap
        grantable = self._grantable
        while heap:
            msg = heap[0][2]
            if grantable.get(msg.key) is msg:
                return msg
            heappop(heap)
        return None

    def _set_withheld(self, withheld: bool) -> None:
        if withheld != self._withheld:
            self._withheld = withheld
            if self.withheld_observer is not None:
                self.withheld_observer(self.hid, withheld)

    # ------------------------------------------------------------------
    # grants / resends / busy at the sender
    # ------------------------------------------------------------------

    def _on_grant(self, pkt: Packet) -> None:
        if pkt.cutoffs is not None:
            self._adopt_peer_cutoffs(pkt.src, pkt.cutoffs)
        msg = self.outbound.get(pkt.msg_key)
        if msg is None:
            return  # grant raced with completion
        # grant_to + sendable-transition tracking, inlined (per-grant
        # path).  Grants never change ``remaining``, so an already
        # sendable message keeps its live index entry.
        was_sendable = msg.sent < msg.granted or msg.rtx
        offset = pkt.grant_offset
        if offset > msg.granted:
            msg.granted = offset if offset < msg.length else msg.length
        msg.grant_prio = pkt.grant_prio
        if pkt.is_request:
            # A grant is receiver-side proof of life: refresh the client
            # RPC's activity clock and retry budget so the stalled-
            # request probe in _timer_fire never fires mid-transfer.
            rpc = self.client_rpcs.get(pkt.rpc_id)
            if rpc is not None:
                rpc.last_activity_ps = self.sim.now
                rpc.resends = 0
        if not was_sendable and msg.sent < msg.granted:
            heappush(self._send_heap, [msg.length - msg.sent,
                                       msg.created_ps, msg.sort_seq, msg])
        egress = self._egress  # kick, inlined (per-grant path)
        if not egress.busy:
            egress._next()

    def _find_sender_message(self, pkt: Packet) -> Optional[OutboundMessage]:
        msg = self.outbound.get(pkt.msg_key)
        if msg is not None:
            return msg
        if pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            return rpc.request if rpc is not None else None
        server_rpc = self.server_rpcs.get(pkt.rpc_id)
        return server_rpc.response if server_rpc is not None else None

    def _on_resend(self, pkt: Packet) -> None:
        msg = self._find_sender_message(pkt)
        if msg is None:
            if not pkt.is_request:
                if pkt.rpc_id in self.server_rpcs:
                    # Response still being computed: hold the client off.
                    self._send_busy(pkt)
                elif ((pkt.rpc_id << 1) | 1) in self.inbound:
                    # Request still arriving: the client probed for a
                    # response that cannot exist yet (it is stalled on
                    # grants we are withholding, or its tail is lost and
                    # our RESENDs are pending).  BUSY proves we are
                    # alive and resets the client's retry budget.
                    self._send_busy(pkt)
                else:
                    # Unknown RPCid: the request must have been lost (or
                    # our state discarded).  Ask the client to resend the
                    # request; the RPC will re-execute (sections 3.7/3.8).
                    self.reexecutions += 1
                    self.resends_sent += 1
                    self.send_ctrl(self.pool.alloc_ctrl(
                        PacketType.RESEND, self.hid, pkt.src,
                        pkt.rpc_id, True, offset=0,
                        range_end=self.rtt_bytes))
            elif pkt.grant_offset > 0:
                # RESEND for a request we no longer track: a fully-sent
                # one-way message whose sender state was dropped the
                # moment the last byte hit the NIC — with a lost tail
                # packet, the receiver would otherwise burn its whole
                # retry budget against a sender that forgot the bytes.
                # The receiver's timeout RESENDs carry the message
                # length in grant_offset, so resurrect a ghost outbound
                # covering exactly the missing range.  (An aborted RPC
                # lands here too: re-sending its request is at-least-
                # once re-execution, section 3.8.)
                self._ghost_resend(pkt)
            return
        if self._sender_is_busy(msg):
            self._send_busy(pkt)
            return
        if pkt.offset == 0 and pkt.grant_offset == 0 and msg.sent > 0:
            # The peer has *nothing*: a re-executed request whose server
            # lost all state (3.8), or a client probing for a response
            # of which no byte ever arrived.  Gap-chasing from a byte
            # accounting the receiver no longer shares recovers ~RTT
            # bytes per timeout round and can outrun the retry budget —
            # the receiver then gives up and re-executes again, forever.
            # Restart the transmission from scratch instead: a fresh
            # unscheduled prefix, then the normal grant-driven flow.
            msg.sent = 0
            msg.granted = min(msg.length, msg.unsched_limit)
            msg.rtx.clear()
            self._index_outbound(msg)
            if pkt.is_request:
                rpc = self.client_rpcs.get(pkt.rpc_id)
                if rpc is not None:
                    rpc.last_activity_ps = self.sim.now
            self.kick()
            return
        # The RESEND's range is an implicit grant (3.7): the receiver is
        # asking for those bytes even if every GRANT it sent was lost.
        # Only bytes already on the wire are *re*-transmitted; the rest
        # of the range goes out through the normal grant-driven path, so
        # ``sent`` reaches ``length`` and the outbound state is
        # reclaimed.  (Blindly queueing the whole range as rtx let the
        # receiver complete off bytes the sender never counted as sent —
        # the sender then waited forever for grants that could no longer
        # come, leaking the message and its server RPC.)
        if pkt.range_end > msg.granted:
            msg.grant_to(pkt.range_end, msg.grant_prio)
        msg.queue_rtx(pkt.offset, min(pkt.range_end, msg.sent))
        self._index_outbound(msg)  # may have been cleaned up
        if pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            if rpc is not None:
                rpc.last_activity_ps = self.sim.now
        self.kick()

    def _ghost_resend(self, pkt: Packet) -> None:
        """Rebuild sender state for a forgotten fully-sent message.

        The ghost starts fully sent (``sent == granted == length``) so
        only the queued retransmission range ever transmits; once the
        range drains, ``fully_sent`` cleans it up through the normal
        ``_outbound_finished`` path.
        """
        length = pkt.grant_offset
        end = pkt.range_end if pkt.range_end <= length else length
        if pkt.offset >= end:
            return
        msg = OutboundMessage(
            pkt.rpc_id, True, self.hid, pkt.src, length,
            unsched_limit=length, created_ps=self.sim.now)
        msg.sent = length
        msg.granted = length
        msg.queue_rtx(pkt.offset, end)
        self._index_outbound(msg)
        self.kick()

    def _sender_is_busy(self, msg: OutboundMessage) -> bool:
        """True if a strictly shorter message is ready to transmit
        (RESEND answered with BUSY to prevent timeouts, Figure 3).

        O(1) amortized: the send heap's live head *is* the shortest
        sendable message; entries for ``msg`` itself are set aside and
        restored so the comparison only ever sees other messages.
        """
        heap = self._send_heap
        outbound = self.outbound
        own = []
        busy = False
        while heap:
            entry = heap[0]
            other = entry[3]
            if (outbound.get(other.key) is not other
                    or entry[0] != other.remaining or not other.sendable()):
                heappop(heap)
                continue
            if other is msg:
                own.append(heappop(heap))
                continue
            busy = entry[0] < msg.remaining
            break
        for entry in own:
            heappush(heap, entry)
        return busy

    def _send_busy(self, resend: Packet) -> None:
        self.busys_sent += 1
        self.send_ctrl(self.pool.alloc_ctrl(
            PacketType.BUSY, self.hid, resend.src,
            resend.rpc_id, resend.is_request))

    def _on_busy(self, pkt: Packet) -> None:
        # BUSY is proof the peer is alive, exactly like data progress
        # (Figure 3's slow-server scenario), so it resets the retry
        # budget as well as the activity clock — otherwise a live but
        # slow server accumulates resends until a false abort.
        msg = self.inbound.get(pkt.msg_key)
        if msg is not None:
            msg.last_activity_ps = self.sim.now
            msg.resends = 0
        if not pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            if rpc is not None:
                rpc.last_activity_ps = self.sim.now
                rpc.resends = 0

    # ------------------------------------------------------------------
    # timeouts (3.7)
    # ------------------------------------------------------------------

    def _ensure_timer(self) -> None:
        if self._timer_event is not None and Simulator.is_pending(self._timer_event):
            return
        if (not self.inbound and not self.client_rpcs
                and not (self._peer_gc and self.outbound)):
            return
        self._timer_event = self.sim.schedule(
            self.cfg.resend_interval_ps // 2, self._timer_fire)

    def _timer_fire(self) -> None:
        now = self.sim.now
        interval = self.cfg.resend_interval_ps
        # Overcommitment slots freed by a give-up below.  A withheld
        # message can only ever be granted by a ranking pass, and after
        # a give-up no data arrival may come to trigger one (its sender
        # is itself stalled waiting for grants) — so if any slot frees
        # here, run the pass before returning or the slot leaks and the
        # withheld message stalls forever.
        freed = False
        # Receiver side: granted bytes that never arrived.
        for msg in list(self.inbound.values()):
            if now - msg.last_activity_ps < interval:
                continue
            horizon = min(msg.granted, msg.length)
            gap = msg.received.first_gap(horizon)
            if gap is None:
                continue  # nothing outstanding: we are the bottleneck
            msg.resends += 1
            msg.last_activity_ps = now
            if msg.resends > self.cfg.max_resends:
                del self.inbound[msg.key]
                if self._grantable.pop(msg.key, None) is not None:
                    self._grant_dirty = True
                    freed = True
                self.inbound_gaveups += 1
                self._abort_related_rpc(msg)
                continue
            self.resends_sent += 1
            # ``grant_offset`` carries the message's total length: if
            # the sender has already discarded its state (a fully-sent
            # one-way message), it can resurrect a ghost outbound for
            # exactly the missing range (_on_resend).
            self.send_ctrl(self.pool.alloc_ctrl(
                PacketType.RESEND, self.hid, msg.src,
                msg.rpc_id, msg.is_request,
                grant_offset=msg.length,
                offset=gap[0], range_end=gap[1]))
        # Client side: responses that never started arriving.
        for rpc in list(self.client_rpcs.values()):
            if rpc.response_started:
                continue  # the inbound scan above covers it
            if not rpc.request.fully_sent():
                if rpc.request.sendable():
                    continue  # actively transmitting: progress is made
                # Stalled mid-request waiting for grants.  Normally the
                # receiver's inactivity RESEND pokes the sender back into
                # motion; but if the receiver gave up on the inbound
                # request (its retry budget drained while our
                # retransmissions kept getting lost), no grant will ever
                # come and the RPC would hang forever.  Fall through and
                # probe on the same budget: a live receiver answers
                # BUSY/RESEND (both reset the budget via _on_busy /
                # _on_resend), a vanished one stays silent until abort.
                pass
            if now - rpc.last_activity_ps < interval:
                continue
            rpc.resends += 1
            rpc.last_activity_ps = now
            if rpc.resends > self.cfg.max_resends:
                if self._abort_client_rpc(rpc):
                    freed = True
                continue
            # RESEND for the response, even though the request may have
            # been lost; the server answers RESEND-for-request if so.
            self.resends_sent += 1
            self.send_ctrl(self.pool.alloc_ctrl(
                PacketType.RESEND, self.hid, rpc.dst,
                rpc.rpc_id, False, offset=0, range_end=self.rtt_bytes))
        # Sender side (peer-liveness GC, degraded fabrics only): an
        # outbound message stalled at its grant limit whose peer stopped
        # granting.  Responses to a dead client and one-way requests to
        # a dead receiver have no client_rpc probing on their behalf, so
        # without this scan they sit in ``outbound`` forever.
        if self._peer_gc and self.outbound:
            rounds = self._orphan_rounds
            for key, msg in list(self.outbound.items()):
                if msg.sendable():
                    rounds.pop(key, None)  # transmitting: not an orphan
                    continue
                if msg.is_request and msg.rpc_id in self.client_rpcs:
                    continue  # the client-side scan above owns it
                sig = (msg.sent, msg.granted)
                state = rounds.get(key)
                if state is None or state[0] != sig:
                    rounds[key] = [sig, 0]  # (re)observed: start counting
                    continue
                state[1] += 1
                if state[1] > self.cfg.max_resends:
                    # No grant progress through the whole budget: the
                    # peer is unreachable.  Retiring is safe even on a
                    # false positive — a late RESEND resurrects the
                    # missing range as a ghost (_ghost_resend), and a
                    # retired request degrades to the at-least-once
                    # re-execution path (section 3.8).
                    del self.outbound[key]
                    rounds.pop(key, None)
                    if not msg.is_request:
                        self.server_rpcs.pop(msg.rpc_id, None)
                    self.outbound_gaveups += 1
            for key in [k for k in rounds if k not in self.outbound]:
                del rounds[key]
        elif self._orphan_rounds:
            # outbound drained through the normal paths since the last
            # scan: drop the stale observations with it.
            self._orphan_rounds.clear()
        self._timer_event = None
        self._ensure_timer()
        if freed:
            self._schedule_grants()

    def _abort_related_rpc(self, msg: InboundMessage) -> None:
        if not msg.is_request:
            rpc = self.client_rpcs.pop(msg.rpc_id, None)
            if rpc is not None:
                self._signal_error(rpc)

    def _abort_client_rpc(self, rpc: ClientRpc) -> bool:
        """Drop every trace of an RPC; True if a grant slot was freed."""
        self.client_rpcs.pop(rpc.rpc_id, None)
        self.inbound.pop((rpc.rpc_id << 1), None)  # partial response
        freed = self._grantable.pop((rpc.rpc_id << 1), None) is not None
        if freed:
            self._grant_dirty = True
        self.outbound.pop((rpc.rpc_id << 1) | 1, None)
        self._signal_error(rpc)
        return freed

    def _signal_error(self, rpc: ClientRpc) -> None:
        self.rpcs_aborted += 1
        if rpc.on_error is not None:
            rpc.on_error(rpc.rpc_id)

    # ------------------------------------------------------------------
    # online priority estimation (3.4)
    # ------------------------------------------------------------------

    def _cutoffs_to_advertise(self) -> tuple | None:
        if self.estimator is None:
            return None
        return (self.alloc.n_prios, self.alloc.sched_levels,
                self.alloc.unsched_levels, self.alloc.cutoffs)

    def _adopt_peer_cutoffs(self, peer: int, advert: tuple) -> None:
        n_prios, sched_levels, unsched_levels, cutoffs = advert
        current = self.peer_alloc.get(peer)
        if current is not None and current.cutoffs == tuple(cutoffs):
            return
        self.peer_alloc[peer] = PriorityAllocation(
            n_prios=n_prios, sched_levels=tuple(sched_levels),
            unsched_levels=tuple(unsched_levels), cutoffs=tuple(cutoffs))

    def _maybe_refresh_allocation(self) -> None:
        if self.estimator is None or self.sim.now < self._next_refresh_ps:
            return
        self._next_refresh_ps = self.sim.now + self.cfg.online_refresh_ps
        cdf = self.estimator.to_cdf()
        if cdf is None:
            return
        self.alloc = allocate_priorities(
            cdf, self.unsched_limit, n_prios=self.cfg.n_prios,
            n_unsched_override=self.cfg.n_unsched_override,
            n_sched_override=self.cfg.n_sched_override)
        # The overcommitment degree may have moved with n_sched.
        self._refresh_alloc_cache()
        self._grant_dirty = True
