"""The Homa transport (paper section 3).

One ``HomaTransport`` instance runs on each host and plays both roles:

* **Sender** (3.2): transmits the unscheduled prefix of each message
  blindly, then only granted bytes; picks the outgoing packet with SRPT
  (fewest remaining bytes first); control packets always go first.
* **Receiver** (3.3-3.5): issues one GRANT per arriving data packet so
  each active message keeps RTTbytes granted-but-not-received; grants
  to the top-K shortest messages simultaneously (controlled
  overcommitment, K = number of scheduled priority levels); assigns a
  distinct scheduled priority per active message, lowest levels first
  to avoid preemption lag (Figure 5).
* **RPC layer** (3.1, 3.6-3.8): connectionless at-least-once RPCs; the
  response acknowledges the request; servers discard all RPC state once
  the last response byte is handed to the NIC; incast control marks
  requests of clients with many outstanding RPCs so servers limit the
  unscheduled portion of responses.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.engine import Simulator
from repro.core.packet import CTRL_PRIO, MAX_PAYLOAD, Packet, PacketType
from repro.homa.config import HomaConfig
from repro.homa.priorities import (
    OnlineEstimator,
    PriorityAllocation,
    allocate_priorities,
)
from repro.transport.base import Transport
from repro.transport.messages import InboundMessage, OutboundMessage


class ClientRpc:
    """Client-side state of one outstanding RPC."""

    __slots__ = ("rpc_id", "dst", "request", "response_started", "resends",
                 "last_activity_ps", "on_response", "on_error", "created_ps",
                 "incast")

    def __init__(self, rpc_id, dst, request, now_ps, on_response, on_error,
                 incast):
        self.rpc_id = rpc_id
        self.dst = dst
        self.request = request
        self.response_started = False
        self.resends = 0
        self.last_activity_ps = now_ps
        self.on_response = on_response
        self.on_error = on_error
        self.created_ps = now_ps
        self.incast = incast


class ServerRpc:
    """Server-side state of one RPC (discarded once the response is sent)."""

    __slots__ = ("rpc_id", "client", "request_length", "response", "incast",
                 "app_meta")

    def __init__(self, rpc_id, client, request_length, incast, app_meta):
        self.rpc_id = rpc_id
        self.client = client
        self.request_length = request_length
        self.response: Optional[OutboundMessage] = None
        self.incast = incast
        self.app_meta = app_meta


class HomaTransport(Transport):
    """Full Homa protocol implementation."""

    protocol_name = "homa"

    def __init__(
        self,
        sim: Simulator,
        cfg: HomaConfig,
        allocation: PriorityAllocation,
        rtt_bytes: int,
    ) -> None:
        super().__init__(sim)
        self.cfg = cfg
        self.alloc = allocation
        self.rtt_bytes = cfg.rtt_bytes or rtt_bytes
        self.unsched_limit = cfg.resolved_unsched_limit(self.rtt_bytes)
        self.outbound: dict[int, OutboundMessage] = {}
        self.inbound: dict[int, InboundMessage] = {}
        self.client_rpcs: dict[int, ClientRpc] = {}
        self.server_rpcs: dict[int, ServerRpc] = {}
        #: server application: fn(transport, server_rpc) -> None.
        #: When unset, inbound requests are treated as one-way messages.
        self.rpc_handler: Optional[Callable[["HomaTransport", ServerRpc], None]] = None
        #: observer for Figure 16: fn(host_id, withheld: bool)
        self.withheld_observer: Optional[Callable[[int, bool], None]] = None
        self._withheld = False
        self._timer_event = None
        # Online priority estimation (section 3.4 dissemination).
        self.estimator = OnlineEstimator() if cfg.online_priorities else None
        self._next_refresh_ps = 0
        self.peer_alloc: dict[int, PriorityAllocation] = {}
        # Counters.
        self.grants_sent = 0
        self.resends_sent = 0
        self.busys_sent = 0
        self.rpcs_aborted = 0
        self.rpcs_completed = 0
        self.reexecutions = 0

    # ------------------------------------------------------------------
    # public sending API
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, *, unsched_limit: int | None = None,
                     app_meta: int | None = None) -> OutboundMessage:
        """Send a one-way message (the paper's simulation workloads)."""
        rpc_id = self.sim.new_id()
        return self._new_outbound(rpc_id, True, dst, length,
                                  unsched_limit=unsched_limit,
                                  app_meta=app_meta, incast=False)

    def send_rpc(
        self,
        dst: int,
        length: int,
        *,
        on_response: Optional[Callable[[int, InboundMessage], None]] = None,
        on_error: Optional[Callable[[int], None]] = None,
        app_meta: int | None = None,
    ) -> int:
        """Issue an RPC; returns its globally unique id (section 3.1)."""
        rpc_id = self.sim.new_id()
        incast = (self.cfg.incast_control
                  and len(self.client_rpcs) >= self.cfg.incast_threshold)
        request = self._new_outbound(rpc_id, True, dst, length,
                                     app_meta=app_meta, incast=incast)
        self.client_rpcs[rpc_id] = ClientRpc(
            rpc_id, dst, request, self.sim.now, on_response, on_error, incast)
        self._ensure_timer()
        return rpc_id

    def respond(self, server_rpc: ServerRpc, length: int) -> OutboundMessage:
        """Server application sends the response for an RPC."""
        unsched = None
        if server_rpc.incast:
            # Incast control (3.6): scheduled delivery for marked RPCs.
            unsched = min(self.cfg.incast_response_unsched, length)
        response = self._new_outbound(server_rpc.rpc_id, False,
                                      server_rpc.client, length,
                                      unsched_limit=unsched, incast=False)
        server_rpc.response = response
        return response

    def _new_outbound(self, rpc_id, is_request, dst, length, *,
                      unsched_limit=None, app_meta=None, incast=False) -> OutboundMessage:
        msg = OutboundMessage(
            rpc_id, is_request, self.hid, dst, length,
            unsched_limit=unsched_limit if unsched_limit is not None
            else self.unsched_limit,
            created_ps=self.sim.now, app_meta=app_meta)
        msg.incast = incast
        self.outbound[msg.key] = msg
        self.kick()
        return msg

    # ------------------------------------------------------------------
    # sender: SRPT packet selection (3.2)
    # ------------------------------------------------------------------

    def _next_data(self) -> Optional[Packet]:
        best: Optional[OutboundMessage] = None
        best_key = None
        for msg in self.outbound.values():
            if not msg.sendable():
                continue
            key = (msg.remaining, msg.created_ps)
            if best_key is None or key < best_key:
                best, best_key = msg, key
        if best is None:
            return None
        offset, size, is_rtx = best.next_chunk()
        pkt = self._make_data_packet(best, offset, size, is_rtx)
        if best.fully_sent():
            self._outbound_finished(best)
        return pkt

    def _make_data_packet(self, msg: OutboundMessage, offset: int, size: int,
                          is_rtx: bool) -> Packet:
        sched = offset >= msg.unsched_limit
        if sched:
            prio = msg.grant_prio
        else:
            alloc = self.peer_alloc.get(msg.dst, self.alloc)
            prio = alloc.unsched_prio(msg.length)
        return Packet(
            self.hid, msg.dst, PacketType.DATA,
            prio=prio, payload=size, rpc_id=msg.rpc_id,
            is_request=msg.is_request, offset=offset,
            total_length=msg.length, sched=sched, retx=is_rtx,
            incast=msg.incast, app_meta=msg.app_meta,
            grant_offset=min(msg.length, msg.unsched_limit),
            created_ps=msg.created_ps,
        )

    def _outbound_finished(self, msg: OutboundMessage) -> None:
        """All bytes handed to the NIC: drop sender state where allowed."""
        self.outbound.pop(msg.key, None)
        if msg.is_request:
            rpc = self.client_rpcs.get(msg.rpc_id)
            if rpc is not None:
                # Start the response timeout clock only now.
                rpc.last_activity_ps = self.sim.now
        else:
            # Server: discard all RPC state once the last response byte
            # is transmitted (at-least-once semantics, section 3.8).
            self.server_rpcs.pop(msg.rpc_id, None)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        kind = pkt.kind
        if kind == PacketType.DATA:
            self._on_data(pkt)
        elif kind == PacketType.GRANT:
            self._on_grant(pkt)
        elif kind == PacketType.RESEND:
            self._on_resend(pkt)
        elif kind == PacketType.BUSY:
            self._on_busy(pkt)
        else:  # pragma: no cover - no other kinds reach a Homa host
            raise ValueError(f"unexpected packet kind {kind}")

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            if not pkt.is_request and pkt.rpc_id not in self.client_rpcs:
                return  # duplicate response for a completed RPC: drop
            msg = InboundMessage(pkt.rpc_id, pkt.is_request, pkt.src,
                                 self.hid, pkt.total_length, now_ps=self.sim.now)
            msg.app_meta = pkt.app_meta
            msg.incast = pkt.incast
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
            if self.estimator is not None:
                self.estimator.record(pkt.total_length)
            if not pkt.is_request:
                rpc = self.client_rpcs.get(pkt.rpc_id)
                if rpc is not None:
                    rpc.response_started = True
        if pkt.grant_offset > msg.granted:
            msg.granted = min(pkt.grant_offset, msg.length)
        msg.record(pkt.offset, pkt.payload, self.sim.now)
        if msg.is_complete():
            del self.inbound[key]
            self._inbound_finished(msg)
        self._schedule_grants()
        self._ensure_timer()
        self._maybe_refresh_allocation()

    def _inbound_finished(self, msg: InboundMessage) -> None:
        self._report_complete(msg)
        if msg.is_request:
            if self.rpc_handler is not None:
                if msg.rpc_id in self.server_rpcs:
                    # Duplicate request arriving while we still hold
                    # state: at-least-once allows re-execution, but with
                    # live state we simply ignore the duplicate.
                    return
                server_rpc = ServerRpc(msg.rpc_id, msg.src, msg.length,
                                       msg.incast, msg.app_meta)
                self.server_rpcs[msg.rpc_id] = server_rpc
                self.rpc_handler(self, server_rpc)
        else:
            rpc = self.client_rpcs.pop(msg.rpc_id, None)
            if rpc is not None:
                self.rpcs_completed += 1
                if rpc.on_response is not None:
                    rpc.on_response(msg.rpc_id, msg)

    # ------------------------------------------------------------------
    # receiver: grants, overcommitment, priorities (3.3-3.5)
    # ------------------------------------------------------------------

    def _grant_degree(self) -> int:
        if self.cfg.unlimited_overcommit:
            return 1 << 30
        if self.cfg.overcommit_override is not None:
            return self.cfg.overcommit_override
        return self.alloc.n_sched

    def _schedule_grants(self) -> None:
        grantable = [m for m in self.inbound.values() if m.granted < m.length]
        degree = self._grant_degree()
        if len(grantable) <= degree:
            active = grantable
        else:
            grantable.sort(key=lambda m: (m.bytes_remaining, m.first_arrival_ps))
            active = grantable[:degree]
            if self.cfg.grant_oldest:
                # Section 5.1 speculation: always keep the oldest
                # partially-received message schedulable so the very
                # largest messages cannot starve.
                oldest = min(grantable, key=lambda m: m.first_arrival_ps)
                if oldest not in active:
                    active[-1] = oldest
        self._set_withheld(len(grantable) > len(active))
        if not active:
            return
        # Most remaining bytes -> rank 0 -> lowest scheduled level, so a
        # newly arriving shorter message preempts without lag (Fig 5).
        ordered = sorted(active, key=lambda m: (-m.bytes_remaining,
                                                -m.first_arrival_ps))
        cutoffs = self._cutoffs_to_advertise()
        for rank, msg in enumerate(ordered):
            prio = self.alloc.sched_prio(rank)
            msg.sched_prio = prio
            new_grant = msg.bytes_received + self.rtt_bytes
            # Grant in whole packets, as the implementation does.
            new_grant = -(-new_grant // MAX_PAYLOAD) * MAX_PAYLOAD
            new_grant = min(new_grant, msg.length)
            if new_grant > msg.granted:
                msg.granted = new_grant
                self.grants_sent += 1
                self.send_ctrl(Packet(
                    self.hid, msg.src, PacketType.GRANT, prio=CTRL_PRIO,
                    rpc_id=msg.rpc_id, is_request=msg.is_request,
                    grant_offset=new_grant, grant_prio=prio, cutoffs=cutoffs))

    def _set_withheld(self, withheld: bool) -> None:
        if withheld != self._withheld:
            self._withheld = withheld
            if self.withheld_observer is not None:
                self.withheld_observer(self.hid, withheld)

    # ------------------------------------------------------------------
    # grants / resends / busy at the sender
    # ------------------------------------------------------------------

    def _on_grant(self, pkt: Packet) -> None:
        if pkt.cutoffs is not None:
            self._adopt_peer_cutoffs(pkt.src, pkt.cutoffs)
        msg = self.outbound.get(pkt.msg_key)
        if msg is None:
            return  # grant raced with completion
        msg.grant_to(pkt.grant_offset, pkt.grant_prio)
        self.kick()

    def _find_sender_message(self, pkt: Packet) -> Optional[OutboundMessage]:
        msg = self.outbound.get(pkt.msg_key)
        if msg is not None:
            return msg
        if pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            return rpc.request if rpc is not None else None
        server_rpc = self.server_rpcs.get(pkt.rpc_id)
        return server_rpc.response if server_rpc is not None else None

    def _on_resend(self, pkt: Packet) -> None:
        msg = self._find_sender_message(pkt)
        if msg is None:
            if not pkt.is_request:
                if pkt.rpc_id in self.server_rpcs:
                    # Response still being computed: hold the client off.
                    self._send_busy(pkt)
                else:
                    # Unknown RPCid: the request must have been lost (or
                    # our state discarded).  Ask the client to resend the
                    # request; the RPC will re-execute (sections 3.7/3.8).
                    self.reexecutions += 1
                    self.resends_sent += 1
                    self.send_ctrl(Packet(
                        self.hid, pkt.src, PacketType.RESEND, prio=CTRL_PRIO,
                        rpc_id=pkt.rpc_id, is_request=True,
                        offset=0, range_end=self.rtt_bytes))
            return
        if self._sender_is_busy(msg):
            self._send_busy(pkt)
            return
        msg.queue_rtx(pkt.offset, pkt.range_end)
        self.outbound[msg.key] = msg  # may have been cleaned up
        if pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            if rpc is not None:
                rpc.last_activity_ps = self.sim.now
        self.kick()

    def _sender_is_busy(self, msg: OutboundMessage) -> bool:
        """True if a strictly shorter message is ready to transmit
        (RESEND answered with BUSY to prevent timeouts, Figure 3)."""
        for other in self.outbound.values():
            if other is not msg and other.sendable() \
                    and other.remaining < msg.remaining:
                return True
        return False

    def _send_busy(self, resend: Packet) -> None:
        self.busys_sent += 1
        self.send_ctrl(Packet(
            self.hid, resend.src, PacketType.BUSY, prio=CTRL_PRIO,
            rpc_id=resend.rpc_id, is_request=resend.is_request))

    def _on_busy(self, pkt: Packet) -> None:
        msg = self.inbound.get(pkt.msg_key)
        if msg is not None:
            msg.last_activity_ps = self.sim.now
        if not pkt.is_request:
            rpc = self.client_rpcs.get(pkt.rpc_id)
            if rpc is not None:
                rpc.last_activity_ps = self.sim.now

    # ------------------------------------------------------------------
    # timeouts (3.7)
    # ------------------------------------------------------------------

    def _ensure_timer(self) -> None:
        if self._timer_event is not None and Simulator.is_pending(self._timer_event):
            return
        if not self.inbound and not self.client_rpcs:
            return
        self._timer_event = self.sim.schedule(
            self.cfg.resend_interval_ps // 2, self._timer_fire)

    def _timer_fire(self) -> None:
        now = self.sim.now
        interval = self.cfg.resend_interval_ps
        # Receiver side: granted bytes that never arrived.
        for msg in list(self.inbound.values()):
            if now - msg.last_activity_ps < interval:
                continue
            horizon = min(msg.granted, msg.length)
            gap = msg.received.first_gap(horizon)
            if gap is None:
                continue  # nothing outstanding: we are the bottleneck
            msg.resends += 1
            msg.last_activity_ps = now
            if msg.resends > self.cfg.max_resends:
                del self.inbound[msg.key]
                self._abort_related_rpc(msg)
                continue
            self.resends_sent += 1
            self.send_ctrl(Packet(
                self.hid, msg.src, PacketType.RESEND, prio=CTRL_PRIO,
                rpc_id=msg.rpc_id, is_request=msg.is_request,
                offset=gap[0], range_end=gap[1]))
        # Client side: responses that never started arriving.
        for rpc in list(self.client_rpcs.values()):
            if rpc.response_started:
                continue  # the inbound scan above covers it
            if not rpc.request.fully_sent():
                continue  # still transmitting the request
            if now - rpc.last_activity_ps < interval:
                continue
            rpc.resends += 1
            rpc.last_activity_ps = now
            if rpc.resends > self.cfg.max_resends:
                self._abort_client_rpc(rpc)
                continue
            # RESEND for the response, even though the request may have
            # been lost; the server answers RESEND-for-request if so.
            self.resends_sent += 1
            self.send_ctrl(Packet(
                self.hid, rpc.dst, PacketType.RESEND, prio=CTRL_PRIO,
                rpc_id=rpc.rpc_id, is_request=False,
                offset=0, range_end=self.rtt_bytes))
        self._timer_event = None
        self._ensure_timer()

    def _abort_related_rpc(self, msg: InboundMessage) -> None:
        if not msg.is_request:
            rpc = self.client_rpcs.pop(msg.rpc_id, None)
            if rpc is not None:
                self._signal_error(rpc)

    def _abort_client_rpc(self, rpc: ClientRpc) -> None:
        self.client_rpcs.pop(rpc.rpc_id, None)
        self.inbound.pop((rpc.rpc_id << 1), None)  # partial response
        self.outbound.pop((rpc.rpc_id << 1) | 1, None)
        self._signal_error(rpc)

    def _signal_error(self, rpc: ClientRpc) -> None:
        self.rpcs_aborted += 1
        if rpc.on_error is not None:
            rpc.on_error(rpc.rpc_id)

    # ------------------------------------------------------------------
    # online priority estimation (3.4)
    # ------------------------------------------------------------------

    def _cutoffs_to_advertise(self) -> tuple | None:
        if self.estimator is None:
            return None
        return (self.alloc.n_prios, self.alloc.sched_levels,
                self.alloc.unsched_levels, self.alloc.cutoffs)

    def _adopt_peer_cutoffs(self, peer: int, advert: tuple) -> None:
        n_prios, sched_levels, unsched_levels, cutoffs = advert
        current = self.peer_alloc.get(peer)
        if current is not None and current.cutoffs == tuple(cutoffs):
            return
        self.peer_alloc[peer] = PriorityAllocation(
            n_prios=n_prios, sched_levels=tuple(sched_levels),
            unsched_levels=tuple(unsched_levels), cutoffs=tuple(cutoffs))

    def _maybe_refresh_allocation(self) -> None:
        if self.estimator is None or self.sim.now < self._next_refresh_ps:
            return
        self._next_refresh_ps = self.sim.now + self.cfg.online_refresh_ps
        cdf = self.estimator.to_cdf()
        if cdf is None:
            return
        self.alloc = allocate_priorities(
            cdf, self.unsched_limit, n_prios=self.cfg.n_prios,
            n_unsched_override=self.cfg.n_unsched_override,
            n_sched_override=self.cfg.n_sched_override)
