"""Priority allocation (paper section 3.4, Figure 4).

Receivers split the available priority levels between unscheduled and
scheduled packets in proportion to the traffic they carry, then choose
cutoff points so each unscheduled level carries the same number of
unscheduled bytes, with shorter messages on higher levels.

``allocate_priorities`` computes a static allocation from a known size
distribution (what the RAMCloud implementation does).
``OnlineEstimator`` reconstructs the distribution from observed message
sizes at runtime — the mechanism the paper describes receivers using to
adapt, disseminated to senders by piggybacking on outgoing packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.distributions import EmpiricalCDF


@dataclass(frozen=True)
class PriorityAllocation:
    """A concrete mapping of message sizes to switch priority levels.

    ``cutoffs`` are ascending inclusive upper bounds of message length,
    one per unscheduled level, highest priority first; the last cutoff
    is effectively infinite.  ``sched_levels`` are the (lower) levels
    available for scheduled packets, ascending.
    """

    n_prios: int
    sched_levels: tuple[int, ...]
    unsched_levels: tuple[int, ...]  # ascending; highest used for smallest
    cutoffs: tuple[int, ...]         # parallel to reversed(unsched_levels)

    @property
    def n_sched(self) -> int:
        return len(self.sched_levels)

    @property
    def n_unsched(self) -> int:
        return len(self.unsched_levels)

    def unsched_prio(self, length: int) -> int:
        """Priority level for unscheduled packets of a message."""
        top = self.unsched_levels[-1]
        for index, cutoff in enumerate(self.cutoffs):
            if length <= cutoff:
                return top - index
        return self.unsched_levels[0]

    def sched_prio(self, rank: int) -> int:
        """Priority level for the active message of ``rank`` (0 = most
        remaining bytes).  Lowest levels first, so that new shorter
        messages can preempt without lag (Figure 5); ranks beyond the
        number of levels share the highest scheduled level."""
        index = min(rank, self.n_sched - 1)
        return self.sched_levels[index]


def split_levels(
    unsched_fraction: float,
    n_prios: int,
    *,
    n_unsched_override: int | None = None,
    n_sched_override: int | None = None,
) -> tuple[int, int]:
    """Decide how many levels go to unscheduled vs scheduled packets.

    Returns (n_sched, n_unsched).  With a single level both classes
    share it (the paper's HomaP1).
    """
    if n_prios < 1:
        raise ValueError(f"need at least one priority level, got {n_prios}")
    if n_prios == 1:
        return (1, 1)  # shared level
    if n_unsched_override is not None and n_sched_override is not None:
        if n_unsched_override + n_sched_override > n_prios:
            raise ValueError("override levels exceed available priorities")
        return (n_sched_override, n_unsched_override)
    if n_unsched_override is not None:
        n_unsched = min(n_unsched_override, n_prios - 1)
        return (n_prios - n_unsched, n_unsched)
    if n_sched_override is not None:
        n_sched = min(n_sched_override, n_prios - 1)
        return (n_sched, n_prios - n_sched)
    n_unsched = round(n_prios * unsched_fraction)
    n_unsched = max(1, min(n_prios - 1, n_unsched))
    return (n_prios - n_unsched, n_unsched)


def compute_cutoffs(
    cdf: EmpiricalCDF,
    n_unsched: int,
    unsched_limit: int,
) -> tuple[int, ...]:
    """Cutoffs that balance unscheduled bytes across levels (Figure 4)."""
    if n_unsched < 1:
        raise ValueError("need at least one unscheduled level")
    total = cdf.mean_truncated(unsched_limit)
    cutoffs = []
    for level in range(1, n_unsched):
        target = total * level / n_unsched
        cutoffs.append(_invert_unsched_mass(cdf, target, unsched_limit))
    cutoffs.append(cdf.max_bytes())
    return tuple(cutoffs)


def _invert_unsched_mass(
    cdf: EmpiricalCDF, target: float, cap: int
) -> int:
    """Find c with E[min(S, cap); S <= c] = target by bisection."""
    lo, hi = 1.0, float(cdf.max_bytes())
    for _ in range(64):
        mid = math.sqrt(lo * hi)  # bisect in log space
        if cdf.unsched_mass_below(mid, cap) < target:
            lo = mid
        else:
            hi = mid
    return max(1, round(hi))


def allocate_priorities(
    cdf: EmpiricalCDF,
    unsched_limit: int,
    *,
    n_prios: int = 8,
    n_unsched_override: int | None = None,
    n_sched_override: int | None = None,
    cutoff_override: tuple[int, ...] | None = None,
) -> PriorityAllocation:
    """Full allocation for a workload (static mode, as in section 4)."""
    fraction = cdf.mean_truncated(unsched_limit) / cdf.mean()
    n_sched, n_unsched = split_levels(
        fraction, n_prios,
        n_unsched_override=n_unsched_override,
        n_sched_override=n_sched_override,
    )
    if n_prios == 1:
        sched_levels: tuple[int, ...] = (0,)
        unsched_levels: tuple[int, ...] = (0,)
    else:
        sched_levels = tuple(range(n_sched))
        unsched_levels = tuple(range(n_prios - n_unsched, n_prios))
    if cutoff_override is not None:
        if len(cutoff_override) != n_unsched:
            raise ValueError(
                f"need {n_unsched} cutoffs, got {len(cutoff_override)}")
        cutoffs = tuple(cutoff_override)
    else:
        cutoffs = compute_cutoffs(cdf, n_unsched, unsched_limit)
    return PriorityAllocation(
        n_prios=n_prios,
        sched_levels=sched_levels,
        unsched_levels=unsched_levels,
        cutoffs=cutoffs,
    )


class OnlineEstimator:
    """Receiver-side message size histogram for dynamic allocation.

    Sizes are recorded into logarithmic bins; periodically the receiver
    rebuilds an ``EmpiricalCDF`` from the observed histogram and
    recomputes its allocation, which is then disseminated to senders
    (piggybacked on GRANT packets in this implementation).
    """

    #: log-spaced bin edges: 1 B .. 64 MB, 8 bins per octave
    N_BINS = 8 * 27

    def __init__(self) -> None:
        self.counts = [0] * self.N_BINS
        self.samples = 0

    @staticmethod
    def _bin_of(size: int) -> int:
        index = int(8 * math.log2(max(1, size)))
        return min(index, OnlineEstimator.N_BINS - 1)

    @staticmethod
    def _bin_upper(index: int) -> int:
        return max(1, math.ceil(2.0 ** ((index + 1) / 8.0)))

    def record(self, size: int) -> None:
        self.counts[self._bin_of(size)] += 1
        self.samples += 1

    def to_cdf(self) -> EmpiricalCDF | None:
        """Reconstruct a distribution; None until enough samples."""
        if self.samples < 100:
            return None
        anchors: list[tuple[float, float]] = [(0.0, 1)]
        seen = 0
        last_q = 0.0
        for index, count in enumerate(self.counts):
            if not count:
                continue
            seen += count
            q = seen / self.samples
            size = self._bin_upper(index)
            if q > last_q and size > anchors[-1][1]:
                anchors.append((min(q, 1.0), size))
                last_q = q
        if anchors[-1][0] < 1.0:
            anchors.append((1.0, anchors[-1][1] + 1))
        if len(anchors) < 2:
            return None
        return EmpiricalCDF(anchors, name="online")
