"""Homa: receiver-driven low-latency transport using network priorities.

The paper's primary contribution (section 3).  ``HomaTransport``
implements the complete protocol: blind unscheduled transmission,
receiver-driven per-packet grants, dynamic priority allocation for both
scheduled and unscheduled packets, controlled overcommitment, the
RESEND/BUSY loss machinery, connectionless at-least-once RPCs, and
incast control.
"""

from repro.homa.config import HomaConfig
from repro.homa.priorities import PriorityAllocation, allocate_priorities
from repro.homa.transport import HomaTransport

__all__ = [
    "HomaConfig",
    "HomaTransport",
    "PriorityAllocation",
    "allocate_priorities",
]
