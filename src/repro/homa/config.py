"""Homa configuration.

Defaults correspond to the paper's standard simulation setup: 8
priority levels, RTTbytes derived from the topology (9680 B cross-rack,
rounded up to whole packets: "about 10 KB in our implementation"),
degree of overcommitment equal to the number of scheduled priority
levels, and a few-millisecond receiver RESEND timer.

Every evaluation knob in section 5 maps to a field here:

* Figures 8/9 (HomaPx): ``n_prios``;
* Figure 10: ``incast_threshold`` / ``incast_response_unsched``;
* Figure 16/19: ``n_sched_override`` (and thereby overcommitment);
* Figure 17: ``n_unsched_override``;
* Figure 18: ``cutoff_override``;
* Figure 20: ``unsched_limit``;
* Basic transport: ``unlimited_overcommit=True`` with ``n_prios=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.packet import MAX_PAYLOAD
from repro.core.units import MS


@dataclass
class HomaConfig:
    """Tunable parameters of the Homa protocol."""

    #: total switch priority levels Homa may use (paper default: 8)
    n_prios: int = 8
    #: bytes a sender may transmit blindly; None = RTTbytes rounded up
    #: to whole data packets (paper: ~10 KB at 10 Gbps)
    unsched_limit: int | None = None
    #: RTTbytes used for grant pacing; None = derive from the topology
    rtt_bytes: int | None = None
    #: force a number of unscheduled priority levels (Figure 17)
    n_unsched_override: int | None = None
    #: force a number of scheduled priority levels (Figures 16/19)
    n_sched_override: int | None = None
    #: force unscheduled cutoff points, ascending (Figure 18)
    cutoff_override: tuple[int, ...] | None = None
    #: degree of overcommitment; None = number of scheduled levels
    overcommit_override: int | None = None
    #: grant to every incoming message at once (the Basic transport)
    unlimited_overcommit: bool = False
    #: receiver inactivity period before sending RESEND ("a few ms")
    resend_interval_ps: int = 2 * MS
    #: RESENDs without progress before an RPC is aborted
    max_resends: int = 5
    #: outstanding-RPC count that triggers incast marking (section 3.6)
    incast_threshold: int = 16
    #: response unscheduled limit for marked RPCs ("a few hundred bytes")
    incast_response_unsched: int = 400
    #: disable incast control entirely (Figure 10's second curve)
    incast_control: bool = True
    #: learn the size distribution online instead of precomputing
    #: (section 4 notes the RAMCloud implementation precomputes; the
    #: online estimator is the paper's intended full mechanism)
    online_priorities: bool = False
    #: refresh period of the online estimator
    online_refresh_ps: int = 10 * MS
    #: reserve the active-message slot of lowest priority for the oldest
    #: message (the section 5.1 speculation for very large messages)
    grant_oldest: bool = False
    #: grant coalescing interval, in nanoseconds.  0 = legacy per-packet
    #: mode: one GRANT per arriving scheduled data packet, slowdown
    #: digests byte-identical to the seed tree.  Nonzero = batched mode
    #: (the default, as real Homa implementations coalesce grants; see
    #: the paper's complete version, arXiv:1803.09615): data arrivals
    #: only mark the receiver grant-dirty and a per-receiver timer runs
    #: the ranking pass once per interval, emitting at most one GRANT
    #: per active message.  Batching shifts grant timing, so digests
    #: drift from the per-packet mode; docs/PERFORMANCE.md documents the
    #: contract and the measured control-packet reduction.
    grant_batch_ns: int = 4000
    #: count-based grant coalescing (the Linux kernel Homa approach):
    #: run the ranking pass after every N arriving scheduled data
    #: packets instead of on a timer.  0 = disabled.  Nonzero takes
    #: precedence over ``grant_batch_ns``; protocol-critical events
    #: (new grantable message, freed overcommitment slot, sender window
    #: exhausted) still grant immediately.  Ablation knob — see
    #: ``benchmarks/bench_ablations.py`` and docs/PERFORMANCE.md for
    #: the comparison against the timer-based pacer.
    grant_batch_pkts: int = 0
    #: packet slots preallocated by the shared per-run PacketPool
    #: (core/pool.py).  Purely a performance knob: the pool grows in
    #: deterministic chunks when more packets are in flight than slots,
    #: so behavior and digests never depend on the value.  The default
    #: covers the paper-scale 144-host topology with no growth.
    pool_prealloc: int = 4096

    def resolved_unsched_limit(self, rtt_bytes: int) -> int:
        """Unscheduled byte limit, packet-aligned unless overridden."""
        if self.unsched_limit is not None:
            return self.unsched_limit
        packets = -(-rtt_bytes // MAX_PAYLOAD)
        return packets * MAX_PAYLOAD

    def with_prios(self, n: int) -> "HomaConfig":
        """The paper's HomaPx variant: only ``n`` priority levels."""
        if not 1 <= n <= 8:
            raise ValueError(f"priority levels must be 1..8, got {n}")
        return replace(self, n_prios=n)

    @staticmethod
    def basic() -> "HomaConfig":
        """RAMCloud's Basic transport: receiver-driven grants but no
        priorities and no overcommitment limit (paper section 5.1)."""
        return HomaConfig(n_prios=1, unlimited_overcommit=True)
