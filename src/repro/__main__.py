"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``         — one simulation (protocol x workload x load),
  slowdown table
* ``campaign``    — regenerate a paper figure's whole simulation grid,
  sharded over a process pool (or a worker farm via ``--farm``), with
  on-disk result caching
* ``farm-worker`` — join a campaign farm coordinator and compute cells
* ``workloads``   — list the built-in workloads
* ``alloc``       — show Homa's priority allocation for a workload
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

from repro.experiments.paper_data import CAMPAIGNS
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.tables import kv_table, series_table
from repro.homa.priorities import allocate_priorities
from repro.transport.registry import PROTOCOLS
from repro.workloads.catalog import WORKLOADS, get_workload


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = ExperimentConfig(
        protocol=args.protocol,
        workload=args.workload.upper(),
        load=args.load,
        racks=args.racks,
        hosts_per_rack=args.hosts_per_rack,
        aggrs=args.aggrs,
        duration_ms=args.duration_ms,
        warmup_ms=args.warmup_ms,
        drain_ms=args.drain_ms,
        max_messages=args.max_messages,
        seed=args.seed,
        mode="rpc_echo" if args.rpc else "oneway",
    )
    result = run_experiment(cfg)
    edges = result.bucket_edges()
    print(series_table(
        f"{cfg.protocol} / {cfg.workload} @ {int(cfg.load * 100)}% load",
        edges,
        {"p50": result.tracker.series(edges, 50),
         "p99": result.tracker.series(edges, 99)}))
    print(kv_table("run summary", [
        ("messages measured", str(result.tracker.count)),
        ("submitted / completed", f"{result.submitted} / {result.completed}"),
        ("finish rate", f"{result.finish_rate:.3f}"),
        ("overall p50 slowdown", f"{result.tracker.overall(50):.2f}"),
        ("overall p99 slowdown", f"{result.tracker.overall(99):.2f}"),
        ("events simulated", f"{result.events:,}"),
        ("wall time", f"{result.wall_seconds:.1f}s"),
    ]))
    return 0


def _bench_dir() -> Path:
    """The benchmarks/ directory of the repository checkout."""
    return Path(__file__).resolve().parents[2] / "benchmarks"


def _cmd_campaign(args: argparse.Namespace) -> int:
    bench_dir = _bench_dir()
    if not bench_dir.is_dir():
        print(f"error: {bench_dir} not found — the campaign command "
              "needs a repository checkout", file=sys.stderr)
        return 1
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    targets = sorted(CAMPAIGNS) if args.figure == "all" else [args.figure]
    # Figure pairs (8/9, 12/13) share one module; run each module once.
    modules = {name: importlib.import_module(name) for name in
               dict.fromkeys(CAMPAIGNS[target][0] for target in targets)}
    if getattr(args, "farm", None) is not None:
        # Warm the shared cache over the worker farm (falls back to the
        # local pool when nobody connects), then render per figure from
        # cache hits — byte-identical either way.
        from repro.experiments import farm as farm_mod
        host, port = farm_mod.parse_address(args.farm)
        specs = []
        pooled_modules = set()
        for name, module in modules.items():
            if hasattr(module, "campaign_specs"):
                specs.extend(module.campaign_specs())
            elif hasattr(module, "campaign_spec"):
                specs.append(module.campaign_spec())
            else:
                continue
            pooled_modules.add(name)
        if specs:
            farm_mod.run_farm(specs, host=host, port=port, jobs=args.jobs,
                              fresh=args.fresh, farm_wait_s=args.farm_wait,
                              retry_budget=args.farm_retries)
    elif len(modules) > 1:
        # Pool every figure's pending cells into one global
        # largest-cell-first queue, so workers stay busy across the
        # skewed per-figure grids (W5 cells dominate).  This warms the
        # shared cache; each figure's run_figure() below then renders
        # from cache hits, byte-identical to running it alone.
        from repro.experiments import campaign as campaign_mod
        specs = []
        pooled_modules = set()
        for name, module in modules.items():
            if hasattr(module, "campaign_specs"):
                specs.extend(module.campaign_specs())
            elif hasattr(module, "campaign_spec"):
                specs.append(module.campaign_spec())
            else:
                continue
            pooled_modules.add(name)
        campaign_mod.run_pooled(specs, jobs=args.jobs, fresh=args.fresh)
    else:
        pooled_modules = set()
    paths = []
    for name, module in modules.items():
        # After a pooled warm-up the per-figure pass must read the
        # cache even under --fresh (the pool already recomputed);
        # modules that contributed no specs keep the flag.
        fresh = args.fresh and name not in pooled_modules
        paths.extend(module.run_figure(jobs=args.jobs, fresh=fresh))
    print("artifacts:")
    for path in paths:
        print(f"  {path}")
    return 0


def _cmd_farm_worker(args: argparse.Namespace) -> int:
    bench_dir = _bench_dir()
    if bench_dir.is_dir() and str(bench_dir) not in sys.path:
        # Custom cell tasks (e.g. bench_fig10_incast:incast_task) live
        # in benchmarks/; workers resolve them the same way the local
        # pool's initializer does.
        sys.path.insert(0, str(bench_dir))
    from repro.experiments import farm as farm_mod
    try:
        host, port = farm_mod.parse_address(args.address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _die() -> None:
        # Chaos hook for the CI death-retry battery: die abruptly (no
        # cleanup, no FIN handshake beyond the kernel's) mid-cell.
        import os
        import signal
        os.kill(os.getpid(), signal.SIGKILL)

    completed = farm_mod.worker_loop(
        host, port, name=args.name, heartbeat_s=args.heartbeat,
        die_after=args.die_after,
        on_die=_die if args.die_after is not None else None,
        quiet=False)
    print(f"farm-worker: {completed} cell(s) completed", file=sys.stderr)
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    for key, workload in WORKLOADS.items():
        print(f"{key}: {workload.description}")
        print(f"    mean {workload.cdf.mean():,.0f} B, "
              f"range {workload.cdf.min_bytes()}-"
              f"{workload.cdf.max_bytes():,} B, "
              f"deciles {workload.deciles}")
    return 0


def _cmd_alloc(args: argparse.Namespace) -> int:
    workload = get_workload(args.workload)
    alloc = allocate_priorities(workload.cdf, args.unsched_limit,
                                n_prios=args.prios)
    print(f"{workload.key}: {alloc.n_unsched} unscheduled + "
          f"{alloc.n_sched} scheduled priority levels")
    lo = 1
    for level, cutoff in zip(reversed(alloc.unsched_levels), alloc.cutoffs):
        print(f"  P{level}: unscheduled bytes of messages {lo:,}-{cutoff:,} B")
        lo = cutoff + 1
    print(f"  P{alloc.sched_levels[0]}-P{alloc.sched_levels[-1]}: "
          f"scheduled packets (assigned per-message by receivers)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Homa (SIGCOMM 2018) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--protocol", choices=PROTOCOLS, default="homa")
    run.add_argument("--workload", default="W3")
    run.add_argument("--load", type=float, default=0.8)
    run.add_argument("--racks", type=int, default=3)
    run.add_argument("--hosts-per-rack", type=int, default=8)
    run.add_argument("--aggrs", type=int, default=2)
    run.add_argument("--duration-ms", type=float, default=5.0)
    run.add_argument("--warmup-ms", type=float, default=0.5)
    run.add_argument("--drain-ms", type=float, default=10.0)
    run.add_argument("--max-messages", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--rpc", action="store_true",
                     help="echo-RPC mode instead of one-way messages")
    run.set_defaults(fn=_cmd_run)

    campaign = sub.add_parser(
        "campaign",
        help="regenerate a paper figure's simulation grid "
             "(sharded + cached)",
        description="Figure ids: " + ", ".join(
            f"{name} ({desc})" for name, (_, desc) in sorted(
                CAMPAIGNS.items())),
        epilog="Grid sizes follow the REPRO_BENCH_SCALE environment "
               "variable: tiny (CI smoke), quick (the default), or "
               "paper (the full Figure 11 topology; hours).  See "
               "docs/CAMPAIGNS.md.")
    campaign.add_argument("figure",
                          choices=sorted(CAMPAIGNS) + ["all"],
                          help="figure/table id, or 'all'")
    campaign.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS "
                               "env var, else 1 = serial)")
    campaign.add_argument("--fresh", action="store_true",
                          help="ignore cached results (recompute and "
                               "repopulate the cache)")
    campaign.add_argument("--farm", metavar="HOST:PORT", default=None,
                          help="serve the cell queue to farm workers on "
                               "this address (port 0 = ephemeral); falls "
                               "back to the local pool if none connect")
    campaign.add_argument("--farm-wait", type=float, default=10.0,
                          help="grace seconds before the no-worker local "
                               "fallback (default 10)")
    campaign.add_argument("--farm-retries", type=int, default=2,
                          help="worker deaths one cell survives before "
                               "the sweep fails (default 2)")
    campaign.set_defaults(fn=_cmd_campaign)

    worker = sub.add_parser(
        "farm-worker",
        help="join a campaign farm and compute cells",
        description="Connects to a `repro campaign --farm` coordinator, "
                    "pulls cells from its global queue, and streams "
                    "results back.  See docs/CAMPAIGNS.md (farm section).")
    worker.add_argument("address", metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--name", default=None,
                        help="worker name shown in coordinator logs")
    worker.add_argument("--heartbeat", type=float, default=2.0,
                        help="seconds between liveness pings while a "
                             "cell computes (default 2)")
    worker.add_argument("--die-after", type=int, default=None,
                        metavar="N",
                        help="chaos hook: SIGKILL self upon receiving "
                             "the Nth cell (tests the coordinator's "
                             "death-requeue path)")
    worker.set_defaults(fn=_cmd_farm_worker)

    workloads = sub.add_parser("workloads", help="list built-in workloads")
    workloads.set_defaults(fn=_cmd_workloads)

    alloc = sub.add_parser("alloc", help="show priority allocation")
    alloc.add_argument("workload")
    alloc.add_argument("--prios", type=int, default=8)
    alloc.add_argument("--unsched-limit", type=int, default=10220)
    alloc.set_defaults(fn=_cmd_alloc)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
