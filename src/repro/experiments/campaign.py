"""Declarative experiment campaigns: a grid of cells, a shard
scheduler, and an on-disk result cache.

The paper's evaluation is a grid of *independent* simulations over
(protocol x workload x load).  A :class:`CampaignSpec` names that grid
once; :func:`run` executes it — fanning cells out over a
``ProcessPoolExecutor`` when ``jobs > 1`` (worker count from the
``--jobs`` CLI flag or the ``REPRO_JOBS`` environment variable, serial
fallback at ``jobs=1``) — and memoizes each cell's result on disk under
``benchmarks/results/cache/``.

Three properties the benchmarks rely on:

* **Determinism** — a cell is one seeded simulation; serial and sharded
  runs produce byte-identical slowdown digests because every result
  (computed in-process, in a worker, or loaded from cache) makes the
  same JSON payload round-trip (`ExperimentResult.to_payload`).
* **Cache stability** — the cache key is a stable hash of the cell's
  canonicalized spec plus a fingerprint of the simulator source
  (every ``src/repro/**/*.py``, and the task's own module when it lives
  outside the package).  Re-running a figure after an unrelated edit
  (docs, tests, other benchmarks) is a cache hit; touching simulator
  code invalidates everything, which is the conservative direction.
* **Attribution** — a failing cell surfaces its campaign, key, and
  full config in the raised :class:`CampaignCellError`, so a sweep that
  dies mid-campaign names the exact simulation to reproduce.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from importlib import import_module
from pathlib import Path
from typing import Any, Hashable, Mapping

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

#: default cache location (repo checkout layout); override with
#: ``REPRO_CACHE_DIR`` or the ``cache_dir`` argument.
DEFAULT_CACHE_DIR = (Path(__file__).resolve().parents[3]
                     / "benchmarks" / "results" / "cache")

#: the standard cell task: run one ``ExperimentConfig`` to a payload
EXPERIMENT_TASK = "repro.experiments.campaign:experiment_task"
EXPERIMENT_DECODE = "repro.experiments.campaign:experiment_decode"
IDENTITY_DECODE = "repro.experiments.campaign:identity_decode"

_CACHE_VERSION = 1


# -- cell tasks ----------------------------------------------------------

def experiment_task(cfg: ExperimentConfig) -> dict:
    """Run one simulation; return its transportable payload."""
    return run_experiment(cfg).to_payload()


def experiment_decode(payload: dict) -> ExperimentResult:
    return ExperimentResult.from_payload(payload)


def identity_decode(payload: Any) -> Any:
    """For custom tasks whose payload is already the final value."""
    return payload


def _resolve(path: str):
    """Import ``module:attr``; the worker-side task lookup."""
    module, _, attr = path.partition(":")
    if not module or not attr:
        raise ValueError(f"task path must be 'module:function', got {path!r}")
    return getattr(import_module(module), attr)


# -- the spec ------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One independent unit of work in a campaign.

    ``spec`` must be canonicalizable (dataclasses / dicts / sequences /
    scalars) and picklable; ``task`` and ``decode`` are ``module:attr``
    paths so worker processes can resolve them without sharing state
    with the parent.
    """

    key: Hashable
    spec: Any
    task: str = EXPERIMENT_TASK
    decode: str = EXPERIMENT_DECODE


@dataclass(frozen=True)
class CampaignSpec:
    """A named grid of cells (the declarative form of one figure)."""

    name: str
    cells: tuple[Cell, ...]

    def __post_init__(self):
        keys = [cell.key for cell in self.cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({repr(k) for k in keys if keys.count(k) > 1})
            raise ValueError(
                f"campaign {self.name!r} has duplicate cell keys: {dupes}")


def experiment_grid(name: str,
                    cfgs: Mapping[Hashable, ExperimentConfig]) -> CampaignSpec:
    """The common case: every cell is one ``ExperimentConfig``."""
    return CampaignSpec(name=name, cells=tuple(
        Cell(key=key, spec=cfg) for key, cfg in cfgs.items()))


# -- stable hashing ------------------------------------------------------

def canonical(obj: Any) -> Any:
    """Reduce a spec to a JSON-stable structure (dataclass-aware,
    sorted dict keys, tuples as lists)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                **{f.name: canonical(getattr(obj, f.name))
                   for f in dataclasses.fields(obj)}}
    if isinstance(obj, dict):
        result = {str(k): canonical(v)
                  for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
        if len(result) != len(obj):
            # str() collapsed distinct keys (e.g. 1 vs "1"): two
            # different specs must never share one cache key.
            raise TypeError(f"dict keys collide under str() in campaign "
                            f"spec: {sorted(map(str, obj))}")
        return result
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a "
                    f"campaign cell spec: {obj!r}")


def spec_json(spec: Any) -> str:
    return json.dumps(canonical(spec), sort_keys=True,
                      separators=(",", ":"))


_fingerprints: dict[str, str] = {}


def code_fingerprint() -> str:
    """Content hash of every ``.py`` file in the ``repro`` package.

    Any simulator edit invalidates the whole cache; edits outside
    ``src/repro`` (docs, tests, benchmark rendering) do not.
    """
    cached = _fingerprints.get("")
    if cached is not None:
        return cached
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _fingerprints[""] = digest.hexdigest()
    return _fingerprints[""]


def _task_fingerprint(task: str) -> str:
    """Code fingerprint for one task path: the package hash, extended
    with the task's defining module when it lives outside ``repro``
    (e.g. a benchmark-defined task like the incast cell)."""
    cached = _fingerprints.get(task)
    if cached is not None:
        return cached
    module_name = task.partition(":")[0]
    fingerprint = code_fingerprint()
    if module_name != "repro" and not module_name.startswith("repro."):
        digest = hashlib.sha256(fingerprint.encode())
        source = getattr(import_module(module_name), "__file__", None)
        if source:
            digest.update(Path(source).read_bytes())
        fingerprint = digest.hexdigest()
    _fingerprints[task] = fingerprint
    return fingerprint


def cell_hash(cell: Cell) -> str:
    digest = hashlib.sha256()
    digest.update(cell.task.encode())
    digest.update(b"\0")
    digest.update(spec_json(cell.spec).encode())
    digest.update(b"\0")
    digest.update(_task_fingerprint(cell.task).encode())
    return digest.hexdigest()[:32]


# -- the on-disk cache ---------------------------------------------------

class ResultCache:
    """JSON payloads keyed by ``cell_hash`` under one directory."""

    def __init__(self, cache_dir: str | os.PathLike | None = None) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.dir = Path(cache_dir)

    def _sanitize(self, name: str) -> str:
        return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)

    def path_for(self, campaign: str, cell: Cell) -> Path:
        return (self.dir
                / f"{self._sanitize(campaign)}-{cell_hash(cell)}.json")

    def load(self, path: Path) -> Any | None:
        """The payload, or None on miss (or an unreadable/stale file)."""
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if entry.get("version") != _CACHE_VERSION:
            return None
        return entry.get("payload")

    def store(self, path: Path, campaign: str, cell: Cell,
              payload: Any) -> None:
        entry = {
            "version": _CACHE_VERSION,
            "campaign": campaign,
            "key": repr(cell.key),
            "task": cell.task,
            "spec": canonical(cell.spec),
            "payload": payload,
        }
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(entry, separators=(",", ":")) + "\n")
        os.replace(tmp, path)  # atomic: concurrent campaigns never
        #                        observe a half-written entry


# -- execution -----------------------------------------------------------

class CampaignCellError(RuntimeError):
    """A cell failed; the message names the exact simulation."""

    def __init__(self, campaign: str, cell: Cell, cause: BaseException):
        self.campaign = campaign
        self.cell = cell
        super().__init__(
            f"campaign {campaign!r} cell {cell.key!r} failed with "
            f"{type(cause).__name__}: {cause}\n"
            f"  task: {cell.task}\n"
            f"  config: {spec_json(cell.spec)}")


class CampaignResults(dict):
    """``{cell key: decoded result}`` in spec order, plus run stats."""

    name: str = ""
    jobs: int = 1
    computed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    # populated by experiments.farm when the sweep ran over a worker farm
    farm_workers: int = 0
    farm_requeues: int = 0
    farm_resumed: int = 0
    farm_fallback: bool = False


def resolve_jobs(jobs: int | None = None) -> int:
    """``jobs`` argument, else ``REPRO_JOBS``, else serial."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_cell(task: str, spec: Any) -> Any:
    """Worker entry point: resolve and run one cell's task."""
    return _resolve(task)(spec)


def _init_worker(parent_sys_path: list[str]) -> None:
    """Make benchmark-defined tasks importable under any multiprocessing
    start method (fork inherits sys.path; spawn/forkserver do not)."""
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def run(spec: CampaignSpec, *, jobs: int | None = None, fresh: bool = False,
        cache_dir: str | os.PathLike | None = None,
        quiet: bool = False) -> CampaignResults:
    """Execute a campaign; returns decoded results in cell order.

    ``fresh=True`` bypasses cache lookups (results are still stored, so
    a fresh run repopulates the cache).  One campaign is simply a
    single-member pool — `run_pooled` holds the only copy of the
    scheduling/caching/failure machinery.
    """
    results = run_pooled([spec], jobs=jobs, fresh=fresh,
                         cache_dir=cache_dir, quiet=True)[spec.name]
    if not quiet:
        print(f"[campaign {spec.name}] {len(spec.cells)} cells: "
              f"{results.computed} computed, {results.cached} cached "
              f"(jobs={results.jobs}, {results.wall_seconds:.1f}s)",
              file=sys.stderr)
    return results


def _cell_cost(cell: Cell) -> float:
    """Scheduling weight for the global queue: an estimate of one
    cell's simulated work.  Exact values do not matter — only that the
    heavy-tailed cells (W5 grids dominate every campaign) start first,
    so the pool does not end with one straggler.  Cells whose spec is
    not an ``ExperimentConfig`` (custom tasks: the incast cell, the
    max-load sweep) are scheduled first: they are the long speculative
    ones."""
    spec = cell.spec
    if isinstance(spec, ExperimentConfig):
        if spec.fabric is not None:
            # Declarative fabrics supersede racks/hosts_per_rack, and
            # lossy cells burn extra events on timeout/RESEND churn.
            hosts = spec.fabric.n_hosts
            loss = spec.fabric.loss
            churn = 1.0 + 10.0 * (loss.tor + loss.aggr + loss.core)
        else:
            hosts = spec.racks * spec.hosts_per_rack
            churn = 1.0
        return (spec.duration_ms + spec.drain_ms) * hosts * spec.load * churn
    return float("inf")


def run_pooled(specs: list[CampaignSpec], *, jobs: int | None = None,
               fresh: bool = False,
               cache_dir: str | os.PathLike | None = None,
               quiet: bool = False) -> dict[str, CampaignResults]:
    """Execute several campaigns as one global work queue.

    ``repro campaign all`` used to run figure modules one after
    another, so a sharded pool drained each figure's skewed grid
    separately and workers idled at every figure boundary.  Here the
    *pending* cells of every campaign are pooled and dispatched
    largest-cell-first over a single executor; results land in each
    campaign's cache exactly as the per-figure path stores them (same
    cache keys, same payloads), so decoded results — and therefore
    slowdown digests — are byte-identical to running each figure
    alone.  Returns ``{campaign name: CampaignResults}``.
    """
    jobs = resolve_jobs(jobs)
    cache = ResultCache(cache_dir)
    start = time.monotonic()

    payloads: dict[str, dict[Hashable, Any]] = {s.name: {} for s in specs}
    pending: list[tuple[str, Cell, Path]] = []
    for spec in specs:
        for cell in spec.cells:
            path = cache.path_for(spec.name, cell)
            payload = None if fresh else cache.load(path)
            if payload is None:
                pending.append((spec.name, cell, path))
            else:
                payloads[spec.name][cell.key] = payload
    pending.sort(key=lambda item: _cell_cost(item[1]), reverse=True)

    if pending and jobs == 1:
        for name, cell, path in pending:
            try:
                payload = _run_cell(cell.task, cell.spec)
            except Exception as exc:
                raise CampaignCellError(name, cell, exc) from exc
            cache.store(path, name, cell, payload)
            payloads[name][cell.key] = payload
    elif pending:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=_init_worker,
                initargs=(list(sys.path),)) as pool:
            futures = {pool.submit(_run_cell, cell.task, cell.spec):
                       (name, cell, path) for name, cell, path in pending}
            wait(futures, return_when=FIRST_EXCEPTION)
            failed: tuple[str, Cell, BaseException] | None = None
            for future, (name, cell, path) in futures.items():
                if not future.done() or future.cancelled():
                    continue
                exc = future.exception()
                if exc is not None:
                    failed = failed or (name, cell, exc)
                    continue
                payload = future.result()
                cache.store(path, name, cell, payload)
                payloads[name][cell.key] = payload
            if failed is not None:
                pool.shutdown(cancel_futures=True)
                name, cell, exc = failed
                raise CampaignCellError(name, cell, exc) from exc

    wall = time.monotonic() - start
    out: dict[str, CampaignResults] = {}
    computed = {name: 0 for name in payloads}
    for name, _, _ in pending:
        computed[name] += 1
    for spec in specs:
        results = CampaignResults(
            (cell.key, _resolve(cell.decode)(payloads[spec.name][cell.key]))
            for cell in spec.cells)
        results.name = spec.name
        results.jobs = jobs
        results.computed = computed[spec.name]
        results.cached = len(spec.cells) - computed[spec.name]
        results.wall_seconds = wall
        out[spec.name] = results
    if not quiet:
        total = sum(len(s.cells) for s in specs)
        print(f"[campaign pool] {len(specs)} campaigns, {total} cells: "
              f"{len(pending)} computed, {total - len(pending)} cached "
              f"(jobs={jobs}, {wall:.1f}s)", file=sys.stderr)
    return out


def slowdown_digest(results: Mapping[Hashable, ExperimentResult]) -> str:
    """A byte-stable digest of every cell's slowdown percentiles, for
    asserting that serial and sharded campaigns agree exactly."""
    lines = []
    for key in sorted(results, key=repr):
        result = results[key]
        p50 = ",".join(repr(v) for v in result.slowdown_series(50))
        p99 = ",".join(repr(v) for v in result.slowdown_series(99))
        lines.append(f"{key!r} p50=[{p50}] p99=[{p99}]")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()
