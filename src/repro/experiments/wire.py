"""Line-delimited JSON frames for the campaign farm.

One frame is one JSON object on one ``\\n``-terminated line — the same
shape as the campaign journal and the result cache, so every byte that
crosses a farm socket is inspectable with ``nc`` and ``jq``.  A frame
always carries a string ``"type"``; everything else is per-type.  The
full frame vocabulary is documented in docs/CAMPAIGNS.md (farm section)
next to the failure semantics that rely on it.

JSON is the transport on purpose (no pickle): payloads are exactly the
``to_payload`` dictionaries the on-disk cache stores, floats round-trip
via ``repr`` so farmed results are byte-identical to local ones, and a
malformed line is a :class:`ProtocolError` — a per-connection failure
the coordinator can answer by dropping that worker, never a deserialized
surprise.
"""

from __future__ import annotations

import json
import socket
import threading

#: bumped when the frame vocabulary changes incompatibly; hello/welcome
#: frames carry it so mismatched peers fail fast with a clear message
PROTOCOL_VERSION = 1

#: hard per-frame ceiling — a single cell payload is a few hundred KB
#: even at paper scale, so anything near this is a framing bug, not data
MAX_FRAME_BYTES = 64 * 1024 * 1024

_RECV_CHUNK = 65536


class ProtocolError(ValueError):
    """A peer sent bytes that do not parse as a protocol frame."""


def encode_frame(frame: dict) -> bytes:
    """One frame as wire bytes (compact JSON + newline)."""
    return json.dumps(frame, separators=(",", ":")).encode() + b"\n"


def send_frame(sock: socket.socket, frame: dict) -> None:
    sock.sendall(encode_frame(frame))


class FrameReader:
    """Incremental frame parser over a stream socket.

    ``read_frame`` blocks until one full line arrives and returns the
    decoded dict, or ``None`` on clean EOF (peer closed between
    frames).  Garbage — unparseable JSON, a non-object, a missing or
    non-string ``type``, an oversized line, EOF mid-frame — raises
    :class:`ProtocolError`; socket-level failures propagate as
    ``OSError``/``TimeoutError`` untouched so callers can tell a
    misbehaving peer from a dead one.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def read_frame(self) -> dict | None:
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                if not line.strip():
                    continue
                return self._parse(line)
            if len(self._buf) > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame exceeds {MAX_FRAME_BYTES} bytes without a "
                    f"newline")
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                if self._buf.strip():
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buf += chunk

    @staticmethod
    def _parse(line: bytes) -> dict:
        try:
            frame = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
        if not isinstance(frame, dict):
            raise ProtocolError(
                f"frame must be a JSON object, got {type(frame).__name__}")
        if not isinstance(frame.get("type"), str):
            raise ProtocolError("frame lacks a string 'type' field")
        return frame


class FrameConn:
    """A framed duplex connection: one reader, write-locked sends.

    The worker sends heartbeats from a background thread while the main
    thread computes; the lock keeps concurrent ``send`` calls from
    interleaving partial lines on the wire.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._reader = FrameReader(sock)
        self._wlock = threading.Lock()

    def send(self, frame: dict) -> None:
        with self._wlock:
            send_frame(self.sock, frame)

    def recv(self) -> dict | None:
        return self._reader.read_frame()

    def kill(self) -> None:
        """Abort the connection from any thread (unblocks ``recv``)."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.close()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
