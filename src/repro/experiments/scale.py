"""Benchmark scale control.

The paper simulates seconds of 144-host 10 Gbps traffic; a pure-Python
simulator processes ~10^5 events/second, so benchmarks default to a
reduced scale that preserves shape: the same 3-tier topology and link
speeds with fewer hosts and shorter windows.  Set the environment
variable ``REPRO_BENCH_SCALE=paper`` to run the full Figure 11 topology
(slow: hours), or ``REPRO_BENCH_SCALE=tiny`` for CI-speed smoke runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    name: str
    racks: int
    hosts_per_rack: int
    aggrs: int
    #: generation window per run, in ms, for small-message workloads
    duration_ms: float
    #: longer windows for the heavy-tailed workloads (W4/W5)
    heavy_duration_ms: float
    drain_ms: float
    heavy_drain_ms: float
    max_messages: int | None
    heavy_max_messages: int | None
    #: W5 messages average ~1900 packets, so they get their own cap
    w5_max_messages: int | None


SCALES = {
    "tiny": Scale("tiny", 2, 4, 2, 1.5, 8.0, 6.0, 30.0, 2_000, 150, 80),
    "quick": Scale("quick", 3, 8, 2, 4.0, 25.0, 8.0, 40.0,
                   120_000, 1_800, 500),
    "paper": Scale("paper", 9, 16, 4, 20.0, 100.0, 20.0, 100.0,
                   None, None, None),
}

HEAVY_WORKLOADS = ("W4", "W5")


def current_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name not in SCALES:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {name!r}: must be one of "
            f"{', '.join(sorted(SCALES))} (see docs/CAMPAIGNS.md)")
    return SCALES[name]


def scaled_kwargs(workload: str, scale: Scale | None = None) -> dict:
    """ExperimentConfig keyword arguments for a workload at a scale."""
    scale = scale or current_scale()
    workload = workload.upper()
    heavy = workload in HEAVY_WORKLOADS
    if workload == "W5":
        cap = scale.w5_max_messages
    elif heavy:
        cap = scale.heavy_max_messages
    else:
        cap = scale.max_messages
    # Tiny-scale message caps are hit within the warmup window, which
    # would filter every record; skip warmup there.
    warmup_ms = 0.0 if scale.name == "tiny" else 0.5
    return {
        "racks": scale.racks,
        "hosts_per_rack": scale.hosts_per_rack,
        "aggrs": scale.aggrs,
        "duration_ms": scale.heavy_duration_ms if heavy else scale.duration_ms,
        "drain_ms": scale.heavy_drain_ms if heavy else scale.drain_ms,
        "warmup_ms": warmup_ms,
        "max_messages": cap,
    }


def campaign_kwargs(
    workload: str,
    *,
    uncapped: bool = False,
    duration_cap_ms: float | None = None,
    scale: Scale | None = None,
) -> dict:
    """``scaled_kwargs`` plus the adjustments rate-style campaigns keep
    re-deriving: drop the message cap (stability and bandwidth-fraction
    measurements need continuous open-loop generation) and clamp the
    generation window to bound a grid cell's wall time."""
    kwargs = scaled_kwargs(workload, scale)
    if uncapped:
        kwargs["max_messages"] = None
    if duration_cap_ms is not None:
        kwargs["duration_ms"] = min(kwargs["duration_ms"], duration_cap_ms)
    return kwargs


def effective_load(protocol: str, requested: float) -> float:
    """The paper runs each protocol at the highest load it sustains:
    "Neither NDP or pHost can support 80% network load for these
    workloads, so we used the highest load that each protocol could
    support (70% for NDP, 58-73% for pHost)"."""
    if requested <= 0.7:
        return requested
    if protocol == "phost":
        return 0.68
    if protocol == "ndp":
        return 0.70
    return requested
