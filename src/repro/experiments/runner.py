"""The experiment runner: a config in, a metrics bundle out.

Every figure/table benchmark builds one or more ``ExperimentConfig``s,
calls ``run_experiment``, and formats the resulting series.  The
defaults are a scaled-down version of the paper's Figure 11 topology
(Python is not line-rate; DESIGN.md documents the scaling), with the
same link speeds, delays, and protocol parameters.
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass, field, replace

from repro.apps.echo import attach_echo_workload
from repro.apps.openloop import attach_openloop_workload
from repro.core.engine import Simulator
from repro.core.packet import PacketType
from repro.core.topology import (
    NetworkConfig,
    TopologySpec,
    build_fabric,
    build_network,
)
from repro.core.units import MS
from repro.homa.config import HomaConfig
from repro.metrics.bandwidth import ThroughputMeter, WastedBandwidthTracker
from repro.metrics.control import ControlTraffic, FabricHealth
from repro.metrics.delays import DelayDecomposition
from repro.metrics.priousage import PriorityUsage
from repro.metrics.queues import QueueLevelStats, QueueStats
from repro.metrics.slowdown import SlowdownTracker
from repro.transport.registry import (
    LOSS_VALIDATED,
    OVERHEAD_MODEL,
    network_overrides,
    supports_fabric_faults,
    transport_factory,
)
from repro.workloads.catalog import get_workload
from repro.workloads.loadcalc import arrival_rate_per_host


@dataclass
class ExperimentConfig:
    """One simulation run."""

    protocol: str = "homa"
    workload: str = "W3"
    load: float = 0.8
    # Reduced-scale defaults (same shape as Figure 11; see DESIGN.md).
    racks: int = 3
    hosts_per_rack: int = 8
    aggrs: int = 2
    duration_ms: float = 20.0     # message generation window
    warmup_ms: float = 2.0        # discarded from statistics
    drain_ms: float = 10.0        # extra time for in-flight completions
    seed: int = 1
    mode: str = "oneway"          # "oneway" (5.2) or "rpc_echo" (5.1)
    max_messages: int | None = None
    #: None lets the factory pick protocol defaults (importantly,
    #: HomaConfig.basic() for protocol="basic")
    homa: HomaConfig | None = None
    collect: tuple[str, ...] = ()  # of: queues, priousage, wasted,
    #                                    throughput, delays
    net_overrides: dict = field(default_factory=dict)
    #: None uses the canonical 2-level fabric above (racks/hosts_per_rack/
    #: aggrs); a TopologySpec supersedes those fields and may add a third
    #: switch level, per-layer loss, and a fault schedule (docs/FABRICS.md)
    fabric: TopologySpec | None = None

    def paper_scale(self) -> "ExperimentConfig":
        """The full Figure 11 topology (slow in Python; used selectively)."""
        return replace(self, racks=9, hosts_per_rack=16, aggrs=4)

    def to_payload(self) -> dict:
        """JSON-safe form (tuples become lists; see from_payload)."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentConfig":
        data = dict(payload)
        homa = data.pop("homa", None)
        if homa is not None:
            homa = dict(homa)
            if homa.get("cutoff_override") is not None:
                homa["cutoff_override"] = tuple(homa["cutoff_override"])
            homa = HomaConfig(**homa)
        fabric = data.pop("fabric", None)
        if fabric is not None and not isinstance(fabric, TopologySpec):
            fabric = TopologySpec.from_payload(fabric)
        data["collect"] = tuple(data.get("collect") or ())
        data["net_overrides"] = dict(data.get("net_overrides") or {})
        return cls(homa=homa, fabric=fabric, **data)


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    cfg: ExperimentConfig
    tracker: SlowdownTracker
    submitted: int
    completed: int
    pending: int
    sim_time_ms: float
    events: int
    wall_seconds: float
    queue_rows: list[QueueLevelStats] = field(default_factory=list)
    prio_fractions: list[float] = field(default_factory=list)
    wasted_fraction: float = 0.0
    total_utilization: float = 0.0
    app_utilization: float = 0.0
    delay_breakdown: tuple[float, float] = (0.0, 0.0)
    aborted: int = 0
    #: control-event totals (GRANT/RESEND/BUSY packets, pacer ticks),
    #: always collected — the grant pacer's reduction is read from here
    control: ControlTraffic = field(default_factory=ControlTraffic)
    #: outstanding bytes (submitted - received) sampled mid-generation
    #: and at generation end; their ratio detects open-loop instability
    #: even when a long drain lets everything eventually finish
    backlog_mid_bytes: int = 0
    backlog_end_bytes: int = 0
    #: fabric drop/reroute accounting; all-zero on clean fabrics
    fabric: FabricHealth = field(default_factory=FabricHealth)

    @property
    def finish_rate(self) -> float:
        """Fraction of submitted messages that completed (stability)."""
        return self.completed / self.submitted if self.submitted else 1.0

    def backlog_growth(self) -> float:
        """backlog(end) / backlog(mid); ~1 when stable, ~2 when the
        offered load exceeds capacity (open-loop linear growth)."""
        if self.backlog_mid_bytes <= 0:
            return 1.0
        return self.backlog_end_bytes / self.backlog_mid_bytes

    def bucket_edges(self) -> list[int]:
        return get_workload(self.cfg.workload).bucket_edges()

    def slowdown_series(self, percentile: float) -> list[float]:
        return self.tracker.series(self.bucket_edges(), percentile)

    def to_payload(self) -> dict:
        """Compact JSON-safe form: everything figures read from a run,
        without live simulator objects, so results can cross process
        boundaries and persist in the on-disk campaign cache.  Floats
        round-trip exactly (json uses repr), so slowdown digests of a
        rehydrated result are byte-identical to the original."""
        return {
            "cfg": self.cfg.to_payload(),
            "tracker": self.tracker.to_payload(),
            "submitted": self.submitted,
            "completed": self.completed,
            "pending": self.pending,
            "sim_time_ms": self.sim_time_ms,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "queue_rows": [[row.label, row.mean_kb, row.max_kb]
                           for row in self.queue_rows],
            "prio_fractions": list(self.prio_fractions),
            "wasted_fraction": self.wasted_fraction,
            "total_utilization": self.total_utilization,
            "app_utilization": self.app_utilization,
            "delay_breakdown": list(self.delay_breakdown),
            "aborted": self.aborted,
            "control": self.control.to_payload(),
            "backlog_mid_bytes": self.backlog_mid_bytes,
            "backlog_end_bytes": self.backlog_end_bytes,
            "fabric": self.fabric.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentResult":
        return cls(
            cfg=ExperimentConfig.from_payload(payload["cfg"]),
            tracker=SlowdownTracker.from_payload(payload["tracker"]),
            submitted=payload["submitted"],
            completed=payload["completed"],
            pending=payload["pending"],
            sim_time_ms=payload["sim_time_ms"],
            events=payload["events"],
            wall_seconds=payload["wall_seconds"],
            queue_rows=[QueueLevelStats(label=label, mean_kb=mean, max_kb=mx)
                        for label, mean, mx in payload["queue_rows"]],
            prio_fractions=list(payload["prio_fractions"]),
            wasted_fraction=payload["wasted_fraction"],
            total_utilization=payload["total_utilization"],
            app_utilization=payload["app_utilization"],
            delay_breakdown=tuple(payload["delay_breakdown"]),
            aborted=payload["aborted"],
            control=ControlTraffic.from_payload(payload.get("control")),
            backlog_mid_bytes=payload["backlog_mid_bytes"],
            backlog_end_bytes=payload["backlog_end_bytes"],
            fabric=FabricHealth.from_payload(payload.get("fabric")),
        )


def run_experiment(cfg: ExperimentConfig) -> ExperimentResult:
    """Build, run, and measure one simulation."""
    wall_start = time.monotonic()
    sim = Simulator()
    overrides = dict(network_overrides(cfg.protocol))
    overrides.update(cfg.net_overrides)
    if cfg.fabric is not None:
        # Declarative fabric: the spec supplies shape, speeds, loss, and
        # faults; racks/hosts_per_rack/aggrs on this config are ignored.
        if ((cfg.fabric.loss.any() or cfg.fabric.faults)
                and not supports_fabric_faults(cfg.protocol)):
            validated = ", ".join(sorted(LOSS_VALIDATED))
            raise ValueError(
                f"protocol {cfg.protocol!r} is not validated under "
                f"injected loss/faults; validated protocols: {validated} "
                f"(registry.LOSS_VALIDATED, see docs/FABRICS.md).  Use a "
                f"clean TopologySpec or a validated protocol")
        net = build_fabric(sim, cfg.fabric, seed=cfg.seed,
                           overrides=overrides)
        net_cfg = net.cfg
    else:
        net_cfg = NetworkConfig(
            racks=cfg.racks, hosts_per_rack=cfg.hosts_per_rack,
            aggrs=cfg.aggrs if cfg.racks > 1 else 0,
            seed=cfg.seed, **overrides)
        net = build_network(sim, net_cfg)

    workload = get_workload(cfg.workload)
    factory = transport_factory(cfg.protocol, sim, net, workload.cdf,
                                cfg.homa)
    transports = net.attach_transports(lambda host: factory(host))

    warmup_ps = int(cfg.warmup_ms * MS)
    gen_end_ps = warmup_ps + int(cfg.duration_ms * MS)
    run_until_ps = gen_end_ps + int(cfg.drain_ms * MS)

    tracker = SlowdownTracker(net, warmup_ps=warmup_ps)

    # Optional collectors (attach before traffic starts).
    queue_stats = QueueStats(net) if "queues" in cfg.collect else None
    prio_usage = PriorityUsage(net) if "priousage" in cfg.collect else None
    throughput = ThroughputMeter(net) if "throughput" in cfg.collect else None
    wasted = (WastedBandwidthTracker(net, transports)
              if "wasted" in cfg.collect else None)
    delays = DelayDecomposition(net) if "delays" in cfg.collect else None

    if delays is not None:
        _install_delay_taps(transports, delays)
    # Rate-style collectors measure over the generation window only;
    # the drain period would dilute their denominators.
    for collector in (throughput, prio_usage, wasted):
        if collector is not None:
            sim.schedule_at(gen_end_ps, collector.snapshot)

    rate = arrival_rate_per_host(
        OVERHEAD_MODEL[cfg.protocol], workload.cdf, cfg.load,
        link_gbps=net_cfg.host_gbps, unsched_limit=net.rtt_bytes())

    if cfg.mode == "oneway":
        def make_hook(tracker=tracker, delays=delays):
            def hook(msg, now):
                tracker.record_oneway(msg.src, msg.dst, msg.length,
                                      msg.created_ps, now)
                if delays is not None:
                    delays.on_complete(msg.key)
            return hook

        for transport in transports:
            transport.on_message_complete = make_hook()
        apps = attach_openloop_workload(
            net, transports, workload.cdf, rate,
            stop_ps=gen_end_ps, seed=cfg.seed,
            max_messages_total=cfg.max_messages, delay_tracker=delays)
    elif cfg.mode == "rpc_echo":
        def on_rpc_complete(src, dst, size, t0, t1):
            tracker.record_rpc(src, dst, size, size, t0, t1)

        apps = attach_echo_workload(
            net, transports, workload.cdf, rate,
            stop_ps=gen_end_ps, seed=cfg.seed,
            on_complete=on_rpc_complete, max_rpcs_total=cfg.max_messages)
    else:
        raise ValueError(f"unknown mode {cfg.mode!r}")

    backlog_samples = [0, 0]
    if cfg.mode == "oneway":
        def sample_backlog(slot):
            sent = sum(app.submitted_bytes for app in apps)
            received = sum(t.bytes_received for t in transports)
            backlog_samples[slot] = max(0, sent - received)

        # Baseline at 2/3 of the window: by then the in-flight pipe has
        # filled even for the heavy-tailed workloads, so growth between
        # the samples measures queue buildup, not ramp-up.
        mid_ps = warmup_ps + 2 * (gen_end_ps - warmup_ps) // 3
        sim.schedule_at(mid_ps, sample_backlog, 0)
        sim.schedule_at(gen_end_ps, sample_backlog, 1)

    # The event loop allocates heavily but almost never creates
    # reference cycles (events are flat lists, packets are pooled), so
    # generational GC only burns time walking the live object graph.
    # Suspend it for the run and sweep the stragglers once at the end.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.collect()
        gc.disable()
    try:
        sim.run(until_ps=run_until_ps)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect()

    submitted = sum(app.submitted for app in apps)
    completed = sum(t.messages_received for t in transports)
    if cfg.mode == "rpc_echo":
        completed = sum(app.completed for app in apps)
    aborted = sum(getattr(t, "rpcs_aborted", 0) for t in transports)

    result = ExperimentResult(
        cfg=cfg,
        tracker=tracker,
        submitted=submitted,
        completed=completed,
        pending=max(0, submitted - completed),
        sim_time_ms=sim.now / MS,
        events=sim.events_processed,
        wall_seconds=time.monotonic() - wall_start,
        aborted=aborted,
        control=ControlTraffic.collect(transports),
        backlog_mid_bytes=backlog_samples[0],
        backlog_end_bytes=backlog_samples[1],
        fabric=FabricHealth.collect(net),
    )
    if queue_stats is not None:
        result.queue_rows = queue_stats.report()
    if prio_usage is not None:
        result.prio_fractions = prio_usage.fractions()
    if throughput is not None:
        result.total_utilization = throughput.total_utilization()
        result.app_utilization = throughput.app_utilization()
    if wasted is not None:
        result.wasted_fraction = wasted.wasted_fraction()
    if delays is not None:
        result.delay_breakdown = delays.tail_breakdown()
    return result


def _install_delay_taps(transports, delays: DelayDecomposition) -> None:
    """Wrap each transport's on_packet to feed the delay collector."""
    for transport in transports:
        original = transport.on_packet

        def tapped(pkt, original=original):
            if pkt.kind == PacketType.DATA:
                delays.on_data_packet(pkt)
            original(pkt)

        transport.on_packet = tapped
