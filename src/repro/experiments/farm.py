"""Distributed campaign farm: the pooled cell queue served over TCP.

``campaign.run_pooled`` is the single-host half of a cluster scheduler:
a global largest-cell-first queue, a content-hash result cache, exact
payload round-trips, and ``CampaignCellError`` attribution.  This module
is the fleet half, in the style of FireSim's externally-provisioned run
farms: a coordinator serves that same queue over a line-delimited
JSON/TCP protocol (:mod:`repro.experiments.wire`), and any number of
worker processes — ``python -m repro farm-worker <host:port>`` — pull
cells, execute them through the existing ``_run_cell`` task path, and
stream payloads back into the shared on-disk cache.

Identity contract: serial, pooled, and farmed runs of one spec produce
**byte-identical cache entries and slowdown digests**.  This falls out
of transporting only exact representations — ``ExperimentConfig`` rides
its ``to_payload`` round-trip, custom specs ride only if they are
JSON-exact (``json.loads(json.dumps(spec)) == spec``), and anything
else never crosses the wire: the coordinator executes it locally.

Robustness model (docs/CAMPAIGNS.md, farm section):

* **Liveness** — workers heartbeat while computing; a silent or
  disconnected worker has its in-flight cells requeued at the front of
  the queue.  Each requeue burns one unit of the cell's bounded retry
  budget; exhaustion raises :class:`~repro.experiments.campaign.
  CampaignCellError` naming the cell, exactly like a local failure.
* **Idempotence** — results are keyed by cell id; a duplicate delivery
  (a presumed-dead worker that was merely slow) is ignored, so a cell
  lands in the cache and journal exactly once.
* **Resumability** — every completed cell is appended to a per-campaign
  journal (``benchmarks/results/journal/<campaign>.jsonl``) tagged with
  a sweep id.  A killed coordinator restarted on the same spec loads
  the journal and completes only the missing cells, even under
  ``--fresh``.  A completed sweep deletes its journal.
* **Fallback** — if no worker connects within the grace window (or all
  workers die and none return), the coordinator drains the remaining
  cells itself through the local pool, so ``--farm`` never strands a
  campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sys
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable

from repro.experiments.campaign import (
    CampaignCellError,
    CampaignResults,
    CampaignSpec,
    Cell,
    ResultCache,
    _cell_cost,
    _init_worker,
    _resolve,
    _run_cell,
    cell_hash,
    resolve_jobs,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.wire import (
    PROTOCOL_VERSION,
    FrameConn,
    ProtocolError,
)

#: default journal location, next to the result cache; override with
#: ``REPRO_JOURNAL_DIR`` or the ``journal_dir`` argument
DEFAULT_JOURNAL_DIR = (Path(__file__).resolve().parents[3]
                       / "benchmarks" / "results" / "journal")

#: how many worker deaths one cell survives before the sweep fails
DEFAULT_RETRY_BUDGET = 2

#: worker-side heartbeat period while a cell is computing
DEFAULT_HEARTBEAT_S = 2.0

#: coordinator-side silence threshold before a worker is declared dead
DEFAULT_LIVENESS_TIMEOUT_S = 30.0

_JOURNAL_VERSION = 1


class FarmInterrupted(RuntimeError):
    """The coordinator stopped mid-sweep (crash hook); journal kept."""


# -- spec transport ------------------------------------------------------

def encode_spec(spec: Any) -> dict | None:
    """Wire form of a cell spec, or ``None`` when it cannot cross exactly.

    Only two encodings exist, both byte-exact: an ``ExperimentConfig``
    rides its payload round-trip (``from_payload(to_payload()) == cfg``,
    pinned by tests/test_campaign.py), and a JSON-native value rides
    verbatim — but only if a JSON round-trip reproduces it exactly
    (tuples and int dict keys do not survive JSON, so such specs stay
    local rather than silently mutating).
    """
    if isinstance(spec, ExperimentConfig):
        return {"kind": "experiment", "data": spec.to_payload()}
    try:
        if json.loads(json.dumps(spec)) == spec:
            return {"kind": "json", "data": spec}
    except (TypeError, ValueError):
        pass
    return None


def decode_spec(wire_spec: dict) -> Any:
    kind = wire_spec.get("kind")
    if kind == "experiment":
        return ExperimentConfig.from_payload(wire_spec["data"])
    if kind == "json":
        return wire_spec["data"]
    raise ProtocolError(f"unknown spec encoding {kind!r}")


# -- the resumable journal -----------------------------------------------

def sweep_id(specs: list[CampaignSpec], fresh: bool) -> str:
    """Identity of one sweep: the exact cell set plus the fresh flag.

    A journal is only trusted by a restart running the *same* sweep —
    any edit to the grid (or to simulator code, via ``cell_hash``'s
    fingerprint) changes the id and retires the old journal.
    """
    digest = hashlib.sha256()
    digest.update(b"fresh" if fresh else b"cached")
    for spec in specs:
        for cell in spec.cells:
            digest.update(spec.name.encode())
            digest.update(b"\0")
            digest.update(cell_hash(cell).encode())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


class Journal:
    """Append-only per-campaign record of cells one sweep completed.

    One line per completed cell: ``{"v": 1, "sweep": <id>, "cell":
    <cell hash>, "key": <repr of the cell key>}``.  Loading tolerates a
    torn final line (the coordinator died mid-append); any valid record
    from a *different* sweep retires the whole file, which is truncated
    on the next write.  ``complete()`` deletes the files — a journal on
    disk always means an unfinished sweep.
    """

    def __init__(self, sweep: str, campaigns: list[str],
                 journal_dir: str | os.PathLike | None = None) -> None:
        if journal_dir is None:
            journal_dir = (os.environ.get("REPRO_JOURNAL_DIR")
                           or DEFAULT_JOURNAL_DIR)
        self.dir = Path(journal_dir)
        self.sweep = sweep
        self._paths = {name: self.dir / f"{_sanitize(name)}.jsonl"
                       for name in campaigns}
        self._stale = set()
        self.done: dict[str, set[str]] = {name: set() for name in campaigns}
        for name, path in self._paths.items():
            try:
                lines = path.read_text().splitlines()
            except OSError:
                continue
            seen: set[str] | None = set()
            for line in lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a crash
                if (isinstance(record, dict)
                        and record.get("sweep") == sweep
                        and isinstance(record.get("cell"), str)):
                    seen.add(record["cell"])
                else:
                    seen = None  # another sweep's journal: retire it
                    break
            if seen is None:
                self._stale.add(name)
            else:
                self.done[name].update(seen)

    def record(self, campaign: str, cell_id: str, cell: Cell) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        mode = "w" if campaign in self._stale else "a"
        self._stale.discard(campaign)
        line = json.dumps(
            {"v": _JOURNAL_VERSION, "sweep": self.sweep, "cell": cell_id,
             "key": repr(cell.key)},
            separators=(",", ":")) + "\n"
        with open(self._paths[campaign], mode) as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        self.done[campaign].add(cell_id)

    def complete(self) -> None:
        for path in self._paths.values():
            try:
                path.unlink()
            except OSError:
                pass


# -- coordinator state ---------------------------------------------------

@dataclass
class _Item:
    """One pending cell with everything both execution paths need."""

    campaign: str
    cell: Cell
    path: Path          # cache entry destination
    chash: str          # cell_hash(cell): the journal record id
    cell_id: str        # f"{campaign}/{chash}": the wire id
    wire_spec: dict | None  # None: not transportable, runs locally
    cost: float


class _WorkerConn:
    """Coordinator-side view of one connected worker."""

    def __init__(self, conn: FrameConn | None, name: str) -> None:
        self.conn = conn
        self.name = name
        self.last_seen = time.monotonic()
        self.holding: set[str] = set()


class _FarmState:
    """Lock-protected sweep state shared by every connection thread."""

    def __init__(self, items: list[_Item], *, retry_budget: int,
                 cache: ResultCache, journal: Journal,
                 crash_after: int | None = None) -> None:
        self.lock = threading.Lock()
        self.items = {item.cell_id: item for item in items}
        ordered = sorted(items, key=lambda it: it.cost, reverse=True)
        self.wire_queue: deque[_Item] = deque(
            it for it in ordered if it.wire_spec is not None)
        self.local_queue: deque[_Item] = deque(
            it for it in ordered if it.wire_spec is None)
        self.in_flight: dict[str, _WorkerConn] = {}
        self.attempts: dict[str, int] = {}
        self.payloads: dict[str, Any] = {}
        self.computed: set[str] = set()
        self.requeues = 0
        self.duplicates = 0
        self.retry_budget = retry_budget
        self.cache = cache
        self.journal = journal
        self.crash_after = crash_after
        self.failure: CampaignCellError | None = None
        self.crashed = False
        self.fallback = False
        self.done = threading.Event()

    # -- dispatch --------------------------------------------------------

    def checkout(self, worker: _WorkerConn) -> tuple[str, Any]:
        """Next wire-eligible cell for ``worker``: ``("cell", item)``,
        ``("wait", None)``, ``("done", None)``, or ``("abort", reason)``."""
        with self.lock:
            if self.failure is not None:
                return ("abort", str(self.failure))
            if self.crashed:
                return ("abort", "coordinator interrupted (crash hook)")
            while self.wire_queue:
                item = self.wire_queue.popleft()
                if item.cell_id in self.payloads:
                    continue  # completed while requeued (slow twin won)
                self.in_flight[item.cell_id] = worker
                worker.holding.add(item.cell_id)
                return ("cell", item)
            if self.in_flight:
                return ("wait", None)
            return ("done", None)

    def pop_local(self) -> _Item | None:
        with self.lock:
            while self.local_queue:
                item = self.local_queue.popleft()
                if item.cell_id not in self.payloads:
                    return item
            return None

    def adopt_wire_locally(self) -> list[_Item]:
        """Local-pool fallback: take every queued wire cell."""
        with self.lock:
            taken = [it for it in self.wire_queue
                     if it.cell_id not in self.payloads]
            self.wire_queue.clear()
            return taken

    def wire_work_remains(self) -> bool:
        with self.lock:
            return bool(self.wire_queue) or bool(self.in_flight)

    # -- results ---------------------------------------------------------

    def deliver(self, cell_id: Any, payload: Any,
                worker: _WorkerConn | None) -> bool:
        """Record one result; False (and no effect) for duplicates."""
        with self.lock:
            item = self.items.get(cell_id)
            if item is None:
                raise ProtocolError(f"result for unknown cell {cell_id!r}")
            if worker is not None and self.in_flight.get(cell_id) is worker:
                del self.in_flight[cell_id]
                worker.holding.discard(cell_id)
            if item.cell_id in self.payloads:
                self.duplicates += 1
                return False  # idempotent: first delivery won
            self.payloads[item.cell_id] = payload
            self.computed.add(item.cell_id)
            self.cache.store(item.path, item.campaign, item.cell, payload)
            self.journal.record(item.campaign, item.chash, item.cell)
            if (self.crash_after is not None
                    and len(self.computed) >= self.crash_after):
                self.crashed = True
                self.done.set()
            if len(self.payloads) == len(self.items):
                self.done.set()
            return True

    def fail_cell(self, cell_id: Any, cause: BaseException) -> None:
        """A cell's task raised (deterministic failure: no retry)."""
        with self.lock:
            item = self.items.get(cell_id)
            if item is None:
                raise ProtocolError(f"error for unknown cell {cell_id!r}")
            if self.failure is None:
                self.failure = CampaignCellError(item.campaign, item.cell,
                                                 cause)
            self.done.set()

    def release_worker(self, worker: _WorkerConn) -> None:
        """Worker gone: requeue its in-flight cells, budget permitting."""
        with self.lock:
            for cell_id in sorted(worker.holding):
                if self.in_flight.get(cell_id) is not worker:
                    continue
                del self.in_flight[cell_id]
                item = self.items[cell_id]
                if cell_id in self.payloads:
                    continue
                count = self.attempts.get(cell_id, 0) + 1
                self.attempts[cell_id] = count
                if count > self.retry_budget:
                    if self.failure is None:
                        self.failure = CampaignCellError(
                            item.campaign, item.cell,
                            RuntimeError(
                                f"worker died while computing this cell "
                                f"{count} time(s); retry budget "
                                f"{self.retry_budget} exhausted"))
                    self.done.set()
                else:
                    self.wire_queue.appendleft(item)
                    self.requeues += 1
            worker.holding.clear()


# -- the coordinator -----------------------------------------------------

@dataclass
class _FarmStats:
    workers_ever: int = 0
    fallback: bool = False
    requeues: int = 0
    duplicates: int = 0
    resumed: dict[str, int] = field(default_factory=dict)


class FarmCoordinator:
    """Accepts workers and serves the queue; one thread per connection."""

    def __init__(self, state: _FarmState, sweep: str, *,
                 host: str, port: int, quiet: bool) -> None:
        self.state = state
        self.sweep = sweep
        self.quiet = quiet
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._lock = threading.Lock()
        self.workers: list[_WorkerConn] = []
        self.workers_ever = 0
        self.last_departure = time.monotonic()
        self._accept_thread: threading.Thread | None = None

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="farm-accept", daemon=True)
        self._accept_thread.start()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[farm] {message}", file=sys.stderr)

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._server.accept()
            except OSError:
                return  # server closed: coordinator shutting down
            threading.Thread(target=self._serve_conn, args=(sock, addr),
                             name="farm-conn", daemon=True).start()

    def _serve_conn(self, sock: socket.socket, addr) -> None:
        conn = FrameConn(sock)
        worker = _WorkerConn(conn, f"{addr[0]}:{addr[1]}")
        try:
            hello = conn.recv()
            if hello is None:
                return
            if hello.get("type") != "hello":
                raise ProtocolError(
                    f"expected hello, got {hello.get('type')!r}")
            if hello.get("protocol") != PROTOCOL_VERSION:
                conn.send({"type": "abort",
                           "reason": f"protocol {PROTOCOL_VERSION} required,"
                                     f" worker speaks "
                                     f"{hello.get('protocol')!r}"})
                return
            worker.name = str(hello.get("worker") or worker.name)
            with self._lock:
                self.workers.append(worker)
                self.workers_ever += 1
            self._log(f"worker {worker.name} joined")
            conn.send({"type": "welcome", "protocol": PROTOCOL_VERSION,
                       "sweep": self.sweep})
            self._serve_frames(conn, worker)
        except ProtocolError as exc:
            self._log(f"dropping worker {worker.name}: {exc}")
        except OSError:
            pass  # connection died; release below requeues its cells
        finally:
            with self._lock:
                if worker in self.workers:
                    self.workers.remove(worker)
                    self.last_departure = time.monotonic()
            self.state.release_worker(worker)
            conn.close()

    def _serve_frames(self, conn: FrameConn, worker: _WorkerConn) -> None:
        while True:
            frame = conn.recv()
            if frame is None:
                return  # clean disconnect
            worker.last_seen = time.monotonic()
            kind = frame["type"]
            if kind == "ping":
                continue
            if kind == "next":
                verb, value = self.state.checkout(worker)
                if verb == "cell":
                    conn.send({"type": "cell", "id": value.cell_id,
                               "campaign": value.campaign,
                               "task": value.cell.task,
                               "spec": value.wire_spec})
                elif verb == "wait":
                    conn.send({"type": "wait", "ms": 200})
                elif verb == "abort":
                    conn.send({"type": "abort", "reason": value})
                else:
                    conn.send({"type": "done"})
            elif kind == "result":
                self.state.deliver(frame.get("id"), frame.get("payload"),
                                   worker)
            elif kind == "error":
                detail = frame.get("error", "task failed")
                trace = frame.get("traceback")
                if trace:
                    detail = f"{detail}\n(worker traceback)\n{trace}"
                self.state.fail_cell(frame.get("id"), RuntimeError(detail))
            else:
                raise ProtocolError(f"unexpected frame type {kind!r}")

    def live_workers(self) -> list[_WorkerConn]:
        with self._lock:
            return list(self.workers)

    def kill_silent(self, timeout_s: float) -> None:
        now = time.monotonic()
        for worker in self.live_workers():
            if now - worker.last_seen > timeout_s:
                self._log(f"worker {worker.name} silent for "
                          f"{now - worker.last_seen:.1f}s: declaring dead")
                worker.conn.kill()

    def close(self) -> None:
        try:
            self._server.close()
        except OSError:
            pass
        for worker in self.live_workers():
            worker.conn.kill()


# -- execution -----------------------------------------------------------

def _execute_serial(state: _FarmState, items: list[_Item]) -> None:
    for item in items:
        with state.lock:
            stop = (state.failure is not None or state.crashed
                    or item.cell_id in state.payloads)
        if stop:
            if state.failure is not None or state.crashed:
                return
            continue
        try:
            payload = _run_cell(item.cell.task, item.cell.spec)
        except Exception as exc:
            state.fail_cell(item.cell_id, exc)
            return
        state.deliver(item.cell_id, payload, None)


def _execute_pool(state: _FarmState, items: list[_Item], jobs: int) -> None:
    with ProcessPoolExecutor(max_workers=min(jobs, len(items)),
                             initializer=_init_worker,
                             initargs=(list(sys.path),)) as pool:
        futures = {pool.submit(_run_cell, it.cell.task, it.cell.spec): it
                   for it in items}
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for future in finished:
                item = futures[future]
                exc = future.exception()
                if exc is not None:
                    state.fail_cell(item.cell_id, exc)
                    pool.shutdown(cancel_futures=True)
                    return
                state.deliver(item.cell_id, future.result(), None)
            with state.lock:
                interrupted = state.crashed or state.failure is not None
            if interrupted:
                pool.shutdown(cancel_futures=True)
                return


def run_farm(specs: list[CampaignSpec], *, host: str = "127.0.0.1",
             port: int = 0, jobs: int | None = None, fresh: bool = False,
             cache_dir: str | os.PathLike | None = None,
             journal_dir: str | os.PathLike | None = None,
             farm_wait_s: float = 10.0,
             retry_budget: int = DEFAULT_RETRY_BUDGET,
             liveness_timeout_s: float = DEFAULT_LIVENESS_TIMEOUT_S,
             quiet: bool = False, crash_after: int | None = None,
             on_listening: Callable[[int], None] | None = None,
             ) -> dict[str, CampaignResults]:
    """Execute campaigns over a worker farm; same contract as
    ``run_pooled`` (decoded results in cell order, identical cache
    entries and digests).

    ``on_listening(port)`` fires once the coordinator socket is bound —
    the hook tests and the smoke harness use to launch workers against
    an ephemeral port.  ``crash_after=N`` is the crash-injection hook:
    the coordinator raises :class:`FarmInterrupted` after journaling N
    cells, leaving the journal for a resume run.  ``farm_wait_s`` is the
    grace window before the local-pool fallback (no worker ever
    connected, or every worker died and none returned).
    """
    jobs = resolve_jobs(jobs)
    cache = ResultCache(cache_dir)
    start = time.monotonic()

    sweep = sweep_id(specs, fresh)
    journal = Journal(sweep, [s.name for s in specs], journal_dir)

    payloads: dict[str, dict[Hashable, Any]] = {s.name: {} for s in specs}
    items: list[_Item] = []
    stats = _FarmStats()
    for spec in specs:
        resumed = 0
        journal_done = journal.done.get(spec.name, set())
        for cell in spec.cells:
            path = cache.path_for(spec.name, cell)
            chash = cell_hash(cell)
            payload = None if fresh else cache.load(path)
            if payload is None and chash in journal_done:
                # The interrupted sweep already computed this cell; its
                # payload is in the cache even under --fresh.
                payload = cache.load(path)
                if payload is not None:
                    resumed += 1
            if payload is None:
                items.append(_Item(
                    campaign=spec.name, cell=cell, path=path, chash=chash,
                    cell_id=f"{spec.name}/{chash}",
                    wire_spec=encode_spec(cell.spec),
                    cost=_cell_cost(cell)))
            else:
                payloads[spec.name][cell.key] = payload
        stats.resumed[spec.name] = resumed

    state = _FarmState(items, retry_budget=retry_budget, cache=cache,
                       journal=journal, crash_after=crash_after)

    if items:
        coordinator = FarmCoordinator(state, sweep, host=host, port=port,
                                      quiet=quiet)
        coordinator.start()
        if not quiet:
            print(f"[farm] coordinator on {coordinator.host}:"
                  f"{coordinator.port}: {len(items)} cells, sweep {sweep}",
                  file=sys.stderr)
        if on_listening is not None:
            on_listening(coordinator.port)
        try:
            _serve(state, coordinator, jobs=jobs, farm_wait_s=farm_wait_s,
                   liveness_timeout_s=liveness_timeout_s)
        finally:
            stats.workers_ever = coordinator.workers_ever
            stats.requeues = state.requeues
            stats.duplicates = state.duplicates
            stats.fallback = state.fallback
            coordinator.close()
        if state.failure is not None:
            raise state.failure
        if state.crashed:
            raise FarmInterrupted(
                f"coordinator interrupted after {len(state.computed)} "
                f"cell(s); journal retained for resume (sweep {sweep})")
        for item in items:
            payloads[item.campaign][item.cell.key] = \
                state.payloads[item.cell_id]

    journal.complete()
    wall = time.monotonic() - start

    computed_by: dict[str, int] = {s.name: 0 for s in specs}
    for item in items:
        if item.cell_id in state.computed:
            computed_by[item.campaign] += 1
    out: dict[str, CampaignResults] = {}
    for spec in specs:
        results = CampaignResults(
            (cell.key,
             _resolve(cell.decode)(payloads[spec.name][cell.key]))
            for cell in spec.cells)
        results.name = spec.name
        results.jobs = jobs
        results.computed = computed_by[spec.name]
        results.cached = len(spec.cells) - computed_by[spec.name]
        results.wall_seconds = wall
        results.farm_workers = stats.workers_ever
        results.farm_requeues = stats.requeues
        results.farm_resumed = stats.resumed.get(spec.name, 0)
        results.farm_fallback = stats.fallback
        out[spec.name] = results
    if not quiet:
        total = sum(len(s.cells) for s in specs)
        mode = "fallback pool" if stats.fallback else "farm"
        print(f"[farm] {len(specs)} campaigns, {total} cells: "
              f"{len(state.computed)} computed ({mode}), "
              f"{total - len(state.computed)} cached/resumed, "
              f"{stats.workers_ever} worker(s), {stats.requeues} "
              f"requeue(s), {wall:.1f}s", file=sys.stderr)
    return out


def _serve(state: _FarmState, coordinator: FarmCoordinator, *, jobs: int,
           farm_wait_s: float, liveness_timeout_s: float) -> None:
    """The coordinator main loop: liveness, local cells, fallback."""
    started = time.monotonic()
    while not state.done.wait(0.05):
        coordinator.kill_silent(liveness_timeout_s)

        # Cells that cannot cross the wire run here, alongside workers.
        item = state.pop_local()
        if item is not None:
            _execute_serial(state, [item])
            continue

        # Fallback: nobody is coming (never connected, or all dead past
        # the grace window) — drain the remaining cells locally.
        if not coordinator.live_workers() and state.wire_work_remains():
            now = time.monotonic()
            if coordinator.workers_ever == 0:
                idle = now - started
            else:
                idle = now - coordinator.last_departure
            if idle >= farm_wait_s and not state.in_flight:
                adopted = state.adopt_wire_locally()
                if adopted:
                    coordinator._log(
                        f"no live workers after {idle:.1f}s: running "
                        f"{len(adopted)} cell(s) on the local pool "
                        f"(jobs={jobs})")
                    state.fallback = True
                    if jobs == 1 or len(adopted) == 1:
                        _execute_serial(state, adopted)
                    else:
                        _execute_pool(state, adopted, jobs)


# -- the worker ----------------------------------------------------------

def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT`` for loopback) -> address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", text
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError(
            f"farm address must be HOST:PORT, got {text!r}") from None


def worker_loop(host: str, port: int, *, name: str | None = None,
                heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                connect_timeout_s: float = 10.0,
                die_after: int | None = None,
                on_die: Callable[[], None] | None = None,
                quiet: bool = True) -> int:
    """One farm worker: pull cells until the coordinator says done.

    Returns the number of cells completed.  ``die_after=N`` is the
    chaos hook behind ``farm-worker --die-after``: upon *receiving* the
    Nth cell the worker dies abruptly — via ``on_die`` (the CLI SIGKILLs
    itself) or by hard-closing the socket — before any result ships,
    which is exactly the mid-cell worker death the coordinator's
    requeue path must absorb.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout_s)
    sock.settimeout(None)
    conn = FrameConn(sock)
    label = name or f"pid{os.getpid()}"
    completed = 0
    received = 0
    try:
        conn.send({"type": "hello", "protocol": PROTOCOL_VERSION,
                   "worker": label})
        welcome = conn.recv()
        if welcome is None:
            return 0
        if welcome.get("type") == "abort":
            raise ProtocolError(str(welcome.get("reason")))
        if (welcome.get("type") != "welcome"
                or welcome.get("protocol") != PROTOCOL_VERSION):
            raise ProtocolError(f"bad welcome: {welcome!r}")
        while True:
            conn.send({"type": "next"})
            frame = conn.recv()
            if frame is None:
                return completed  # coordinator gone: sweep over (or dead)
            kind = frame["type"]
            if kind in ("done", "abort"):
                if kind == "abort" and not quiet:
                    print(f"[farm-worker {label}] aborted: "
                          f"{frame.get('reason', '')}", file=sys.stderr)
                return completed
            if kind == "wait":
                time.sleep(min(int(frame.get("ms", 200)), 2000) / 1000.0)
                continue
            if kind != "cell":
                raise ProtocolError(
                    f"unexpected frame {kind!r} from coordinator")
            received += 1
            if die_after is not None and received >= die_after:
                if on_die is not None:
                    on_die()
                conn.kill()
                return completed
            _run_one(conn, frame, heartbeat_s)
            if frame.get("_completed", True):
                completed += 1
    finally:
        conn.close()


def _run_one(conn: FrameConn, frame: dict, heartbeat_s: float) -> None:
    """Execute one cell frame, heartbeating while it computes."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                conn.send({"type": "ping"})
            except OSError:
                return

    pinger = threading.Thread(target=beat, name="farm-heartbeat",
                              daemon=True)
    pinger.start()
    try:
        spec = decode_spec(frame["spec"])
        payload = _run_cell(frame["task"], spec)
    except Exception as exc:
        stop.set()
        pinger.join()
        conn.send({"type": "error", "id": frame["id"],
                   "error": f"{type(exc).__name__}: {exc}",
                   "traceback": traceback.format_exc()})
        frame["_completed"] = False
        return
    stop.set()
    pinger.join()
    conn.send({"type": "result", "id": frame["id"], "payload": payload})
    frame["_completed"] = True
