"""Plain-text rendering of experiment results.

Benchmarks print these tables; EXPERIMENTS.md records them next to the
paper's numbers.
"""

from __future__ import annotations

import math
from typing import Sequence


def fmt(value: float, width: int = 8, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return " " * (width - 3) + "---"
    return f"{value:>{width}.{digits}f}"


def series_table(
    title: str,
    edges: Sequence[int],
    columns: dict[str, Sequence[float]],
    *,
    note: str = "",
) -> str:
    """A slowdown-vs-size table: one row per decile bucket."""
    lines = [f"== {title} =="]
    if note:
        lines.append(f"   ({note})")
    header = f"{'size bucket (B)':>22} |" + "".join(
        f"{name:>10}" for name in columns)
    lines.append(header)
    lines.append("-" * len(header))
    n_rows = len(edges) - 1
    for i in range(n_rows):
        label = f"{edges[i] + 1:>9}-{edges[i + 1]:<11}"
        row = f"{label} |"
        for values in columns.values():
            value = values[i] if i < len(values) else float("nan")
            row += fmt(value, 10)
        lines.append(row)
    return "\n".join(lines)


def kv_table(title: str, rows: Sequence[tuple[str, str]]) -> str:
    lines = [f"== {title} =="]
    width = max(len(k) for k, _ in rows) if rows else 0
    for key, value in rows:
        lines.append(f"  {key:<{width}} : {value}")
    return "\n".join(lines)


def comparison_line(label: str, paper_value, measured_value,
                    unit: str = "") -> str:
    """One paper-vs-measured row for EXPERIMENTS.md-style output."""
    return (f"  {label:<38} paper: {paper_value!s:>10}{unit}   "
            f"measured: {measured_value!s:>10}{unit}")
