"""Experiment harness: one runner, plus scenario builders per figure."""

from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment"]
