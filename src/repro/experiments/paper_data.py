"""Reference values read off the paper's figures and tables.

These are approximate (read from plots), used by benchmarks to print
paper-vs-measured comparisons and by EXPERIMENTS.md.  They are *shape*
targets: who wins, by what rough factor, and where crossovers fall —
not absolute microseconds, since the substrate differs.
"""

# Figure 12(a): 99th-percentile slowdown at 80% load, short messages
# (smallest ~50% of messages).  "99th-percentile slowdown for the
# shortest 50% of messages is never worse than 2.2 at 80% network load."
FIG12_SHORT_MSG_P99_80 = {
    # workload: {protocol: approximate p99 slowdown for short messages}
    "W1": {"homa": 1.5, "pfabric": 1.5, "phost": 3.0, "pias": 4.0},
    "W2": {"homa": 2.0, "pfabric": 2.0, "phost": 4.0, "pias": 5.0},
    "W3": {"homa": 2.2, "pfabric": 2.0, "phost": 4.0, "pias": 2.5},
    "W4": {"homa": 2.0, "pfabric": 2.0, "phost": 4.0, "pias": 10.0},
    "W5": {"homa": 2.0, "pfabric": 2.0, "phost": 5.0, "pias": 8.0,
           "ndp": 15.0},
}

# Figure 15: maximum sustainable network load (% of bandwidth), and the
# application-data share at that load (bottom of each bar).
FIG15_MAX_LOAD = {
    "W1": {"homa": 92, "pfabric": 52, "phost": 58, "pias": 75},
    "W2": {"homa": 91, "pfabric": 71, "phost": 43, "pias": 83},
    "W3": {"homa": 90, "pfabric": 83, "phost": 69, "pias": 85},
    "W4": {"homa": 89, "pfabric": 87, "phost": 79, "pias": 85},
    "W5": {"homa": 87, "pfabric": 86, "phost": 81, "pias": 77, "ndp": 73},
}

# Table 1: queue lengths (KB) at 80% load.
TABLE1 = {
    # workload: {level: (mean_kb, max_kb)}
    "W1": {"TOR->Aggr": (0.7, 21.1), "Aggr->TOR": (0.8, 22.4),
           "TOR->host": (1.7, 58.7)},
    "W2": {"TOR->Aggr": (1.0, 30.0), "Aggr->TOR": (1.1, 34.1),
           "TOR->host": (5.5, 93.0)},
    "W3": {"TOR->Aggr": (1.6, 50.3), "Aggr->TOR": (1.8, 57.1),
           "TOR->host": (12.8, 117.9)},
    "W4": {"TOR->Aggr": (1.7, 82.7), "Aggr->TOR": (1.7, 92.2),
           "TOR->host": (17.3, 146.1)},
    "W5": {"TOR->Aggr": (1.7, 93.6), "Aggr->TOR": (1.6, 78.1),
           "TOR->host": (17.3, 126.4)},
}

# Figure 14: sources of tail delay for short messages at 80% load (us).
# Preemption lag dominates; queueing is a small fraction.
FIG14_DELAYS_US = {
    "W1": {"queueing": 0.35, "preemption": 0.85},
    "W2": {"queueing": 0.25, "preemption": 1.15},
    "W3": {"queueing": 0.35, "preemption": 1.75},
    "W4": {"queueing": 0.5, "preemption": 2.2},
    "W5": {"queueing": 0.3, "preemption": 2.3},
}

# Figure 16: maximum sustainable load for W4 as a function of the
# number of scheduled priorities (the overcommitment degree).
FIG16_W4_MAX_LOAD_BY_DEGREE = {1: 63, 2: 73, 3: 80, 4: 84, 5: 87, 7: 89}

# Figure 10: incast throughput (Gbps) vs concurrent RPCs.
FIG10 = {
    "control_flat_gbps": 9.0,      # with incast control: flat near line rate
    "no_control_cliff_rpcs": 300,  # without: degrades past ~300 RPCs
}

# Figure 8 (implementation, 99% slowdown at 80% load): qualitative.
FIG8 = {
    "homa_small_rpc_us": 14.0,     # 100-byte echo at 99th percentile
    "basic_vs_homa_tail": (5, 15),  # Basic is 5-15x worse than Homa
    "stream_vs_multi": 100,        # single stream ~100x worse than multi
}

# Figure 17: W1 with a single unscheduled priority is >2.5x worse.
FIG17_SINGLE_UNSCHED_PENALTY = 2.5

# Figure 18: W3 balanced cutoff near 1930 B is a good operating point.
FIG18_BALANCED_CUTOFF = 1930

# Figure 20: W4 messages just above a tiny unscheduled limit suffer
# ~2.5x worse latency than with the RTTbytes default.
FIG20_PENALTY = 2.5

# Figure 21: priority usage for W3.  At low load scheduled traffic
# rides the lowest level; at high load all scheduled levels are used.
FIG21_NOTE = ("P0-P3 scheduled / P4-P7 unscheduled; unscheduled levels "
              "carry equal bytes; scheduled usage spreads with load")

# The campaign index: every reproduced figure/table, the benchmark
# module that declares its CampaignSpec, and a one-line description.
# ``python -m repro campaign <id|all>`` resolves targets here; figure
# pairs that share one campaign (8/9, 12/13) map to the same module.
CAMPAIGNS = {
    "fig01": ("bench_fig01_workloads",
              "workload CDF reconstruction (no simulation)"),
    "fig04": ("bench_fig04_unsched_alloc",
              "unscheduled priority allocation (no simulation)"),
    "fig08": ("bench_fig08_fig09_implementation",
              "implementation proxy, 99th-percentile echo-RPC slowdown"),
    "fig09": ("bench_fig08_fig09_implementation",
              "implementation proxy, median (shares fig08's runs)"),
    "fig10": ("bench_fig10_incast",
              "incast throughput with/without incast control"),
    "fig12": ("bench_fig12_fig13_slowdown",
              "slowdown vs message size, 99th percentile"),
    "fig13": ("bench_fig12_fig13_slowdown",
              "slowdown vs message size, median (shares fig12's runs)"),
    "fig14": ("bench_fig14_delay_sources",
              "tail delay decomposition for short messages"),
    "fig15": ("bench_fig15_max_load",
              "maximum sustainable load per protocol (speculative sweep)"),
    "fig16": ("bench_fig16_wasted_bandwidth",
              "wasted receiver bandwidth vs overcommitment degree"),
    "fig17": ("bench_fig17_unsched_prios",
              "unscheduled priority level count, W1"),
    "fig18": ("bench_fig18_cutoff",
              "unscheduled cutoff placement, W3"),
    "fig19": ("bench_fig19_sched_prios",
              "scheduled priority level count, W4"),
    "fig20": ("bench_fig20_unsched_bytes",
              "unscheduled byte limit, W4"),
    "fig21": ("bench_fig21_priority_usage",
              "priority level usage vs load, W3"),
    "table1": ("bench_table1_queue_lengths",
               "switch egress queue lengths at 80% load"),
    "ablations": ("bench_ablations",
                  "link preemption / grant-oldest / online priorities"),
    "fabric": ("bench_fabric_stress",
               "fabric stress: loss + failure injection recovery grid"),
}
