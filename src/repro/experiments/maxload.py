"""Maximum sustainable load search (Figure 15 / Figure 16).

"We simulated each workload-protocol combination at higher and higher
network loads to identify the highest load the protocol can support
(the load generator runs open-loop, so if the offered load exceeds the
protocol's capacity, queues grow without bound)."

A run is *stable* when nearly everything submitted finishes within the
drain window.  We sweep an ascending load grid and report the last
stable point, plus the application-goodput share there.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.runner import ExperimentConfig, run_experiment

#: fraction of submitted messages that must complete for stability
STABLE_FINISH_RATE = 0.90
#: open-loop backlog may not grow more than this between 2/3 of the
#: window and its end (unbounded linear growth measures ~1.5 there)
STABLE_BACKLOG_GROWTH = 1.35


@dataclass
class MaxLoadResult:
    protocol: str
    workload: str
    max_load: float          # highest stable offered load (0..1)
    total_utilization: float  # goodput incl. headers/control at that load
    app_utilization: float    # application bytes only
    probes: list[tuple[float, float]]  # (load, backlog growth) per probe


def is_stable(cfg: ExperimentConfig) -> tuple[bool, object]:
    from repro.workloads.catalog import get_workload

    result = run_experiment(cfg)
    # Slack: pipe-content wobble — a few RTTs plus a couple of mean
    # messages per host do not count as backlog growth.
    n_hosts = cfg.racks * cfg.hosts_per_rack
    mean_msg = get_workload(cfg.workload).cdf.mean()
    slack = (6 * 9680 + 2 * mean_msg) * n_hosts
    grown = (result.backlog_end_bytes
             > STABLE_BACKLOG_GROWTH * result.backlog_mid_bytes + slack)
    finished = result.finish_rate >= STABLE_FINISH_RATE
    return (finished and not grown, result)


def find_max_load(
    base: ExperimentConfig,
    *,
    grid: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95),
) -> MaxLoadResult:
    """Ascending sweep; returns the last stable grid point."""
    best_load = 0.0
    best_result = None
    probes = []
    for load in grid:
        cfg = replace(base, load=load, collect=("throughput",))
        stable, result = is_stable(cfg)
        probes.append((load, result.backlog_growth()))
        if stable:
            best_load = load
            best_result = result
        else:
            break  # open-loop: loads above an unstable point stay unstable
    if best_result is None:
        cfg = replace(base, load=grid[0], collect=("throughput",))
        _, best_result = is_stable(cfg)
        best_load = 0.0
    return MaxLoadResult(
        protocol=base.protocol,
        workload=base.workload,
        max_load=best_load,
        total_utilization=best_result.total_utilization,
        app_utilization=best_result.app_utilization,
        probes=probes,
    )
