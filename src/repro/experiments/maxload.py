"""Maximum sustainable load search (Figure 15 / Figure 16).

"We simulated each workload-protocol combination at higher and higher
network loads to identify the highest load the protocol can support
(the load generator runs open-loop, so if the offered load exceeds the
protocol's capacity, queues grow without bound)."

A run is *stable* when nearly everything submitted finishes within the
drain window.  We sweep an ascending load grid and report the last
stable point, plus the application-goodput share there.

The sweep comes in two shapes sharing one collation:

* :func:`find_max_load` — serial, with the classic early break at the
  first unstable probe (open-loop: higher loads stay unstable);
* a **speculative shard** — :func:`probe_config` builds every grid
  point as an independent campaign cell, all probed in parallel, and
  :func:`collate_max_load` applies the same last-stable semantics to
  the collected results (probes past the first unstable point are
  discarded, so the output is identical to the serial sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

#: fraction of submitted messages that must complete for stability
STABLE_FINISH_RATE = 0.90
#: open-loop backlog may not grow more than this between 2/3 of the
#: window and its end (unbounded linear growth measures ~1.5 there)
STABLE_BACKLOG_GROWTH = 1.35


@dataclass
class MaxLoadResult:
    protocol: str
    workload: str
    max_load: float          # highest stable offered load (0..1)
    total_utilization: float  # goodput incl. headers/control at that load
    app_utilization: float    # application bytes only
    probes: list[tuple[float, float]]  # (load, backlog growth) per probe


def probe_config(base: ExperimentConfig, load: float) -> ExperimentConfig:
    """One grid point of the sweep (utilization must be collected)."""
    return replace(base, load=load, collect=("throughput",))


def probe_stable(result: ExperimentResult) -> bool:
    """The stability predicate over one completed probe."""
    from repro.workloads.catalog import get_workload

    cfg = result.cfg
    # Slack: pipe-content wobble — a few RTTs plus a couple of mean
    # messages per host do not count as backlog growth.
    n_hosts = cfg.racks * cfg.hosts_per_rack
    mean_msg = get_workload(cfg.workload).cdf.mean()
    slack = (6 * 9680 + 2 * mean_msg) * n_hosts
    grown = (result.backlog_end_bytes
             > STABLE_BACKLOG_GROWTH * result.backlog_mid_bytes + slack)
    finished = result.finish_rate >= STABLE_FINISH_RATE
    return finished and not grown


def collate_max_load(
    grid: Sequence[float],
    results: Sequence[ExperimentResult],
) -> MaxLoadResult:
    """Last-stable semantics over ascending probes.

    ``results[i]`` is the completed probe at ``grid[i]`` (``results``
    may be shorter when the producer stopped early).  Probes past the
    first unstable load are ignored, so a speculative parallel sweep
    collates to exactly what the serial early-break sweep reports.
    When no grid point is stable, the first probe's already-computed
    result supplies the utilization figures (no re-simulation).
    """
    if not results:
        raise ValueError("collate_max_load needs at least one probe result")
    best_load = 0.0
    best_result = None
    probes = []
    for load, result in zip(grid, results):
        probes.append((load, result.backlog_growth()))
        if probe_stable(result):
            best_load = load
            best_result = result
        else:
            break  # open-loop: loads above an unstable point stay unstable
    if best_result is None:
        best_result = results[0]
        best_load = 0.0
    base_cfg = results[0].cfg
    return MaxLoadResult(
        protocol=base_cfg.protocol,
        workload=base_cfg.workload,
        max_load=best_load,
        total_utilization=best_result.total_utilization,
        app_utilization=best_result.app_utilization,
        probes=probes,
    )


def find_max_load(
    base: ExperimentConfig,
    *,
    grid: tuple[float, ...] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95),
) -> MaxLoadResult:
    """Serial ascending sweep; returns the last stable grid point."""
    results: list[ExperimentResult] = []
    for load in grid:
        result = run_experiment(probe_config(base, load))
        results.append(result)
        if not probe_stable(result):
            break
    return collate_max_load(grid, results)
