"""repro — packet-level reproduction of Homa (SIGCOMM 2018).

Public API surface; see README.md for a tour and DESIGN.md for the
system inventory.
"""

from repro.core import (
    Network,
    NetworkConfig,
    Packet,
    PacketType,
    Simulator,
    build_network,
)
from repro.homa import HomaConfig, HomaTransport, allocate_priorities
from repro.workloads import WORKLOADS, Workload, get_workload

__version__ = "0.1.0"

__all__ = [
    "Simulator",
    "Network",
    "NetworkConfig",
    "build_network",
    "Packet",
    "PacketType",
    "HomaConfig",
    "HomaTransport",
    "allocate_priorities",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "__version__",
]
