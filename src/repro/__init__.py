"""repro — packet-level reproduction of Homa (SIGCOMM 2018).

Public API surface; see README.md for a tour and DESIGN.md for the
system inventory.

Exports resolve lazily (PEP 562): ``import repro`` must stay free of
third-party imports so ``python -m repro.analysis`` — the simlint gate
CI runs *before* ``pip install`` — works in containers without numpy.
Attribute access (``repro.Simulator``) imports the defining module on
first use and caches the result in the package namespace.
"""

from importlib import import_module

__version__ = "0.1.0"

#: public name -> defining module
_EXPORTS = {
    "Simulator": "repro.core.engine",
    "Network": "repro.core.topology",
    "NetworkConfig": "repro.core.topology",
    "build_network": "repro.core.topology",
    "Packet": "repro.core.packet",
    "PacketType": "repro.core.packet",
    "HomaConfig": "repro.homa.config",
    "HomaTransport": "repro.homa.transport",
    "allocate_priorities": "repro.homa.priorities",
    "WORKLOADS": "repro.workloads.catalog",
    "Workload": "repro.workloads.catalog",
    "get_workload": "repro.workloads.catalog",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(__all__)
