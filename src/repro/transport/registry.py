"""Protocol registry: name -> network overrides + transport factory.

Each protocol needs both a transport implementation and matching switch
behaviour (pFabric's priority-drop queues, PIAS's ECN marking, NDP's
trimming).  ``network_overrides`` returns the NetworkConfig adjustments;
``transport_factory`` builds per-host transports.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import Simulator
from repro.core.packet import FULL_WIRE
from repro.core.pool import PacketPool
from repro.core.topology import Network
from repro.transport.base import RecoveryConfig
from repro.baselines.ndp import NdpTransport
from repro.baselines.pfabric import PfabricTransport
from repro.baselines.phost import PHostTransport
from repro.baselines.pias import PiasTransport, pias_thresholds
from repro.baselines.stream import StreamTransport
from repro.homa.config import HomaConfig
from repro.homa.priorities import allocate_priorities
from repro.homa.transport import HomaTransport
from repro.workloads.distributions import EmpiricalCDF

#: every protocol name the experiment runner accepts
PROTOCOLS = ("homa", "basic", "pfabric", "phost", "pias", "ndp",
             "stream", "stream_mc")

#: protocols whose loss-recovery path is exercised end-to-end by the
#: recovery battery (tests/test_recovery.py, tests/test_faults.py):
#: dropped DATA/control packets are recovered through per-protocol
#: timeouts (Homa RESENDs, pHost gap tokens, NDP re-NACKs, pFabric/
#: PIAS/stream retransmission timers) or surfaced as give-ups through
#: the shared RecoveryConfig contract in transport/base.py.  The
#: registry arms recovery only when the fabric can drop packets
#: (``net.may_drop()``), so clean-fabric digests stay byte-identical.
LOSS_VALIDATED = PROTOCOLS


def supports_fabric_faults(protocol: str) -> bool:
    """True if ``protocol`` may run on a lossy/faulty TopologySpec."""
    return protocol in LOSS_VALIDATED


#: name used for control-packet overhead accounting (loadcalc)
OVERHEAD_MODEL = {
    "homa": "homa",
    "basic": "basic",
    "pfabric": "pfabric",
    "phost": "phost",
    "pias": "pias",
    "ndp": "ndp",
    "stream": "stream",
    "stream_mc": "stream",
}


def network_overrides(protocol: str) -> dict:
    """NetworkConfig field overrides required by a protocol."""
    if protocol == "pfabric":
        return {"queue_mode": "pfabric"}
    if protocol == "pias":
        # DCTCP-style marking threshold ~2 BDP at our tiny RTT.
        return {"ecn_threshold_bytes": 2 * 9680}
    if protocol == "ndp":
        # "NDP strictly limits queues to 8 packets."
        return {"trim_threshold_bytes": 8 * FULL_WIRE}
    if protocol in PROTOCOLS:
        return {}
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")


def transport_factory(
    protocol: str,
    sim: Simulator,
    net: Network,
    cdf: EmpiricalCDF,
    homa_cfg: HomaConfig | None = None,
) -> Callable:
    """Returns fn(host) -> transport for ``Network.attach_transports``."""
    rtt_bytes = net.rtt_bytes()
    rtt_ps = net.rtt_ps()
    host_gbps = net.cfg.host_gbps
    # Loss recovery is armed only when the fabric can actually drop
    # (injected loss filters or an armed fault schedule): on a clean
    # fabric ``recovery`` is None and no transport schedules a single
    # recovery event, keeping clean digests byte-identical.
    may_drop = net.may_drop()
    recovery = RecoveryConfig(base_ps=3 * rtt_ps) if may_drop else None

    if protocol in ("homa", "basic"):
        cfg = homa_cfg or (HomaConfig.basic() if protocol == "basic"
                           else HomaConfig())
        unsched = cfg.resolved_unsched_limit(cfg.rtt_bytes or rtt_bytes)
        alloc = allocate_priorities(
            cdf, unsched,
            n_prios=cfg.n_prios,
            n_unsched_override=cfg.n_unsched_override,
            n_sched_override=cfg.n_sched_override,
            cutoff_override=cfg.cutoff_override,
        )
        # One slot pool per run, shared by every host: packets recycle
        # at their destination regardless of which sender drew them.
        pool = PacketPool(cfg.pool_prealloc)
        return lambda host: HomaTransport(sim, cfg, alloc, rtt_bytes,
                                          link_gbps=host_gbps, pool=pool,
                                          peer_gc=may_drop)

    if protocol == "pfabric":
        return lambda host: PfabricTransport(sim, rtt_bytes=rtt_bytes,
                                             rtt_ps=rtt_ps,
                                             recovery=recovery)
    if protocol == "phost":
        return lambda host: PHostTransport(sim, rtt_bytes=rtt_bytes,
                                           host_gbps=host_gbps, rtt_ps=rtt_ps,
                                           recovery=recovery)
    if protocol == "pias":
        thresholds = pias_thresholds(cdf)
        return lambda host: PiasTransport(sim, thresholds=thresholds,
                                          rtt_ps=rtt_ps, recovery=recovery)
    if protocol == "ndp":
        return lambda host: NdpTransport(sim, rtt_bytes=rtt_bytes,
                                         host_gbps=host_gbps,
                                         recovery=recovery)
    if protocol == "stream":
        return lambda host: StreamTransport(sim, window_bytes=rtt_bytes,
                                            connections_per_pair=1,
                                            recovery=recovery)
    if protocol == "stream_mc":
        return lambda host: StreamTransport(sim, window_bytes=rtt_bytes,
                                            connections_per_pair=8,
                                            recovery=recovery)
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")
