"""Transport-layer building blocks shared by Homa and the baselines."""

from repro.transport.base import Transport
from repro.transport.messages import InboundMessage, Intervals, OutboundMessage

__all__ = ["Transport", "InboundMessage", "Intervals", "OutboundMessage"]
