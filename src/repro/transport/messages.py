"""Message state machines shared by every transport.

``Intervals`` tracks which byte ranges of a message have arrived; data
packets may arrive in any order because of per-packet spraying (paper
section 3.3: "The DATA packets for a message can arrive in any order;
the receiver collates them using the offsets in each packet").
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.packet import MAX_PAYLOAD


class Intervals:
    """A set of disjoint, sorted half-open byte ranges [start, end)."""

    __slots__ = ("_ranges", "total")

    def __init__(self) -> None:
        self._ranges: list[list[int]] = []
        self.total = 0

    def add(self, start: int, end: int) -> int:
        """Insert a range; returns the number of newly covered bytes."""
        if end <= start:
            return 0
        ranges = self._ranges
        if not ranges or start > ranges[-1][1]:
            ranges.append([start, end])  # fast path: append at the end
            self.total += end - start
            return end - start
        if start == ranges[-1][1]:  # fast path: contiguous arrival
            added = end - start
            ranges[-1][1] = end
            self.total += added
            return added
        # General case: merge into place.
        new_ranges: list[list[int]] = []
        added = end - start
        ns, ne = start, end
        inserted = False
        for s, e in ranges:
            if e < ns:
                new_ranges.append([s, e])
            elif s > ne:
                if not inserted:
                    new_ranges.append([ns, ne])
                    inserted = True
                new_ranges.append([s, e])
            else:  # overlap: fold existing range into the new one
                added -= min(e, ne) - max(s, ns)
                ns, ne = min(s, ns), max(e, ne)
        if not inserted:
            new_ranges.append([ns, ne])
        new_ranges.sort()
        self._ranges = new_ranges
        self.total += added
        return added

    def covers(self, start: int, end: int) -> bool:
        """True if [start, end) is fully contained."""
        for s, e in self._ranges:
            if s <= start and end <= e:
                return True
        return False

    def first_gap(self, upto: int) -> Optional[tuple[int, int]]:
        """First missing range below ``upto`` (for RESEND requests)."""
        cursor = 0
        for s, e in self._ranges:
            if cursor < s:
                return (cursor, min(s, upto))
            cursor = max(cursor, e)
            if cursor >= upto:
                return None
        if cursor < upto:
            return (cursor, upto)
        return None

    def contiguous_prefix(self) -> int:
        """Bytes received in order from offset 0 (stream delivery point)."""
        ranges = self._ranges
        if ranges and ranges[0][0] == 0:
            return ranges[0][1]
        return 0

    def __len__(self) -> int:
        return len(self._ranges)


class OutboundMessage:
    """Sender-side view of one message.

    ``granted`` is the highest byte offset the sender may transmit;
    unscheduled bytes count as granted from creation.  ``sent`` advances
    as packets are handed to the NIC.  Retransmission requests queue in
    ``rtx`` and take precedence within the message.
    """

    __slots__ = (
        "rpc_id", "is_request", "src", "dst", "length", "sent", "granted",
        "grant_prio", "unsched_limit", "created_ps", "rtx", "app_meta",
        "incast", "acked", "cwnd", "in_flight", "done",
    )

    def __init__(
        self,
        rpc_id: int,
        is_request: bool,
        src: int,
        dst: int,
        length: int,
        *,
        unsched_limit: int,
        created_ps: int,
        app_meta: int | None = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"message length must be positive, got {length}")
        self.rpc_id = rpc_id
        self.is_request = is_request
        self.src = src
        self.dst = dst
        self.length = length
        self.sent = 0
        self.unsched_limit = unsched_limit
        self.granted = min(length, unsched_limit)
        self.grant_prio = 0
        self.created_ps = created_ps
        self.rtx: deque[list[int]] = deque()
        self.app_meta = app_meta
        self.incast = False
        # Fields used by window-based baselines (pFabric / PIAS / stream):
        self.acked = Intervals()
        self.cwnd = 0
        self.in_flight = 0
        self.done = False

    @property
    def key(self) -> int:
        return (self.rpc_id << 1) | (1 if self.is_request else 0)

    @property
    def remaining(self) -> int:
        """Bytes not yet sent (the sender's SRPT metric)."""
        return self.length - self.sent

    def grant_to(self, offset: int, prio: int) -> None:
        """Apply a GRANT: extend the transmittable region."""
        if offset > self.granted:
            self.granted = min(offset, self.length)
        self.grant_prio = prio

    def queue_rtx(self, start: int, end: int) -> None:
        """Queue a byte range for retransmission."""
        end = min(end, self.length)
        if end > start:
            self.rtx.append([start, end])

    def sendable(self) -> bool:
        return bool(self.rtx) or self.sent < min(self.granted, self.length)

    def fully_sent(self) -> bool:
        return self.sent >= self.length and not self.rtx

    def next_chunk(self) -> Optional[tuple[int, int, bool]]:
        """Next (offset, size, is_retransmission) to put on the wire."""
        if self.rtx:
            chunk = self.rtx[0]
            offset = chunk[0]
            size = min(MAX_PAYLOAD, chunk[1] - offset)
            chunk[0] += size
            if chunk[0] >= chunk[1]:
                self.rtx.popleft()
            return (offset, size, True)
        limit = min(self.granted, self.length)
        if self.sent < limit:
            offset = self.sent
            size = min(MAX_PAYLOAD, limit - offset)
            self.sent += size
            return (offset, size, False)
        return None


class InboundMessage:
    """Receiver-side view of one message."""

    __slots__ = (
        "rpc_id", "is_request", "src", "dst", "length", "received",
        "granted", "sched_prio", "first_arrival_ps", "last_activity_ps",
        "resends", "completed", "app_meta", "incast", "created_ps",
    )

    def __init__(
        self,
        rpc_id: int,
        is_request: bool,
        src: int,
        dst: int,
        length: int,
        *,
        now_ps: int,
    ) -> None:
        self.rpc_id = rpc_id
        self.is_request = is_request
        self.src = src
        self.dst = dst
        self.length = length
        self.received = Intervals()
        self.granted = 0          # highest offset known granted/unscheduled
        self.sched_prio = 0
        self.first_arrival_ps = now_ps
        self.last_activity_ps = now_ps
        self.resends = 0
        self.completed = False
        self.app_meta: int | None = None
        self.incast = False
        self.created_ps = now_ps  # overwritten with the sender's stamp

    @property
    def key(self) -> int:
        return (self.rpc_id << 1) | (1 if self.is_request else 0)

    @property
    def bytes_received(self) -> int:
        return self.received.total

    @property
    def request_length(self) -> int:
        """Alias so RPC server handlers can treat a completed inbound
        request interchangeably with Homa's ServerRpc."""
        return self.length

    @property
    def bytes_remaining(self) -> int:
        """Bytes still missing (the receiver's SRPT metric)."""
        return self.length - self.received.total

    def record(self, offset: int, payload: int, now_ps: int) -> int:
        """Register an arrived data range; returns newly received bytes."""
        self.last_activity_ps = now_ps
        added = self.received.add(offset, min(offset + payload, self.length))
        if added:
            self.resends = 0  # progress resets the retry budget
        return added

    def is_complete(self) -> bool:
        return self.received.total >= self.length
