"""Message state machines shared by every transport.

``Intervals`` tracks which byte ranges of a message have arrived; data
packets may arrive in any order because of per-packet spraying (paper
section 3.3: "The DATA packets for a message can arrive in any order;
the receiver collates them using the offsets in each packet").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Optional

from repro.core.packet import MAX_PAYLOAD


class Intervals:
    """A set of disjoint, sorted half-open byte ranges [start, end).

    Out-of-order arrivals splice into place with a bisect plus one slice
    assignment over just the overlapped ranges — O(log n + k) for k
    merged ranges — instead of rebuilding and re-sorting the whole list
    (per-packet spraying makes ``add`` a per-data-packet hot path for
    every protocol here).  ``_starts`` mirrors the range start offsets
    so lookups can bisect without touching the range lists.
    """

    __slots__ = ("_ranges", "_starts", "total")

    def __init__(self) -> None:
        self._ranges: list[list[int]] = []
        self._starts: list[int] = []
        self.total = 0

    def add(self, start: int, end: int) -> int:
        """Insert a range; returns the number of newly covered bytes."""
        if end <= start:
            return 0
        ranges = self._ranges
        if not ranges or start > ranges[-1][1]:
            ranges.append([start, end])  # fast path: append at the end
            self._starts.append(start)
            self.total += end - start
            return end - start
        if start == ranges[-1][1]:  # fast path: contiguous arrival
            added = end - start
            ranges[-1][1] = end
            self.total += added
            return added
        # General case: splice into place.  Every range with
        # range.end < start stays untouched on the left; find the first
        # candidate via bisect on the start offsets (a range can only
        # overlap/touch [start, end) if its own start is <= end).
        starts = self._starts
        lo = bisect_left(starts, start)
        if lo and ranges[lo - 1][1] >= start:
            lo -= 1  # predecessor reaches into the new range
        hi = bisect_right(starts, end, lo=lo)
        added = end - start
        ns, ne = start, end
        for s, e in ranges[lo:hi]:
            overlap = min(e, ne) - max(s, ns)
            if overlap > 0:
                added -= overlap
            if s < ns:
                ns = s
            if e > ne:
                ne = e
        ranges[lo:hi] = [[ns, ne]]
        starts[lo:hi] = [ns]
        self.total += added
        return added

    def covers(self, start: int, end: int) -> bool:
        """True if [start, end) is fully contained."""
        index = bisect_right(self._starts, start) - 1
        return index >= 0 and self._ranges[index][1] >= end

    def first_gap(self, upto: int) -> Optional[tuple[int, int]]:
        """First missing range below ``upto`` (for RESEND requests)."""
        cursor = 0
        for s, e in self._ranges:
            if cursor < s:
                return (cursor, min(s, upto))
            cursor = max(cursor, e)
            if cursor >= upto:
                return None
        if cursor < upto:
            return (cursor, upto)
        return None

    def gaps(self, upto: int) -> list[tuple[int, int]]:
        """Every missing range below ``upto`` (loss-recovery sweeps)."""
        out: list[tuple[int, int]] = []
        cursor = 0
        for s, e in self._ranges:
            if cursor < s:
                out.append((cursor, min(s, upto)))
            cursor = max(cursor, e)
            if cursor >= upto:
                return out
        if cursor < upto:
            out.append((cursor, upto))
        return out

    def contiguous_prefix(self) -> int:
        """Bytes received in order from offset 0 (stream delivery point)."""
        ranges = self._ranges
        if ranges and ranges[0][0] == 0:
            return ranges[0][1]
        return 0

    def __len__(self) -> int:
        return len(self._ranges)


class OutboundMessage:
    """Sender-side view of one message.

    ``granted`` is the highest byte offset the sender may transmit;
    unscheduled bytes count as granted from creation.  ``sent`` advances
    as packets are handed to the NIC.  Retransmission requests queue in
    ``rtx`` and take precedence within the message.
    """

    __slots__ = (
        "rpc_id", "is_request", "src", "dst", "length", "sent", "granted",
        "grant_prio", "unsched_limit", "created_ps", "rtx", "app_meta",
        "incast", "acked", "cwnd", "in_flight", "done", "sort_seq", "key",
    )

    def __init__(
        self,
        rpc_id: int,
        is_request: bool,
        src: int,
        dst: int,
        length: int,
        *,
        unsched_limit: int,
        created_ps: int,
        app_meta: int | None = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"message length must be positive, got {length}")
        self.rpc_id = rpc_id
        self.is_request = is_request
        self.src = src
        self.dst = dst
        self.length = length
        self.sent = 0
        self.unsched_limit = unsched_limit
        self.granted = min(length, unsched_limit)
        self.grant_prio = 0
        self.created_ps = created_ps
        self.rtx: deque[list[int]] = deque()
        self.app_meta = app_meta
        self.incast = False
        # Fields used by window-based baselines (pFabric / PIAS / stream):
        self.acked = Intervals()
        self.cwnd = 0
        self.in_flight = 0
        self.done = False
        # Deterministic tie-break for indexed SRPT schedulers: assigned
        # by the transport in registration order (= dict insertion order
        # of the pre-index linear scans it replaces).
        self.sort_seq = 0
        # Message identity, precomputed: this is the hash key for every
        # transport-side dict and index validation on the packet path.
        self.key = (rpc_id << 1) | (1 if is_request else 0)

    @property
    def remaining(self) -> int:
        """Bytes not yet sent (the sender's SRPT metric)."""
        return self.length - self.sent

    def grant_to(self, offset: int, prio: int) -> None:
        """Apply a GRANT: extend the transmittable region."""
        if offset > self.granted:
            self.granted = min(offset, self.length)
        self.grant_prio = prio

    def queue_rtx(self, start: int, end: int) -> None:
        """Queue a byte range for retransmission.

        Overlapping RESENDs race in practice (the receiver's timer and a
        client timer can request the same gap); coalescing against the
        already-queued ranges keeps every byte at most once in ``rtx``,
        so duplicate requests cannot inflate retransmitted bytes.  The
        queue is kept sorted and disjoint; retransmissions therefore go
        out lowest-offset first.
        """
        end = min(end, self.length)
        if end <= start:
            return
        merged: list[int] = [start, end]
        keep: list[list[int]] = []
        for chunk in self.rtx:
            if chunk[1] < merged[0] or chunk[0] > merged[1]:
                keep.append(chunk)
            else:  # overlapping or adjacent: fold into the new range
                if chunk[0] < merged[0]:
                    merged[0] = chunk[0]
                if chunk[1] > merged[1]:
                    merged[1] = chunk[1]
        keep.append(merged)
        keep.sort()
        self.rtx = deque(keep)

    def sendable(self) -> bool:
        # ``granted`` is capped at ``length`` on every write, so the
        # grant limit needs no re-clamping here (hot path).
        return self.sent < self.granted or bool(self.rtx)

    def fully_sent(self) -> bool:
        return self.sent >= self.length and not self.rtx

    def next_chunk(self) -> Optional[tuple[int, int, bool]]:
        """Next (offset, size, is_retransmission) to put on the wire."""
        if self.rtx:
            chunk = self.rtx[0]
            offset = chunk[0]
            size = min(MAX_PAYLOAD, chunk[1] - offset)
            chunk[0] += size
            if chunk[0] >= chunk[1]:
                self.rtx.popleft()
            return (offset, size, True)
        limit = self.granted
        if self.sent < limit:
            offset = self.sent
            size = min(MAX_PAYLOAD, limit - offset)
            self.sent += size
            return (offset, size, False)
        return None


class InboundMessage:
    """Receiver-side view of one message."""

    __slots__ = (
        "rpc_id", "is_request", "src", "dst", "length", "received",
        "granted", "sched_prio", "first_arrival_ps", "last_activity_ps",
        "resends", "completed", "app_meta", "incast", "created_ps",
        "sort_seq", "key",
    )

    def __init__(
        self,
        rpc_id: int,
        is_request: bool,
        src: int,
        dst: int,
        length: int,
        *,
        now_ps: int,
    ) -> None:
        self.rpc_id = rpc_id
        self.is_request = is_request
        self.src = src
        self.dst = dst
        self.length = length
        self.received = Intervals()
        self.granted = 0          # highest offset known granted/unscheduled
        self.sched_prio = 0
        self.first_arrival_ps = now_ps
        self.last_activity_ps = now_ps
        self.resends = 0
        self.completed = False
        self.app_meta: int | None = None
        self.incast = False
        self.created_ps = now_ps  # overwritten with the sender's stamp
        self.sort_seq = 0         # see OutboundMessage.sort_seq
        self.key = (rpc_id << 1) | (1 if is_request else 0)

    @property
    def bytes_received(self) -> int:
        return self.received.total

    @property
    def request_length(self) -> int:
        """Alias so RPC server handlers can treat a completed inbound
        request interchangeably with Homa's ServerRpc."""
        return self.length

    @property
    def bytes_remaining(self) -> int:
        """Bytes still missing (the receiver's SRPT metric)."""
        return self.length - self.received.total

    def record(self, offset: int, payload: int, now_ps: int) -> int:
        """Register an arrived data range; returns newly received bytes."""
        self.last_activity_ps = now_ps
        added = self.received.add(offset, min(offset + payload, self.length))
        if added:
            self.resends = 0  # progress resets the retry budget
        return added

    def is_complete(self) -> bool:
        return self.received.total >= self.length
