"""Transport base class and the shared loss-recovery contract.

A transport lives on a host.  The host NIC *pulls* packets from it
(``next_packet``) whenever the uplink is free, and fully arrived packets
are *pushed* to it (``on_packet``) after the host software delay.
Control packets always take precedence over data packets (paper
section 3.2: "Control packets such as GRANTs and RESENDs are always
given priority over DATA packets").

Loss recovery (docs/FABRICS.md): every protocol that runs on a lossy
or faulty fabric shares one audited state machine —
:class:`RecoveryConfig` (detection timeout, exponential backoff,
bounded give-up budget) drives a :class:`RecoveryTracker` per
direction.  The tracker owns timer arming; the protocol supplies only
the two hooks (*expire* = retransmit / re-request, *give up* = retire
the message and count it).  Give-ups and retransmissions flow through
the shared counters below into ``metrics/control.py`` ControlTraffic.
On clean fabrics the registry passes ``recovery=None`` and none of
this machinery schedules a single event, keeping the clean-fabric
slowdown digests byte-identical (default-off stays default-off).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.transport.messages import InboundMessage


class RecoveryConfig:
    """Loss-recovery policy: detection timeout, backoff, give-up budget.

    ``base_ps`` is the silence interval after which a message is
    presumed to have lost packets; retry *k* waits
    ``base_ps * factor**k`` capped at ``cap_ps``.  After ``max_tries``
    fruitless retries the message is retired (a give-up) — the budget
    is what bounds event exhaustion on a dead path.
    """

    __slots__ = ("base_ps", "factor", "cap_ps", "max_tries")

    def __init__(self, base_ps: int, *, factor: int = 2,
                 cap_ps: int | None = None, max_tries: int = 6) -> None:
        if base_ps <= 0:
            raise ValueError(f"recovery base_ps must be positive, got {base_ps}")
        self.base_ps = base_ps
        self.factor = factor
        self.cap_ps = cap_ps if cap_ps is not None else 4 * base_ps
        self.max_tries = max_tries

    def interval_ps(self, tries: int) -> int:
        """Backoff delay before retry number ``tries`` (0-based)."""
        delay = self.base_ps * self.factor ** tries
        return delay if delay < self.cap_ps else self.cap_ps

    @property
    def horizon_ps(self) -> int:
        """Upper bound on the silence a watched message can survive
        (every retry at the cap); done-memory retention must exceed it
        so a slow retrier never sees its peer forget a completion."""
        return (self.max_tries + 2) * self.cap_ps


class RecoveryTracker:
    """Per-key loss-detection timer with backoff and give-up budget.

    A protocol ``watch()``-es a message key while bytes are
    outstanding, ``touch()``-es it on progress (resetting the retry
    count), and ``forget()``-s it on completion.  One simulator timer
    per tracker sweeps the watched keys every ``base_ps // 2``; a key
    silent past its deadline fires ``on_expire(key, tries)`` and backs
    off, and once the budget is exhausted fires ``on_give_up(key)``
    (after forgetting the key, so the hook may re-watch deliberately).
    """

    __slots__ = ("sim", "policy", "on_expire", "on_give_up",
                 "_watch", "_timer")

    def __init__(self, sim: Simulator, policy: RecoveryConfig, *,
                 on_expire: Callable[[int, int], None],
                 on_give_up: Callable[[int], None]) -> None:
        self.sim = sim
        self.policy = policy
        self.on_expire = on_expire
        self.on_give_up = on_give_up
        self._watch: dict[int, list[int]] = {}  # key -> [tries, deadline_ps]
        self._timer = None

    def __len__(self) -> int:
        return len(self._watch)

    def watch(self, key: int) -> None:
        """Start (or keep) tracking ``key``; no-op if already watched."""
        if key not in self._watch:
            self._watch[key] = [0, self.sim.now + self.policy.interval_ps(0)]
            self._arm()

    def touch(self, key: int) -> None:
        """Progress signal: reset the retry budget and push the deadline."""
        state = self._watch.get(key)
        if state is not None:
            state[0] = 0
            state[1] = self.sim.now + self.policy.interval_ps(0)

    def forget(self, key: int) -> None:
        self._watch.pop(key, None)

    def _arm(self) -> None:
        if self._timer is not None and Simulator.is_pending(self._timer):
            return
        if self._watch:
            self._timer = self.sim.schedule(
                self.policy.base_ps // 2, self._sweep)

    def _sweep(self) -> None:
        self._timer = None
        now = self.sim.now
        policy = self.policy
        for key, state in list(self._watch.items()):
            if self._watch.get(key) is not state or now < state[1]:
                continue  # not yet due, or a prior hook retired/reset it
            state[0] += 1
            if state[0] > policy.max_tries:
                del self._watch[key]
                self.on_give_up(key)
            else:
                state[1] = now + policy.interval_ps(state[0])
                self.on_expire(key, state[0])
        self._arm()


class Transport:
    """Common state and hooks; protocols override the abstract parts."""

    protocol_name = "base"

    def __init__(self, sim: Simulator,
                 recovery: RecoveryConfig | None = None) -> None:
        self.sim = sim
        self.host = None
        #: host id; set by bind() (a plain attribute, not a property:
        #: transports read it per packet)
        self.hid = None
        self.ctrl: deque[Packet] = deque()
        #: called as fn(inbound_message, completion_time_ps)
        self.on_message_complete: Optional[Callable[[InboundMessage, int], None]] = None
        #: messages fully received (count; bodies reported via the hook)
        self.messages_received = 0
        self.bytes_received = 0
        #: loss-recovery policy; None on clean fabrics (the machinery
        #: below then never schedules an event — digest-neutral)
        self.recovery = recovery
        # Shared recovery accounting (metrics/control.py ControlTraffic).
        self.rtx_data_sent = 0      # retransmitted DATA packets
        self.rtx_recovered = 0      # retransmitted DATA that filled a gap
        self.inbound_gaveups = 0    # inbound messages retired by the receiver
        self.outbound_gaveups = 0   # outbound messages retired by the sender
        # Completed-message memory: keys of recently finished inbound
        # messages, kept for the peer's worst-case retry *spacing* so
        # late retransmissions are re-acknowledged instead of
        # re-registered (duplicate delivery must be idempotent).  Every
        # re-ACK refreshes the entry, so retention only needs to exceed
        # the gap between consecutive retries, not the total retry span.
        # Protocols whose retry timers run on their own scale (PIAS's
        # RTO floor) must raise ``_done_horizon_ps`` accordingly.
        # Insertion-ordered by expiry, purged from the front on insert.
        self._done_memory: dict[int, int] = {}
        self._done_horizon_ps = recovery.horizon_ps if recovery else 0

    # ------------------------------------------------------------------
    # host binding
    # ------------------------------------------------------------------

    def bind(self, host) -> None:
        self.host = host
        self.hid = host.hid
        # Shadow the method with the NIC's bound kick, and keep a direct
        # egress reference: transports touch these once or more per
        # packet, so skip the attribute chase.
        self.kick = host.egress.kick
        self._egress = host.egress

    def kick(self) -> None:
        """Tell the NIC that new work may be available."""
        self.host.egress.kick()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_ctrl(self, pkt: Packet) -> None:
        """Queue a control packet (highest priority, FIFO)."""
        egress = self._egress
        if egress.busy:
            # The NIC pulls the ctrl queue first when the wire frees.
            self.ctrl.append(pkt)
        elif self.ctrl:
            self.ctrl.append(pkt)
            egress.kick()
        else:
            # Idle NIC, empty ctrl queue: the pull would return exactly
            # this packet — hand it straight to the wire.
            egress._transmit(pkt)

    def next_packet(self) -> Optional[Packet]:
        """NIC pull: control first, then protocol-chosen data."""
        if self.ctrl:
            return self.ctrl.popleft()
        return self._next_data()

    def _next_data(self) -> Optional[Packet]:
        raise NotImplementedError

    def send_message(self, dst: int, length: int, **kwargs):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        raise NotImplementedError

    def _report_complete(self, message: InboundMessage) -> None:
        """Mark an inbound message complete and notify the application."""
        message.completed = True
        self.messages_received += 1
        self.bytes_received += message.length
        if self.on_message_complete is not None:
            self.on_message_complete(message, self.sim.now)

    # ------------------------------------------------------------------
    # shared loss-recovery helpers (active only with a RecoveryConfig)
    # ------------------------------------------------------------------

    def _tracker(self, on_expire, on_give_up) -> Optional[RecoveryTracker]:
        """A RecoveryTracker under this transport's policy, or None on a
        clean fabric (callers guard every use on the tracker)."""
        if self.recovery is None:
            return None
        return RecoveryTracker(self.sim, self.recovery,
                               on_expire=on_expire, on_give_up=on_give_up)

    def _note_done(self, key: int) -> None:
        """Remember (or refresh) a completed inbound message for the
        peer's retry spacing (no-op on clean fabrics).  Protocols call
        this again from their re-ACK branch so a slowly backing-off
        retrier never outlives the memory of its own completion."""
        if self.recovery is None:
            return
        memory = self._done_memory
        memory.pop(key, None)  # re-insert at the back (expiry order)
        memory[key] = self.sim.now + self._done_horizon_ps
        now = self.sim.now
        for old_key, expiry in list(memory.items()):
            if expiry >= now:
                break
            del memory[old_key]

    def _recently_done(self, key: int) -> bool:
        """True if ``key`` completed within the peer's retry spacing —
        a data packet for it is a late retransmission to re-acknowledge,
        not a new message."""
        expiry = self._done_memory.get(key)
        return expiry is not None and expiry >= self.sim.now
