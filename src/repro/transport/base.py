"""Transport base class.

A transport lives on a host.  The host NIC *pulls* packets from it
(``next_packet``) whenever the uplink is free, and fully arrived packets
are *pushed* to it (``on_packet``) after the host software delay.
Control packets always take precedence over data packets (paper
section 3.2: "Control packets such as GRANTs and RESENDs are always
given priority over DATA packets").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.transport.messages import InboundMessage


class Transport:
    """Common state and hooks; protocols override the abstract parts."""

    protocol_name = "base"

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.host = None
        #: host id; set by bind() (a plain attribute, not a property:
        #: transports read it per packet)
        self.hid = None
        self.ctrl: deque[Packet] = deque()
        #: called as fn(inbound_message, completion_time_ps)
        self.on_message_complete: Optional[Callable[[InboundMessage, int], None]] = None
        #: messages fully received (count; bodies reported via the hook)
        self.messages_received = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # host binding
    # ------------------------------------------------------------------

    def bind(self, host) -> None:
        self.host = host
        self.hid = host.hid
        # Shadow the method with the NIC's bound kick, and keep a direct
        # egress reference: transports touch these once or more per
        # packet, so skip the attribute chase.
        self.kick = host.egress.kick
        self._egress = host.egress

    def kick(self) -> None:
        """Tell the NIC that new work may be available."""
        self.host.egress.kick()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_ctrl(self, pkt: Packet) -> None:
        """Queue a control packet (highest priority, FIFO)."""
        egress = self._egress
        if egress.busy:
            # The NIC pulls the ctrl queue first when the wire frees.
            self.ctrl.append(pkt)
        elif self.ctrl:
            self.ctrl.append(pkt)
            egress.kick()
        else:
            # Idle NIC, empty ctrl queue: the pull would return exactly
            # this packet — hand it straight to the wire.
            egress._transmit(pkt)

    def next_packet(self) -> Optional[Packet]:
        """NIC pull: control first, then protocol-chosen data."""
        if self.ctrl:
            return self.ctrl.popleft()
        return self._next_data()

    def _next_data(self) -> Optional[Packet]:
        raise NotImplementedError

    def send_message(self, dst: int, length: int, **kwargs):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        raise NotImplementedError

    def _report_complete(self, message: InboundMessage) -> None:
        """Mark an inbound message complete and notify the application."""
        message.completed = True
        self.messages_received += 1
        self.bytes_received += message.length
        if self.on_message_complete is not None:
            self.on_message_complete(message, self.sim.now)
