"""Message-size distributions.

The paper publishes each workload as a set of quantiles (the x-axis
ticks of Figures 8/12/13 are the deciles of the message-count CDF).
``EmpiricalCDF`` reconstructs a continuous distribution from those
anchors with log-linear interpolation — the standard way published
datacenter traces are replayed — and provides the closed-form integrals
Homa's priority allocation needs:

* ``mass_below(s)``      = P(S <= s)
* ``partial_mean(s)``    = E[S ; S <= s]
* ``mean_truncated(c)``  = E[min(S, c)]   (expected unscheduled bytes)
* ``unsched_mass_below`` = E[min(S, cap) ; S <= s]

Within a bracket where the CDF rises by ``dq`` from size ``a`` to ``b``,
density is ``dq / (s ln(b/a))``, so E[S; bracket] = dq (b-a)/ln(b/a).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class EmpiricalCDF:
    """Piecewise log-linear CDF over positive integer message sizes.

    ``anchors`` is a sequence of (quantile, size-in-units) pairs; the
    first quantile must be 0.0 (minimum size) and the last 1.0 (maximum).
    ``unit_bytes > 1`` makes the distribution discrete in multiples of a
    unit — W5 is defined in whole 1460-byte full packets, as in the
    paper, so that NDP (which requires full-size packets) can run it.
    """

    def __init__(
        self,
        anchors: Sequence[tuple[float, float]],
        *,
        unit_bytes: int = 1,
        name: str = "",
    ) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors (min and max)")
        qs = [float(q) for q, _ in anchors]
        sizes = [float(s) for _, s in anchors]
        if qs[0] != 0.0 or qs[-1] != 1.0:
            raise ValueError("anchors must span quantiles 0.0 .. 1.0")
        for i in range(1, len(qs)):
            if qs[i] <= qs[i - 1]:
                raise ValueError(f"quantiles must increase: {qs}")
            if sizes[i] < sizes[i - 1]:
                raise ValueError(f"sizes must be non-decreasing: {sizes}")
        if sizes[0] < 1:
            raise ValueError("minimum size must be at least one unit")
        self.name = name
        self.unit_bytes = int(unit_bytes)
        self._qs = np.asarray(qs)
        self._sizes = np.asarray(sizes)
        self._logs = np.log(self._sizes)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer message sizes in bytes."""
        u = rng.random(n)
        logs = np.interp(u, self._qs, self._logs)
        units = np.maximum(1, np.rint(np.exp(logs))).astype(np.int64)
        return units * self.unit_bytes

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single message size in bytes."""
        u = rng.random()
        log_size = float(np.interp(u, self._qs, self._logs))
        return max(1, round(math.exp(log_size))) * self.unit_bytes

    # ------------------------------------------------------------------
    # analytic integrals (continuous approximation, byte arguments)
    # ------------------------------------------------------------------

    def _brackets(self):
        qs, sizes = self._qs, self._sizes
        for i in range(len(qs) - 1):
            yield qs[i + 1] - qs[i], sizes[i], sizes[i + 1]

    def mass_below(self, size_bytes: float) -> float:
        """P(S <= size_bytes)."""
        c = size_bytes / self.unit_bytes
        total = 0.0
        for dq, a, b in self._brackets():
            if c >= b:
                total += dq
            elif c > a:
                total += dq * math.log(c / a) / math.log(b / a)
        return total

    def partial_mean(self, size_bytes: float) -> float:
        """E[S ; S <= size_bytes] in bytes (an un-normalized integral)."""
        c = size_bytes / self.unit_bytes
        total = 0.0
        for dq, a, b in self._brackets():
            if b == a:
                if c >= a:
                    total += dq * a
            elif c >= b:
                total += dq * (b - a) / math.log(b / a)
            elif c > a:
                total += dq * (c - a) / math.log(b / a)
        return total * self.unit_bytes

    def mean(self) -> float:
        """E[S] in bytes."""
        return self.partial_mean(self.max_bytes())

    def mean_truncated(self, cap_bytes: float) -> float:
        """E[min(S, cap)] — the expected unscheduled bytes per message."""
        return self.partial_mean(cap_bytes) + cap_bytes * (
            1.0 - self.mass_below(cap_bytes)
        )

    def unsched_mass_below(self, size_bytes: float, cap_bytes: float) -> float:
        """E[min(S, cap) ; S <= size_bytes].

        This is the quantity Homa's receiver balances across unscheduled
        priority levels (section 3.4 / Figure 4): the unscheduled bytes
        contributed by messages no larger than ``size_bytes``.
        """
        if size_bytes <= cap_bytes:
            return self.partial_mean(size_bytes)
        return self.partial_mean(cap_bytes) + cap_bytes * (
            self.mass_below(size_bytes) - self.mass_below(cap_bytes)
        )

    def byte_fraction_below(self, size_bytes: float) -> float:
        """Fraction of all bytes carried by messages <= size_bytes
        (the lower graph of Figure 1)."""
        return self.partial_mean(size_bytes) / self.mean()

    # ------------------------------------------------------------------
    # quantiles
    # ------------------------------------------------------------------

    def quantile(self, q: float) -> int:
        """Size in bytes at quantile ``q`` of the message-count CDF."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        log_size = float(np.interp(q, self._qs, self._logs))
        return max(1, round(math.exp(log_size))) * self.unit_bytes

    def deciles(self) -> list[int]:
        """Sizes at the 10th..90th percentiles (the paper's x ticks)."""
        return [self.quantile(q / 10) for q in range(1, 10)]

    def min_bytes(self) -> int:
        return int(self._sizes[0]) * self.unit_bytes

    def max_bytes(self) -> int:
        return int(self._sizes[-1]) * self.unit_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EmpiricalCDF({self.name or 'unnamed'}, "
            f"{self.min_bytes()}..{self.max_bytes()} B, "
            f"mean {self.mean():.0f} B)"
        )
