"""Offered-load computation.

The paper defines network load as "the percentage of available network
bandwidth consumed by goodput packets; this includes application-level
data plus the minimum overhead (packet headers, inter-packet gaps, and
control packets) required by the protocol".  To hit a target load we
therefore need, per protocol, the expected on-wire bytes per message —
data framing plus the protocol's control packets — and from that the
Poisson message arrival rate per host.

Estimates are Monte-Carlo over the size distribution (deterministic
seed), because per-packet framing is a step function of message size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import (
    ETH_OVERHEAD,
    HEADER_BYTES,
    MAX_PAYLOAD,
    MIN_WIRE,
)
from repro.core.units import bytes_per_sec
from repro.workloads.distributions import EmpiricalCDF

#: per-data-packet framing overhead beyond payload
_PKT_OVERHEAD = HEADER_BYTES + ETH_OVERHEAD

#: protocols with a control-packet cost model
PROTOCOLS = ("homa", "basic", "pfabric", "phost", "pias", "ndp", "stream")


@dataclass(frozen=True)
class TrafficEstimate:
    """Expected per-message quantities under a size distribution."""

    mean_bytes: float          # application bytes
    mean_data_wire: float      # on-wire bytes of the data packets
    mean_packets: float        # data packets per message
    mean_sched_packets: float  # packets beyond the unscheduled limit


def estimate_traffic(
    cdf: EmpiricalCDF,
    unsched_limit: int,
    *,
    samples: int = 200_000,
    seed: int = 20180821,  # SIGCOMM'18 presentation date: fixed, arbitrary
) -> TrafficEstimate:
    """Monte-Carlo estimate of per-message traffic quantities."""
    rng = np.random.default_rng(seed)
    sizes = cdf.sample(rng, samples).astype(np.float64)
    packets = np.ceil(sizes / MAX_PAYLOAD)
    tail = sizes - (packets - 1) * MAX_PAYLOAD
    tail_wire = np.maximum(MIN_WIRE, tail + _PKT_OVERHEAD)
    data_wire = (packets - 1) * (MAX_PAYLOAD + _PKT_OVERHEAD) + tail_wire
    sched_bytes = np.maximum(0.0, sizes - unsched_limit)
    sched_packets = np.ceil(sched_bytes / MAX_PAYLOAD)
    return TrafficEstimate(
        mean_bytes=float(sizes.mean()),
        mean_data_wire=float(data_wire.mean()),
        mean_packets=float(packets.mean()),
        mean_sched_packets=float(sched_packets.mean()),
    )


def per_message_wire_bytes(protocol: str, traffic: TrafficEstimate) -> float:
    """Expected wire bytes per message including control packets."""
    data = traffic.mean_data_wire
    if protocol in ("homa", "basic"):
        # One GRANT per scheduled data packet.
        return data + traffic.mean_sched_packets * MIN_WIRE
    if protocol == "pfabric":
        # Per-packet ACKs.
        return data + traffic.mean_packets * MIN_WIRE
    if protocol == "phost":
        # RTS plus one token per scheduled packet.
        return data + MIN_WIRE + traffic.mean_sched_packets * MIN_WIRE
    if protocol == "pias":
        # DCTCP-style per-packet ACKs.
        return data + traffic.mean_packets * MIN_WIRE
    if protocol == "ndp":
        # Per-packet ACKs plus one PULL per post-window packet.
        return (data + traffic.mean_packets * MIN_WIRE
                + traffic.mean_sched_packets * MIN_WIRE)
    if protocol == "stream":
        # Cumulative ACK roughly every other packet.
        return data + 0.5 * traffic.mean_packets * MIN_WIRE
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")


def arrival_rate_per_host(
    protocol: str,
    cdf: EmpiricalCDF,
    load: float,
    *,
    link_gbps: int = 10,
    unsched_limit: int = 9680,
    samples: int = 200_000,
) -> float:
    """Poisson message rate (messages/second) per sending host.

    With uniformly random destinations, offering ``load`` on each host's
    uplink also offers ``load`` on each downlink in expectation.
    """
    if not 0.0 < load < 1.0:
        raise ValueError(f"load must be in (0, 1), got {load}")
    traffic = estimate_traffic(cdf, unsched_limit, samples=samples)
    wire = per_message_wire_bytes(protocol, traffic)
    return load * bytes_per_sec(link_gbps) / wire


def mean_interarrival_ps(rate_per_sec: float) -> float:
    """Mean interarrival time in picoseconds for a Poisson process."""
    if rate_per_sec <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_sec}")
    return 1e12 / rate_per_sec
