"""The paper's five workloads (Figure 1) and load computation helpers."""

from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.catalog import WORKLOADS, Workload, get_workload
from repro.workloads.loadcalc import (
    TrafficEstimate,
    arrival_rate_per_host,
    estimate_traffic,
    per_message_wire_bytes,
)

__all__ = [
    "EmpiricalCDF",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "TrafficEstimate",
    "estimate_traffic",
    "per_message_wire_bytes",
    "arrival_rate_per_host",
]
