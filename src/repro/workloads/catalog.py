"""The five workloads of Figure 1.

Decile anchors are the x-axis tick values the paper prints on Figures
12/13 (each tick is 10% of all messages).  The paper does not publish
the full traces, so tail anchors above the 90th percentile are
calibrated against the byte-weighted statements in the paper:

* W1: "more than 70% of all network traffic, measured in bytes, was in
  messages less than 1000 bytes";
* W2: about 80% of bytes are unscheduled at RTTbytes ~ 9.7 KB and Homa
  allocates 6 of 8 levels to unscheduled packets with the first cutoff
  near 280 B (Figure 4);
* W3: Homa splits priorities evenly, 4 unscheduled + 4 scheduled
  (Figure 21), and the balanced 2-level cutoff is near 1930 B (Fig 18);
* W4/W5: 1 unscheduled + 7 scheduled levels (section 5.2).

W5 is expressed in whole 1460-byte packets (its published ticks are all
multiples of the authors' 1442-byte payload; we use our payload), so
"all packets are full size" and NDP can run it, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packet import MAX_PAYLOAD
from repro.workloads.distributions import EmpiricalCDF


@dataclass(frozen=True)
class Workload:
    """A named message-size workload."""

    key: str
    description: str
    cdf: EmpiricalCDF

    @property
    def deciles(self) -> list[int]:
        return self.cdf.deciles()

    def bucket_edges(self) -> list[int]:
        """Message-count decile bucket edges for slowdown reporting."""
        return [0] + self.deciles + [self.cdf.max_bytes()]


def _cdf(name: str, anchors, unit: int = 1) -> EmpiricalCDF:
    return EmpiricalCDF(anchors, unit_bytes=unit, name=name)


W1 = Workload(
    "W1",
    "Facebook memcached (ETC model) — accesses to a key-value store",
    _cdf("W1", [
        (0.0, 1), (0.1, 2), (0.2, 3), (0.3, 5), (0.4, 11), (0.5, 28),
        (0.6, 85), (0.7, 167), (0.8, 291), (0.9, 508),
        (0.99, 1200), (0.999, 5000), (1.0, 16129),
    ]),
)

W2 = Workload(
    "W2",
    "Google search application RPCs",
    _cdf("W2", [
        (0.0, 1), (0.1, 3), (0.2, 34), (0.3, 58), (0.4, 171), (0.5, 269),
        (0.6, 320), (0.7, 366), (0.8, 427), (0.9, 512),
        (0.95, 800), (0.99, 3000), (0.999, 20000), (1.0, 262144),
    ]),
)

W3 = Workload(
    "W3",
    "All applications in a Google datacenter (aggregated RPCs)",
    _cdf("W3", [
        (0.0, 1), (0.1, 36), (0.2, 77), (0.3, 110), (0.4, 158), (0.5, 268),
        (0.6, 313), (0.7, 402), (0.8, 573), (0.9, 1755),
        (0.95, 3000), (0.99, 10000), (0.999, 100000), (0.9999, 500000),
        (1.0, 5114695),
    ]),
)

W4 = Workload(
    "W4",
    "Facebook Hadoop cluster traffic",
    _cdf("W4", [
        (0.0, 64), (0.1, 315), (0.2, 376), (0.3, 502), (0.4, 561),
        (0.5, 662), (0.6, 960), (0.7, 6387), (0.8, 49408), (0.9, 120373),
        (1.0, 10_000_000),
    ]),
)

W5 = Workload(
    "W5",
    "Web search (DCTCP) — sizes in whole full-size packets",
    _cdf("W5", [
        (0.0, 1), (0.1, 5), (0.2, 15), (0.3, 20), (0.4, 35), (0.5, 49),
        (0.6, 187), (0.7, 734), (0.8, 1533), (0.9, 8001), (1.0, 20000),
    ], unit=MAX_PAYLOAD),
)

WORKLOADS: dict[str, Workload] = {w.key: w for w in (W1, W2, W3, W4, W5)}


def get_workload(key: str) -> Workload:
    """Look up a workload by key ('W1'..'W5', case-insensitive)."""
    workload = WORKLOADS.get(key.upper())
    if workload is None:
        raise KeyError(f"unknown workload {key!r}; choose from {sorted(WORKLOADS)}")
    return workload
