"""Reading and writing message-size distributions as text files.

The format is the one used by the original Homa/pHost simulator
repositories: one ``size cumulative_probability`` pair per line,
optionally preceded by comment lines starting with ``#``::

    # my production RPC sizes
    1 0.0
    128 0.35
    512 0.80
    1048576 1.0

This lets a downstream user drop in their own measured distribution and
run every experiment in this repository against it.
"""

from __future__ import annotations

from pathlib import Path

from repro.workloads.distributions import EmpiricalCDF


def load_cdf(path: str | Path, *, unit_bytes: int = 1,
             name: str = "") -> EmpiricalCDF:
    """Parse a size/probability file into an EmpiricalCDF."""
    path = Path(path)
    anchors: list[tuple[float, float]] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"{path}:{lineno}: expected 'size prob', "
                             f"got {raw!r}")
        try:
            size, prob = float(parts[0]), float(parts[1])
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
        anchors.append((prob, size))
    if not anchors:
        raise ValueError(f"{path}: no data lines")
    anchors.sort()
    # Normalize: the format sometimes starts above 0; pin the minimum.
    if anchors[0][0] != 0.0:
        anchors.insert(0, (0.0, max(1.0, anchors[0][1] - 1)))
    if anchors[-1][0] != 1.0:
        raise ValueError(f"{path}: distribution must end at probability 1.0")
    return EmpiricalCDF(anchors, unit_bytes=unit_bytes,
                        name=name or path.stem)


def save_cdf(cdf: EmpiricalCDF, path: str | Path,
             *, comment: str = "") -> None:
    """Write a distribution in the simulator-compatible text format."""
    path = Path(path)
    lines = []
    if comment:
        lines.append(f"# {comment}")
    for q, size in zip(cdf._qs, cdf._sizes):
        lines.append(f"{size:g} {q:g}")
    path.write_text("\n".join(lines) + "\n")
