"""Event engine: a binary heap front-ended by a hierarchical timer wheel.

Events are plain lists ``[time_ps, seq, fn, arg]`` so the heap never
has to compare callables: ``seq`` is unique, which makes orderings total
and deterministic.  Cancellation is lazy (the callable slot is cleared);
this keeps ``schedule``/``cancel`` O(log n)/O(1), which matters because
transports cancel and re-arm retransmission timers constantly.

The ``arg`` slot holds the single positional argument directly (None
when there is none, the args tuple for the general case): almost every
event is a zero-arg port callback or a one-packet delivery, and skipping
the varargs tuple on those saves measurable time at millions of events
per run.

The heap only ever holds events inside the current coarse time bucket
(~4 us).  Events further out land in one of two timer-wheel levels —
dict-of-list buckets of ~4 us (level 0) and ~537 us (level 1) — and are
poured into the heap when the clock reaches their bucket.  Per-packet
events (sub-microsecond serialization and switch delays) therefore sift
through a heap that contains only the near future, while the long-lived
resend/RTO timers, which the transports re-arm constantly, sit in O(1)
wheel buckets instead of churning the heap.  Because every event in the
heap precedes every event still in a wheel, the (time_ps, seq) execution
order is identical to a single global heap.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Callable, List

Event = List[Any]  # [time_ps, seq, fn, arg]

_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3


def _pack_arg(args: tuple) -> Any:
    """Encode *args into the event's arg slot (see module docstring)."""
    if not args:
        return None
    if len(args) == 1:
        arg = args[0]
        # A lone None/tuple argument must stay wrapped so the dispatch
        # in ``run`` cannot misread it.
        if arg is not None and type(arg) is not tuple:
            return arg
    return args

#: level-0 wheel bucket width: 2**25 ps ~ 34 us (dozens of packet times,
#: so per-packet events go straight to the heap and skip the wheel transit)
L0_SHIFT = 25
#: level-1 wheel bucket width: 2**29 ps ~ 537 us (timer/RTO territory)
L1_SHIFT = 29
_L1_DIFF = L1_SHIFT - L0_SHIFT


class Simulator:
    """Discrete event simulator with an integer picosecond clock."""

    __slots__ = ("now", "_heap", "_seq", "_ids", "events_processed",
                 "_wheel0", "_wheel1", "_cursor0", "_cursor1", "_horizon")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._ids: int = 0
        self.events_processed: int = 0
        # Timer wheel state.  All heap events satisfy time_ps < _horizon;
        # wheel events satisfy time_ps >= _horizon, so the heap head is
        # always the globally next event whenever the heap is non-empty.
        self._wheel0: dict[int, list[Event]] = {}
        self._wheel1: dict[int, list[Event]] = {}
        self._cursor0: int = 0      # L0 buckets <= cursor0 drained to heap
        self._cursor1: int = 0      # L1 buckets <= cursor1 cascaded to L0
        self._horizon: int = 1 << L0_SHIFT

    def new_id(self) -> int:
        """Globally unique integer id (RPC ids, message ids, ...)."""
        self._ids += 1
        return self._ids

    def schedule(self, delay_ps: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_ps``; returns a cancellable event."""
        if delay_ps < 0:
            raise ValueError(f"negative delay {delay_ps}")
        time_ps = self.now + delay_ps
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, _pack_arg(args)]
        if time_ps < self._horizon:
            heappush(self._heap, event)
        else:
            self._file_far(event, time_ps)
        return event

    def schedule0(self, delay_ps: int, fn: Callable) -> Event:
        """``schedule`` specialised to zero arguments (hot path)."""
        if delay_ps < 0:
            raise ValueError(f"negative delay {delay_ps}")
        time_ps = self.now + delay_ps
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, None]
        if time_ps < self._horizon:
            heappush(self._heap, event)
        else:
            self._file_far(event, time_ps)
        return event

    def schedule1(self, delay_ps: int, fn: Callable, arg: Any) -> Event:
        """``schedule`` specialised to one non-None, non-tuple argument."""
        if delay_ps < 0:
            raise ValueError(f"negative delay {delay_ps}")
        time_ps = self.now + delay_ps
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, arg]
        if time_ps < self._horizon:
            heappush(self._heap, event)
        else:
            self._file_far(event, time_ps)
        return event

    def schedule_at(self, time_ps: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(f"cannot schedule in the past ({time_ps} < {self.now})")
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, _pack_arg(args)]
        if time_ps < self._horizon:
            heappush(self._heap, event)
        else:
            self._file_far(event, time_ps)
        return event

    def schedule_at1(self, time_ps: int, fn: Callable, arg: Any) -> Event:
        """``schedule_at`` specialised to one non-None, non-tuple argument.

        Used by the cut-through fast path (core/cutthrough.py) for
        chain continuations at analytically computed absolute times —
        never in the past (same-instant re-arms are allowed), so no
        past-check is needed.
        """
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, arg]
        if time_ps < self._horizon:
            heappush(self._heap, event)
        else:
            self._file_far(event, time_ps)
        return event

    def _file_far(self, event: Event, time_ps: int) -> None:
        """Park an event beyond the heap horizon in the right wheel.

        NOTE: the push sequence (seq bump, [time, seq, fn, arg] list,
        horizon test, heappush-or-_file_far) is inlined at the hottest
        call sites — core/port.py (transmit paths), core/host.py
        (ingress), core/topology.py (fused switch ingress).  A change
        to the filing rules here must be mirrored there, and delays at
        those sites are structurally non-negative (wire sizes and
        fixed positive latencies).
        """
        b1 = time_ps >> L1_SHIFT
        if b1 <= self._cursor1:
            bucket0 = time_ps >> L0_SHIFT
            wheel = self._wheel0
            bucket = wheel.get(bucket0)
            if bucket is None:
                wheel[bucket0] = [event]
            else:
                bucket.append(event)
        else:
            wheel = self._wheel1
            bucket = wheel.get(b1)
            if bucket is None:
                wheel[b1] = [event]
            else:
                bucket.append(event)

    def _refill(self) -> None:
        """Pour wheel buckets into the (empty) heap, earliest first.

        Called only when the heap has run dry: advances the wheel cursors
        to the earliest populated bucket, cascading level-1 buckets into
        level 0 when they come due.  Restores the invariant that every
        heap event precedes every wheel event.
        """
        heap = self._heap
        wheel0, wheel1 = self._wheel0, self._wheel1
        while not heap and (wheel0 or wheel1):
            b0 = min(wheel0) if wheel0 else None
            b1 = min(wheel1) if wheel1 else None
            if b1 is not None and (b0 is None or (b1 << _L1_DIFF) <= b0):
                # The earliest level-1 bucket may hold events earlier
                # than any level-0 bucket: cascade it down first.
                self._cursor1 = b1
                if self._cursor0 < (b1 << _L1_DIFF) - 1:
                    self._cursor0 = (b1 << _L1_DIFF) - 1
                for event in wheel1.pop(b1):
                    if event[_FN] is not None:
                        sub = event[_TIME] >> L0_SHIFT
                        bucket = wheel0.get(sub)
                        if bucket is None:
                            wheel0[sub] = [event]
                        else:
                            bucket.append(event)
                continue
            self._cursor0 = b0
            if self._cursor1 < b0 >> _L1_DIFF:
                self._cursor1 = b0 >> _L1_DIFF
            for event in wheel0.pop(b0):
                if event[_FN] is not None:
                    heappush(heap, event)
        self._horizon = (self._cursor0 + 1) << L0_SHIFT

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event[_FN] = None

    @staticmethod
    def is_pending(event: Event) -> bool:
        return event[_FN] is not None

    def peek_time(self) -> int | None:
        """Timestamp of the next live event, or None when idle."""
        heap = self._heap
        while True:
            while heap and heap[0][_FN] is None:
                heappop(heap)
            if heap:
                return heap[0][_TIME]
            if not (self._wheel0 or self._wheel1):
                return None
            self._refill()

    def run(self, until_ps: int | None = None, max_events: int | None = None) -> int:
        """Process events until the horizon/limit/exhaustion; returns count.

        ``until_ps`` is inclusive: events stamped exactly at the horizon
        still fire, and the clock is left at the horizon afterwards.
        """
        # The simulator is single-threaded compute: relax the GIL check
        # interval for the duration of the loop (restored on exit).
        switch_interval = sys.getswitchinterval()
        sys.setswitchinterval(0.1)
        try:
            return self._run_loop(until_ps, max_events)
        finally:
            sys.setswitchinterval(switch_interval)

    def _run_loop(self, until_ps, max_events):
        heap = self._heap
        pop = heappop
        processed = 0
        if max_events is None:
            # Hot loop: no per-event budget check; the horizon is an
            # int/inf compare and the empty heap a truth test, so the
            # per-event cost is index, two compares, pop, dispatch.
            horizon = float("inf") if until_ps is None else until_ps
            while True:
                if heap:
                    event = heap[0]
                    fn = event[2]
                    if fn is None:
                        pop(heap)
                        continue
                    time_ps = event[0]
                    if time_ps > horizon:
                        break
                    pop(heap)
                    self.now = time_ps
                    arg = event[3]
                    if arg is None:
                        fn()
                    elif type(arg) is tuple:
                        fn(*arg)
                    else:
                        fn(arg)
                    processed += 1
                elif self._wheel0 or self._wheel1:
                    self._refill()
                else:
                    break
        else:
            while processed < max_events:
                if not heap:
                    if not (self._wheel0 or self._wheel1):
                        break
                    self._refill()
                    continue
                event = heap[0]
                fn = event[_FN]
                if fn is None:
                    pop(heap)
                    continue
                if until_ps is not None and event[_TIME] > until_ps:
                    break
                pop(heap)
                self.now = event[_TIME]
                arg = event[_ARGS]
                if arg is None:
                    fn()
                elif type(arg) is tuple:
                    fn(*arg)
                else:
                    fn(arg)
                processed += 1
        if until_ps is not None and self.now < until_ps:
            self.now = until_ps
        self.events_processed += processed
        return processed

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        count = sum(1 for event in self._heap if event[_FN] is not None)
        for wheel in (self._wheel0, self._wheel1):
            for bucket in wheel.values():
                count += sum(1 for event in bucket if event[_FN] is not None)
        return count


class CoalescingTimer:
    """A re-armable one-shot timer that collapses bursts of work.

    ``arm()`` schedules ``fn`` one ``interval_ps`` ahead unless a firing
    is already pending, so any number of ``arm()`` calls inside one
    interval produce exactly one callback — the scheduling half of every
    batching pattern (the Homa receiver's grant pacer, flush timers).
    The event rides the simulator's heap/wheel like any other; the
    callback runs with the timer disarmed, so it may re-arm itself.

    Cancellation reuses the engine's lazy event cancellation: O(1), and
    a cancelled event simply never fires.
    """

    __slots__ = ("_sim", "interval_ps", "_fn", "_event")

    def __init__(self, sim: Simulator, interval_ps: int,
                 fn: Callable[[], None]) -> None:
        if interval_ps <= 0:
            raise ValueError(f"interval must be positive, got {interval_ps}")
        self._sim = sim
        self.interval_ps = interval_ps
        self._fn = fn
        self._event: Event | None = None

    @property
    def pending(self) -> bool:
        """True when a firing is already scheduled."""
        return self._event is not None

    def arm(self) -> None:
        """Schedule the next firing unless one is already pending."""
        if self._event is None:
            self._event = self._sim.schedule0(self.interval_ps, self._fire)

    def cancel(self) -> None:
        """Drop the pending firing, if any (arm() starts a fresh one)."""
        if self._event is not None:
            self._event[_FN] = None
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn()
