"""Event engine: a binary-heap discrete event simulator.

Events are plain lists ``[time_ps, seq, fn, args]`` so the heap never
has to compare callables: ``seq`` is unique, which makes orderings total
and deterministic.  Cancellation is lazy (the callable slot is cleared);
this keeps ``schedule``/``cancel`` O(log n)/O(1), which matters because
transports cancel and re-arm retransmission timers constantly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List

Event = List[Any]  # [time_ps, seq, fn, args]

_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3


class Simulator:
    """Discrete event simulator with an integer picosecond clock."""

    __slots__ = ("now", "_heap", "_seq", "_ids", "events_processed")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._ids: int = 0
        self.events_processed: int = 0

    def new_id(self) -> int:
        """Globally unique integer id (RPC ids, message ids, ...)."""
        self._ids += 1
        return self._ids

    def schedule(self, delay_ps: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay_ps``; returns a cancellable event."""
        if delay_ps < 0:
            raise ValueError(f"negative delay {delay_ps}")
        return self.schedule_at(self.now + delay_ps, fn, *args)

    def schedule_at(self, time_ps: int, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(f"cannot schedule in the past ({time_ps} < {self.now})")
        self._seq += 1
        event: Event = [time_ps, self._seq, fn, args]
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        event[_FN] = None

    @staticmethod
    def is_pending(event: Event) -> bool:
        return event[_FN] is not None

    def peek_time(self) -> int | None:
        """Timestamp of the next live event, or None when idle."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
        return heap[0][_TIME] if heap else None

    def run(self, until_ps: int | None = None, max_events: int | None = None) -> int:
        """Process events until the horizon/limit/exhaustion; returns count.

        ``until_ps`` is inclusive: events stamped exactly at the horizon
        still fire, and the clock is left at the horizon afterwards.
        """
        heap = self._heap
        processed = 0
        while heap:
            event = heap[0]
            fn = event[_FN]
            if fn is None:
                heapq.heappop(heap)
                continue
            if until_ps is not None and event[_TIME] > until_ps:
                break
            if max_events is not None and processed >= max_events:
                break
            heapq.heappop(heap)
            self.now = event[_TIME]
            fn(*event[_ARGS])
            processed += 1
        if until_ps is not None and self.now < until_ps:
            self.now = until_ps
        self.events_processed += processed
        return processed

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if event[_FN] is not None)
