"""Egress ports: the only places packets queue in this simulator.

Three port flavors cover every protocol in the paper:

* ``QueuedPort`` — a switch egress port with 8 strict priority queues,
  optional ECN marking (PIAS/DCTCP), optional NDP packet trimming,
  optional finite buffering with drop-tail, and optional ideal link-level
  preemption (the hardware change discussed around Figure 14).
* ``PfabricPort`` — pFabric's egress: a tiny shared buffer where the
  packet with the smallest remaining-bytes priority is sent first and
  the largest is dropped on overflow.
* ``PullPort`` — a host NIC that asks the transport for the next packet
  each time the link frees.  This is the idealized form of Homa's
  2-full-packets NIC queue bound (section 4): the sender reorders its
  queue perfectly, which is also what the paper's simulator assumes.

Ports support an optional ``probe`` (see ``PortProbe``) for metrics and
optional per-packet delay attribution used by Figure 14.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Callable, Optional

from repro.core.cutthrough import _mat_done, run_late_mats
from repro.core.cutthrough import precedes as _cut_precedes
from repro.core.engine import Simulator
from repro.core.packet import (ALLOC_UNKNOWN, CTRL_PRIO, N_PRIORITIES,
                               Packet, PacketType)
from repro.core.pool import free_packet
from repro.core.units import ps_per_byte


class PortProbe:
    """Observer interface for port events.  All hooks are optional."""

    def on_queue_change(self, now_ps: int, qbytes: int) -> None:
        """Queued bytes changed (excludes the packet being transmitted)."""

    def on_busy_change(self, now_ps: int, busy: bool) -> None:
        """The link started or stopped transmitting."""

    def on_tx_done(self, now_ps: int, pkt: Packet) -> None:
        """A packet finished serializing onto the link."""

    def on_drop(self, now_ps: int, pkt: Packet) -> None:
        """A packet was dropped (buffer overflow)."""


class BasePort:
    """Common transmission machinery: one packet on the wire at a time."""

    __slots__ = (
        "sim", "name", "level", "ppb", "deliver", "busy",
        "cur_pkt", "cur_end_ps", "probe", "trace_delays",
        "tx_packets", "tx_wire_bytes", "drops", "_tx_done_cb", "enqueue_cb",
        "fuse_ok", "last_arrival_ps",
        "cut_ok", "in_delay_ps", "res_chain", "res_idx",
        "res_start_ps", "res_end_ps", "lineage_on",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
    ) -> None:
        self.sim = sim
        self.name = name
        self.level = level
        self.ppb = ps_per_byte(gbps)
        self.deliver = deliver
        self.busy = False
        self.cur_pkt: Optional[Packet] = None
        self.cur_end_ps = 0
        self.probe: Optional[PortProbe] = None
        self.trace_delays = False
        self.tx_packets = 0
        self.tx_wire_bytes = 0
        self.drops = 0
        # Bound once: creating the bound method on every transmission is
        # measurable at millions of events per run.  ``enqueue_cb`` is
        # the same trick for the ingress closures' arrival events.
        self._tx_done_cb = self._tx_done
        self.enqueue_cb = self.enqueue
        # Arrival fusion (see topology's fused switch ingress): True only
        # where enqueueing early is invisible — no drops/marking/trimming
        # /preemption (queue state must not influence anything between
        # the early enqueue and the real arrival time).  Probe and
        # trace_delays are checked dynamically at the ingress site.
        # ``last_arrival_ps`` is the latest scheduled (non-fused)
        # arrival: fusing a packet is only sound strictly after that
        # arrival has fired, or the fused packet could overtake it in
        # its priority level's FIFO.
        self.fuse_ok = False
        self.last_arrival_ps = -1
        # Cut-through (core/cutthrough.py): ``cut_ok`` marks ports that
        # may host an analytic reservation (no observable queue state:
        # finite buffers, ECN, trimming, and pFabric all disqualify;
        # ideal preemption is allowed — a preempting arrival simply
        # materializes the reservation first).  ``in_delay_ps`` is the
        # fixed ingress delay of the switch feeding this port — every
        # arrival funnels through it, which is what makes a planned
        # reservation's window sound and resolves end-of-window ties.
        # ``res_chain``/``res_idx`` point at the chain (and our hop in
        # it) currently holding the link for [res_start_ps, res_end_ps).
        self.cut_ok = False
        self.in_delay_ps = 0
        self.res_chain = None
        self.res_idx = 0
        self.res_start_ps = 0
        self.res_end_ps = 0
        # True only in networks built with cut_through enabled: gates
        # the lineage stamps and heap peeks below, so the default
        # (slow-path-only) mode pays nothing for the machinery.
        self.lineage_on = False

    def cut_ready(self, now: int) -> bool:
        """Cut-through fast-path predicate (reference implementation;
        the hot copies are inlined in cutthrough's planners)."""
        return (self.cut_ok
                and not self.busy
                and not self._nonempty
                and now > self.last_arrival_ps
                and self.probe is None
                and not self.trace_delays
                and not self._paused
                and (self.res_chain is None or self.res_end_ps <= now))

    def enqueue(self, pkt: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def flush(self) -> int:
        """Destroy everything queued on this port (fault injection,
        core/faults.py).  Ports without a queue lose nothing."""
        return 0

    def _transmit(self, pkt: Packet) -> None:
        sim = self.sim
        now = sim.now
        time_ps = now + pkt.wire * self.ppb
        if self.lineage_on:
            pkt.tx_start_ps = now
            pkt.alloc_ps = ALLOC_UNKNOWN
            pkt.alloc2_ps = ALLOC_UNKNOWN
            pkt.alloc3_ps = ALLOC_UNKNOWN
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = time_ps
        if self.probe is not None:
            self.probe.on_busy_change(sim.now, True)
        # schedule0 inlined: one event per transmitted packet.
        sim._seq += 1
        event = [time_ps, sim._seq, self._tx_done_cb, None]
        if time_ps < sim._horizon:
            heappush(sim._heap, event)
        else:
            sim._file_far(event, time_ps)

    def _tx_done(self) -> None:
        pkt = self.cur_pkt
        sim = self.sim
        if self.lineage_on:
            heap = sim._heap
            if heap and heap[0][2] is _mat_done:
                run_late_mats(sim, sim.now, pkt)
        self.cur_pkt = None
        self.busy = False
        self.tx_packets += 1
        self.tx_wire_bytes += pkt.wire
        if self.probe is not None:
            self.probe.on_tx_done(sim.now, pkt)
            self.probe.on_busy_change(sim.now, False)
        # Zero propagation delay: the packet is fully received at the
        # other end the moment serialization finishes (store-and-forward).
        self.deliver(pkt)
        self._next()

    def _next(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class QueuedPort(BasePort):
    """Switch egress port with 8 strict priority FIFO queues.

    ``_nonempty`` is a bitmask with bit ``p`` set iff ``queues[p]`` holds
    at least one packet, so picking the highest busy priority is a single
    ``int.bit_length`` instead of a scan over all 8 queues per dequeue.
    """

    __slots__ = (
        "queues", "qbytes", "prio_qbytes", "buffer_bytes",
        "ecn_bytes", "trim_bytes", "preemptive", "_paused", "_tx_event",
        "_nonempty", "_vanilla", "mat_tx",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
        *,
        buffer_bytes: int | None = None,
        ecn_bytes: int | None = None,
        trim_bytes: int | None = None,
        preemptive: bool = False,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self.queues: list[deque[Packet]] = [deque() for _ in range(N_PRIORITIES)]
        self.qbytes = 0
        self.prio_qbytes = [0] * N_PRIORITIES
        self.buffer_bytes = buffer_bytes
        self.ecn_bytes = ecn_bytes
        self.trim_bytes = trim_bytes
        self.preemptive = preemptive
        self._paused: list[tuple[Packet, int]] = []  # (packet, remaining ps)
        self._tx_event = None
        self._nonempty = 0  # bit p set iff queues[p] is non-empty
        # Pending tx-done of a *mid-window* materialized transmission:
        # its seq was allocated at the conflict instant rather than at
        # the transmission start, so an end-instant arrival must replay
        # the slow path's order (see enqueue).  None almost always.
        self.mat_tx = None
        # Fast-path flag: no marking/trimming/drops/preemption to check.
        self._vanilla = (buffer_bytes is None and ecn_bytes is None
                         and trim_bytes is None and not preemptive)
        self.fuse_ok = self._vanilla
        # Cut-through eligibility is wider than fusion's: preemptive
        # ports qualify (an arrival that could preempt materializes the
        # reservation first, then preempts the real transmission).
        self.cut_ok = (buffer_bytes is None and ecn_bytes is None
                       and trim_bytes is None)

    def enqueue(self, pkt: Packet) -> None:
        chain = self.res_chain
        if chain is not None:
            # A cut-through chain holds this link for [res_start_ps,
            # res_end_ps).  Resolve the reservation before anything
            # else; each branch reproduces the slow path's event order
            # (see core/cutthrough.py).
            now = self.sim.now
            start = self.res_start_ps
            if now < start:
                chain.divert(self.res_idx)
            elif now == start:
                # Start-instant tie: this enqueue and the chained
                # packet's would-be enqueue were both created one
                # ingress delay ago, and the slow path orders them by
                # their creators' seqs — allocated at the respective
                # upstream transmission starts (see cutthrough.precedes
                # for the deeper tie levels).
                idx = self.res_idx
                if _cut_precedes(chain, idx, pkt):
                    chain.divert(idx)
                elif self.busy or self._nonempty or self._paused:
                    # The chained packet goes first, but an earlier
                    # interloper already holds the link: slot it into
                    # the queue ahead of this enqueue.
                    chain.reenter(idx)
                else:
                    chain.materialize(idx)
            elif now < self.res_end_ps or (
                    now == self.res_end_ps
                    and start >= now - self.in_delay_ps):
                # Inside the window — or tied with its end while the
                # chained packet's tx-done event would have been the
                # younger of the two and thus fire after this enqueue.
                chain.materialize(self.res_idx)
            else:
                self.res_chain = None  # stale: the packet already left
        if self.lineage_on:
            # One gate for all the cut-through repair machinery: the
            # default (slow-path-only) mode pays a single attribute
            # read here.
            if self.mat_tx is not None and self.busy:
                # A mid-window materialized transmission is in flight:
                # its tx-done seq dates from the conflict, not the
                # transmission start.  If this arrival lands exactly at
                # its end while the slow path's tx-done (allocated at
                # the start) would have fired first, replay that order:
                # complete the transmission now, then enqueue.
                event = self.mat_tx
                now = self.sim.now
                if now == self.cur_end_ps:
                    self.mat_tx = None
                    if (event[0] == now and event[2] is not None
                            and self.cur_pkt is not None
                            and self.cur_pkt.tx_start_ps
                            < now - self.in_delay_ps):
                        Simulator.cancel(event)
                        self._tx_done()
            heap = self.sim._heap
            while heap and heap[0][2] is _mat_done:
                # The same repair across ports: a pending same-instant
                # completion of a transmission materialized mid-window
                # carries a late seq, but the slow path (which
                # allocated it at the transmission start) would have
                # run it before this enqueue — and tx-done allocation
                # order is observable one hop later.  Run it inline
                # first.
                top = heap[0]
                port2 = top[3]
                if (top[0] != self.sim.now
                        or port2.mat_tx is not top or port2.cur_pkt is None
                        or port2.cur_pkt.tx_start_ps
                        >= self.sim.now - self.in_delay_ps):
                    break
                port2.mat_tx = None
                Simulator.cancel(top)
                port2._tx_done()
        if self._vanilla:
            if (not self.busy and not self._nonempty and self.probe is None
                    and not self._paused):
                # Idle, empty port: transmit directly, skip the queue
                # round-trip (event creation inlined — this is the
                # steady-state per-hop path).
                sim = self.sim
                now = sim.now
                time_ps = now + pkt.wire * self.ppb
                if self.lineage_on:
                    # Pass-through: shift the packet's own history one
                    # level down the lineage before restamping.
                    pkt.alloc3_ps = pkt.alloc_ps
                    pkt.alloc2_ps = pkt.tx_start_ps
                    pkt.tx_start_ps = now
                    pkt.alloc_ps = now - self.in_delay_ps
                self.busy = True
                self.cur_pkt = pkt
                self.cur_end_ps = time_ps
                sim._seq += 1
                event = [time_ps, sim._seq, self._tx_done_cb, None]
                if time_ps < sim._horizon:
                    heappush(sim._heap, event)
                else:
                    sim._file_far(event, time_ps)
                return
            prio = pkt.prio
            if self.trace_delays and self.busy:
                residual = self.cur_end_ps - self.sim.now
                if self.cur_pkt is not None and self.cur_pkt.prio < prio:
                    pkt.p_wait += residual
                else:
                    pkt.q_wait += residual
            self.queues[prio].append(pkt)
            self._nonempty |= 1 << prio
            self.qbytes += pkt.wire
            if self.probe is not None:
                self.probe.on_queue_change(self.sim.now, self.qbytes)
            if not self.busy:
                self._next()
            return
        if self.ecn_bytes is not None and self.qbytes >= self.ecn_bytes:
            pkt.ecn = True
        if (
            self.trim_bytes is not None
            and pkt.kind == PacketType.DATA
            and not pkt.trimmed
            and self.prio_qbytes[pkt.prio] >= self.trim_bytes
        ):
            # NDP: keep the header, ship it on the control priority.
            pkt.trim()
            pkt.prio = CTRL_PRIO
        if self.buffer_bytes is not None and self.qbytes + pkt.wire > self.buffer_bytes:
            self.drops += 1
            if self.probe is not None:
                self.probe.on_drop(self.sim.now, pkt)
            return
        preempts = (
            self.preemptive
            and self.busy
            and self.cur_pkt is not None
            and pkt.prio > self.cur_pkt.prio
        )
        if self.trace_delays and self.busy and not preempts:
            # A packet that is about to preempt the in-flight packet
            # never waits out its residual, so it is charged nothing.
            residual = self.cur_end_ps - self.sim.now
            if self.cur_pkt is not None and self.cur_pkt.prio < pkt.prio:
                pkt.p_wait += residual
            else:
                pkt.q_wait += residual
        self.queues[pkt.prio].append(pkt)
        self._nonempty |= 1 << pkt.prio
        self.qbytes += pkt.wire
        self.prio_qbytes[pkt.prio] += pkt.wire
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if not self.busy:
            self._next()
        elif preempts:
            self._preempt()

    def flush(self) -> int:
        """Destroy every queued (not in-flight) packet.

        A link or switch fault kills the line card: whatever sat in its
        buffers is gone.  The packet currently serializing is untouched
        — its bits are already on the wire (a dead downstream switch
        drops it at ingress instead).  Pooled packets recycle at the
        drop point.  Returns the number of packets destroyed, which the
        caller accounts (FabricNetwork credits the owning switch's
        ``fault_drops``).
        """
        flushed = 0
        for queue in self.queues:
            while queue:
                free_packet(queue.popleft())
                flushed += 1
        for pkt, _ in self._paused:
            free_packet(pkt)
            flushed += 1
        self._paused.clear()
        self._nonempty = 0
        self.qbytes = 0
        self.prio_qbytes = [0] * N_PRIORITIES
        if flushed and self.probe is not None:
            self.probe.on_queue_change(self.sim.now, 0)
        return flushed

    def _preempt(self) -> None:
        """Ideal link-level preemption: pause the in-flight packet."""
        remaining = self.cur_end_ps - self.sim.now
        paused = self.cur_pkt
        # The pending _tx_done event is found by rebuilding: simplest
        # correct approach is to mark the port idle and re-arm.  The
        # old completion event must be cancelled via a generation check.
        self._paused.append((paused, remaining))
        self.cur_pkt = None
        self.busy = False
        self._cancel_pending_tx()
        self._next()

    def _cancel_pending_tx(self) -> None:
        # BasePort scheduled _tx_done; we cannot keep a handle per
        # transmission without burdening the hot path, so preemptive
        # ports keep one.  Lazily created on first use.
        event = getattr(self, "_tx_event", None)
        if event is not None:
            Simulator.cancel(event)

    def _transmit(self, pkt: Packet) -> None:
        duration = pkt.wire * self.ppb
        if self.lineage_on:
            pkt.tx_start_ps = self.sim.now
            pkt.alloc_ps = ALLOC_UNKNOWN
            pkt.alloc2_ps = ALLOC_UNKNOWN
            pkt.alloc3_ps = ALLOC_UNKNOWN
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = self.sim.now + duration
        if self.probe is not None:
            self.probe.on_busy_change(self.sim.now, True)
        event = self.sim.schedule0(duration, self._tx_done_cb)
        if self.preemptive:
            self._tx_event = event

    def _resume(self, pkt: Packet, remaining: int) -> None:
        # Stamp the resume instant: this is when the completion event's
        # seq is allocated, which is what tx_start_ps stands for.
        if self.lineage_on:
            pkt.tx_start_ps = self.sim.now
            pkt.alloc_ps = ALLOC_UNKNOWN
            pkt.alloc2_ps = ALLOC_UNKNOWN
            pkt.alloc3_ps = ALLOC_UNKNOWN
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = self.sim.now + remaining
        if self.probe is not None:
            self.probe.on_busy_change(self.sim.now, True)
        event = self.sim.schedule0(remaining, self._tx_done_cb)
        if self.preemptive:
            self._tx_event = event

    def _materialize(self, pkt: Packet, start_ps: int, end_ps: int) -> None:
        """Turn a cut-through reservation back into a real in-flight
        transmission over [``start_ps``, ``end_ps``) (chains only ever
        reserve probe-free, trace-free ports, so no observer hooks
        fire).  ``start_ps`` is the analytic transmission start — the
        instant the slow path would have allocated the tx-done — which
        downstream start-tie resolutions read back off the packet."""
        sim = self.sim
        pkt.tx_start_ps = start_ps
        pkt.alloc_ps = start_ps - self.in_delay_ps
        # Lineage hygiene: the materialized transmission plays the role
        # of one launched by a scheduled arrival at ``start_ps``, but
        # no real arrival seq exists for it.
        pkt.prev_arrival_ps = pkt.arrival_ps
        pkt.prev_rank_seq = pkt.rank_seq
        pkt.arrival_ps = start_ps
        pkt.rank_seq = ALLOC_UNKNOWN
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = end_ps
        sim._seq += 1
        if start_ps < sim.now:
            # Mid-window materialization: the tx-done's seq postdates
            # the start the slow path would have allocated it at, so it
            # completes through the rank-turned _mat_done, and
            # end-instant arrivals must check it (see enqueue).
            event = [end_ps, sim._seq, _mat_done, self]
            self.mat_tx = event
        else:
            event = [end_ps, sim._seq, self._tx_done_cb, None]
        if end_ps < sim._horizon:
            heappush(sim._heap, event)
        else:
            sim._file_far(event, end_ps)
        if self.preemptive:
            self._tx_event = event

    def _tx_done(self) -> None:
        # BasePort._tx_done with the follow-up dequeue inlined: this
        # pair runs once per switch-port transmission.  KEEP IN SYNC
        # with _next below — the dequeue + inline-transmit bodies are
        # intentionally duplicated to save a call per packet.
        pkt = self.cur_pkt
        if self.lineage_on:
            heap = self.sim._heap
            if heap and heap[0][2] is _mat_done:
                run_late_mats(self.sim, self.sim.now, pkt)
        self.cur_pkt = None
        self.busy = False
        self.tx_packets += 1
        self.tx_wire_bytes += pkt.wire
        if self.probe is not None:
            self.probe.on_tx_done(self.sim.now, pkt)
            self.probe.on_busy_change(self.sim.now, False)
        self.deliver(pkt)
        mask = self._nonempty
        if self._paused:
            self._next()
            return
        if not mask:
            return
        # The dequeued packet's transmission is allocated by this very
        # tx-done, whose seq dates from the finishing transmission's
        # start — and the finishing packet's own allocator levels are
        # the next lineage levels for cut-through deep ties.
        if self.lineage_on:
            prior_start_ps = pkt.tx_start_ps
            prior_alloc_ps = pkt.alloc_ps
            prior_alloc2_ps = pkt.alloc2_ps
        prio = mask.bit_length() - 1
        queue = self.queues[prio]
        pkt = queue.popleft()
        if not queue:
            self._nonempty = mask & ~(1 << prio)
        self.qbytes -= pkt.wire
        if not self._vanilla:
            self.prio_qbytes[prio] -= pkt.wire
        if self.probe is None and not self.trace_delays:
            sim = self.sim
            now = sim.now
            time_ps = now + pkt.wire * self.ppb
            if self.lineage_on:
                pkt.tx_start_ps = now
                pkt.alloc_ps = prior_start_ps
                pkt.alloc2_ps = prior_alloc_ps
                pkt.alloc3_ps = prior_alloc2_ps
            self.busy = True
            self.cur_pkt = pkt
            self.cur_end_ps = time_ps
            sim._seq += 1
            event = [time_ps, sim._seq, self._tx_done_cb, None]
            if time_ps < sim._horizon:
                heappush(sim._heap, event)
            else:
                sim._file_far(event, time_ps)
            if self.preemptive:
                self._tx_event = event
            return
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if self.trace_delays:
            self._charge_waiters(pkt)
        self._transmit(pkt)

    def _next(self) -> None:
        # Highest non-empty priority in O(1) via the occupancy bitmask.
        prio = self._nonempty.bit_length() - 1
        if self._paused and self._paused[-1][0].prio >= prio:
            pkt, remaining = self._paused.pop()
            self._resume(pkt, remaining)
            return
        if prio < 0:
            return
        queue = self.queues[prio]
        pkt = queue.popleft()
        if not queue:
            self._nonempty &= ~(1 << prio)
        self.qbytes -= pkt.wire
        if not self._vanilla:
            self.prio_qbytes[prio] -= pkt.wire
        if self.probe is None and not self.trace_delays:
            # _transmit inlined for the plain case (the dequeue path
            # runs once per transmitted packet).
            sim = self.sim
            now = sim.now
            time_ps = now + pkt.wire * self.ppb
            if self.lineage_on:
                pkt.tx_start_ps = now
                pkt.alloc_ps = ALLOC_UNKNOWN
                pkt.alloc2_ps = ALLOC_UNKNOWN
                pkt.alloc3_ps = ALLOC_UNKNOWN
            self.busy = True
            self.cur_pkt = pkt
            self.cur_end_ps = time_ps
            sim._seq += 1
            event = [time_ps, sim._seq, self._tx_done_cb, None]
            if time_ps < sim._horizon:
                heappush(sim._heap, event)
            else:
                sim._file_far(event, time_ps)
            if self.preemptive:
                self._tx_event = event
            return
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if self.trace_delays:
            self._charge_waiters(pkt)
        self._transmit(pkt)

    def _charge_waiters(self, winner: Packet) -> None:
        """Attribute the winner's tx time to every packet left waiting.

        A queued packet waiting behind a *lower*-priority transmission is
        experiencing preemption lag; waiting behind equal-or-higher
        priority is plain queueing (Figure 14's two delay sources).
        """
        duration = winner.wire * self.ppb
        wprio = winner.prio
        mask = self._nonempty
        while mask:
            prio = mask.bit_length() - 1
            mask &= ~(1 << prio)
            queue = self.queues[prio]
            if wprio < prio:
                for waiting in queue:
                    waiting.p_wait += duration
            else:
                for waiting in queue:
                    waiting.q_wait += duration


class PfabricPort(BasePort):
    """pFabric egress: smallest remaining-size first, drop the largest.

    ``fine_prio`` is the packet's remaining message bytes at send time
    (0 for ACKs/probes, which makes them most urgent).  The buffer is a
    couple of bandwidth-delay products, as in the pFabric paper.

    Dequeue-min and drop-max are both served by heaps sharing one entry
    list ``[fine_prio, arrival_seq, pkt]`` per packet; an entry whose
    packet slot is None is dead and skipped lazily.  ``arrival_seq``
    breaks fine-priority ties FIFO on the min side and oldest-first on
    the max side, matching the linear-scan semantics this replaces.
    """

    __slots__ = ("_min_heap", "_max_heap", "_arrivals", "qbytes",
                 "buffer_bytes")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
        *,
        buffer_bytes: int,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self._min_heap: list[list] = []   # [fine_prio, seq, pkt-or-None]
        self._max_heap: list[list] = []   # [-fine_prio, seq, entry]
        self._arrivals = 0
        self.qbytes = 0
        self.buffer_bytes = buffer_bytes

    def enqueue(self, pkt: Packet) -> None:
        while self.qbytes + pkt.wire > self.buffer_bytes:
            victim_entry = self._largest_entry()
            if victim_entry is None or -victim_entry[0] <= pkt.fine_prio:
                # The arrival is the least urgent: drop it.
                self.drops += 1
                if self.probe is not None:
                    self.probe.on_drop(self.sim.now, pkt)
                return
            inner = victim_entry[2]
            victim = inner[2]
            inner[2] = None  # kill: the min heap skips it lazily
            heapq.heappop(self._max_heap)
            self.qbytes -= victim.wire
            self.drops += 1
            if self.probe is not None:
                self.probe.on_drop(self.sim.now, victim)
        self._arrivals += 1
        entry = [pkt.fine_prio, self._arrivals, pkt]
        heapq.heappush(self._min_heap, entry)
        heapq.heappush(self._max_heap, [-pkt.fine_prio, self._arrivals, entry])
        self.qbytes += pkt.wire
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if not self.busy:
            self._next()

    def _largest_entry(self) -> list | None:
        """Live max-heap head (largest fine_prio, oldest among ties)."""
        heap = self._max_heap
        while heap and heap[0][2][2] is None:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _next(self) -> None:
        heap = self._min_heap
        while heap:
            entry = heapq.heappop(heap)
            pkt = entry[2]
            if pkt is None:
                continue
            entry[2] = None  # kill the max-heap twin
            self.qbytes -= pkt.wire
            if self.probe is not None:
                self.probe.on_queue_change(self.sim.now, self.qbytes)
            self._transmit(pkt)
            return


class PullPort(BasePort):
    """Host NIC egress that pulls packets from the transport on demand."""

    __slots__ = ("source",)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self.source: Optional[Callable[[], Optional[Packet]]] = None

    def kick(self) -> None:
        """Tell the NIC new work may be available."""
        if not self.busy:
            self._next()

    def _tx_done(self) -> None:
        # BasePort._tx_done fused with the follow-up pull: this pair
        # runs once per host-uplink transmission.
        pkt = self.cur_pkt
        if self.lineage_on:
            heap = self.sim._heap
            if heap and heap[0][2] is _mat_done:
                run_late_mats(self.sim, self.sim.now, pkt)
        self.cur_pkt = None
        self.busy = False
        self.tx_packets += 1
        self.tx_wire_bytes += pkt.wire
        probe = self.probe
        if probe is not None:
            now = self.sim.now
            probe.on_tx_done(now, pkt)
            probe.on_busy_change(now, False)
        # Delivery only schedules the next-hop arrival; it cannot start
        # a new transmission on this port, so pulling afterwards is the
        # same order BasePort produced.
        if self.lineage_on:
            prior_start_ps = pkt.tx_start_ps
            prior_alloc_ps = pkt.alloc_ps
            prior_alloc2_ps = pkt.alloc2_ps
        self.deliver(pkt)
        source = self.source
        if source is not None:
            pkt = source()
            if pkt is not None:
                # _transmit inlined (one NIC transmission per pull).
                sim = self.sim
                now = sim.now
                time_ps = now + pkt.wire * self.ppb
                if self.lineage_on:
                    pkt.tx_start_ps = now
                    pkt.alloc_ps = prior_start_ps
                    pkt.alloc2_ps = prior_alloc_ps
                    pkt.alloc3_ps = prior_alloc2_ps
                self.busy = True
                self.cur_pkt = pkt
                self.cur_end_ps = time_ps
                if self.probe is not None:
                    self.probe.on_busy_change(sim.now, True)
                sim._seq += 1
                event = [time_ps, sim._seq, self._tx_done_cb, None]
                if time_ps < sim._horizon:
                    heappush(sim._heap, event)
                else:
                    sim._file_far(event, time_ps)

    def _next(self) -> None:
        if self.source is None:
            return
        pkt = self.source()
        if pkt is not None:
            self._transmit(pkt)
