"""Egress ports: the only places packets queue in this simulator.

Three port flavors cover every protocol in the paper:

* ``QueuedPort`` — a switch egress port with 8 strict priority queues,
  optional ECN marking (PIAS/DCTCP), optional NDP packet trimming,
  optional finite buffering with drop-tail, and optional ideal link-level
  preemption (the hardware change discussed around Figure 14).
* ``PfabricPort`` — pFabric's egress: a tiny shared buffer where the
  packet with the smallest remaining-bytes priority is sent first and
  the largest is dropped on overflow.
* ``PullPort`` — a host NIC that asks the transport for the next packet
  each time the link frees.  This is the idealized form of Homa's
  2-full-packets NIC queue bound (section 4): the sender reorders its
  queue perfectly, which is also what the paper's simulator assumes.

Ports support an optional ``probe`` (see ``PortProbe``) for metrics and
optional per-packet delay attribution used by Figure 14.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.engine import Simulator
from repro.core.packet import CTRL_PRIO, N_PRIORITIES, Packet, PacketType
from repro.core.units import ps_per_byte


class PortProbe:
    """Observer interface for port events.  All hooks are optional."""

    def on_queue_change(self, now_ps: int, qbytes: int) -> None:
        """Queued bytes changed (excludes the packet being transmitted)."""

    def on_busy_change(self, now_ps: int, busy: bool) -> None:
        """The link started or stopped transmitting."""

    def on_tx_done(self, now_ps: int, pkt: Packet) -> None:
        """A packet finished serializing onto the link."""

    def on_drop(self, now_ps: int, pkt: Packet) -> None:
        """A packet was dropped (buffer overflow)."""


class BasePort:
    """Common transmission machinery: one packet on the wire at a time."""

    __slots__ = (
        "sim", "name", "level", "ppb", "deliver", "busy",
        "cur_pkt", "cur_end_ps", "probe", "trace_delays",
        "tx_packets", "tx_wire_bytes", "drops",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
    ) -> None:
        self.sim = sim
        self.name = name
        self.level = level
        self.ppb = ps_per_byte(gbps)
        self.deliver = deliver
        self.busy = False
        self.cur_pkt: Optional[Packet] = None
        self.cur_end_ps = 0
        self.probe: Optional[PortProbe] = None
        self.trace_delays = False
        self.tx_packets = 0
        self.tx_wire_bytes = 0
        self.drops = 0

    def _transmit(self, pkt: Packet) -> None:
        duration = pkt.wire * self.ppb
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = self.sim.now + duration
        if self.probe is not None:
            self.probe.on_busy_change(self.sim.now, True)
        self.sim.schedule(duration, self._tx_done)

    def _tx_done(self) -> None:
        pkt = self.cur_pkt
        self.cur_pkt = None
        self.busy = False
        self.tx_packets += 1
        self.tx_wire_bytes += pkt.wire
        if self.probe is not None:
            self.probe.on_tx_done(self.sim.now, pkt)
            self.probe.on_busy_change(self.sim.now, False)
        # Zero propagation delay: the packet is fully received at the
        # other end the moment serialization finishes (store-and-forward).
        self.deliver(pkt)
        self._next()

    def _next(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class QueuedPort(BasePort):
    """Switch egress port with 8 strict priority FIFO queues."""

    __slots__ = (
        "queues", "qbytes", "prio_qbytes", "buffer_bytes",
        "ecn_bytes", "trim_bytes", "preemptive", "_paused", "_tx_event",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
        *,
        buffer_bytes: int | None = None,
        ecn_bytes: int | None = None,
        trim_bytes: int | None = None,
        preemptive: bool = False,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self.queues: list[deque[Packet]] = [deque() for _ in range(N_PRIORITIES)]
        self.qbytes = 0
        self.prio_qbytes = [0] * N_PRIORITIES
        self.buffer_bytes = buffer_bytes
        self.ecn_bytes = ecn_bytes
        self.trim_bytes = trim_bytes
        self.preemptive = preemptive
        self._paused: list[tuple[Packet, int]] = []  # (packet, remaining ps)
        self._tx_event = None

    def enqueue(self, pkt: Packet) -> None:
        if self.ecn_bytes is not None and self.qbytes >= self.ecn_bytes:
            pkt.ecn = True
        if (
            self.trim_bytes is not None
            and pkt.kind == PacketType.DATA
            and not pkt.trimmed
            and self.prio_qbytes[pkt.prio] >= self.trim_bytes
        ):
            # NDP: keep the header, ship it on the control priority.
            pkt.trim()
            pkt.prio = CTRL_PRIO
        if self.buffer_bytes is not None and self.qbytes + pkt.wire > self.buffer_bytes:
            self.drops += 1
            if self.probe is not None:
                self.probe.on_drop(self.sim.now, pkt)
            return
        if self.trace_delays and self.busy:
            residual = self.cur_end_ps - self.sim.now
            if self.cur_pkt is not None and self.cur_pkt.prio < pkt.prio:
                pkt.p_wait += residual
            else:
                pkt.q_wait += residual
        self.queues[pkt.prio].append(pkt)
        self.qbytes += pkt.wire
        self.prio_qbytes[pkt.prio] += pkt.wire
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if not self.busy:
            self._next()
        elif (
            self.preemptive
            and self.cur_pkt is not None
            and pkt.prio > self.cur_pkt.prio
        ):
            self._preempt()

    def _preempt(self) -> None:
        """Ideal link-level preemption: pause the in-flight packet."""
        remaining = self.cur_end_ps - self.sim.now
        paused = self.cur_pkt
        # The pending _tx_done event is found by rebuilding: simplest
        # correct approach is to mark the port idle and re-arm.  The
        # old completion event must be cancelled via a generation check.
        self._paused.append((paused, remaining))
        self.cur_pkt = None
        self.busy = False
        self._cancel_pending_tx()
        self._next()

    def _cancel_pending_tx(self) -> None:
        # BasePort scheduled _tx_done; we cannot keep a handle per
        # transmission without burdening the hot path, so preemptive
        # ports keep one.  Lazily created on first use.
        event = getattr(self, "_tx_event", None)
        if event is not None:
            Simulator.cancel(event)

    def _transmit(self, pkt: Packet) -> None:
        if not self.preemptive:
            super()._transmit(pkt)
            return
        duration = pkt.wire * self.ppb
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = self.sim.now + duration
        if self.probe is not None:
            self.probe.on_busy_change(self.sim.now, True)
        self._tx_event = self.sim.schedule(duration, self._tx_done)

    def _resume(self, pkt: Packet, remaining: int) -> None:
        self.busy = True
        self.cur_pkt = pkt
        self.cur_end_ps = self.sim.now + remaining
        if self.probe is not None:
            self.probe.on_busy_change(self.sim.now, True)
        if self.preemptive:
            self._tx_event = self.sim.schedule(remaining, self._tx_done)
        else:  # pragma: no cover - resume only exists with preemption on
            self.sim.schedule(remaining, self._tx_done)

    def _next(self) -> None:
        queues = self.queues
        for prio in range(N_PRIORITIES - 1, -1, -1):
            if self._paused and self._paused[-1][0].prio >= prio:
                pkt, remaining = self._paused.pop()
                self._resume(pkt, remaining)
                return
            if queues[prio]:
                pkt = queues[prio].popleft()
                self.qbytes -= pkt.wire
                self.prio_qbytes[prio] -= pkt.wire
                if self.probe is not None:
                    self.probe.on_queue_change(self.sim.now, self.qbytes)
                if self.trace_delays:
                    self._charge_waiters(pkt)
                self._transmit(pkt)
                return
        if self._paused:
            pkt, remaining = self._paused.pop()
            self._resume(pkt, remaining)

    def _charge_waiters(self, winner: Packet) -> None:
        """Attribute the winner's tx time to every packet left waiting.

        A queued packet waiting behind a *lower*-priority transmission is
        experiencing preemption lag; waiting behind equal-or-higher
        priority is plain queueing (Figure 14's two delay sources).
        """
        duration = winner.wire * self.ppb
        wprio = winner.prio
        for prio in range(N_PRIORITIES):
            queue = self.queues[prio]
            if not queue:
                continue
            if wprio < prio:
                for waiting in queue:
                    waiting.p_wait += duration
            else:
                for waiting in queue:
                    waiting.q_wait += duration


class PfabricPort(BasePort):
    """pFabric egress: smallest remaining-size first, drop the largest.

    ``fine_prio`` is the packet's remaining message bytes at send time
    (0 for ACKs/probes, which makes them most urgent).  The buffer is a
    couple of bandwidth-delay products, as in the pFabric paper.
    """

    __slots__ = ("queue", "qbytes", "buffer_bytes")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
        *,
        buffer_bytes: int,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self.queue: list[Packet] = []
        self.qbytes = 0
        self.buffer_bytes = buffer_bytes

    def enqueue(self, pkt: Packet) -> None:
        while self.qbytes + pkt.wire > self.buffer_bytes:
            victim = self._largest()
            if victim is None or victim.fine_prio <= pkt.fine_prio:
                victim = pkt  # the arrival is the least urgent: drop it
            if victim is pkt:
                self.drops += 1
                if self.probe is not None:
                    self.probe.on_drop(self.sim.now, pkt)
                return
            self.queue.remove(victim)
            self.qbytes -= victim.wire
            self.drops += 1
            if self.probe is not None:
                self.probe.on_drop(self.sim.now, victim)
        self.queue.append(pkt)
        self.qbytes += pkt.wire
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        if not self.busy:
            self._next()

    def _largest(self) -> Packet | None:
        if not self.queue:
            return None
        return max(self.queue, key=lambda p: p.fine_prio)

    def _next(self) -> None:
        if not self.queue:
            return
        best_index = 0
        best_prio = self.queue[0].fine_prio
        for index in range(1, len(self.queue)):
            prio = self.queue[index].fine_prio
            if prio < best_prio:
                best_prio = prio
                best_index = index
        pkt = self.queue.pop(best_index)
        self.qbytes -= pkt.wire
        if self.probe is not None:
            self.probe.on_queue_change(self.sim.now, self.qbytes)
        self._transmit(pkt)


class PullPort(BasePort):
    """Host NIC egress that pulls packets from the transport on demand."""

    __slots__ = ("source",)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gbps: int,
        deliver: Callable[[Packet], None],
        level: str,
    ) -> None:
        super().__init__(sim, name, gbps, deliver, level)
        self.source: Optional[Callable[[], Optional[Packet]]] = None

    def kick(self) -> None:
        """Tell the NIC new work may be available."""
        if not self.busy:
            self._next()

    def _next(self) -> None:
        if self.source is None:
            return
        pkt = self.source()
        if pkt is not None:
            self._transmit(pkt)
