"""Topology builders and path-time oracles.

``NetworkConfig`` defaults reproduce Figure 11: 144 hosts in 9 racks of
16, four 40 Gbps aggregation switches, 10 Gbps host links, 250 ns switch
delay, 1.5 us host software delay, per-packet spraying across uplinks.
Setting ``racks=1`` builds a single-switch cluster like the 16-node
CloudLab testbed of section 5.1.

The oracle methods (``min_oneway_ps``/``min_rpc_ps``) compute the best
possible delivery time of a message on an unloaded network, which is the
denominator of every slowdown number in the paper.
"""

from __future__ import annotations

import random
from heapq import heappush
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.core.cutthrough import plan_from_aggr, plan_from_tor, plan_local
from repro.core.engine import Simulator
from repro.core.faults import (FaultEvent, FaultInjector, LossRates,
                               install_loss)
from repro.core.host import Host
from repro.core.packet import FULL_WIRE, MAX_PAYLOAD, MIN_WIRE, Packet, wire_size
from repro.core.port import BasePort, PfabricPort, PullPort, QueuedPort
from repro.core.switch import Switch
from repro.core.units import NS, ps_per_byte

#: port queue discipline names accepted by NetworkConfig.queue_mode
QUEUE_MODES = ("priority", "pfabric")


@dataclass
class NetworkConfig:
    """Physical network parameters (defaults: the paper's Figure 11)."""

    racks: int = 9
    hosts_per_rack: int = 16
    aggrs: int = 4
    host_gbps: int = 10
    aggr_gbps: int = 40
    switch_delay_ns: int = 250
    software_delay_ns: int = 1500
    queue_mode: str = "priority"
    port_buffer_bytes: int | None = None       # None = unbounded
    pfabric_buffer_bytes: int = 24 * FULL_WIRE  # ~2 BDP, as in pFabric
    ecn_threshold_bytes: int | None = None      # DCTCP-style marking (PIAS)
    trim_threshold_bytes: int | None = None     # NDP trimming (8 full pkts)
    preemptive_links: bool = False              # Fig 14 hardware ablation
    #: idle-path cut-through (core/cutthrough.py): chain consecutive
    #: idle hops, eliding their per-hop events.  Pure event-count
    #: optimization — slowdown digests are byte-identical either way
    #: (pinned by the golden-digest tests and the bench property
    #: tests).  Default off: in CPython the chain bookkeeping costs
    #: about as much as the events it elides (see docs/PERFORMANCE.md),
    #: so the mode trades wall time for a ~1.4x smaller event count —
    #: enable it to A/B the event machinery or on runtimes where
    #: dispatch dominates.
    cut_through: bool = False
    seed: int = 1

    @property
    def n_hosts(self) -> int:
        return self.racks * self.hosts_per_rack

    @property
    def switch_delay_ps(self) -> int:
        return self.switch_delay_ns * NS

    @property
    def software_delay_ps(self) -> int:
        return self.software_delay_ns * NS

    def scaled(self, **overrides) -> "NetworkConfig":
        """Copy with overrides (used by quick-mode benchmarks)."""
        return replace(self, **overrides)


class Network:
    """A built network: hosts, switches, ports, and timing oracles."""

    def __init__(self, sim: Simulator, cfg: NetworkConfig) -> None:
        if cfg.queue_mode not in QUEUE_MODES:
            raise ValueError(f"unknown queue mode {cfg.queue_mode!r}")
        if cfg.racks < 1 or cfg.hosts_per_rack < 1:
            raise ValueError("need at least one rack with one host")
        if cfg.racks > 1 and cfg.aggrs < 1:
            raise ValueError("multi-rack topologies need aggregation switches")
        self.sim = sim
        self.cfg = cfg
        self.hosts: list[Host] = []
        self.tors: list[Switch] = []
        self.aggrs: list[Switch] = []
        self.host_up_ports: list[PullPort] = []
        self.tor_down_ports: list[BasePort] = []
        self.tor_up_ports: list[BasePort] = []       # flattened [tor][aggr]
        self.aggr_down_ports: list[BasePort] = []    # flattened [aggr][rack]
        self._spray = random.Random(cfg.seed * 7919 + 13)
        self._oneway_cache: dict[tuple[int, bool], int] = {}
        #: cut-through accounting: [chains planned, hops chained,
        #: diverts, materializes] (indices in core/cutthrough.py).
        self.cut_stats = [0, 0, 0, 0]
        self._build()

    @property
    def cut_through_chains(self) -> int:
        return self.cut_stats[0]

    @property
    def cut_through_hops(self) -> int:
        return self.cut_stats[1]

    @property
    def cut_through_diverts(self) -> int:
        return self.cut_stats[2]

    @property
    def cut_through_materializes(self) -> int:
        return self.cut_stats[3]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _make_switch_port(self, name: str, gbps: int, deliver, level: str) -> BasePort:
        cfg = self.cfg
        if cfg.queue_mode == "pfabric":
            port = PfabricPort(
                self.sim, name, gbps, deliver, level,
                buffer_bytes=cfg.pfabric_buffer_bytes,
            )
        else:
            port = QueuedPort(
                self.sim, name, gbps, deliver, level,
                buffer_bytes=cfg.port_buffer_bytes,
                ecn_bytes=cfg.ecn_threshold_bytes,
                trim_bytes=cfg.trim_threshold_bytes,
                preemptive=cfg.preemptive_links,
            )
        # Every arrival to a switch egress port funnels through its
        # switch's fixed ingress delay; cut-through relies on this both
        # for reservation soundness and for end-of-window tie-breaking.
        port.in_delay_ps = cfg.switch_delay_ps
        # Lineage stamps only exist to order cut-through chains against
        # real events; the default mode skips them entirely.
        port.lineage_on = self._cut_enabled(cfg.switch_delay_ps)
        return port

    def _build(self) -> None:
        cfg = self.cfg
        sim = self.sim
        for hid in range(cfg.n_hosts):
            self.hosts.append(Host(sim, hid, hid // cfg.hosts_per_rack,
                                   cfg.software_delay_ps))
        for rack in range(cfg.racks):
            self.tors.append(Switch(sim, f"tor{rack}", cfg.switch_delay_ps,
                                    "tor"))
        if cfg.racks > 1:
            for a in range(cfg.aggrs):
                self.aggrs.append(Switch(sim, f"aggr{a}", cfg.switch_delay_ps,
                                         "aggr"))

        # Fused per-switch ingress closures: routing + ingress-delay
        # scheduling in one frame, with arrival fusion (see below).  The
        # closures capture the port lists, which are filled in next and
        # indexed per packet, so creation order is safe.
        tor_ingress = [self._make_tor_ingress(rack)
                       for rack in range(cfg.racks)]
        aggr_ingress = [self._make_aggr_ingress(a)
                        for a in range(len(self.aggrs))]
        lineage_on = self._cut_enabled(cfg.switch_delay_ps)

        # Host uplinks (pull model) and TOR downlinks.
        for host in self.hosts:
            tor = self.tors[host.rack]
            up = PullPort(sim, f"h{host.hid}->tor{host.rack}", cfg.host_gbps,
                          tor_ingress[host.rack], "host_up")
            up.lineage_on = lineage_on
            host.egress = up
            self.host_up_ports.append(up)
            down = self._make_switch_port(
                f"tor{host.rack}->h{host.hid}", cfg.host_gbps,
                host.ingress, "tor_down")
            self.tor_down_ports.append(down)
            tor.ports.append(down)

        # TOR uplinks and aggregation downlinks.
        if cfg.racks > 1:
            for rack, tor in enumerate(self.tors):
                for a, aggr in enumerate(self.aggrs):
                    up = self._make_switch_port(
                        f"tor{rack}->aggr{a}", cfg.aggr_gbps,
                        aggr_ingress[a], "tor_up")
                    self.tor_up_ports.append(up)
                    tor.ports.append(up)
            for a, aggr in enumerate(self.aggrs):
                for rack, tor in enumerate(self.tors):
                    down = self._make_switch_port(
                        f"aggr{a}->tor{rack}", cfg.aggr_gbps,
                        tor_ingress[rack], "aggr_down")
                    self.aggr_down_ports.append(down)
                    aggr.ports.append(down)

        # Routing closures.
        hosts_per_rack = cfg.hosts_per_rack
        n_aggrs = cfg.aggrs
        tor_down = self.tor_down_ports
        tor_up = self.tor_up_ports
        aggr_down = self.aggr_down_ports
        spray = self._spray

        # Inline of random.Random.randrange(n_aggrs) — the same
        # getrandbits rejection loop CPython's _randbelow_with_getrandbits
        # runs, minus two Python frames per sprayed packet.  Bit-exact:
        # the RNG stream (and so every sprayed path) is unchanged.
        getrandbits = spray.getrandbits
        spray_bits = n_aggrs.bit_length() if n_aggrs else 0

        def make_tor_route(rack: int):
            up_base = rack * n_aggrs

            def route(pkt: Packet):
                dst = pkt.dst
                if dst // hosts_per_rack == rack:
                    return tor_down[dst]
                # Per-packet spraying: any aggregation switch works.
                r = getrandbits(spray_bits)
                while r >= n_aggrs:
                    r = getrandbits(spray_bits)
                return tor_up[up_base + r]

            def route_single(pkt: Packet):
                return tor_down[pkt.dst]

            return route if cfg.racks > 1 else route_single

        for rack, tor in enumerate(self.tors):
            tor.route = make_tor_route(rack)

        def make_aggr_route(a: int):
            base = a * cfg.racks

            def route(pkt: Packet):
                return aggr_down[base + pkt.dst // hosts_per_rack]

            return route

        for a, aggr in enumerate(self.aggrs):
            aggr.route = make_aggr_route(a)

    # ------------------------------------------------------------------
    # fused switch ingress (the per-hop hot path)
    # ------------------------------------------------------------------
    #
    # A packet hopping through a switch costs two events in the naive
    # model: the upstream port's tx-done and the post-switch-delay
    # enqueue.  The fused ingress closures below collapse routing and
    # delay scheduling into one frame, and apply *arrival fusion*: when
    # the egress port is busy transmitting strictly past the packet's
    # arrival time, nothing can observe the queue before the packet
    # really arrives, so it is appended immediately and the arrival
    # event is skipped entirely.  The ``pending_arrivals`` counter keeps
    # FIFO order exact: once one packet takes the scheduled-event path,
    # later packets must too, or they could overtake it in the queue.
    # Fusion is disabled wherever queue state is observable in between:
    # finite buffers, ECN, trimming, preemption (``fuse_ok``), attached
    # probes, or delay tracing.
    #
    # The complementary *idle* case is handled by cut-through
    # (core/cutthrough.py): when the routed egress port is idle and
    # clean, the ingress tries to chain the packet's remaining hops
    # analytically, reserving each port's link window and scheduling a
    # single fused delivery event instead of per-hop machinery.  Ports
    # resolve reservation conflicts in ``QueuedPort.enqueue`` (divert /
    # materialize), so a queue forming mid-chain falls back to the slow
    # path with byte-identical results.  The ``cut`` gate below bakes
    # in everything uniform across a built network (mode flag, positive
    # switch delay, priority queueing, no buffers/ECN/trimming), so the
    # planners only re-check per-port dynamic state.

    def _make_tor_ingress(self, rack: int):
        cfg = self.cfg
        sim = self.sim
        tor = self.tors[rack]
        delay = tor.delay_ps
        hosts_per_rack = cfg.hosts_per_rack
        n_aggrs = cfg.aggrs
        n_racks = cfg.racks
        tor_down = self.tor_down_ports
        tor_up = self.tor_up_ports
        aggr_down = self.aggr_down_ports
        aggrs = self.aggrs
        tors = self.tors
        up_base = rack * n_aggrs
        single = cfg.racks == 1
        cut = self._cut_enabled(delay)
        stats = self.cut_stats
        # Bit-exact inline of random.Random.randrange(n_aggrs) — same
        # getrandbits rejection loop, no Python frames.
        getrandbits = self._spray.getrandbits
        spray_bits = n_aggrs.bit_length() if n_aggrs else 0

        lo = rack * hosts_per_rack
        hi = lo + hosts_per_rack

        def ingress(pkt: Packet) -> None:
            if tor.drop_filter is not None and tor.drop_filter(pkt):
                tor.injected_drops += 1
                if pkt.pool is not None:
                    pkt.pool.free(pkt)
                return
            dst = pkt.dst
            local = single or lo <= dst < hi
            if local:
                port = tor_down[dst]
            else:
                # Per-packet spraying: the RNG draw happens here, before
                # any cut-through decision, so the spray stream (and
                # every sprayed path) is identical in both modes.
                r = getrandbits(spray_bits)
                while r >= n_aggrs:
                    r = getrandbits(spray_bits)
                port = tor_up[up_base + r]
            if delay == 0:
                port.enqueue(pkt)
                return
            now = sim.now
            arrival = now + delay
            if port.busy:
                if (port.fuse_ok and now > port.last_arrival_ps
                        and port.probe is None
                        and not port.trace_delays
                        and (port.cur_end_ps > arrival
                             or (port.cur_end_ps
                                 + port.qbytes * port.ppb > arrival
                                 and not (port._nonempty
                                          & ((1 << pkt.prio) - 1))))):
                    # Busy past the arrival — or busy with enough
                    # queued backlog at-or-above this packet's priority
                    # that it cannot be dequeued before it really
                    # arrives (strict priorities: only lower-priority
                    # queues could drain after it).  Either way the
                    # early append is invisible, so the arrival event
                    # is skipped entirely.
                    port.enqueue(pkt)
                    return
            elif cut:
                if local:
                    # Idle receiver downlink: absorb the delivery hop.
                    if plan_local(sim, pkt, now, stats, tor, port):
                        return
                else:
                    # Idle uplink: chain as much of the remaining
                    # cross-rack path as is idle and clean.
                    dst_rack = dst // hosts_per_rack
                    if plan_from_tor(sim, pkt, now, stats, tor, port,
                                     aggrs[r],
                                     aggr_down[r * n_racks + dst_rack],
                                     tors[dst_rack], tor_down[dst]):
                        return
            port.last_arrival_ps = arrival
            sim._seq += 1
            if cut:
                # Arrival lineage stamps (shifted one hop deep):
                # landing time + event seq, read by the cut-through
                # start-tie resolution (core/cutthrough.py).
                pkt.prev_arrival_ps = pkt.arrival_ps
                pkt.prev_rank_seq = pkt.rank_seq
                pkt.arrival_ps = arrival
                pkt.rank_seq = sim._seq
            event = [arrival, sim._seq, port.enqueue_cb, pkt]
            if arrival < sim._horizon:
                heappush(sim._heap, event)
            else:
                sim._file_far(event, arrival)

        return ingress

    def _cut_enabled(self, delay_ps: int) -> bool:
        """Whether ingress closures should attempt cut-through at all:
        everything here is uniform across the built network, so the
        per-packet planners only re-check per-port dynamic state."""
        cfg = self.cfg
        return (cfg.cut_through and delay_ps > 0
                and cfg.queue_mode == "priority"
                and cfg.port_buffer_bytes is None
                and cfg.ecn_threshold_bytes is None
                and cfg.trim_threshold_bytes is None)

    def _make_aggr_ingress(self, a: int):
        cfg = self.cfg
        sim = self.sim
        aggr = self.aggrs[a]
        delay = aggr.delay_ps
        hosts_per_rack = cfg.hosts_per_rack
        aggr_down = self.aggr_down_ports
        tor_down = self.tor_down_ports
        tors = self.tors
        base = a * cfg.racks
        cut = self._cut_enabled(delay)
        stats = self.cut_stats

        def ingress(pkt: Packet) -> None:
            if aggr.drop_filter is not None and aggr.drop_filter(pkt):
                aggr.injected_drops += 1
                if pkt.pool is not None:
                    pkt.pool.free(pkt)
                return
            dst = pkt.dst
            dst_rack = dst // hosts_per_rack
            port = aggr_down[base + dst_rack]
            if delay == 0:
                port.enqueue(pkt)
                return
            now = sim.now
            arrival = now + delay
            if port.busy:
                if (port.fuse_ok and now > port.last_arrival_ps
                        and port.probe is None
                        and not port.trace_delays
                        and (port.cur_end_ps > arrival
                             or (port.cur_end_ps
                                 + port.qbytes * port.ppb > arrival
                                 and not (port._nonempty
                                          & ((1 << pkt.prio) - 1))))):
                    # See the TOR ingress: backlog-aware fusion.
                    port.enqueue(pkt)
                    return
            elif cut and plan_from_aggr(sim, pkt, now, stats, aggr, port,
                                        tors[dst_rack], tor_down[dst]):
                return
            port.last_arrival_ps = arrival
            sim._seq += 1
            if cut:
                # Arrival lineage stamps (shifted one hop deep):
                # landing time + event seq, read by the cut-through
                # start-tie resolution (core/cutthrough.py).
                pkt.prev_arrival_ps = pkt.arrival_ps
                pkt.prev_rank_seq = pkt.rank_seq
                pkt.arrival_ps = arrival
                pkt.rank_seq = sim._seq
            event = [arrival, sim._seq, port.enqueue_cb, pkt]
            if arrival < sim._horizon:
                heappush(sim._heap, event)
            else:
                sim._file_far(event, arrival)

        return ingress

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    def rack_of(self, hid: int) -> int:
        return hid // self.cfg.hosts_per_rack

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def all_switch_ports(self) -> Iterable[BasePort]:
        yield from self.tor_down_ports
        yield from self.tor_up_ports
        yield from self.aggr_down_ports

    def all_switches(self) -> list[Switch]:
        return [*self.tors, *self.aggrs]

    def set_drop_filter(self, fn) -> None:
        """Install a packet-loss injector on every switch (tests)."""
        for switch in self.all_switches():
            switch.drop_filter = fn

    def may_drop(self) -> bool:
        """True when this fabric can destroy packets outright — injected
        Bernoulli loss or an armed fault schedule (black holes, dead
        switches).  Transports consult this at attach time to switch on
        their loss-recovery machinery; congestion-native drops (pFabric
        priority-drop, NDP trimming) are recovered by each protocol's
        clean-path mechanics and do not count.
        """
        if getattr(self, "fault_injector", None) is not None:
            return True
        return any(switch.drop_filter is not None
                   for switch in self.all_switches())

    def attach_transports(self, factory) -> list:
        """Build one transport per host via ``factory(host) -> transport``."""
        transports = []
        for host in self.hosts:
            transport = factory(host)
            host.attach(transport)
            transports.append(transport)
        return transports

    # ------------------------------------------------------------------
    # timing oracles
    # ------------------------------------------------------------------

    def rtt_ps(self, same_rack: bool = False) -> int:
        """Grant-to-data round trip: small control packet one way, a
        full-size data packet back, with software delay at both ends."""
        ctrl = self._packet_transit_ps(MIN_WIRE, same_rack)
        data = self._packet_transit_ps(FULL_WIRE, same_rack)
        return ctrl + data + 2 * self.cfg.software_delay_ps

    def rtt_bytes(self, same_rack: bool = False) -> int:
        """Bytes a 10 Gbps sender can push during one RTT (paper: ~9.7 KB)."""
        return self.rtt_ps(same_rack) // ps_per_byte(self.cfg.host_gbps)

    def _packet_transit_ps(self, wire: int, same_rack: bool) -> int:
        """End-to-end time of one packet on an idle path (no software)."""
        cfg = self.cfg
        ppb_h = ps_per_byte(cfg.host_gbps)
        sw = cfg.switch_delay_ps
        if same_rack or cfg.racks == 1:
            return wire * ppb_h + sw + wire * ppb_h
        ppb_a = ps_per_byte(cfg.aggr_gbps)
        return (wire * ppb_h + sw + wire * ppb_a + sw
                + wire * ppb_a + sw + wire * ppb_h)

    def min_oneway_ps(self, length: int, same_rack: bool = False) -> int:
        """Best possible one-way message time on an unloaded network.

        Same rack (one switch, one path): packets cannot reorder, so the
        exact store-and-forward FIFO pipeline applies — the sender
        serializes packets back to back and the receiver's downlink is
        the sequential bottleneck stage.

        Cross rack: per-packet spraying lets a small trailing packet
        overtake full packets on another aggregation path, so the tight
        achievable bound is taken over the k largest packets: the last
        of the k largest to leave the host cannot leave before their
        combined serialization time, and then still needs its own
        transit and downlink serialization.  Aggregation hops are pure
        delay (4x faster links cannot queue behind one 10 Gbps source).

        Includes the receiver's software delay, matching the paper's
        "minimum one-way time for a small message is 2.3 us".
        """
        key = (length, same_rack or self.cfg.racks == 1)
        cached = self._oneway_cache.get(key)
        if cached is not None:
            return cached
        cfg = self.cfg
        ppb_h = ps_per_byte(cfg.host_gbps)
        sw = cfg.switch_delay_ps

        # The packet list is `full` identical FULL_WIRE frames plus an
        # optional smaller trailer, so both bounds below close-form over
        # the uniform prefix instead of building and scanning a list
        # whose length is the message's packet count (this runs once
        # per distinct message size, and W4/W5 sizes rarely repeat).
        full, rest = divmod(length, MAX_PAYLOAD)
        rest_wire = wire_size(rest) if rest else 0

        if key[1]:  # single switch on the path: exact FIFO pipeline
            # With equal frames the downlink is saturated back to back:
            # it frees at (k+1) * wire-time + switch delay; the smaller
            # trailer then appends its own serialization.
            if full:
                downlink_free = (full + 1) * FULL_WIRE * ppb_h + sw
                if rest:
                    downlink_free += rest_wire * ppb_h
            else:
                downlink_free = 2 * rest_wire * ppb_h + sw
            result = downlink_free + cfg.software_delay_ps
        else:
            ppb_a = ps_per_byte(cfg.aggr_gbps)
            # max over the k-largest-prefix bound: strictly increasing
            # in k across the uniform prefix, so only k = full and the
            # full-plus-trailer candidates can win.
            best = 0
            if full:
                cum = full * FULL_WIRE * ppb_h
                best = cum + 3 * sw + 2 * FULL_WIRE * ppb_a \
                    + FULL_WIRE * ppb_h
            else:
                cum = 0
            if rest:
                cum += rest_wire * ppb_h
                candidate = cum + 3 * sw + 2 * rest_wire * ppb_a \
                    + rest_wire * ppb_h
                if candidate > best:
                    best = candidate
            result = best + cfg.software_delay_ps
        self._oneway_cache[key] = result
        return result

    def min_rpc_ps(self, request: int, response: int, same_rack: bool = False) -> int:
        """Best possible echo-RPC round trip (client send -> response done)."""
        return (self.min_oneway_ps(request, same_rack)
                + self.min_oneway_ps(response, same_rack))

    # Endpoint-addressed oracle forms: the metrics layer asks about a
    # concrete (src, dst) pair and the network decides which path tier
    # applies.  On the 2-level tree that is exactly the same-rack split
    # (byte-identical to the direct calls); FabricNetwork overrides
    # these with pod-aware tiers.

    def min_oneway_between(self, src: int, dst: int, length: int) -> int:
        return self.min_oneway_ps(length, self.same_rack(src, dst))

    def min_rpc_between(self, src: int, dst: int,
                        request: int, response: int) -> int:
        return self.min_rpc_ps(request, response, self.same_rack(src, dst))


def build_network(sim: Simulator, cfg: NetworkConfig | None = None) -> Network:
    """Construct a network; default configuration is the paper's Fig 11."""
    return Network(sim, cfg or NetworkConfig())


# ---------------------------------------------------------------------------
# declarative fabrics: 3-level trees, oversubscription, loss, faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """A declarative fabric: shape, per-layer speeds, loss, and faults.

    ``levels=2`` describes the paper's ToR/aggr tree (``pods`` must be 1
    and ``cores`` 0); ``levels=3`` adds a core layer: ``pods`` pods of
    ``racks`` racks each, ``aggrs`` aggregation switches per pod, and
    ``cores`` core switches total.  Core switch ``c`` connects to
    aggregation position ``c // (cores // aggrs)`` in every pod, so each
    aggr has ``cores // aggrs`` core uplinks and any two pods are
    connected through every core.

    Oversubscription is an emergent ratio of the declared shape
    (``tor_oversubscription``/``aggr_oversubscription``), not an input:
    pick ``hosts_per_rack``/``aggrs``/``cores`` and link speeds to hit a
    target ratio.

    A spec with ``loss`` all zero and no ``faults`` is *clean* and
    lowers to the canonical fused-ingress :class:`Network` builder —
    byte-identical digests to an equivalent :class:`NetworkConfig` run
    (pinned by the golden test in ``tests/test_faults.py``).
    """

    levels: int = 2
    pods: int = 1
    racks: int = 3            # per pod
    hosts_per_rack: int = 8
    aggrs: int = 2            # per pod
    cores: int = 0            # total; levels=3 only
    host_gbps: int = 10
    aggr_gbps: int = 40
    core_gbps: int = 100
    switch_delay_ns: int = 250
    software_delay_ns: int = 1500
    loss: LossRates = field(default_factory=LossRates)
    faults: tuple = ()        # of FaultEvent

    def __post_init__(self) -> None:
        if self.levels not in (2, 3):
            raise ValueError(
                f"TopologySpec.levels must be 2 or 3, got {self.levels!r}")
        if self.levels == 2:
            if self.pods != 1:
                raise ValueError(
                    f"TopologySpec.pods must be 1 on a 2-level fabric, "
                    f"got {self.pods!r}")
            if self.cores != 0:
                raise ValueError(
                    f"TopologySpec.cores must be 0 on a 2-level fabric, "
                    f"got {self.cores!r}")
        else:
            if self.pods < 2:
                raise ValueError(
                    f"TopologySpec.pods must be >= 2 on a 3-level fabric, "
                    f"got {self.pods!r}")
            if self.cores < self.aggrs or self.cores % self.aggrs:
                raise ValueError(
                    f"TopologySpec.cores must be a positive multiple of "
                    f"aggrs ({self.aggrs}), got {self.cores!r}")
        if self.racks < 1:
            raise ValueError(
                f"TopologySpec.racks must be >= 1, got {self.racks!r}")
        if self.hosts_per_rack < 1:
            raise ValueError(
                f"TopologySpec.hosts_per_rack must be >= 1, "
                f"got {self.hosts_per_rack!r}")
        if self.aggrs < 1 and (self.levels == 3 or self.racks > 1):
            raise ValueError(
                f"TopologySpec.aggrs must be >= 1 on a multi-rack fabric, "
                f"got {self.aggrs!r}")
        if self.host_gbps < 1:
            raise ValueError(
                f"TopologySpec.host_gbps must be >= 1, "
                f"got {self.host_gbps!r}")
        # The oracles assume upper layers never serialize slower than
        # the layer below (a trailing packet can then never queue behind
        # itself mid-tree) — standard fat-tree speed mixes all qualify.
        if self.aggr_gbps < self.host_gbps:
            raise ValueError(
                f"TopologySpec.aggr_gbps must be >= host_gbps "
                f"({self.host_gbps}), got {self.aggr_gbps!r}")
        if self.levels == 3 and self.core_gbps < self.aggr_gbps:
            raise ValueError(
                f"TopologySpec.core_gbps must be >= aggr_gbps "
                f"({self.aggr_gbps}), got {self.core_gbps!r}")
        if self.switch_delay_ns < 0:
            raise ValueError(
                f"TopologySpec.switch_delay_ns must be >= 0, "
                f"got {self.switch_delay_ns!r}")
        if self.software_delay_ns < 0:
            raise ValueError(
                f"TopologySpec.software_delay_ns must be >= 0, "
                f"got {self.software_delay_ns!r}")
        if not isinstance(self.loss, LossRates):
            raise ValueError(
                f"TopologySpec.loss must be a LossRates, got {self.loss!r}")
        object.__setattr__(self, "faults", tuple(self.faults))
        for i, ev in enumerate(self.faults):
            if not isinstance(ev, FaultEvent):
                raise ValueError(
                    f"TopologySpec.faults[{i}] must be a FaultEvent, "
                    f"got {ev!r}")

    # -- shape arithmetic ------------------------------------------------

    @property
    def racks_total(self) -> int:
        return self.pods * self.racks

    @property
    def n_hosts(self) -> int:
        return self.racks_total * self.hosts_per_rack

    @property
    def core_links_per_aggr(self) -> int:
        return self.cores // self.aggrs if self.aggrs else 0

    @property
    def tor_oversubscription(self) -> float:
        """Host capacity entering a ToR over its uplink capacity."""
        if self.racks_total == 1:
            return 0.0
        return ((self.hosts_per_rack * self.host_gbps)
                / (self.aggrs * self.aggr_gbps))

    @property
    def aggr_oversubscription(self) -> float:
        """ToR capacity entering an aggr over its core-link capacity."""
        if self.levels == 2:
            return 0.0
        return ((self.racks * self.aggr_gbps)
                / (self.core_links_per_aggr * self.core_gbps))

    def is_clean(self) -> bool:
        """No loss, no faults: eligible for canonical-builder lowering."""
        return not self.loss.any() and not self.faults

    # -- payload round-trip ---------------------------------------------

    def to_payload(self) -> dict:
        return {
            "levels": self.levels, "pods": self.pods, "racks": self.racks,
            "hosts_per_rack": self.hosts_per_rack, "aggrs": self.aggrs,
            "cores": self.cores, "host_gbps": self.host_gbps,
            "aggr_gbps": self.aggr_gbps, "core_gbps": self.core_gbps,
            "switch_delay_ns": self.switch_delay_ns,
            "software_delay_ns": self.software_delay_ns,
            "loss": self.loss.to_payload(),
            "faults": [ev.to_payload() for ev in self.faults],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TopologySpec":
        data = dict(payload)
        loss = data.pop("loss", None)
        if not isinstance(loss, LossRates):
            loss = LossRates.from_payload(loss)
        faults = tuple(
            ev if isinstance(ev, FaultEvent) else FaultEvent.from_payload(ev)
            for ev in data.pop("faults", None) or ())
        return cls(loss=loss, faults=faults, **data)


class FabricNetwork(Network):
    """A fabric built from a :class:`TopologySpec`: 3-level routing with
    liveness-aware spraying and mid-simulation reroute.

    Unlike the canonical builder's fused ingress closures, every hop
    goes through ``Switch.ingress`` so the routing decision consults
    mutable liveness state: per-link up/down flags and per-switch
    ``dead`` flags, maintained by :meth:`apply_fault` and folded into
    the *live lists* the spray draws from.  A route with no live egress
    returns ``None`` and the packet is black-holed (counted).

    The spray RNG is the same ``seed*7919+13`` stream as the canonical
    builder; with faults the draw count per packet depends only on the
    (deterministic) fault schedule, so two runs of the same spec + seed
    replay byte-exactly.
    """

    def __init__(self, sim: Simulator, spec: TopologySpec, *,
                 seed: int = 1, **overrides) -> None:
        if overrides.pop("cut_through", False):
            raise ValueError(
                "net override 'cut_through' is not supported on a "
                "FabricNetwork (chained hops would bypass fault checks)")
        self.spec = spec
        cfg = NetworkConfig(
            racks=spec.racks_total, hosts_per_rack=spec.hosts_per_rack,
            aggrs=spec.pods * spec.aggrs if spec.racks_total > 1 else 0,
            host_gbps=spec.host_gbps, aggr_gbps=spec.aggr_gbps,
            switch_delay_ns=spec.switch_delay_ns,
            software_delay_ns=spec.software_delay_ns,
            seed=seed, **overrides)
        super().__init__(sim, cfg)

    # -- construction ----------------------------------------------------

    def _build(self) -> None:  # overrides the fused canonical builder
        spec = self.spec
        cfg = self.cfg
        sim = self.sim
        P, R, H, A = spec.pods, spec.racks, spec.hosts_per_rack, spec.aggrs
        C, K = spec.cores, spec.core_links_per_aggr
        racks_total = spec.racks_total
        multi = racks_total > 1

        self.cores: list[Switch] = []
        self.aggr_up_ports: list[BasePort] = []    # flattened [aggr][k]
        self.core_down_ports: list[BasePort] = []  # flattened [core][pod]
        self.reroutes = 0
        self.fault_injector: FaultInjector | None = None
        self._xpod_cache: dict[int, int] = {}
        self._link_ok: dict[str, bool] = {}
        self._switch_by_name: dict[str, Switch] = {}
        #: link key -> [(directional egress port, owning switch), ...];
        #: a link-down fault flushes both directions' buffers
        self._link_ports: dict[str, list] = {}

        for hid in range(spec.n_hosts):
            self.hosts.append(Host(sim, hid, hid // H, cfg.software_delay_ps))
        for g in range(racks_total):
            self.tors.append(Switch(sim, f"tor{g}", cfg.switch_delay_ps,
                                    "tor"))
        if multi:
            for p in range(P):
                for a in range(A):
                    self.aggrs.append(Switch(sim, f"aggr{p}.{a}",
                                             cfg.switch_delay_ps, "aggr"))
        if spec.levels == 3:
            for c in range(C):
                self.cores.append(Switch(sim, f"core{c}",
                                         cfg.switch_delay_ps, "core"))
        for switch in (*self.tors, *self.aggrs, *self.cores):
            self._switch_by_name[switch.name] = switch

        # Ports: host access links, then one port per directed
        # inter-switch link, flattened with fixed strides.
        for host in self.hosts:
            g = host.rack
            tor = self.tors[g]
            up = PullPort(sim, f"h{host.hid}->tor{g}", cfg.host_gbps,
                          tor.ingress, "host_up")
            host.egress = up
            self.host_up_ports.append(up)
            down = self._make_switch_port(
                f"tor{g}->h{host.hid}", cfg.host_gbps,
                host.ingress, "tor_down")
            self.tor_down_ports.append(down)
            tor.ports.append(down)
        if multi:
            for g, tor in enumerate(self.tors):
                p = g // R
                for a in range(A):
                    aggr = self.aggrs[p * A + a]
                    up = self._make_switch_port(
                        f"{tor.name}->{aggr.name}", cfg.aggr_gbps,
                        aggr.ingress, "tor_up")
                    self.tor_up_ports.append(up)
                    tor.ports.append(up)
                    self._link_ok[f"{tor.name}:{aggr.name}"] = True
                    self._link_ports[f"{tor.name}:{aggr.name}"] = [(up, tor)]
            for j, aggr in enumerate(self.aggrs):
                p = j // A
                for r in range(R):
                    tor = self.tors[p * R + r]
                    down = self._make_switch_port(
                        f"{aggr.name}->{tor.name}", cfg.aggr_gbps,
                        tor.ingress, "aggr_down")
                    self.aggr_down_ports.append(down)
                    aggr.ports.append(down)
                    self._link_ports[f"{tor.name}:{aggr.name}"].append(
                        (down, aggr))
        if spec.levels == 3:
            for j, aggr in enumerate(self.aggrs):
                a = j % A
                for k in range(K):
                    core = self.cores[a * K + k]
                    up = self._make_switch_port(
                        f"{aggr.name}->{core.name}", spec.core_gbps,
                        core.ingress, "aggr_up")
                    self.aggr_up_ports.append(up)
                    aggr.ports.append(up)
                    self._link_ok[f"{aggr.name}:{core.name}"] = True
                    self._link_ports[f"{aggr.name}:{core.name}"] = [(up, aggr)]
            for c, core in enumerate(self.cores):
                a = c // K
                for p in range(P):
                    aggr = self.aggrs[p * A + a]
                    down = self._make_switch_port(
                        f"{core.name}->{aggr.name}", spec.core_gbps,
                        aggr.ingress, "core_down")
                    self.core_down_ports.append(down)
                    core.ports.append(down)
                    self._link_ports[f"{aggr.name}:{core.name}"].append(
                        (down, core))

        # Liveness state the route closures read.  The live lists are
        # mutated *in place* by _recompute_live so closures capturing
        # them see every fault immediately.
        self._tor_live = [list(range(A)) if multi else []
                          for _ in range(racks_total)]
        self._aggr_core_live = [list(range(K)) for _ in self.aggrs]
        self._aggr_down_ok = [[True] * R for _ in self.aggrs]
        self._core_down_ok = [[True] * P for _ in self.cores]

        tor_down = self.tor_down_ports
        tor_up = self.tor_up_ports
        aggr_down = self.aggr_down_ports
        aggr_up = self.aggr_up_ports
        core_down = self.core_down_ports
        spray = self._spray
        pod_hosts = R * H

        def make_tor_route(g: int):
            lo = g * H
            hi = lo + H
            live = self._tor_live[g]

            def route(pkt: Packet):
                dst = pkt.dst
                if lo <= dst < hi:
                    return tor_down[dst]
                n = len(live)
                if n == 0:
                    return None
                a = live[0] if n == 1 else live[spray.randrange(n)]
                return tor_up[g * A + a]

            def route_single(pkt: Packet):
                return tor_down[pkt.dst]

            return route if multi else route_single

        for g, tor in enumerate(self.tors):
            tor.route = make_tor_route(g)

        def make_aggr_route(j: int):
            p = j // A
            pod_lo = p * pod_hosts
            pod_hi = pod_lo + pod_hosts
            down_ok = self._aggr_down_ok[j]
            core_live = self._aggr_core_live[j]

            def route(pkt: Packet):
                dst = pkt.dst
                if pod_lo <= dst < pod_hi:
                    r = (dst - pod_lo) // H
                    if not down_ok[r]:
                        return None
                    return aggr_down[j * R + r]
                n = len(core_live)
                if n == 0:
                    return None
                k = core_live[0] if n == 1 else core_live[spray.randrange(n)]
                return aggr_up[j * K + k]

            return route

        for j, aggr in enumerate(self.aggrs):
            aggr.route = make_aggr_route(j)

        def make_core_route(c: int):
            down_ok = self._core_down_ok[c]

            def route(pkt: Packet):
                p = pkt.dst // pod_hosts
                if not down_ok[p]:
                    return None
                return core_down[c * P + p]

            return route

        for c, core in enumerate(self.cores):
            core.route = make_core_route(c)

    # -- fault application ----------------------------------------------

    def validate_fault_target(self, ev: FaultEvent, index: int) -> None:
        """Raise, naming the offending event, if the target is unknown."""
        if ev.kind == "switch":
            if ev.target not in self._switch_by_name:
                raise ValueError(
                    f"faults[{index}].target {ev.target!r} is not a switch "
                    f"of this fabric")
        elif ev.target not in self._link_ok:
            raise ValueError(
                f"faults[{index}].target {ev.target!r} is not an "
                f"inter-switch link of this fabric")

    def apply_fault(self, ev: FaultEvent) -> None:
        """Flip one link or switch and reroute the live spray sets.

        A down event also flushes the failed element's egress buffers:
        the line card loses power, so queued packets are destroyed
        (credited to the owning switch's ``fault_drops``).  In-flight
        packets finish serializing — their bits are already on the
        wire — and die at the dead switch's ingress instead.
        """
        down = ev.action == "down"
        if ev.kind == "switch":
            switch = self._switch_by_name[ev.target]
            switch.dead = down
            if down:
                for port in switch.ports:
                    switch.fault_drops += port.flush()
        else:
            self._link_ok[ev.target] = not down
            if down:
                for port, owner in self._link_ports[ev.target]:
                    owner.fault_drops += port.flush()
        self._recompute_live()

    def _recompute_live(self) -> None:
        """Rebuild every live list in place from link/switch liveness.

        Cold path (runs once per applied fault).  Each spray set whose
        membership changed counts as one reroute.
        """
        spec = self.spec
        P, R, A, K = spec.pods, spec.racks, spec.aggrs, spec.core_links_per_aggr
        link_ok = self._link_ok
        changed = 0
        if spec.racks_total > 1:
            for g, tor in enumerate(self.tors):
                p = g // R
                new = [a for a in range(A)
                       if link_ok[f"{tor.name}:aggr{p}.{a}"]
                       and not self.aggrs[p * A + a].dead]
                live = self._tor_live[g]
                if new != live:
                    live[:] = new
                    changed += 1
        for j, aggr in enumerate(self.aggrs):
            p, a = divmod(j, A)
            if K:
                new = [k for k in range(K)
                       if link_ok[f"{aggr.name}:core{a * K + k}"]
                       and not self.cores[a * K + k].dead]
                live = self._aggr_core_live[j]
                if new != live:
                    live[:] = new
                    changed += 1
            down_ok = self._aggr_down_ok[j]
            for r in range(R):
                tor = self.tors[p * R + r]
                down_ok[r] = (link_ok[f"{tor.name}:{aggr.name}"]
                              and not tor.dead)
        for c, core in enumerate(self.cores):
            a = c // K
            down_ok = self._core_down_ok[c]
            for p in range(P):
                aggr = self.aggrs[p * A + a]
                down_ok[p] = (link_ok[f"{aggr.name}:{core.name}"]
                              and not aggr.dead)
        self.reroutes += changed

    # -- accessors -------------------------------------------------------

    def pod_of(self, hid: int) -> int:
        return hid // (self.spec.racks * self.spec.hosts_per_rack)

    def same_pod(self, a: int, b: int) -> bool:
        return self.pod_of(a) == self.pod_of(b)

    def all_switch_ports(self) -> Iterable[BasePort]:
        yield from self.tor_down_ports
        yield from self.tor_up_ports
        yield from self.aggr_down_ports
        yield from self.aggr_up_ports
        yield from self.core_down_ports

    def all_switches(self) -> list[Switch]:
        return [*self.tors, *self.aggrs, *self.cores]

    # -- timing oracles --------------------------------------------------

    def _packet_transit_ps(self, wire: int, same_rack: bool) -> int:
        """Worst-tier single-packet transit (cross-pod on 3 levels)."""
        if same_rack or self.spec.levels == 2:
            return super()._packet_transit_ps(wire, same_rack)
        cfg = self.cfg
        ppb_h = ps_per_byte(cfg.host_gbps)
        ppb_a = ps_per_byte(cfg.aggr_gbps)
        ppb_c = ps_per_byte(self.spec.core_gbps)
        sw = cfg.switch_delay_ps
        return (wire * ppb_h + sw + wire * ppb_a + sw + wire * ppb_c + sw
                + wire * ppb_c + sw + wire * ppb_a + sw + wire * ppb_h)

    def min_oneway_between(self, src: int, dst: int, length: int) -> int:
        if self.same_rack(src, dst):
            return self.min_oneway_ps(length, True)
        if self.spec.levels == 2 or self.same_pod(src, dst):
            # Intra-pod: exactly the 2-level cross-rack bound.
            return self.min_oneway_ps(length, False)
        return self._min_oneway_xpod_ps(length)

    def min_rpc_between(self, src: int, dst: int,
                        request: int, response: int) -> int:
        return (self.min_oneway_between(src, dst, request)
                + self.min_oneway_between(dst, src, response))

    def _min_oneway_xpod_ps(self, length: int) -> int:
        """Cross-pod best case: the 2-level k-largest bound extended by
        two core-link serializations and two more switch delays."""
        cached = self._xpod_cache.get(length)
        if cached is not None:
            return cached
        cfg = self.cfg
        ppb_h = ps_per_byte(cfg.host_gbps)
        ppb_a = ps_per_byte(cfg.aggr_gbps)
        ppb_c = ps_per_byte(self.spec.core_gbps)
        sw = cfg.switch_delay_ps
        full, rest = divmod(length, MAX_PAYLOAD)
        rest_wire = wire_size(rest) if rest else 0
        best = 0
        if full:
            cum = full * FULL_WIRE * ppb_h
            best = (cum + 5 * sw + 2 * FULL_WIRE * ppb_a
                    + 2 * FULL_WIRE * ppb_c + FULL_WIRE * ppb_h)
        else:
            cum = 0
        if rest:
            cum += rest_wire * ppb_h
            candidate = (cum + 5 * sw + 2 * rest_wire * ppb_a
                         + 2 * rest_wire * ppb_c + rest_wire * ppb_h)
            if candidate > best:
                best = candidate
        result = best + cfg.software_delay_ps
        self._xpod_cache[length] = result
        return result


def build_fabric(sim: Simulator, spec: TopologySpec, *, seed: int = 1,
                 overrides: dict | None = None) -> Network:
    """Build the network a :class:`TopologySpec` describes.

    Clean 2-level specs *lower* to the canonical fused-ingress
    :class:`Network` — the same builder, the same RNG streams, the same
    byte-exact digests as an equivalent :class:`NetworkConfig`.  Loss
    on a 2-level fabric installs drop filters on that canonical network
    (the filters run before the spray draw, so a zero-rate spec stays
    untouched).  Faults or a third level require the liveness-aware
    :class:`FabricNetwork` builder.

    ``overrides`` are protocol NetworkConfig overrides (queue mode, ECN,
    trimming...) from ``transport.registry.network_overrides``.
    """
    overrides = dict(overrides or {})
    if spec.levels == 2 and not spec.faults:
        cfg = NetworkConfig(
            racks=spec.racks, hosts_per_rack=spec.hosts_per_rack,
            aggrs=spec.aggrs if spec.racks > 1 else 0,
            host_gbps=spec.host_gbps, aggr_gbps=spec.aggr_gbps,
            switch_delay_ns=spec.switch_delay_ns,
            software_delay_ns=spec.software_delay_ns,
            seed=seed, **overrides)
        net = Network(sim, cfg)
    else:
        net = FabricNetwork(sim, spec, seed=seed, **overrides)
    if spec.loss.any():
        install_loss(net, spec.loss, seed)
    if spec.faults:
        injector = FaultInjector(sim, net, spec.faults)
        injector.arm()
        net.fault_injector = injector
    return net
