"""Hosts: a NIC with a pull-model egress plus a software delay.

The paper's simulations assume host software has unlimited throughput
but a fixed 1.5 us delay between a packet arriving and any dependent
transmission starting.  We model that by delaying delivery to the
transport by ``software_delay_ps``; everything the transport does in
response (grants, data) then leaves immediately.
"""

from __future__ import annotations

from heapq import heappush

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.core.port import PullPort


class Host:
    """One server: id, rack, an uplink NIC port, and a transport."""

    __slots__ = ("sim", "hid", "rack", "egress", "transport",
                 "software_delay_ps", "_deliver_cb")

    def __init__(self, sim: Simulator, hid: int, rack: int, software_delay_ps: int) -> None:
        self.sim = sim
        self.hid = hid
        self.rack = rack
        self.egress: PullPort | None = None
        self.transport = None
        self.software_delay_ps = software_delay_ps
        # Bound once (resolves self.transport at fire time, so packets
        # delivered before attach() still fail loudly rather than being
        # dropped as cancelled events).
        self._deliver_cb = self._deliver

    def attach(self, transport) -> None:
        """Bind a transport to this host (and the NIC to the transport)."""
        self.transport = transport
        self.egress.source = transport.next_packet
        transport.bind(self)

    def ingress(self, pkt: Packet) -> None:
        """A packet finished arriving on the downlink."""
        # schedule1 inlined: one event per delivered packet.
        sim = self.sim
        time_ps = sim.now + self.software_delay_ps
        sim._seq += 1
        event = [time_ps, sim._seq, self._deliver_cb, pkt]
        if time_ps < sim._horizon:
            heappush(sim._heap, event)
        else:
            sim._file_far(event, time_ps)

    def _deliver(self, pkt: Packet) -> None:
        self.transport.on_packet(pkt)
