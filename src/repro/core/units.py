"""Time and rate units.

The simulator clock is an integer number of picoseconds.  Picoseconds
were chosen because one byte time is an exact integer at every Ethernet
rate we care about (800 ps at 10 Gbps, 200 ps at 40 Gbps), so runs are
bit-for-bit deterministic with no floating point drift.
"""

PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

#: bits per byte times ps-per-ns; ``8000 / gbps`` is the ps cost of one byte.
_PS_BITS = 8_000


def ps_per_byte(gbps: int) -> int:
    """Picoseconds to serialize one byte at ``gbps`` gigabits per second.

    Raises ValueError for rates that do not divide evenly, to preserve
    the integer-clock guarantee (10, 16, 20, 25, 40, 50, 100... are fine).
    """
    if gbps <= 0:
        raise ValueError(f"link rate must be positive, got {gbps}")
    if _PS_BITS % gbps:
        raise ValueError(f"{gbps} Gbps does not give an integer ps/byte")
    return _PS_BITS // gbps


def tx_time_ps(wire_bytes: int, gbps: int) -> int:
    """Serialization time of ``wire_bytes`` at ``gbps``."""
    return wire_bytes * ps_per_byte(gbps)


def bytes_per_sec(gbps: int) -> float:
    """Link capacity in bytes per second."""
    return gbps * 1e9 / 8.0


def fmt_time(ps: int) -> str:
    """Human-readable rendering of a picosecond timestamp or duration."""
    if ps >= SEC:
        return f"{ps / SEC:.3f}s"
    if ps >= MS:
        return f"{ps / MS:.3f}ms"
    if ps >= US:
        return f"{ps / US:.3f}us"
    if ps >= NS:
        return f"{ps / NS:.1f}ns"
    return f"{ps}ps"
