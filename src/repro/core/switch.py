"""Store-and-forward switches.

A switch receives a fully serialized packet, spends a fixed internal
processing delay (250 ns in the paper's simulations), then places it on
the egress port chosen by its routing function.  Routing functions are
closures installed by the topology builder, which is also where packet
spraying across uplinks happens.

Fault-injection hooks (all default-off, all cold on the canonical
path — the fused ingress closures in ``core/topology.py`` bypass
``Switch.ingress`` entirely and check ``drop_filter`` themselves):

* ``drop_filter``: if set and it returns True for a packet, the switch
  silently discards it (as if corrupted on the input link).  This is
  how per-layer loss rates are injected (``core/faults.py``).
* ``dead``: a switch killed by a scheduled ``FaultEvent`` drops every
  packet that reaches it (counted in ``fault_drops``) until restored.
* a routing function may return ``None`` when a fault has removed every
  viable egress (a dead downlink with no alternative path); the packet
  is then black-holed and counted in ``routed_drops``.

Dropped pool-born packets are recycled immediately — a lossy run must
not grow the pool by its drop count (``core/pool.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import Simulator
from repro.core.packet import Packet
from repro.core.pool import free_packet


class Switch:
    """A single switch: ingress delay plus a routing function."""

    __slots__ = ("sim", "name", "delay_ps", "route", "ports", "level",
                 "drop_filter", "injected_drops", "dead", "fault_drops",
                 "routed_drops")

    def __init__(self, sim: Simulator, name: str, delay_ps: int,
                 level: str = "") -> None:
        self.sim = sim
        self.name = name
        self.delay_ps = delay_ps
        #: fabric layer ("tor" / "aggr" / "core"); keys the per-layer
        #: loss rates and the per-layer drop aggregation in metrics.
        self.level = level
        self.route: Callable[[Packet], object] | None = None
        self.ports: list = []
        self.drop_filter: Callable[[Packet], bool] | None = None
        self.injected_drops = 0
        #: killed by a FaultEvent: drop everything until restored
        self.dead = False
        self.fault_drops = 0
        #: packets whose route came back None (no live egress)
        self.routed_drops = 0

    def ingress(self, pkt: Packet) -> None:
        """Called when a packet has fully arrived on an input link.

        The egress port is chosen here rather than after the processing
        delay: the delay is a constant, so the relative order of routing
        decisions (and hence the spray RNG stream) is unchanged, and the
        packet needs one scheduled event instead of a forward trampoline.
        """
        if self.dead:
            self.fault_drops += 1
            free_packet(pkt)
            return
        if self.drop_filter is not None and self.drop_filter(pkt):
            self.injected_drops += 1
            free_packet(pkt)
            return
        port = self.route(pkt)
        if port is None:
            # A fault removed every viable egress: black hole.
            self.routed_drops += 1
            free_packet(pkt)
            return
        if self.delay_ps:
            self.sim.schedule1(self.delay_ps, port.enqueue_cb, pkt)
        else:
            port.enqueue(pkt)

    def _forward(self, pkt: Packet) -> None:
        port = self.route(pkt)
        if port is None:
            self.routed_drops += 1
            free_packet(pkt)
            return
        port.enqueue(pkt)
