"""Store-and-forward switches.

A switch receives a fully serialized packet, spends a fixed internal
processing delay (250 ns in the paper's simulations), then places it on
the egress port chosen by its routing function.  Routing functions are
closures installed by the topology builder, which is also where packet
spraying across uplinks happens.
"""

from __future__ import annotations

from typing import Callable

from repro.core.engine import Simulator
from repro.core.packet import Packet


class Switch:
    """A single switch: ingress delay plus a routing function.

    ``drop_filter`` supports fault injection for tests and loss-recovery
    experiments: if set and it returns True for a packet, the switch
    silently discards it (as if corrupted on the input link).
    """

    __slots__ = ("sim", "name", "delay_ps", "route", "ports",
                 "drop_filter", "injected_drops")

    def __init__(self, sim: Simulator, name: str, delay_ps: int) -> None:
        self.sim = sim
        self.name = name
        self.delay_ps = delay_ps
        self.route: Callable[[Packet], object] | None = None
        self.ports: list = []
        self.drop_filter: Callable[[Packet], bool] | None = None
        self.injected_drops = 0

    def ingress(self, pkt: Packet) -> None:
        """Called when a packet has fully arrived on an input link.

        The egress port is chosen here rather than after the processing
        delay: the delay is a constant, so the relative order of routing
        decisions (and hence the spray RNG stream) is unchanged, and the
        packet needs one scheduled event instead of a forward trampoline.
        """
        if self.drop_filter is not None and self.drop_filter(pkt):
            self.injected_drops += 1
            return
        if self.delay_ps:
            self.sim.schedule1(self.delay_ps, self.route(pkt).enqueue_cb, pkt)
        else:
            self._forward(pkt)

    def _forward(self, pkt: Packet) -> None:
        port = self.route(pkt)
        port.enqueue(pkt)
