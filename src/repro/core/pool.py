"""Slot-pooled packet storage: the array-core allocator.

A ``PacketPool`` owns a preallocated block of packet *slots* and hands
them out through a LIFO free-list, so the per-packet cost of the hot
transports drops from "allocate a 38-field object, then deallocate it"
to "pop a slot index and re-initialize the fields that differ".  Each
slot is a regular :class:`~repro.core.packet.Packet` carrying its pool
identity (``pkt.pool``, ``pkt.slot``), which keeps the whole attribute
API intact for every consumer — ports, switches, cut-through lineage,
metrics — while making allocation and recycling O(1) list ops.

Why slots-as-objects instead of raw parallel ``array('q')`` columns:
CPython boxes every ``array`` element on read, making it several times
the cost of a slot attribute read (the ``array_q_read`` vs
``slot_attr_read`` rows of ``--dispatch-micro``), so a packet
represented as "an index into twenty int arrays" pays the boxing toll
on every field touch in every hop.  The pool therefore keeps the
*storage discipline* of a struct-of-arrays core — preallocation, index
free-list, explicit recycle points, growth in deterministic chunks —
and keeps the per-field representation in slot descriptors, which is
the layout CPython actually reads fastest.  docs/PERFORMANCE.md
("array core") has the numbers.

Life cycle contract:

* ``alloc_data`` / ``alloc_ctrl`` pop a free slot and fully
  re-initialize every protocol-visible field, so a recycled packet is
  indistinguishable from a freshly constructed one (the determinism
  property tests in ``tests/test_pool.py`` pin this: digests are
  byte-identical to unpooled construction).
* ``free`` returns a slot once its packet has been *consumed* — for
  Homa, when ``on_packet`` has dispatched it at the destination.  It
  resets the flight-mutable fields (ECN/trim marks, wait accumulators,
  cut-through lineage stamps) and drops payload references; freeing a
  slot twice raises, freeing a foreign packet is a checked error.
* The pool grows by ``grow_chunk`` fresh slots whenever the free-list
  runs dry (packets dropped by a lossy fabric are simply never freed),
  so sizing is a performance knob, never a correctness limit
  (docs/CONFIG.md: ``HomaConfig.pool_prealloc``).
"""

from __future__ import annotations

from repro.core.packet import (ALLOC_UNKNOWN, CTRL_PRIO, ETH_OVERHEAD,
                               HEADER_BYTES, MIN_WIRE, Packet, PacketType)

_OVERHEAD = HEADER_BYTES + ETH_OVERHEAD


class PacketPool:
    """A free-list of recycled packet slots (see module docstring)."""

    __slots__ = ("slots", "live", "grow_chunk", "_free",
                 "data_allocs", "ctrl_allocs", "recycled", "grows")

    def __init__(self, prealloc: int = 4096, grow_chunk: int | None = None) -> None:
        if prealloc < 0:
            raise ValueError(f"negative prealloc {prealloc}")
        #: every slot ever created, indexed by ``pkt.slot``
        self.slots: list[Packet] = []
        #: per-slot liveness bit (1 = handed out, 0 = in the free-list)
        self.live = bytearray()
        self.grow_chunk = grow_chunk or max(256, prealloc // 4 or 256)
        self._free: list[Packet] = []
        self.data_allocs = 0
        self.ctrl_allocs = 0
        self.recycled = 0
        self.grows = 0
        if prealloc:
            self._grow(prealloc)
            self.grows = 0  # preallocation is not growth

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def alloc_data(self, src, dst, prio, payload, rpc_id, is_request, offset,
                   total_length, sched, retx, incast, app_meta, grant_offset,
                   created_ps) -> Packet:
        """A DATA packet; parameters mirror the ``Packet.__init__`` prefix."""
        free = self._free
        if not free:
            self._grow(self.grow_chunk)
        pkt = free.pop()
        self.live[pkt.slot] = 1
        self.data_allocs += 1
        pkt.src = src
        pkt.dst = dst
        pkt.kind = PacketType.DATA
        pkt.prio = prio
        pkt.fine_prio = 0
        pkt.rpc_id = rpc_id
        pkt.is_request = is_request
        pkt.offset = offset
        pkt.payload = payload
        wire = payload + _OVERHEAD
        pkt.wire = MIN_WIRE if wire < MIN_WIRE else wire
        pkt.total_length = total_length
        pkt.sched = sched
        pkt.retx = retx
        pkt.incast = incast
        pkt.grant_offset = grant_offset
        pkt.grant_prio = 0
        pkt.range_end = 0
        pkt.app_meta = app_meta
        pkt.created_ps = created_ps
        pkt.msg_key = (rpc_id << 1) | (1 if is_request else 0)
        return pkt

    def alloc_ctrl(self, kind, src, dst, rpc_id, is_request,
                   grant_offset=0, grant_prio=0, offset=0, range_end=0,
                   cutoffs=None) -> Packet:
        """A control packet (GRANT/RESEND/BUSY...): header-only frame."""
        free = self._free
        if not free:
            self._grow(self.grow_chunk)
        pkt = free.pop()
        self.live[pkt.slot] = 1
        self.ctrl_allocs += 1
        pkt.src = src
        pkt.dst = dst
        pkt.kind = kind
        pkt.prio = CTRL_PRIO
        pkt.fine_prio = 0
        pkt.rpc_id = rpc_id
        pkt.is_request = is_request
        pkt.offset = offset
        pkt.payload = 0
        pkt.wire = MIN_WIRE
        pkt.total_length = 0
        pkt.sched = False
        pkt.retx = False
        pkt.incast = False
        pkt.grant_offset = grant_offset
        pkt.grant_prio = grant_prio
        pkt.range_end = range_end
        pkt.cutoffs = cutoffs
        pkt.app_meta = None
        pkt.created_ps = 0
        pkt.msg_key = (rpc_id << 1) | (1 if is_request else 0)
        return pkt

    # ------------------------------------------------------------------
    # recycling
    # ------------------------------------------------------------------

    def free(self, pkt: Packet) -> None:
        """Return a consumed packet's slot to the free-list.

        Resets every field a hop may have mutated in flight, so the next
        allocation from this slot starts from constructor state.
        """
        if pkt.pool is not self:
            raise ValueError("packet does not belong to this pool")
        slot = pkt.slot
        live = self.live
        if not live[slot]:
            raise RuntimeError(f"double free of pool slot {slot}")
        live[slot] = 0
        self.recycled += 1
        pkt.ecn = False
        pkt.trimmed = False
        pkt.q_wait = 0
        pkt.p_wait = 0
        pkt.tx_start_ps = 0
        pkt.alloc_ps = ALLOC_UNKNOWN
        pkt.alloc2_ps = ALLOC_UNKNOWN
        pkt.alloc3_ps = ALLOC_UNKNOWN
        pkt.arrival_ps = 0
        pkt.rank_seq = 0
        pkt.prev_arrival_ps = 0
        pkt.prev_rank_seq = 0
        pkt.cutoffs = None
        pkt.app_meta = None
        self._free.append(pkt)

    # ------------------------------------------------------------------
    # storage management / introspection
    # ------------------------------------------------------------------

    def _grow(self, chunk: int) -> None:
        """Append ``chunk`` fresh slots (deterministic slot numbering)."""
        slots = self.slots
        free = self._free
        base = len(slots)
        self.live.extend(b"\0" * chunk)
        for i in range(base, base + chunk):
            pkt = Packet(0, 0, PacketType.DATA)
            pkt.pool = self
            pkt.slot = i
            slots.append(pkt)
            free.append(pkt)
        self.grows += 1

    def in_flight(self) -> int:
        """Number of slots currently handed out (cold: debugging/tests)."""
        return len(self.slots) - len(self._free)

    def stats(self) -> dict:
        return {
            "slots": len(self.slots),
            "in_flight": self.in_flight(),
            "data_allocs": self.data_allocs,
            "ctrl_allocs": self.ctrl_allocs,
            "recycled": self.recycled,
            "grows": self.grows,
        }


def free_packet(pkt: Packet) -> None:
    """Recycle ``pkt`` if pool-born; no-op for plain-constructed packets.

    The safe consumption hook for code that may see packets from pooled
    and unpooled transports alike.
    """
    pool = pkt.pool
    if pool is not None:
        pool.free(pkt)
