"""Deterministic fabric faults: per-layer loss and scheduled failures.

Two independent mechanisms, both default-off and both seeded off the
run's deterministic RNG stream (never wall-clock, never the global
``random`` module — the ``fault-determinism`` simlint rule enforces
this for every callback registered here):

* :func:`install_loss` puts a Bernoulli drop filter on every switch of
  a layer with a nonzero rate in :class:`LossRates`.  All filters share
  one ``random.Random`` seeded from the experiment seed, so the drop
  pattern is a pure function of (spec, seed) and replays byte-exactly.
* :class:`FaultInjector` schedules :class:`FaultEvent` s — kill or
  restore a named link or switch at a fixed sim time — as ordinary
  simulator events.  Applying a fault recomputes the fabric's live
  spray sets (``FabricNetwork.apply_fault``), so subsequent packets
  reroute around the failure mid-simulation.

Loss flows through the real recovery path: a dropped DATA or GRANT
packet is recovered (or given up on) by the transport's §3.7 timeout
machinery, not by any simulator-level bookkeeping.

Determinism contract (docs/FABRICS.md): same spec + same seed ⇒ same
drop decisions, same reroutes, same digests.  Callbacks subscribed via
:meth:`FaultInjector.subscribe` receive ``(event, now_ps)`` and must
derive any randomness from a seeded generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.units import MS

#: valid FaultEvent.kind values
FAULT_KINDS = ("link", "switch")
#: valid FaultEvent.action values
FAULT_ACTIONS = ("down", "up")

#: distinct multiplier/offset from the spray RNG's ``seed*7919+13`` so
#: the loss stream never aliases the path-spray stream
_LOSS_SEED_MUL = 104729
_LOSS_SEED_OFF = 77


@dataclass(frozen=True)
class LossRates:
    """Per-layer Bernoulli packet-loss probabilities, in ``[0, 1)``."""

    tor: float = 0.0
    aggr: float = 0.0
    core: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tor", "aggr", "core"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"LossRates.{name} must be a number, got {value!r}")
            if not 0.0 <= value < 1.0:
                raise ValueError(
                    f"LossRates.{name} must be in [0, 1), got {value!r}")

    def any(self) -> bool:
        return bool(self.tor or self.aggr or self.core)

    def rate_for(self, level: str) -> float:
        """The drop probability for a switch layer name (0.0 if unknown)."""
        if level in ("tor", "aggr", "core"):
            return getattr(self, level)
        return 0.0

    def to_payload(self) -> dict:
        return {"tor": self.tor, "aggr": self.aggr, "core": self.core}

    @classmethod
    def from_payload(cls, payload: dict | None) -> "LossRates":
        if not payload:
            return cls()
        return cls(tor=payload.get("tor", 0.0),
                   aggr=payload.get("aggr", 0.0),
                   core=payload.get("core", 0.0))


@dataclass(frozen=True)
class FaultEvent:
    """Kill or restore one link or switch at a fixed simulation time.

    ``target`` names a switch (``"tor3"``, ``"aggr0.1"``, ``"core2"``)
    or a link (``"tor3:aggr0.1"``, ``"aggr0.1:core2"``) of the fabric;
    target existence is validated against the built network when the
    injector is constructed, naming the offending event index.
    """

    at_ms: float
    kind: str      # "link" | "switch"
    action: str    # "down" | "up"
    target: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"FaultEvent.kind must be one of {FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"FaultEvent.action must be one of {FAULT_ACTIONS}, "
                f"got {self.action!r}")
        if isinstance(self.at_ms, bool) or not isinstance(
                self.at_ms, (int, float)) or self.at_ms < 0:
            raise ValueError(
                f"FaultEvent.at_ms must be a non-negative number, "
                f"got {self.at_ms!r}")
        if not self.target or not isinstance(self.target, str):
            raise ValueError(
                f"FaultEvent.target must name a switch or link, "
                f"got {self.target!r}")

    @property
    def at_ps(self) -> int:
        return int(self.at_ms * MS)

    def to_payload(self) -> dict:
        return {"at_ms": self.at_ms, "kind": self.kind,
                "action": self.action, "target": self.target}

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultEvent":
        return cls(at_ms=payload["at_ms"], kind=payload["kind"],
                   action=payload["action"], target=payload["target"])


class FaultInjector:
    """Applies a fault schedule to a built fabric at simulated times.

    Construction validates every target against the network; ``arm()``
    files one simulator event per fault.  Observers registered with
    ``subscribe(fn)`` are called as ``fn(event, now_ps)`` after each
    application — the ``fault-determinism`` simlint rule statically
    rejects wall-clock or unseeded-RNG use inside such callbacks.
    """

    __slots__ = ("sim", "net", "events", "applied", "_observers")

    def __init__(self, sim, net, events: Iterable[FaultEvent]) -> None:
        self.sim = sim
        self.net = net
        self.events = tuple(events)
        self.applied = 0
        self._observers: list[Callable] = []
        for i, ev in enumerate(self.events):
            net.validate_fault_target(ev, i)

    def subscribe(self, fn: Callable) -> None:
        """Register ``fn(event, now_ps)`` to run after each fault."""
        self._observers.append(fn)

    def arm(self) -> None:
        """Schedule every fault at its absolute simulation time."""
        for ev in self.events:
            self.sim.schedule_at1(ev.at_ps, self._apply, ev)

    def _apply(self, ev: FaultEvent) -> None:
        self.net.apply_fault(ev)
        self.applied += 1
        for fn in self._observers:
            fn(ev, self.sim.now)


def install_loss(net, loss: LossRates, seed: int) -> None:
    """Install seeded Bernoulli drop filters on every lossy layer.

    One shared ``random.Random`` drives all layers, so the drop stream
    is a pure function of (spec, seed) and the packet arrival order —
    both deterministic.  Rejects cut-through networks: chained hops
    bypass downstream switch ingress, so their filters would never see
    chained packets.
    """
    if not loss.any():
        return
    if getattr(net.cfg, "cut_through", False):
        raise ValueError(
            "loss injection is incompatible with cut_through=True: "
            "cut-through chains bypass downstream switch ingress")
    rng = random.Random(seed * _LOSS_SEED_MUL + _LOSS_SEED_OFF)
    uniform = rng.random
    for switch in net.all_switches():
        rate = loss.rate_for(switch.level)
        if rate <= 0.0:
            continue

        def drop(pkt, rate=rate, uniform=uniform):
            return uniform() < rate

        switch.drop_filter = drop
