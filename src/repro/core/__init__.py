"""Discrete-event packet-level network simulator substrate.

This package provides everything below the transport layer: an event
engine with an integer picosecond clock, Ethernet-style framing, egress
ports with 8 priority queues (plus pFabric-style fine-grained queues and
NDP-style trimming), store-and-forward switches, hosts with a fixed
software delay, and topology builders matching the paper's evaluation
setups (Figure 11's 144-host fat-tree and the 16-host CloudLab cluster).
"""

from repro.core.engine import Simulator
from repro.core.packet import Packet, PacketType, wire_size
from repro.core.topology import Network, NetworkConfig, build_network
from repro.core import units

__all__ = [
    "Simulator",
    "Packet",
    "PacketType",
    "wire_size",
    "Network",
    "NetworkConfig",
    "build_network",
    "units",
]
