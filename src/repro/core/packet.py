"""Packets and Ethernet framing.

Framing model (documented in DESIGN.md section 3):

* transport+IP header: 40 bytes carried inside the frame,
* Ethernet header+CRC: 18 bytes, preamble+inter-packet gap: 20 bytes,
* minimum frame occupies 84 bytes on the wire (64 byte frame + 20),
* maximum payload 1460 bytes -> a full data packet is 1538 wire bytes.

With the paper's topology this yields a cross-rack grant-to-data RTT of
7.744 us and RTTbytes = 9680, matching the paper's "about 7.8 us" and
"about 9.7 KB".
"""

from __future__ import annotations

from enum import IntEnum

HEADER_BYTES = 40          # IP + transport header inside the frame
ETH_OVERHEAD = 38          # Ethernet header/CRC (18) + preamble/IFG (20)
MIN_WIRE = 84              # minimum on-wire occupancy of any frame
MAX_PAYLOAD = 1460         # application payload of a full data packet
FULL_WIRE = MAX_PAYLOAD + HEADER_BYTES + ETH_OVERHEAD  # 1538
TRIMMED_WIRE = MIN_WIRE    # NDP header-only packet

#: number of switch priority levels (modern switches: typically 8)
N_PRIORITIES = 8

#: ``Packet.alloc_ps`` sentinel: the transmission-start site could not
#: know its allocator's allocation instant (compares later than any
#: real instant, so cut-through deep ties default to the chain)
ALLOC_UNKNOWN = 1 << 62
#: priority used by control packets (GRANT/RESEND/... are sent highest)
CTRL_PRIO = N_PRIORITIES - 1


def wire_size(payload_bytes: int) -> int:
    """On-wire bytes of a frame carrying ``payload_bytes`` of payload."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload {payload_bytes}")
    return max(MIN_WIRE, payload_bytes + HEADER_BYTES + ETH_OVERHEAD)


def packets_in(length: int) -> int:
    """Number of data packets needed for a ``length``-byte message."""
    if length <= 0:
        raise ValueError(f"message length must be positive, got {length}")
    return -(-length // MAX_PAYLOAD)


def message_wire_bytes(length: int) -> int:
    """Total on-wire bytes of the data packets of a message."""
    full, rest = divmod(length, MAX_PAYLOAD)
    total = full * FULL_WIRE
    if rest:
        total += wire_size(rest)
    return total


class PacketType(IntEnum):
    """All packet kinds used by any protocol in this repository.

    DATA/GRANT/RESEND/BUSY are Homa's four types (paper Figure 3); the
    rest belong to the baseline protocols.
    """

    DATA = 0
    GRANT = 1
    RESEND = 2
    BUSY = 3
    ACK = 4     # pFabric / PIAS / stream per-packet acknowledgment
    RTS = 5     # pHost request-to-send
    TOKEN = 6   # pHost token
    PULL = 7    # NDP pull
    NACK = 8    # NDP trimmed-header notification
    PROBE = 9   # pFabric probe mode


class Packet:
    """A network packet.  One instance traverses the whole network.

    ``prio`` is the switch priority level (0 lowest .. 7 highest);
    ``fine_prio`` is pFabric's unbounded priority (remaining bytes,
    smaller = more urgent).  ``q_wait``/``p_wait`` accumulate queueing
    delay and preemption lag when a run enables delay tracing (Fig 14).
    """

    __slots__ = (
        "src", "dst", "kind", "prio", "fine_prio",
        "rpc_id", "is_request", "offset", "payload", "wire",
        "total_length", "sched", "retx", "incast", "ecn", "trimmed",
        "grant_offset", "grant_prio", "range_end", "cutoffs", "app_meta",
        "created_ps", "tx_start_ps", "alloc_ps", "alloc2_ps", "alloc3_ps",
        "arrival_ps", "rank_seq", "prev_arrival_ps", "prev_rank_seq",
        "q_wait", "p_wait", "msg_key", "pool", "slot",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: PacketType,
        # Parameter order matters: the DATA-packet fields form a prefix
        # so the per-data-packet constructor call can pass positionally
        # (kwargs parsing is measurable at this call rate); everything
        # else is still passed by keyword.
        prio: int = CTRL_PRIO,
        payload: int = 0,
        rpc_id: int = 0,
        is_request: bool = True,
        offset: int = 0,
        total_length: int = 0,
        sched: bool = False,
        retx: bool = False,
        incast: bool = False,
        app_meta: int | None = None,
        grant_offset: int = 0,
        created_ps: int = 0,
        grant_prio: int = 0,
        range_end: int = 0,
        fine_prio: int = 0,
        cutoffs: tuple | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.prio = prio
        self.fine_prio = fine_prio
        self.rpc_id = rpc_id
        self.is_request = is_request
        self.offset = offset
        self.payload = payload
        # Inline wire_size(payload): constructed once per packet.
        wire = payload + HEADER_BYTES + ETH_OVERHEAD
        self.wire = MIN_WIRE if wire < MIN_WIRE else wire
        self.total_length = total_length
        self.sched = sched
        self.retx = retx
        self.incast = incast
        self.ecn = False
        self.trimmed = False
        self.grant_offset = grant_offset
        self.grant_prio = grant_prio
        self.range_end = range_end
        self.cutoffs = cutoffs
        self.app_meta = app_meta
        self.created_ps = created_ps
        # Start instant of the packet's current/most recent real
        # transmission, stamped by every port transmit site.  This is
        # when the slow path allocates the packet's tx-done event seq,
        # which is what cut-through start-tie resolution compares
        # (see core/cutthrough.py).
        self.tx_start_ps = 0
        # Allocation instant of the event that *started* the current
        # transmission: the funnel point for a pass-through hop, the
        # prior packet's transmission start for a dequeued one.  This
        # is the second tie level — the slow path compares allocator
        # seqs, and seq order is allocation-time order.  ALLOC_UNKNOWN
        # where the start site cannot know (kick-started NIC sends,
        # resumed preemptions): ties then default to the chain.
        self.alloc_ps = ALLOC_UNKNOWN
        # Two more allocator levels up the same lineage (the allocator
        # of the allocator, and one deeper), maintained by shifting at
        # the transmit sites: a pass-through hop inherits the packet's
        # own previous-hop history, a dequeued one copies the prior
        # packet's.  Deep same-instant ties walk these.
        self.alloc2_ps = ALLOC_UNKNOWN
        self.alloc3_ps = ALLOC_UNKNOWN
        # Landing time and event seq of the packet's most recent
        # *scheduled* arrival (stamped by the switch ingresses), plus
        # the previous hop's pair (shifted on each stamp).  When a
        # start-tie's transmission starts also coincide, these break
        # the next level: ``prev_arrival_ps == tx_start_ps`` identifies
        # a pass-through interloper, and ``prev_rank_seq`` orders the
        # arrival that launched that transmission against the chain's
        # plan — both allocated at the same funnel instant, so seq
        # order replays the slow path's (see core/cutthrough.py).
        self.arrival_ps = 0
        self.rank_seq = 0
        self.prev_arrival_ps = 0
        self.prev_rank_seq = 0
        self.q_wait = 0
        self.p_wait = 0
        # Pool identity: set once per slot by core/pool.py when the
        # packet is pool-born; plain-constructed packets stay unpooled.
        self.pool = None
        self.slot = -1
        # Identity of the message this packet belongs to.  Homa messages
        # are halves of an RPC, so (rpc id, direction) is the message
        # identity — this is what lets a client RESEND a response whose
        # packets it has never seen (paper section 3.7).  Precomputed:
        # it keys a transport dict lookup on every received packet.
        self.msg_key = (rpc_id << 1) | (1 if is_request else 0)

    def trim(self) -> None:
        """NDP-style trim: discard the payload, keep the header."""
        self.trimmed = True
        self.payload = 0
        self.wire = TRIMMED_WIRE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.kind.name} {self.src}->{self.dst} rpc={self.rpc_id}"
            f" off={self.offset} len={self.payload} prio={self.prio})"
        )


def msg_key(rpc_id: int, is_request: bool) -> int:
    """Message identity used by transports (matches ``Packet.msg_key``)."""
    return (rpc_id << 1) | (1 if is_request else 0)
