"""Idle-path cut-through: collapse multi-hop delivery into few events.

Homa's receiver-driven priorities keep switch queues nearly empty, so
the *common case* for a packet in this simulator is a traversal that
meets only idle ports (at 80% load roughly two thirds of switch
arrivals target an idle aggregation port).  The standard event machinery
still charges that packet the full per-hop toll — an ingress-delay
arrival event plus a tx-done event per hop, then the receiver's
software-delay delivery: ~7 events for a cross-rack traversal.

Cut-through elides that machinery.  When a switch ingress routes a
packet to an idle, clean egress port, it *chains* as many of the
remaining hops as are idle and clean: each hop's residency (ingress
delay + serialization) is computed in closed form and the hop's link
window is reserved on the port (``res_start_ps``/``res_end_ps``).  The
chain's one pending event is a **wire-done** at the last reserved
hop's end, which hands the packet on — to the next switch's ingress
for a mid-path chain, or to the host ingress (which allocates the
software-delay delivery exactly where the slow path allocates it) for
a completed one.  A host→TOR→aggr→TOR→host traversal over idle ports
costs two events (wire-done + delivery) instead of seven.

This is a pure event-count optimization: the contract, pinned by the
golden-digest tests, the bench digest gates, and the on/off property
tests, is that slowdown digests are byte-identical with cut-through on
and off.  Byte-identity is demanding because event *rank* at equal
timestamps is observable: the heap breaks time ties by event creation
order (seq), and transports see that order through the shared spray
RNG, per-port FIFOs, and priority dequeues.  Three mechanisms keep
same-instant order identical to the slow path:

* **Reservation conflicts.**  A reserved port resolves its reservation
  before accepting any other packet (``QueuedPort.enqueue``): an
  interloper arriving before the window starts *diverts* the chain
  (truncate past this hop, re-aim a launch at the hop's start — the
  packet's exact slow-path arrival instant); inside the window the
  reservation *materializes* into a real in-flight transmission that
  the interloper then queues behind (or preempts, on a preemptive
  port); past the window the reservation is stale and dropped lazily.
  Exact start/end-instant ties are resolved by the lineage walk below.

* **Allocation lineages.**  The slow path orders same-instant events
  by their seqs, seqs are allocated in time order, and within one
  instant by the allocating events' own seqs — recursively.  Chains
  know their whole virtual timeline plus one real seq (``plan_seq``,
  allocated exactly where the slow path would have allocated the
  arrival), and packets carry their recent allocation history
  (``tx_start_ps``, ``alloc_ps``/``alloc2_ps``/``alloc3_ps``,
  ``arrival_ps``/``rank_seq`` and the previous hop's pair), maintained
  by shifting at the transmit and ingress-scheduling sites.  A
  lockstep walk (``_earlier``) replays the slow path's comparison
  level by level; walks that exhaust default to the chain — the
  documented residual caveat, one exact-coincidence level deeper than
  the stamps reach.

* **Rank turns.**  A chain continuation (wire-done or post-divert
  launch) and the completion of a transmission materialized mid-window
  carry seqs from the wrong instant, so before acting they compare
  lineages against the pending heap top and *yield* (re-push with a
  fresh seq) while the slow path would have run the top first.
  Conversely, enqueues and real tx-dones pull a pending same-instant
  late materialization in front of themselves when its lineage says
  the slow path completed it first.

Chains never form through ports with observable queue state (finite
buffers, ECN, trimming, pFabric), attached probes, or delay tracing —
those ports take the slow path, which is how the queue-length and
bandwidth meters keep seeing every byte and the Figure 14 delay
decomposition keeps attributing serialization vs. queueing per hop.
Per-port ``tx_packets``/``tx_wire_bytes`` counters are credited at
planning time and debited wherever a real tx-done re-credits them, so
end-of-run accounting is identical either way.

Measured on the canonical 144-host W4@80% scenario the mode elides
1.37x of all simulation events — but in CPython the chain bookkeeping
(predicates, reservations, lineage stamps) costs more per chain than
the events it removes, and the gap *widened* with the array core: the
pooled dispatch path cut the per-event cost the elision saves (to
~1.75 µs) while the per-chain planning cost stayed put, so the mode
now runs ~1.40x *slower* in wall time than the slow path (it was
~0.85x of wall in the pre-pool tree).  ``NetworkConfig.cut_through`` therefore
defaults to off; the mode is the A/B instrument for the event
machinery (``bench_perf_hotpaths.py --cut-through``) and the wall win
is expected only where dispatch dominates bookkeeping (JIT runtimes, a
future compiled engine).  See docs/PERFORMANCE.md for the full
measurement and methodology.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.engine import Simulator
from repro.core.packet import ALLOC_UNKNOWN, Packet

#: indices into a Network's ``cut_stats`` list
STAT_CHAINS = 0
STAT_HOPS = 1
STAT_DIVERTS = 2
STAT_MATERIALIZES = 3

#: hop record stride in ``CutChain.hops`` (port, start_ps, end_ps)
_HOP = 3

#: only chain the *receiver downlink* hop for frames up to this many
#: wire bytes: at host line rate a full frame reserves the downlink
#: for ~1.2 us, long enough that at high load an interloper usually
#: arrives mid-window and the chain pays divert/materialize machinery
#: instead of eliding events.  Small frames (grants and other control)
#: hold the downlink for well under the switch ingress delay, so their
#: reservations almost never conflict.  Pure planning heuristic —
#: digests are byte-identical for any value.
TAIL_HOP_MAX_WIRE = 500

#: ``Packet.rank_seq`` sentinel: no real-seq rank is known for the
#: packet's arrival, so deep-tie resolutions fall back to the chain
#: (any genuine seq compares smaller).  Shares the packet module's
#: sentinel — the value is load-bearing in lineage comparisons, so
#: there must be exactly one.
RANK_UNKNOWN = ALLOC_UNKNOWN


class CutChain:
    """The analytic remainder of one packet's path.

    ``hops`` is a flat ``[port, start_ps, end_ps, ...]`` list in path
    order (three slots per hop; ports store their own flat index in
    ``res_idx``).  ``event`` is the single pending continuation — the
    wire-done at the last hop's end, or a post-divert launch at a
    hop's start.  Conflict handlers truncate the chain from the
    conflicting hop onward; reservations upstream of the truncation
    stay live, because the packet still occupies those links.
    """

    #: ``plan_seq`` is the wire-done's seq, allocated at plan time —
    #: rank-equivalent to the arrival the slow path would have
    #: scheduled in the same processing step, which is what deep ties
    #: compare.  Chains are only ever constructed by ``_install`` (no
    #: ``__init__``: one construction path keeps the slots honest).
    __slots__ = ("sim", "pkt", "hops", "event", "stats", "plan_seq")

    def _release_from(self, idx: int) -> None:
        """Cancel the continuation and drop reservations and counter
        credits for the flat hop slots ``idx:``."""
        if self.event is not None:
            Simulator.cancel(self.event)
        pkt_wire = self.pkt.wire
        hops = self.hops
        for j in range(idx, len(hops), _HOP):
            port = hops[j]
            if port.res_chain is self:
                port.res_chain = None
            port.tx_packets -= 1
            port.tx_wire_bytes -= pkt_wire
        del hops[idx:]

    def divert(self, idx: int) -> None:
        """An interloper goes first at hop ``idx``: truncate the chain
        past this hop and re-aim the launch at this hop's start — the
        packet's exact slow-path arrival instant.  The hop itself stays
        reserved, so later arrivals keep resolving their order against
        the chained packet pairwise, and the launch (which yields into
        its slow-path rank) re-enters it through the standard enqueue
        once the port is no longer clean."""
        hops = self.hops
        port = hops[idx]
        start_ps = hops[idx + 1]
        sim = self.sim
        if len(hops) - _HOP > idx:
            pkt_wire = self.pkt.wire
            for j in range(idx + _HOP, len(hops), _HOP):
                p = hops[j]
                if p.res_chain is self:
                    p.res_chain = None
                p.tx_packets -= 1
                p.tx_wire_bytes -= pkt_wire
            del hops[idx + _HOP:]
        if self.event is not None:
            Simulator.cancel(self.event)
        self.event = sim.schedule_at1(start_ps, _launch, self)
        if start_ps > port.last_arrival_ps:
            # Block arrival fusion until the re-entry instant: a fused
            # append would overtake the chained packet in the FIFO.
            port.last_arrival_ps = start_ps
        self.stats[STAT_DIVERTS] += 1

    def materialize(self, idx: int) -> None:
        """The chained packet is analytically on the wire at hop
        ``idx``: reconstruct it as a real in-flight transmission."""
        hops = self.hops
        port = hops[idx]
        start_ps = hops[idx + 1]
        end_ps = hops[idx + 2]
        pkt = self.pkt
        old_tx, old_alloc = pkt.tx_start_ps, pkt.alloc_ps
        self._release_from(idx)
        # _release_from debited this hop; the real tx-done re-credits.
        port._materialize(pkt, start_ps, end_ps)
        if idx == 0:
            # At the chain's first hop the plan seq is the packet's
            # real arrival rank (allocated exactly where the slow path
            # would have allocated the arrival), and the deeper levels
            # are the packet's own pre-chain history.
            pkt.rank_seq = self.plan_seq
            pkt.alloc2_ps = old_tx
            pkt.alloc3_ps = old_alloc
        else:
            # Deeper levels: the virtual upstream tx-done and enqueue.
            pkt.alloc2_ps = self.hops[idx - 2]
            pkt.alloc3_ps = self.hops[idx - 2] - port.in_delay_ps
        self.stats[STAT_MATERIALIZES] += 1

    def reenter(self, idx: int) -> None:
        """Hand the packet back to the standard path at hop ``idx``,
        right now — its exact slow-path arrival instant."""
        hops = self.hops
        port = hops[idx]
        pkt = self.pkt
        # Re-create the slow path's arrival lineage: at the first hop
        # the plan seq is rank-equivalent to the arrival the slow path
        # would have scheduled; deeper hops have no real equivalent.
        pkt.prev_arrival_ps = pkt.arrival_ps
        pkt.prev_rank_seq = pkt.rank_seq
        pkt.arrival_ps = hops[idx + 1]
        pkt.rank_seq = self.plan_seq if idx == 0 else RANK_UNKNOWN
        if idx:
            # Present the analytic upstream hop as the packet's current
            # transmission, so the enqueue's pass-through shift files
            # the right history.
            pkt.tx_start_ps = hops[idx - 2]
            pkt.alloc_ps = hops[idx - 2] - port.in_delay_ps
        self._release_from(idx)
        port.enqueue(pkt)
        self.stats[STAT_DIVERTS] += 1


def _chain_lineage(chain: CutChain, idx: int) -> list:
    """The chain's allocation lineage at hop ``idx``, as ``(instant,
    seq-or-None)`` pairs in *descending* instants: the virtual enqueue
    and tx-done allocation instants hop by hop back to the plan (whose
    seq is real — it was allocated exactly where the slow path would
    have allocated the arrival), then the packet's own pre-chain
    stamps."""
    hops = chain.hops
    delay = hops[idx].in_delay_ps
    out = []
    j = idx
    while j > 0:
        out.append((hops[j + 1] - delay, None))   # virtual enqueue
        out.append((hops[j - 2], None))           # virtual tx-done
        j -= _HOP
    out.append((hops[1] - delay, chain.plan_seq))
    pkt = chain.pkt
    out.append((pkt.tx_start_ps, None))
    out.append((pkt.alloc_ps,
                pkt.rank_seq if pkt.arrival_ps == pkt.tx_start_ps else None))
    out.append((pkt.alloc2_ps, None))
    out.append((pkt.alloc3_ps, None))
    return out


def _pkt_lineage(pkt, funnel: int) -> list:
    """An arriving packet's allocation lineage: its scheduled arrival
    (real seq, allocated at the funnel), the upstream transmission
    start (the tx-done's allocation instant), and that transmission's
    own allocator — with a real seq when it was a pass-through hop, so
    the allocator was the previous scheduled arrival."""
    return [(funnel, pkt.rank_seq), (pkt.tx_start_ps, None),
            (pkt.alloc_ps,
             pkt.prev_rank_seq if pkt.prev_arrival_ps == pkt.tx_start_ps
             else None),
            (pkt.alloc2_ps, None), (pkt.alloc3_ps, None)]


def _earlier(la: list, lb: list):
    """Lockstep lineage comparison: would the slow path have allocated
    ``la``'s pending event before ``lb``'s?  Seqs are allocated in
    time order, so an earlier instant at the first differing level
    decides; at equal instants two real seqs decide exactly (seq order
    within one run replays the slow path's).  Returns None when both
    lineages exhaust — undecidable, the documented within-instant
    caveat."""
    for (ia, sa), (ib, sb) in zip(la, lb):
        if ia != ib:
            return ia < ib
        if sa is not None and sb is not None:
            return sa < sb
    return None


def precedes(chain: CutChain, idx: int, pkt) -> bool:
    """Would the slow path have processed ``pkt``'s enqueue before the
    chained packet's virtual enqueue at hop ``idx``?  Both events were
    allocated one ingress delay ago (the funnel); the lineage walk
    replays the slow path's seq comparison level by level.
    Undecidable (exhausted) lineages default to the chain."""
    port = chain.hops[idx]
    funnel = chain.hops[idx + 1] - port.in_delay_ps
    return bool(_earlier(_pkt_lineage(pkt, funnel),
                         _chain_lineage(chain, idx)))


def _tx_lineage(cur) -> list:
    """An in-flight transmission's allocation lineage: its tx-done was
    allocated at the transmission start, by the event whose own
    allocation the packet carries in ``alloc_ps`` — with two more
    carried allocator levels below."""
    return [(cur.tx_start_ps, None),
            (cur.alloc_ps,
             cur.rank_seq if cur.arrival_ps == cur.tx_start_ps else None),
            (cur.alloc2_ps, None), (cur.alloc3_ps, None)]


#: identity sets for classifying heap-top callbacks (filled lazily —
#: port.py imports this module, so the import must not be circular)
_ENQUEUE_FNS: tuple = ()
_TX_DONE_FNS: tuple = ()


def _event_fn_sets():
    global _ENQUEUE_FNS, _TX_DONE_FNS
    from repro.core.port import BasePort, PfabricPort, PullPort, QueuedPort
    _ENQUEUE_FNS = (QueuedPort.enqueue, PfabricPort.enqueue)
    _TX_DONE_FNS = (QueuedPort._tx_done, PullPort._tx_done,
                    BasePort._tx_done)
    return _ENQUEUE_FNS, _TX_DONE_FNS


def _top_lineage(fn, arg, now: int, funnel: int):
    """Lineage of a heap-top event for the rank-turn walk, or one of
    the sentinels: ``_PRECEDES`` for kinds whose allocation long
    predates any lineage here (timers, application arrivals — the slow
    path runs them first), ``_FOLLOWS`` for unrankable leftovers.
    Callbacks are classified by function identity, so a rename or a
    new same-named callback cannot silently misclassify."""
    if fn is _wire_done:
        o = arg.hops
        j = len(o) - _HOP
        return [(o[j + 1], None)] + _chain_lineage(arg, j)
    if fn is _launch:
        return _chain_lineage(arg, len(arg.hops) - _HOP)
    if fn is _mat_done:
        cur = arg.cur_pkt
        if cur is None:
            return _FOLLOWS
        return _tx_lineage(cur)
    func = getattr(fn, "__func__", None)
    enq, txd = (_ENQUEUE_FNS, _TX_DONE_FNS) if _ENQUEUE_FNS \
        else _event_fn_sets()
    if type(arg) is Packet:
        if func in enq:
            return _pkt_lineage(arg, funnel)
        # A host delivery: allocated one software delay ago.
        sw = getattr(getattr(fn, "__self__", None), "software_delay_ps", None)
        if sw is None:
            return _PRECEDES
        return [(now - sw, None)]
    if arg is None and func in txd:
        cur = fn.__self__.cur_pkt
        if cur is None:
            return _FOLLOWS
        return _tx_lineage(cur)
    return _PRECEDES


_PRECEDES = object()
_FOLLOWS = object()


def _rank_turn(chain, sim, now, idx, root_ps, cb) -> bool:
    """Rank repair: yield to a same-instant heap event the slow path
    would have processed first (its allocation lineage compares
    earlier), by re-pushing the continuation with a fresh seq.  Returns
    True when it is the chain's turn.  This is what keeps same-instant
    allocation order — and through it delivery order, FIFO order, and
    the shared spray RNG stream — identical to the slow path.
    Lineages are only materialized when a same-instant top exists (the
    uncommon case); ``root_ps`` prepends the tx-done level for a chain
    ending at its wire-done."""
    heap = sim._heap
    while heap:
        top = heap[0]
        if top[0] != now:
            return True
        fn = top[2]
        if fn is None:
            heappop(heap)
            continue
        tl = _top_lineage(fn, top[3], now,
                          now - chain.hops[-_HOP].in_delay_ps)
        if tl is _FOLLOWS:
            return True
        if tl is not _PRECEDES:
            my = _chain_lineage(chain, idx)
            if root_ps is not None:
                my.insert(0, (root_ps, None))
            if not _earlier(tl, my):
                return True
        sim._seq += 1
        event = [now, sim._seq, cb, chain]
        heappush(heap, event)
        chain.event = event
        return False
    return True


def _wire_done(chain: CutChain) -> None:
    """End of a chain's last reserved hop: the packet has fully
    arrived there.  After taking its rank turn (so the hand-off is
    allocated in slow-path order), retire the reservations, restore
    the packet's lineage stamps as if the last hop had been a real
    pass-through transmission, and deliver — into the next switch's
    ingress for a mid-path chain, or the host ingress (which allocates
    the software-delay delivery, exactly where the slow path allocates
    it) for a completed one."""
    hops = chain.hops
    port = hops[-_HOP]
    sim = chain.sim
    now = sim.now
    chain.event = None  # mark fired: a same-instant divert must re-arm
    idx = len(hops) - _HOP
    heap = sim._heap
    if heap and heap[0][0] == now:
        if not _rank_turn(chain, sim, now, idx, hops[idx + 1], _wire_done):
            return
    pkt = chain.pkt
    for i in range(0, len(hops), _HOP):
        p = hops[i]
        if p.res_chain is chain:
            p.res_chain = None
    s_last = hops[-2]
    if idx == 0:
        pkt.rank_seq = chain.plan_seq
        pkt.alloc2_ps = pkt.tx_start_ps
        pkt.alloc3_ps = pkt.alloc_ps
    else:
        pkt.rank_seq = RANK_UNKNOWN
        pkt.alloc2_ps = hops[idx - 2]
        pkt.alloc3_ps = hops[idx - 2] - port.in_delay_ps
    pkt.tx_start_ps = s_last
    pkt.alloc_ps = s_last - port.in_delay_ps
    pkt.arrival_ps = s_last
    port.deliver(pkt)


def _launch(chain: CutChain) -> None:
    """Start of a diverted chain's re-entry hop reached: after taking
    its rank turn, hand the packet back to the port — a plain enqueue
    when an interloper already holds the link (the packet queues at
    its exact slow-path arrival instant), or a materialized
    transmission when the port turned out clean after all."""
    hops = chain.hops
    port = hops[-_HOP]
    sim = chain.sim
    now = sim.now
    chain.event = None  # mark fired: a same-instant divert must re-arm
    idx = len(hops) - _HOP
    if not _rank_turn(chain, sim, now, idx, None, _launch):
        return
    if (port.busy or port._nonempty or port._paused
            or port.probe is not None or port.trace_delays):
        chain.reenter(idx)
        return
    pkt = chain.pkt
    for i in range(0, len(hops), _HOP):
        p = hops[i]
        if p.res_chain is chain:
            p.res_chain = None
    old_tx, old_alloc = pkt.tx_start_ps, pkt.alloc_ps
    # The real tx-done re-credits what planning already counted.
    port.tx_packets -= 1
    port.tx_wire_bytes -= pkt.wire
    port._materialize(pkt, now, hops[-1])
    if idx == 0:
        pkt.rank_seq = chain.plan_seq
        pkt.alloc2_ps = old_tx
        pkt.alloc3_ps = old_alloc
    else:
        pkt.alloc2_ps = hops[idx - 2]
        pkt.alloc3_ps = hops[idx - 2] - port.in_delay_ps


def run_late_mats(sim, now: int, cur) -> None:
    """Called by a firing real tx-done when the heap top is a pending
    same-instant ``_mat_done``: a mid-window materialization's
    completion carries a late seq, and when its lineage says the slow
    path would have completed it before this tx-done, run it inline
    first so the two completions' downstream allocations keep their
    slow-path order."""
    heap = sim._heap
    while heap:
        top = heap[0]
        if top[0] != now or top[2] is not _mat_done:
            break
        port2 = top[3]
        if (port2.mat_tx is not top or port2.cur_pkt is None
                or not _earlier(_tx_lineage(port2.cur_pkt),
                                _tx_lineage(cur))):
            break
        port2.mat_tx = None
        Simulator.cancel(top)
        port2._tx_done()


def _mat_done(port) -> None:
    """Completion of a *mid-window* materialized transmission.  Its
    event seq dates from the conflict that materialized it, not from
    the transmission start the slow path allocated at, so before
    completing it takes a rank turn against same-instant events —
    in particular other late materializations — using the packet's
    carried lineage.  (Events allocated before the conflict still fire
    first regardless; the enqueue-side replay in QueuedPort covers the
    arrivals among them.)"""
    sim = port.sim
    now = sim.now
    heap = sim._heap
    cur = port.cur_pkt
    lineage = _tx_lineage(cur)
    funnel = now - port.in_delay_ps
    while heap:
        top = heap[0]
        if top[0] != now:
            break
        fn = top[2]
        if fn is None:
            heappop(heap)
            continue
        tl = _top_lineage(fn, top[3], now, funnel)
        if tl is _FOLLOWS:
            break
        if tl is _PRECEDES or _earlier(tl, lineage):
            sim._seq += 1
            event = [now, sim._seq, _mat_done, port]
            heappush(heap, event)
            port.mat_tx = event
            if port.preemptive:
                port._tx_event = event
            return
        break
    port.mat_tx = None
    port._tx_done()


# The per-hop fast-path predicate, inlined below for speed — KEEP IN
# SYNC with BasePort.cut_ready: structurally eligible port (no
# buffers/ECN/trim/pFabric; ideal preemption is allowed — a preempting
# arrival materializes the reservation first), idle link, empty queues,
# no pending scheduled arrival (strict: a same-instant arrival keeps
# the slow path), no observers, no paused preempted packet, no live
# reservation.  The owning switch must also be filter-free.  The first
# port of each planner skips the ``busy`` check: the fused ingress only
# calls a planner after finding its routed egress idle.


def _install(sim, pkt, hops, stats, n) -> None:
    """Create the chain, reserve the hops, credit the counters, and
    schedule the wire-done at the last hop's end (unrolled per arity —
    this runs once per chain, i.e. per idle-path packet)."""
    chain = CutChain.__new__(CutChain)
    chain.sim = sim
    chain.pkt = pkt
    chain.hops = hops
    chain.stats = stats
    sim._seq += 1
    seq = sim._seq
    chain.plan_seq = seq
    time_ps = hops[-1]
    event = [time_ps, seq, _wire_done, chain]
    chain.event = event
    if time_ps < sim._horizon:
        heappush(sim._heap, event)
    else:
        sim._file_far(event, time_ps)
    wire = pkt.wire
    port = hops[0]
    port.res_chain = chain
    port.res_idx = 0
    port.res_start_ps = hops[1]
    port.res_end_ps = hops[2]
    port.tx_packets += 1
    port.tx_wire_bytes += wire
    if n > 1:
        port = hops[3]
        port.res_chain = chain
        port.res_idx = 3
        port.res_start_ps = hops[4]
        port.res_end_ps = hops[5]
        port.tx_packets += 1
        port.tx_wire_bytes += wire
        if n > 2:
            port = hops[6]
            port.res_chain = chain
            port.res_idx = 6
            port.res_start_ps = hops[7]
            port.res_end_ps = hops[8]
            port.tx_packets += 1
            port.tx_wire_bytes += wire
    stats[STAT_CHAINS] += 1
    stats[STAT_HOPS] += n


def plan_from_tor(sim, pkt, now, stats, tor, up_port,
                  aggr, aggr_port, rtor, down_port) -> bool:
    """Chain a cross-rack traversal from the sender's TOR: the idle
    uplink, plus the aggregation downlink and the receiver downlink
    when they are idle and clean too."""
    if not (up_port.cut_ok
            and not up_port._nonempty
            and now > up_port.last_arrival_ps
            and up_port.probe is None
            and not up_port.trace_delays
            and not up_port._paused
            and (up_port.res_chain is None or up_port.res_end_ps <= now)):
        return False
    wire = pkt.wire
    s0 = now + tor.delay_ps
    e0 = s0 + wire * up_port.ppb
    if not (aggr_port.cut_ok
            and not aggr_port.busy
            and not aggr_port._nonempty
            and now > aggr_port.last_arrival_ps
            and aggr_port.probe is None
            and not aggr_port.trace_delays
            and not aggr_port._paused
            and (aggr_port.res_chain is None or aggr_port.res_end_ps <= now)
            and aggr.drop_filter is None):
        _install(sim, pkt, [up_port, s0, e0], stats, 1)
        return True
    s1 = e0 + aggr.delay_ps
    e1 = s1 + wire * aggr_port.ppb
    if (wire <= TAIL_HOP_MAX_WIRE
            and down_port.cut_ok
            and not down_port.busy
            and not down_port._nonempty
            and now > down_port.last_arrival_ps
            and down_port.probe is None
            and not down_port.trace_delays
            and not down_port._paused
            and (down_port.res_chain is None or down_port.res_end_ps <= now)
            and rtor.drop_filter is None):
        s2 = e1 + rtor.delay_ps
        hops = [up_port, s0, e0, aggr_port, s1, e1,
                down_port, s2, s2 + wire * down_port.ppb]
        n = 3
    else:
        hops = [up_port, s0, e0, aggr_port, s1, e1]
        n = 2
    _install(sim, pkt, hops, stats, n)
    return True


def plan_from_aggr(sim, pkt, now, stats, aggr, down_port,
                   rtor, tor_port) -> bool:
    """Chain the tail of a traversal from an aggregation switch: the
    idle aggregation downlink, plus the receiver downlink when it is
    idle and clean too."""
    if not (down_port.cut_ok
            and not down_port._nonempty
            and now > down_port.last_arrival_ps
            and down_port.probe is None
            and not down_port.trace_delays
            and not down_port._paused
            and (down_port.res_chain is None or down_port.res_end_ps <= now)):
        return False
    wire = pkt.wire
    s0 = now + aggr.delay_ps
    e0 = s0 + wire * down_port.ppb
    if (wire <= TAIL_HOP_MAX_WIRE
            and tor_port.cut_ok
            and not tor_port.busy
            and not tor_port._nonempty
            and now > tor_port.last_arrival_ps
            and tor_port.probe is None
            and not tor_port.trace_delays
            and not tor_port._paused
            and (tor_port.res_chain is None or tor_port.res_end_ps <= now)
            and rtor.drop_filter is None):
        s1 = e0 + rtor.delay_ps
        hops = [down_port, s0, e0, tor_port, s1,
                s1 + wire * tor_port.ppb]
        n = 2
    else:
        hops = [down_port, s0, e0]
        n = 1
    _install(sim, pkt, hops, stats, n)
    return True


def plan_local(sim, pkt, now, stats, tor, down_port) -> bool:
    """Chain an intra-rack delivery over the idle receiver downlink:
    one hop, but the wire-done still folds the arrival and tx-done
    events into one."""
    if not (down_port.cut_ok
            and not down_port._nonempty
            and now > down_port.last_arrival_ps
            and down_port.probe is None
            and not down_port.trace_delays
            and not down_port._paused
            and (down_port.res_chain is None or down_port.res_end_ps <= now)):
        return False
    s0 = now + tor.delay_ps
    _install(sim, pkt, [down_port, s0, s0 + pkt.wire * down_port.ppb],
             stats, 1)
    return True
