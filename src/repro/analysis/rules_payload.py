"""Payload round-trip exhaustiveness.

The PR 2 campaign cache persists results through ``to_payload`` /
``from_payload`` pairs; a field written but never read (or a dataclass
field never written) silently corrupts cache hits — the run "succeeds"
with a default where measured data should be.  This rule statically
recovers both key sets and the dataclass field set and requires all
three to agree.

Recognized write forms in ``to_payload``::

    return {"a": ..., "b": ...}          # explicit key set
    payload = {"a": ...}; return payload # via a local name
    return asdict(self)                  # ALL dataclass fields

Recognized read forms in ``from_payload``::

    payload["a"] / payload.get("a") / data.pop("a")
    cls(**data)                          # ALL remaining keys

A ``to_payload`` whose written keys cannot be recovered statically
(e.g. dict built in a loop) is an ``opaque`` finding — restructure it
or waive with a pragma explaining why it is exhaustive.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Finding, Module, Project, rule

_ALL = "<all>"


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if "ClassVar" in ast.dump(stmt.annotation):
                continue
            if not stmt.target.id.startswith("_"):
                fields.append(stmt.target.id)
    return fields


def _dict_keys(node: ast.Dict) -> Optional[set[str]]:
    keys: set[str] = set()
    for k in node.keys:
        if k is None:  # ** unpack — opaque
            return None
        if isinstance(k, ast.Constant) and isinstance(k.value, str):
            keys.add(k.value)
        else:
            return None
    return keys


def _written_keys(fn: ast.FunctionDef) -> Optional[set[str]]:
    """Keys written by to_payload; {_ALL} for asdict(self); None if opaque."""
    # local name -> dict-literal keys, for `payload = {...}; return payload`
    assigned: dict[str, Optional[set[str]]] = {}
    written: set[str] = set()
    saw_return = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    assigned[tgt.id] = _dict_keys(node.value)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in assigned
            and isinstance(node.ctx, ast.Store)
        ):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                keys = assigned[node.value.id]
                if keys is not None:
                    keys.add(node.slice.value)
            else:
                # dynamic key (out[k] = ...): written set unknowable
                assigned[node.value.id] = None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        saw_return = True
        value = node.value
        if isinstance(value, ast.Dict):
            keys = _dict_keys(value)
            if keys is None:
                return None
            written |= keys
        elif isinstance(value, ast.Call):
            fname = value.func.attr if isinstance(value.func, ast.Attribute) else getattr(value.func, "id", None)
            if fname == "asdict":
                written.add(_ALL)
            else:
                return None
        elif isinstance(value, ast.Name) and value.id in assigned:
            keys = assigned[value.id]
            if keys is None:
                return None
            written |= keys
        else:
            return None
    return written if saw_return else None


def _payload_aliases(fn: ast.FunctionDef) -> set[str]:
    """Names that refer to the payload dict: the parameter itself plus
    locals assigned from it via ``dict(payload)`` / ``payload.copy()`` /
    plain rebinding.  Only accesses through these names count as reads —
    ``homa.get("cutoff_override")`` on a *nested* sub-dict is that
    class's own round-trip, not this one's."""
    params = [a.arg for a in fn.args.args if a.arg not in ("cls", "self")]
    tracked = set(params[:1])
    for _ in range(3):  # fixpoint over chained aliases
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            src: Optional[str] = None
            if isinstance(value, ast.Name):
                src = value.id
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
                and len(value.args) == 1
                and isinstance(value.args[0], ast.Name)
            ):
                src = value.args[0].id
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "copy"
                and isinstance(value.func.value, ast.Name)
            ):
                src = value.func.value.id
            if src in tracked:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        tracked.add(tgt.id)
    return tracked


def _read_keys(fn: ast.FunctionDef) -> Optional[set[str]]:
    """Keys read by from_payload; includes _ALL for a ``**name`` splat."""
    tracked = _payload_aliases(fn)
    read: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in tracked
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(node.ctx, ast.Load)
        ):
            read.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in tracked
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            read.add(node.args[0].value)
        elif isinstance(node, ast.Call) and any(
            kw.arg is None
            and isinstance(kw.value, ast.Name)
            and kw.value.id in tracked
            for kw in node.keywords
        ):
            read.add(_ALL)
    return read or None


@rule("payload-roundtrip")
def check_payload_roundtrip(project: Project) -> list[Finding]:
    """Every to_payload/from_payload pair must cover the same field set.

    Three-way check per class: written keys vs read keys vs dataclass
    fields.  A dataclass field absent from to_payload is the
    cache-corrupting case (deserialized object silently reverts that
    field to its default).
    """
    out: list[Finding] = []
    for mod in project.modules:
        if not mod.rel.startswith("src/repro/"):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                s.name: s for s in node.body if isinstance(s, ast.FunctionDef)
            }
            to_fn = methods.get("to_payload")
            from_fn = methods.get("from_payload")
            if to_fn is None or from_fn is None:
                continue

            def report(anchor: ast.AST, detail: str, msg: str) -> None:
                out.append(
                    Finding(
                        rule="payload-roundtrip",
                        path=mod.rel,
                        line=anchor.lineno,
                        scope=mod.scope_of(anchor),
                        detail=detail,
                        message=f"{node.name}: {msg}",
                    )
                )

            written = _written_keys(to_fn)
            read = _read_keys(from_fn)
            if written is None:
                report(
                    to_fn,
                    "opaque-to_payload",
                    "cannot statically determine the keys to_payload "
                    "writes; return a literal dict or asdict(self)",
                )
                continue
            if read is None:
                report(
                    from_fn,
                    "opaque-from_payload",
                    "cannot statically determine the keys from_payload "
                    "reads; index/get/pop string keys or splat **data",
                )
                continue

            fields = _dataclass_fields(node) if _is_dataclass(node) else None
            if _ALL in written:
                written = set(fields or []) or {_ALL}
            reads_all = _ALL in read
            read.discard(_ALL)

            if _ALL not in written:
                if not reads_all:
                    for f in sorted(written - read):
                        report(
                            from_fn,
                            f"unread:{f}",
                            f"field {f!r} is written by to_payload but "
                            f"never read by from_payload (silently dropped "
                            f"on cache load)",
                        )
                for f in sorted(read - written):
                    report(
                        to_fn,
                        f"unwritten:{f}",
                        f"from_payload reads field {f!r} that to_payload "
                        f"never writes (KeyError or silent default on "
                        f"cache load)",
                    )
                if fields is not None:
                    for f in sorted(set(fields) - written):
                        report(
                            to_fn,
                            f"dropped:{f}",
                            f"dataclass field {f!r} is never serialized by "
                            f"to_payload — round-trips silently revert it "
                            f"to its default",
                        )
    return out
