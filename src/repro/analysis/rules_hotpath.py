"""Hot-path allocation rule (advisory tier — findings get baselined).

``HOT_FUNCTIONS`` is a manifest of the functions that run per event /
per packet in the canonical 144-host benches: the event loop and
schedulers, port enqueue/dequeue, the Homa grant path, and cut-through
chaining.  Inside those functions we flag constructs that allocate or
pay per call:

* nested ``def`` / ``lambda``   — a fresh closure object per call;
* comprehensions / genexps      — a fresh list/set/dict/generator + an
                                  implicit function call per evaluation;
* string formatting (f-strings, ``.format``, ``%``) — unless it only
  runs on the raise/assert failure path, which costs nothing when the
  simulation is healthy;
* ``try``/``except`` inside a loop — cheap to *enter* on CPython 3.11,
  but usually marks a polymorphic fast path that reads better (and
  traces better) as an explicit test.

The tier is advisory: existing findings are grandfathered in
``baseline.json`` rather than rewritten for lint's sake — several are
deliberate (e.g. a comprehension outside the per-packet branch).  New
findings in these functions still fail CI until baselined or waived,
which is the point: allocation creep in the hot path should be a
conscious decision (see docs/PERFORMANCE.md).

The manifest itself is checked: entries that no longer resolve to a
function raise a ``hot-alloc`` stale finding, so refactors must keep it
current.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Module, Project, compact, rule

HOT_FUNCTIONS: dict[str, frozenset[str]] = {
    "src/repro/core/engine.py": frozenset(
        {
            "Simulator.schedule",
            "Simulator.schedule0",
            "Simulator.schedule1",
            "Simulator.schedule_at",
            "Simulator.schedule_at1",
            "Simulator._file_far",
            "Simulator._refill",
            "Simulator._run_loop",
        }
    ),
    "src/repro/core/port.py": frozenset(
        {
            "QueuedPort.enqueue",
            "QueuedPort._next",
            "QueuedPort._tx_done",
            "QueuedPort._transmit",
            "PfabricPort.enqueue",
            "PfabricPort._next",
            "PullPort._tx_done",
            "PullPort._next",
        }
    ),
    "src/repro/core/topology.py": frozenset(
        {
            "Network._make_tor_ingress.<locals>.ingress",
            "Network._make_aggr_ingress.<locals>.ingress",
        }
    ),
    "src/repro/core/pool.py": frozenset(
        {
            "PacketPool.alloc_data",
            "PacketPool.alloc_ctrl",
            "PacketPool.free",
        }
    ),
    "src/repro/core/cutthrough.py": frozenset(
        {
            "precedes",
            "_earlier",
            "_wire_done",
            "_launch",
            "run_late_mats",
            "_mat_done",
            "_install",
            "plan_from_tor",
            "plan_from_aggr",
            "plan_local",
        }
    ),
    "src/repro/homa/transport.py": frozenset(
        {
            "HomaTransport.next_packet",
            "HomaTransport._next_data",
            "HomaTransport._make_data_packet",
            "HomaTransport._on_data",
            "HomaTransport._schedule_grants",
            "HomaTransport._grant_packet",
            "HomaTransport._emit_changed_grant",
            "HomaTransport._grant_tick",
            "HomaTransport._on_grant",
        }
    ),
    "src/repro/transport/messages.py": frozenset(
        {
            "Intervals.add",
            "OutboundMessage.next_chunk",
            "InboundMessage.record",
        }
    ),
    "src/repro/transport/base.py": frozenset(
        {
            "Transport.send_ctrl",
            "Transport.next_packet",
        }
    ),
}


def _scan_function(mod: Module, qual: str, fn: ast.AST, out: list[Finding]) -> None:
    def add(node: ast.AST, kind: str, msg: str) -> None:
        out.append(
            Finding(
                rule="hot-alloc",
                path=mod.rel,
                line=getattr(node, "lineno", 0),
                scope=qual,
                detail=f"{kind}:{compact(node, 48)}",
                message=f"[hot {qual}] {msg}",
            )
        )

    def walk(node: ast.AST, in_loop: bool, in_fail_path: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            child_in_fail = in_fail_path
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add(child, "closure", "nested def allocates a closure per call")
                continue  # its own body only runs when the closure is called
            if isinstance(child, ast.Lambda):
                add(child, "closure", "lambda allocates a closure per call")
                continue
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop = True
            if isinstance(child, (ast.Raise, ast.Assert)):
                # Allocation on the failure path is free in healthy runs.
                child_in_fail = True
            if isinstance(child, ast.Try) and in_loop and not in_fail_path:
                add(child, "try-in-loop", "try/except inside an inner loop")
            if not child_in_fail:
                if isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    add(
                        child,
                        "comprehension",
                        "comprehension allocates per call",
                    )
                elif isinstance(child, ast.JoinedStr):
                    add(child, "format", "f-string formatting per call")
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "format"
                    and isinstance(child.func.value, ast.Constant)
                    and isinstance(child.func.value.value, str)
                ):
                    add(child, "format", "str.format() per call")
                elif (
                    isinstance(child, ast.BinOp)
                    and isinstance(child.op, ast.Mod)
                    and isinstance(child.left, ast.Constant)
                    and isinstance(child.left.value, str)
                ):
                    add(child, "format", "%-formatting per call")
            walk(child, child_in_loop, child_in_fail)

    walk(fn, in_loop=False, in_fail_path=False)


@rule("hot-alloc", tier="advisory")
def check_hot_alloc(project: Project) -> list[Finding]:
    """Per-event allocation in manifest-listed hot functions (advisory).

    Flags closures, comprehensions, string formatting and try-in-loop
    inside the hot-function manifest; existing instances live in
    baseline.json.  Also fails on stale manifest entries so the
    manifest tracks refactors.
    """
    out: list[Finding] = []
    manifest = project.hot_manifest or HOT_FUNCTIONS
    for rel, quals in sorted(manifest.items()):
        mod = project.by_rel.get(rel)
        if mod is None:
            if project.full_tree:
                out.append(
                    Finding(
                        rule="hot-alloc",
                        path=rel,
                        line=0,
                        scope="<module>",
                        detail="stale-file",
                        message=(
                            f"hot-function manifest names missing file "
                            f"{rel}; update HOT_FUNCTIONS in "
                            f"rules_hotpath.py"
                        ),
                    )
                )
            continue
        for qual in sorted(quals):
            fn = mod.functions.get(qual)
            if fn is None:
                out.append(
                    Finding(
                        rule="hot-alloc",
                        path=rel,
                        line=0,
                        scope=qual,
                        detail="stale-entry",
                        message=(
                            f"hot-function manifest entry {qual} not found "
                            f"in {rel}; update HOT_FUNCTIONS in "
                            f"rules_hotpath.py"
                        ),
                    )
                )
                continue
            _scan_function(mod, qual, fn, out)
    return out
