"""Config/doc drift.

Every field of the user-facing config classes (``HomaConfig``,
``NetworkConfig``, the declarative-fabric surface ``TopologySpec``
/ ``LossRates`` / ``FaultEvent``, and the loss-recovery policy
``RecoveryConfig``) must be mentioned somewhere in the
repo's markdown (README/docs/**).  The canonical field reference is
docs/CONFIG.md; this rule is what keeps it from rotting when someone
adds a knob.

Bidirectional: table rows in docs/CONFIG.md that name a field which no
longer exists are flagged too (``stale-doc``), so renames cannot leave
ghost documentation behind.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Finding, Project, rule

#: class names whose fields constitute the user-facing config surface
CONFIG_CLASS_NAMES = ("HomaConfig", "NetworkConfig", "TopologySpec",
                      "LossRates", "FaultEvent", "RecoveryConfig")

#: the canonical field-reference document (checked bidirectionally)
CONFIG_DOC = "docs/CONFIG.md"

_TABLE_FIELD_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`")


@rule("doc-drift")
def check_doc_drift(project: Project) -> list[Finding]:
    """HomaConfig/NetworkConfig fields must appear in the markdown docs.

    Forward: each dataclass field name must occur (as a whole word) in
    some ``*.md`` under the repo root or docs/.  Reverse: each
    backticked field in a docs/CONFIG.md table row must still exist on
    one of the config classes.
    """
    out: list[Finding] = []
    all_docs = "\n".join(project.docs.values())
    known_fields: set[str] = set()
    for mod in project.modules:
        for cls_name in CONFIG_CLASS_NAMES:
            cls = mod.classes.get(cls_name)
            if cls is None:
                continue
            for stmt in cls.body:
                # Dataclass-style annotated fields, or a plain class's
                # ``__slots__`` tuple (e.g. RecoveryConfig).
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                ):
                    field = stmt.target.id
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "__slots__"
                    and isinstance(stmt.value, (ast.Tuple, ast.List))
                ):
                    for elt in stmt.value.elts:
                        if (isinstance(elt, ast.Constant)
                                and isinstance(elt.value, str)
                                and not elt.value.startswith("_")):
                            known_fields.add(elt.value)
                            if not re.search(
                                    rf"\b{re.escape(elt.value)}\b",
                                    all_docs):
                                out.append(
                                    Finding(
                                        rule="doc-drift",
                                        path=mod.rel,
                                        line=stmt.lineno,
                                        scope=cls_name,
                                        detail=f"undocumented:{elt.value}",
                                        message=(
                                            f"{cls_name}.{elt.value} is not "
                                            f"mentioned in any markdown doc; "
                                            f"add it to {CONFIG_DOC}"
                                        ),
                                    )
                                )
                    continue
                else:
                    continue
                known_fields.add(field)
                if not re.search(rf"\b{re.escape(field)}\b", all_docs):
                    out.append(
                        Finding(
                            rule="doc-drift",
                            path=mod.rel,
                            line=stmt.lineno,
                            scope=cls_name,
                            detail=f"undocumented:{field}",
                            message=(
                                f"{cls_name}.{field} is not mentioned in "
                                f"any markdown doc; add it to {CONFIG_DOC}"
                            ),
                        )
                    )
    config_doc = project.docs.get(CONFIG_DOC)
    if config_doc is not None and known_fields:
        for lineno, line in enumerate(config_doc.splitlines(), start=1):
            m = _TABLE_FIELD_RE.match(line.strip())
            if m and m.group(1) not in known_fields:
                out.append(
                    Finding(
                        rule="doc-drift",
                        path=CONFIG_DOC,
                        line=lineno,
                        scope="<doc>",
                        detail=f"stale-doc:{m.group(1)}",
                        message=(
                            f"{CONFIG_DOC} documents field "
                            f"{m.group(1)!r} which exists on neither "
                            f"{' nor '.join(CONFIG_CLASS_NAMES)}"
                        ),
                    )
                )
    return out
