"""simlint — stdlib-only static analysis for this repo's contracts.

Run it as ``python -m repro.analysis`` (no third-party deps; works
before ``pip install``).  See docs/STATIC_ANALYSIS.md for the rule
catalog, baseline workflow and pragma syntax.
"""

from repro.analysis.core import (
    DEFAULT_BASELINE,
    DEFAULT_TARGETS,
    REPO_ROOT,
    RULES,
    BaselineDiff,
    Finding,
    Module,
    Pragma,
    Project,
    Rule,
    RunResult,
    analyze_source,
    count_findings,
    diff_baseline,
    load_baseline,
    run,
    write_baseline,
)

# Importing the rule modules registers their rules.
from repro.analysis import (  # noqa: E402  (registration side effects)
    rules_campaign,
    rules_determinism,
    rules_docs,
    rules_faults,
    rules_hotpath,
    rules_payload,
    rules_registry,
    rules_sched,
    rules_units,
)

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_TARGETS",
    "REPO_ROOT",
    "RULES",
    "BaselineDiff",
    "Finding",
    "Module",
    "Pragma",
    "Project",
    "Rule",
    "RunResult",
    "analyze_source",
    "count_findings",
    "diff_baseline",
    "load_baseline",
    "run",
    "write_baseline",
    "rules_campaign",
    "rules_determinism",
    "rules_docs",
    "rules_faults",
    "rules_hotpath",
    "rules_payload",
    "rules_registry",
    "rules_sched",
    "rules_units",
]
