"""Time-unit dimensional hygiene (``units``).

Every duration in the simulator is an integer count of picoseconds
(``core/units.py``), and the repo's naming convention carries the unit
in the identifier suffix: ``_ps``, ``_ns``, ``_us``, ``_ms`` (plus the
bare ``now``, which is always ``Simulator.now`` in picoseconds).  That
convention makes a whole class of bugs statically visible:

* ``deadline_ns + timeout_ps`` — adding or subtracting two
  differently-suffixed quantities silently mixes scales by x1000;
* ``if elapsed_us > budget_ms:`` — same, in a comparison;
* ``sim.schedule(delay_ns, ...)`` — the scheduling API takes
  picoseconds; passing a ``_ns``/``_us``/``_ms`` quantity fires the
  event a thousand-fold (or more) too early.

Inference is deliberately shallow — only identifiers with a unit
suffix, the canonical conversion idioms (``x_ms * MS`` and friends
produce picoseconds, scaling by a plain number keeps the unit), and
unit-preserving ``+``/``-`` chains.  Anything else (calls, subscripts,
unsuffixed names) has no statically known unit and is skipped rather
than guessed.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Finding, Module, Project, rule

#: recognised identifier suffixes (all convert to ps via core/units.py)
_SUFFIXES = ("ps", "ns", "us", "ms")

#: the conversion constants from core/units.py; multiplying by one
#: yields picoseconds, flooring-dividing picoseconds by one converts
#: down to that unit.
_UNIT_CONSTS = {"PS": "ps", "NS": "ns", "US": "us", "MS": "ms"}

#: Simulator scheduling entry points; the first argument is always a
#: picosecond quantity (relative delay or absolute timestamp).
_SCHEDULERS = ("schedule", "schedule0", "schedule1",
               "schedule_at", "schedule_at1")


def _ident_unit(name: str) -> Optional[str]:
    if name == "now":  # Simulator.now and its ubiquitous local alias
        return "ps"
    head, _, suffix = name.rpartition("_")
    if head and suffix in _SUFFIXES:
        return suffix
    return None


def _const_name(node: ast.AST) -> Optional[str]:
    """'ps'/'ns'/... if ``node`` is one of the core/units constants."""
    if isinstance(node, ast.Name):
        return _UNIT_CONSTS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _UNIT_CONSTS.get(node.attr)
    return None


def _unit_of(node: ast.AST) -> Optional[str]:
    """The statically known time unit of an expression, or None."""
    if isinstance(node, ast.Name):
        return _ident_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _ident_unit(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand)
    if isinstance(node, ast.BinOp):
        left, right = _unit_of(node.left), _unit_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return left if left is not None and left == right else None
        if isinstance(node.op, ast.Mult):
            # The conversion idiom: ``x_ms * MS`` (or ``MS * x``) is a
            # picosecond quantity; scaling by a literal keeps the unit.
            if _const_name(node.left) or _const_name(node.right):
                return "ps"
            if isinstance(node.left, ast.Constant):
                return right
            if isinstance(node.right, ast.Constant):
                return left
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            down = _const_name(node.right)
            if down is not None:
                # ``x_ps // MS`` converts picoseconds *down* to ms.
                return down if left in (None, "ps") else None
            if isinstance(node.right, ast.Constant):
                return left
            return None
    return None


def _finding(mod: Module, node: ast.AST, detail: str, msg: str) -> Finding:
    return Finding(rule="units", path=mod.rel, line=node.lineno,
                   scope=mod.scope_of(node), detail=detail, message=msg)


@rule("units")
def check_units(project: Project) -> list[Finding]:
    """ps/ns/us/ms dimensional hygiene on suffixed identifiers.

    Flags ``+``/``-``/comparisons whose two operands carry different
    unit suffixes, and ``sim.schedule*`` calls whose time argument is
    statically a non-picosecond quantity.  Convert first with the
    ``core/units.py`` constants (``x_ms * MS``); only identifiers with
    a known suffix participate, so unsuffixed code is never flagged.
    """
    out: list[Finding] = []
    for mod in project.modules:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                left, right = _unit_of(node.left), _unit_of(node.right)
                if left and right and left != right:
                    out.append(_finding(
                        mod, node, f"binop:{left}:{right}",
                        f"adds/subtracts a _{left} quantity and a "
                        f"_{right} quantity; convert via core/units.py "
                        f"constants first"))
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                left, right = _unit_of(node.target), _unit_of(node.value)
                if left and right and left != right:
                    out.append(_finding(
                        mod, node, f"augassign:{left}:{right}",
                        f"accumulates a _{right} quantity into a "
                        f"_{left} variable; convert via core/units.py "
                        f"constants first"))
            elif isinstance(node, ast.Compare):
                units = [_unit_of(operand) for operand in
                         [node.left, *node.comparators]]
                known = [u for u in units if u is not None]
                if len(known) >= 2 and len(set(known)) > 1:
                    pair = ":".join(sorted(set(known)))
                    out.append(_finding(
                        mod, node, f"compare:{pair}",
                        f"compares quantities of different time units "
                        f"({', '.join(sorted(set(known)))}); convert "
                        f"via core/units.py constants first"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (not isinstance(func, ast.Attribute)
                        or func.attr not in _SCHEDULERS
                        or not node.args):
                    continue
                unit = _unit_of(node.args[0])
                if unit is not None and unit != "ps":
                    out.append(_finding(
                        mod, node, f"schedule:{unit}",
                        f"{func.attr}() takes picoseconds but this "
                        f"argument is statically a _{unit} quantity; "
                        f"multiply by the core/units.py constant"))
    return out
