"""Event-callback arity rule.

The simulator's scheduling API fixes, per variant, how many positional
arguments the event loop will deliver to the callback when the event
fires (``core/engine.py``):

* ``schedule(delay, fn, *args)`` / ``schedule_at(t, fn, *args)`` — the
  callback receives exactly the trailing ``*args``;
* ``schedule0(delay, fn)`` — the callback receives nothing;
* ``schedule1(delay, fn, arg)`` / ``schedule_at1(t, fn, arg)`` — the
  callback receives exactly one argument.

A mismatch is a latent ``TypeError`` that only detonates when the event
*fires*, which with timer-wheel horizons can be millions of events after
the bad ``schedule`` call — painful to trace back.  This rule catches
the mismatch statically at the call site.

Scope is deliberately conservative: only callbacks that resolve inside
the same module (a ``self.<method>``, a local or module-level ``def``,
or an inline ``lambda``) are checked.  Bound methods of *other* objects,
prebound-callable attributes, ``partial``s and call results are skipped
— their signatures are not statically knowable from this file alone, so
the rule stays silent rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Finding, Module, Project, rule

#: schedule variant -> number of fixed leading parameters before *args
#: (None means the variant has an exact trailing-argument count instead)
_VARIADIC = {"schedule": 2, "schedule_at": 2}
_EXACT = {"schedule0": 0, "schedule1": 1, "schedule_at1": 1}


def _callback_arity(
    fn: ast.AST, *, drop_self: bool
) -> Optional[tuple[int, Optional[int]]]:
    """(min, max) positional args accepted; max None = unbounded (*args)."""
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        a = fn.args
        pos = len(a.posonlyargs) + len(a.args)
        if drop_self:
            pos -= 1
        lo = pos - len(a.defaults)
        hi = None if a.vararg is not None else pos
        return (max(lo, 0), hi)
    return None


def _resolve(mod: Module, call: ast.Call, cb: ast.AST):
    """Resolve a callback expression to (FunctionDef-ish, drop_self)."""
    if isinstance(cb, ast.Lambda):
        return cb, False
    scope = mod.scope_of(call)
    if isinstance(cb, ast.Name):
        # Local def in the enclosing function, else a module-level def.
        local = mod.functions.get(f"{scope}.<locals>.{cb.id}")
        if local is not None:
            return local, False
        top = mod.functions.get(cb.id)
        if top is not None:
            return top, False
        return None, False
    if (
        isinstance(cb, ast.Attribute)
        and isinstance(cb.value, ast.Name)
        and cb.value.id == "self"
    ):
        # self.<method> inside a class body: the class is the head of
        # the enclosing qualname ("Cls.method" / "Cls.method.<locals>.f").
        head = scope.split(".", 1)[0]
        if head in mod.classes:
            meth = mod.functions.get(f"{head}.{cb.attr}")
            if meth is not None:
                return meth, True
    return None, False


@rule("sched-arity")
def check_sched_arity(project: Project) -> list[Finding]:
    """Callback signature vs the ``Simulator.schedule*`` variant's arity.

    ``schedule``/``schedule_at`` deliver their trailing ``*args``,
    ``schedule0`` delivers none, ``schedule1``/``schedule_at1`` deliver
    one.  Checked only when the callback resolves inside the module
    (self-methods, local/module defs, lambdas); everything else is
    skipped rather than guessed.
    """
    out: list[Finding] = []
    for mod in project.modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            name = func.attr
            if name in _VARIADIC:
                skip = _VARIADIC[name]
            elif name in _EXACT:
                skip = None
            else:
                continue
            if node.keywords or any(
                isinstance(a, ast.Starred) for a in node.args
            ):
                continue  # forwarding wrappers; not statically countable
            if len(node.args) < 2:
                continue
            expected = (
                len(node.args) - 2 if skip is not None else _EXACT[name]
            )
            cb = node.args[1]
            fn, drop_self = _resolve(mod, node, cb)
            if fn is None:
                continue
            arity = _callback_arity(fn, drop_self=drop_self)
            if arity is None:
                continue
            lo, hi = arity
            if lo <= expected and (hi is None or expected <= hi):
                continue
            cb_desc = (
                "<lambda>"
                if isinstance(fn, ast.Lambda)
                else getattr(fn, "name", "<callback>")
            )
            span = str(lo) if hi == lo else f"{lo}..{'*' if hi is None else hi}"
            out.append(
                Finding(
                    rule="sched-arity",
                    path=mod.rel,
                    line=node.lineno,
                    scope=mod.scope_of(node),
                    detail=f"{name}:{cb_desc}:expected={expected}",
                    message=(
                        f"{name}() will call {cb_desc} with {expected} "
                        f"argument(s) when the event fires, but it accepts "
                        f"{span}; this TypeError would only surface at "
                        f"fire time"
                    ),
                )
            )
    return out
