"""CLI: ``python -m repro.analysis [paths...] [--strict] ...``

Exit codes: 0 clean (modulo baseline), 1 findings (or, with --strict,
stale baseline entries), 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    DEFAULT_BASELINE,
    DEFAULT_TARGETS,
    REPO_ROOT,
    RULES,
    Project,
    diff_baseline,
    load_baseline,
    run,
    write_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: stdlib-ast checks for the simulator's determinism, "
            "hot-path and payload contracts (docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/dirs to scan, relative to --root "
        f"(default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="repo root (default: auto-detected from the package location)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in sorted(RULES.values(), key=lambda r: r.name):
            first = r.doc.splitlines()[0] if r.doc else ""
            print(f"{r.name:<20} [{r.tier}] {first}")
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    root = args.root.resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    targets = args.paths or list(DEFAULT_TARGETS)
    project = Project.load(root, targets)
    result = run(project, rules=rules)

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = load_baseline(baseline_path)
    diff = diff_baseline(result.findings, baseline)

    if args.json:
        print(
            json.dumps(
                {
                    "new": [vars(f) | {"identity": f.identity} for f in diff.new],
                    "stale": diff.stale,
                    "baselined": len(result.findings) - len(diff.new),
                    "waived": len(result.waived),
                },
                indent=2,
            )
        )
    else:
        for f in diff.new:
            print(f.render())
        if diff.stale:
            verb = "error" if args.strict else "warning"
            for ident, shortfall in sorted(diff.stale.items()):
                print(
                    f"{verb}: stale baseline entry ({shortfall} fixed): "
                    f"{ident}"
                )
            if args.strict:
                print(
                    "stale entries mean findings were fixed — shrink the "
                    "baseline: python -m repro.analysis --write-baseline"
                )
        print(
            f"simlint: {len(project.modules)} file(s), "
            f"{len(result.findings)} finding(s) "
            f"({len(result.findings) - len(diff.new)} baselined, "
            f"{len(result.waived)} waived by pragma, {len(diff.new)} new)"
        )

    if diff.new:
        return 1
    if args.strict and diff.stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
