"""simlint core: project loading, pragmas, findings, baseline, rule registry.

This package is deliberately zero-dependency (stdlib ``ast`` only) so the
CLI can run in CI *before* ``pip install`` — the same install-forbidden
containers that keep ruff advisory (see ruff.toml) can still gate on it.

Key pieces:

* :class:`Finding` — one diagnostic.  Its :attr:`~Finding.identity` is
  ``rule::path::scope::detail`` with **no line numbers**, so baselines
  survive unrelated edits that shift code up or down.
* :class:`Module` / :class:`Project` — parsed source files plus the
  repo's markdown docs.  Every AST node is annotated with the qualname
  of its innermost enclosing function/class (``node._simlint_scope``).
* Pragmas — ``# simlint: ok(rule[,rule]) — justification`` on the same
  physical line as the flagged construct waives matching findings.  A
  pragma with no justification, or one that waives nothing, is itself a
  finding (rule ``pragma``): waivers must stay honest.
* Baseline — ``{identity: count}``.  Grandfathered findings are allowed
  up to their recorded count; the excess is "new" and fails the run.
  ``--strict`` additionally fails on *stale* entries (count dropped),
  forcing the baseline to shrink as debt is paid down.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

#: repo root, derived from this file's location (src/repro/analysis/core.py)
REPO_ROOT = Path(__file__).resolve().parents[3]

#: directories scanned when the CLI is given no explicit paths
DEFAULT_TARGETS = ("src", "benchmarks", "tests", "examples")

#: default baseline location, checked in next to the rules
DEFAULT_BASELINE = "src/repro/analysis/baseline.json"

#: directory names never descended into
SKIP_DIRS = {"__pycache__", ".git", ".seed-worktree", ".pytest_cache"}

PRAGMA_RE = re.compile(r"#\s*simlint:\s*ok\(([A-Za-z0-9_\-, ]+)\)(.*)$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic.  ``detail`` must be stable across reformatting."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    scope: str  # qualname of enclosing function/class, or "<module>"
    detail: str  # identity payload; no line numbers allowed here
    message: str

    @property
    def identity(self) -> str:
        return f"{self.rule}::{self.path}::{self.scope}::{self.detail}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Pragma:
    line: int
    rules: tuple[str, ...]
    justification: str


@dataclass(frozen=True)
class Rule:
    name: str
    tier: str  # "blocking" or "advisory" (advisory == expected to be baselined)
    doc: str
    check: Callable[["Project"], list[Finding]]


#: global registry, populated by the ``@rule`` decorator at import time
RULES: dict[str, Rule] = {}


def rule(name: str, *, tier: str = "blocking"):
    """Register a rule.  The decorated function takes a Project and
    returns a list of Findings; its docstring becomes the catalog entry."""

    def deco(fn: Callable[["Project"], list[Finding]]):
        if name in RULES:
            raise ValueError(f"duplicate rule {name!r}")
        RULES[name] = Rule(name, tier, (fn.__doc__ or "").strip(), fn)
        return fn

    return deco


# ----------------------------------------------------------------------
# source containers
# ----------------------------------------------------------------------


def _annotate_scopes(tree: ast.Module) -> dict[str, ast.AST]:
    """Set ``_simlint_scope`` on every node and return a map of function
    qualname -> FunctionDef/AsyncFunctionDef node (``<locals>`` included,
    matching ``__qualname__`` conventions)."""
    functions: dict[str, ast.AST] = {}

    def visit(node: ast.AST, scope: str, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            child._simlint_scope = scope  # type: ignore[attr-defined]
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + child.name
                functions[qual] = child
                visit(child, qual, qual + ".<locals>.")
            elif isinstance(child, ast.ClassDef):
                qual = prefix + child.name
                visit(child, qual, qual + ".")
            else:
                visit(child, scope, prefix)

    tree._simlint_scope = "<module>"  # type: ignore[attr-defined]
    visit(tree, "<module>", "")
    return functions


class Module:
    """One parsed python file."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=rel)
        self.functions = _annotate_scopes(self.tree)
        self.classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        }
        # Pragmas come from real COMMENT tokens, not a raw line scan:
        # pragma-shaped text inside a string literal (docstrings, test
        # fixtures) must not register as a waiver.
        self.pragmas: dict[int, Pragma] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            comments = []
        for lineno, text in comments:
            m = PRAGMA_RE.search(text)
            if m:
                rules = tuple(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
                just = m.group(2).strip().lstrip("-—–:, ").strip()
                self.pragmas[lineno] = Pragma(lineno, rules, just)

    def scope_of(self, node: ast.AST) -> str:
        return getattr(node, "_simlint_scope", "<module>")


class Project:
    """All modules under the scanned targets, plus the markdown docs."""

    def __init__(
        self,
        modules: Sequence[Module],
        docs: Optional[dict[str, str]] = None,
        *,
        root: Optional[Path] = None,
        full_tree: bool = False,
        errors: Optional[list[Finding]] = None,
    ) -> None:
        self.modules = list(modules)
        self.by_rel = {m.rel: m for m in self.modules}
        self.docs = dict(docs or {})
        self.root = root
        #: True only when loaded from a real repo checkout; rules that
        #: assert the *presence* of files (hot-path manifest) only do so
        #: for full trees, so source-snippet fixtures stay small.
        self.full_tree = full_tree
        #: overridable by tests; None means the built-in manifest
        self.hot_manifest: Optional[dict[str, frozenset[str]]] = None
        self.errors = list(errors or [])

    @classmethod
    def load(
        cls,
        root: Path,
        targets: Iterable[str] = DEFAULT_TARGETS,
    ) -> "Project":
        root = Path(root).resolve()
        files: list[Path] = []
        for target in targets:
            path = (root / target).resolve()
            if path.is_file() and path.suffix == ".py":
                files.append(path)
            elif path.is_dir():
                files.extend(
                    p
                    for p in sorted(path.rglob("*.py"))
                    if not (set(p.relative_to(root).parts[:-1]) & SKIP_DIRS)
                )
        modules, errors = [], []
        for path in files:
            rel = path.relative_to(root).as_posix()
            try:
                modules.append(Module(rel, path.read_text()))
            except SyntaxError as exc:
                errors.append(
                    Finding(
                        rule="parse-error",
                        path=rel,
                        line=exc.lineno or 0,
                        scope="<module>",
                        detail="syntax-error",
                        message=f"could not parse: {exc.msg}",
                    )
                )
        docs: dict[str, str] = {}
        doc_files = sorted(root.glob("*.md")) + sorted(
            (root / "docs").glob("**/*.md")
        )
        for path in doc_files:
            docs[path.relative_to(root).as_posix()] = path.read_text()
        return cls(modules, docs, root=root, full_tree=True, errors=errors)


# ----------------------------------------------------------------------
# running rules + pragma waivers
# ----------------------------------------------------------------------


@dataclass
class RunResult:
    findings: list[Finding]  # effective findings (waived ones removed)
    waived: list[Finding]  # suppressed by a valid same-line pragma


def run(
    project: Project, rules: Optional[Sequence[str]] = None
) -> RunResult:
    """Run ``rules`` (default: all registered) and apply pragma waivers."""
    selected = [RULES[name] for name in (rules or sorted(RULES))]
    raw: list[Finding] = list(project.errors)
    for r in selected:
        raw.extend(r.check(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))

    kept: list[Finding] = []
    waived: list[Finding] = []
    used_pragmas: set[tuple[str, int]] = set()
    for f in raw:
        mod = project.by_rel.get(f.path)
        prag = mod.pragmas.get(f.line) if mod else None
        if prag is not None and f.rule in prag.rules:
            waived.append(f)
            used_pragmas.add((f.path, f.line))
        else:
            kept.append(f)

    # Pragma hygiene: every pragma must carry a justification and must
    # actually waive something (same line, matching rule).
    for mod in project.modules:
        for prag in mod.pragmas.values():
            if not prag.justification:
                kept.append(
                    Finding(
                        rule="pragma",
                        path=mod.rel,
                        line=prag.line,
                        scope="<module>",
                        detail=f"unjustified:{','.join(prag.rules)}",
                        message=(
                            "simlint pragma needs a justification after "
                            "the rule list: 'simlint: ok(<rule>) — why "
                            "this is safe' (after a # comment marker)"
                        ),
                    )
                )
            unknown = [r for r in prag.rules if r not in RULES]
            if unknown:
                kept.append(
                    Finding(
                        rule="pragma",
                        path=mod.rel,
                        line=prag.line,
                        scope="<module>",
                        detail=f"unknown-rule:{','.join(unknown)}",
                        message=(
                            f"pragma names unknown rule(s) "
                            f"{', '.join(unknown)}; see --list-rules"
                        ),
                    )
                )
            elif (mod.rel, prag.line) not in used_pragmas:
                kept.append(
                    Finding(
                        rule="pragma",
                        path=mod.rel,
                        line=prag.line,
                        scope="<module>",
                        detail=f"unused:{','.join(prag.rules)}",
                        message=(
                            "pragma waives nothing on this line "
                            f"({', '.join(prag.rules)}); remove it or move "
                            "it onto the flagged line"
                        ),
                    )
                )
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))
    return RunResult(findings=kept, waived=waived)


def analyze_source(
    source: str,
    *,
    rel: str = "src/repro/snippet.py",
    rules: Optional[Sequence[str]] = None,
    docs: Optional[dict[str, str]] = None,
    hot_manifest: Optional[dict[str, frozenset[str]]] = None,
) -> RunResult:
    """Run rules against a single source string (test-fixture entry point).

    ``rel`` controls path-scoped rules: pick a path under the scope you
    want exercised (e.g. ``src/repro/core/engine.py`` for det-wallclock).
    """
    project = Project([Module(rel, source)], docs)
    if hot_manifest is not None:
        project.hot_manifest = hot_manifest
    return run(project, rules=rules)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------


def count_findings(findings: Iterable[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.identity] = counts.get(f.identity, 0) + 1
    return counts


def load_baseline(path: Path) -> dict[str, int]:
    if not Path(path).exists():
        return {}
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != 1:
        raise ValueError(f"{path}: unsupported baseline version")
    return {str(k): int(v) for k, v in payload["findings"].items()}


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    payload = {
        "version": 1,
        "comment": (
            "Grandfathered simlint findings; identity -> occurrence count. "
            "Regenerate with: python -m repro.analysis --write-baseline. "
            "See docs/STATIC_ANALYSIS.md."
        ),
        "findings": dict(sorted(count_findings(findings).items())),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


@dataclass
class BaselineDiff:
    new: list[Finding]  # findings beyond their baselined count
    stale: dict[str, int]  # identity -> shortfall (baseline count - current)


def diff_baseline(
    findings: Sequence[Finding], baseline: dict[str, int]
) -> BaselineDiff:
    new: list[Finding] = []
    seen: dict[str, int] = {}
    for f in findings:
        seen[f.identity] = seen.get(f.identity, 0) + 1
        if seen[f.identity] > baseline.get(f.identity, 0):
            new.append(f)
    stale = {
        ident: count - seen.get(ident, 0)
        for ident, count in baseline.items()
        if seen.get(ident, 0) < count
    }
    return BaselineDiff(new=new, stale=stale)


# ----------------------------------------------------------------------
# shared AST helpers used by several rules
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted origin, for imports we care about.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    Random as R`` maps ``R -> random.Random``; submodule imports keep
    their full path (``from numpy import random as npr`` maps ``npr ->
    numpy.random``).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return mapping


def canonical_call(node: ast.Call, imports: dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call target, resolving import aliases.

    ``np.random.rand(...)`` -> ``numpy.random.rand`` when ``np`` was
    imported as numpy; ``default_rng()`` -> ``numpy.random.default_rng``
    after a from-import.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return dotted
    return f"{origin}.{rest}" if rest else origin


def compact(node: ast.AST, limit: int = 60) -> str:
    """Short stable source rendering for finding details."""
    try:
        text = ast.unparse(node)
    except Exception:
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."
