"""Determinism rules.

The repo's headline contract is byte-identical slowdown digests across
engine modes (see docs/PERFORMANCE.md).  Everything here exists to keep
nondeterminism out of the event core statically, before a digest test
can catch it dynamically:

* ``det-unseeded-rng``   — global/unseeded random sources, anywhere.
* ``det-wallclock``      — wall-clock reads inside simulation packages.
* ``det-set-order``      — iterating raw sets (or ``.keys()``) where the
                           order can feed event scheduling.
* ``det-id-order``       — ``id()``-based ordering (memory addresses
                           vary run to run).
* ``det-float-time-eq``  — float ``==``/``!=`` against integer ``_ps``
                           timestamps in comparator code.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    canonical_call,
    compact,
    import_map,
    rule,
)

#: packages whose code runs inside (or feeds) the simulation loop
SIM_PREFIXES = (
    "src/repro/core/",
    "src/repro/homa/",
    "src/repro/baselines/",
    "src/repro/transport/",
    "src/repro/apps/",
    "src/repro/workloads/",
)

#: canonical call names that read the wall clock
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are fine to call (explicitly seeded APIs)
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})

#: constructors that are deterministic when given a seed argument
_SEEDED_CTORS = frozenset(
    {"random.Random", "numpy.random.RandomState", "numpy.random.default_rng"}
)


def _in_sim(rel: str) -> bool:
    return rel.startswith(SIM_PREFIXES)


def _finding(mod: Module, node: ast.AST, name: str, detail: str, msg: str) -> Finding:
    return Finding(
        rule=name,
        path=mod.rel,
        line=getattr(node, "lineno", 0),
        scope=mod.scope_of(node),
        detail=detail,
        message=msg,
    )


@rule("det-unseeded-rng")
def check_unseeded_rng(project: Project) -> list[Finding]:
    """No module-global or unseeded random sources, anywhere in the repo.

    Flags calls through the global ``random`` module (``random.shuffle``,
    ``random.seed``, zero-arg ``random.Random()``), ``SystemRandom``, the
    legacy ``numpy.random.*`` global-state API, and zero-arg
    ``numpy.random.default_rng()``.  Fix: thread an explicitly seeded
    ``random.Random(seed)`` / ``np.random.default_rng(seed)`` instance.
    """
    out: list[Finding] = []
    for mod in project.modules:
        imports = import_map(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call(node, imports)
            if name is None:
                continue
            bad: Optional[str] = None
            if name in _SEEDED_CTORS:
                if not node.args and not node.keywords:
                    bad = (
                        f"{name}() without a seed is seeded from the OS; "
                        f"pass an explicit seed"
                    )
            elif name in ("random.SystemRandom", "numpy.random.RandomState"):
                bad = f"{name} cannot be made deterministic here; use a seeded generator"
            elif name == "random.seed" or name == "numpy.random.seed":
                bad = (
                    f"{name}() mutates hidden global state; construct a "
                    f"seeded generator instance instead"
                )
            elif name.startswith("random.") and name.count(".") == 1:
                bad = (
                    f"{name}() draws from the process-global RNG; thread a "
                    f"seeded random.Random(seed) instance"
                )
            elif (
                name.startswith("numpy.random.")
                and name.count(".") == 2
                and name.rsplit(".", 1)[1] not in _NP_RANDOM_OK
            ):
                bad = (
                    f"{name}() uses numpy's legacy global RNG; use a "
                    f"seeded np.random.default_rng(seed)"
                )
            if bad:
                out.append(_finding(mod, node, "det-unseeded-rng", name, bad))
    return out


@rule("det-wallclock")
def check_wallclock(project: Project) -> list[Finding]:
    """No wall-clock reads in simulation packages.

    Simulated time is the integer-picosecond ``sim.now``; any
    ``time.time``/``perf_counter``/``datetime.now`` inside
    ``src/repro/{core,homa,baselines,transport,apps,workloads}`` leaks
    host timing into results.  Benchmark/experiment harness code (which
    legitimately measures wall time) lives outside these packages.
    """
    out: list[Finding] = []
    for mod in project.modules:
        if not _in_sim(mod.rel):
            continue
        imports = import_map(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call(node, imports)
            if name in WALLCLOCK_CALLS:
                out.append(
                    _finding(
                        mod,
                        node,
                        "det-wallclock",
                        name,
                        f"{name}() reads the wall clock inside a simulation "
                        f"package; use sim.now (integer picoseconds)",
                    )
                )
    return out


def _is_raw_set_expr(node: ast.AST, imports: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = canonical_call(node, imports)
        return name in ("set", "frozenset")
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
    )


#: consumers whose result order is the iteration order of their argument
_ORDER_SENSITIVE_WRAPPERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed"}
)


@rule("det-set-order")
def check_set_order(project: Project) -> list[Finding]:
    """No iteration over raw ``set`` expressions / ``.keys()`` in src/repro.

    Set iteration order depends on hash seeding and insertion history;
    anything that loops over one can feed event scheduling in an
    unstable order.  Wrap in ``sorted(...)`` (which is never flagged),
    or iterate a dict/list whose insertion order is meaningful.
    ``.keys()`` is flagged too: iterate the dict itself (same order,
    explicit intent) or sort.
    """
    out: list[Finding] = []
    for mod in project.modules:
        if not mod.rel.startswith("src/repro/"):
            continue
        imports = import_map(mod.tree)

        def flag(expr: ast.AST, ctx: str) -> None:
            if _is_raw_set_expr(expr, imports):
                out.append(
                    _finding(
                        mod,
                        expr,
                        "det-set-order",
                        compact(expr),
                        f"iterating a raw set in {ctx} has hash-dependent "
                        f"order; wrap in sorted(...)",
                    )
                )
            elif _is_keys_call(expr):
                out.append(
                    _finding(
                        mod,
                        expr,
                        "det-set-order",
                        compact(expr),
                        f"iterating .keys() in {ctx}; iterate the dict "
                        f"itself (insertion order) or sorted(...) to make "
                        f"the order explicit",
                    )
                )

        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                flag(node.iter, "a for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    flag(gen.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                name = canonical_call(node, imports)
                if name in _ORDER_SENSITIVE_WRAPPERS and node.args:
                    flag(node.args[0], f"{name}(...)")
    return out


@rule("det-id-order")
def check_id_order(project: Project) -> list[Finding]:
    """No ``id()``-based ordering (``sorted(key=id)`` and friends).

    ``id()`` is a memory address: stable within a process, different
    across runs, so any ordering derived from it is nondeterministic.
    Use a stable key (hid, port name, sequence number) instead.
    Applies to src, tests, benchmarks and examples alike — test
    assertions that order by ``id()`` can flake under a different
    allocator.
    """
    out: list[Finding] = []
    for mod in project.modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = None
            if isinstance(node.func, ast.Name) and node.func.id in (
                "sorted",
                "min",
                "max",
            ):
                target = node.func.id
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
                target = "sort"
            if target is None:
                continue
            uses_id = any(
                (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) and sub.func.id == "id")
                or (isinstance(sub, ast.keyword) and isinstance(sub.value, ast.Name) and sub.value.id == "id")
                for sub in ast.walk(node)
            )
            if uses_id:
                out.append(
                    _finding(
                        mod,
                        node,
                        "det-id-order",
                        compact(node),
                        f"{target}(...) orders by id() — a memory address "
                        f"that varies across runs; use a stable key",
                    )
                )
    return out


def _is_ps_operand(node: ast.AST) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name is not None and (name == "now" or name.endswith("_ps"))


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "float":
        return True
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
        for sub in ast.walk(node)
    )


@rule("det-float-time-eq")
def check_float_time_eq(project: Project) -> list[Finding]:
    """No float ``==``/``!=`` against ``_ps`` timestamps in src/repro.

    Simulated time is *integer* picoseconds precisely so equality is
    exact (the engine's event comparators and cut-through chaining rely
    on it).  Comparing a ``_ps`` value against a float literal, a true
    division, or ``float(...)`` re-introduces rounding: two events meant
    to coincide stop comparing equal.  Use integer arithmetic (``//``,
    ``units.ns_to_ps``) on both sides.
    """
    out: list[Finding] = []
    for mod in project.modules:
        if not mod.rel.startswith("src/repro/"):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_ps_operand(o) for o in operands) and any(
                _is_floatish(o) for o in operands
            ):
                out.append(
                    _finding(
                        mod,
                        node,
                        "det-float-time-eq",
                        compact(node),
                        "float equality against an integer _ps timestamp; "
                        "keep both sides integer picoseconds",
                    )
                )
    return out
