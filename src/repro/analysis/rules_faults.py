"""Fault-schedule determinism rule.

Fault-injection observers (``FaultInjector.subscribe(fn)`` in
``core/faults.py``) run inside the event loop at scheduled simulation
times: anything they do — logging a reroute, mutating a counter,
scheduling follow-up work — feeds the deterministic-replay contract
(same spec + same seed must reproduce identical digests).  The generic
determinism rules stop at package boundaries (``det-wallclock`` only
covers the simulation packages), but fault observers are typically
registered from tests, benchmarks, and experiment harnesses — exactly
where a stray ``time.time()`` or global ``random.random()`` would
otherwise pass the linter and then poison a replay.

``fault-determinism`` closes that gap: wherever a ``.subscribe(cb)``
call appears, the callback is resolved with the same conservative
module-local logic as ``sched-arity`` (lambdas, local/module ``def``s,
``self.<method>``) and its body is rejected if it reads the wall clock
or draws from an unseeded/global RNG.  Unresolvable callbacks are
skipped, not guessed at.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    canonical_call,
    import_map,
    rule,
)
from repro.analysis.rules_determinism import WALLCLOCK_CALLS, _SEEDED_CTORS
from repro.analysis.rules_sched import _resolve


def _nondeterminism(name: str, node: ast.Call) -> str | None:
    """Why a call inside a fault observer breaks replay, or None."""
    if name in WALLCLOCK_CALLS:
        return f"{name}() reads the wall clock"
    if name in _SEEDED_CTORS and not node.args and not node.keywords:
        return f"{name}() without a seed is seeded from the OS"
    if name in ("random.SystemRandom", "numpy.random.RandomState"):
        return f"{name} cannot be made deterministic"
    if name in ("random.seed", "numpy.random.seed"):
        return f"{name}() mutates hidden global RNG state"
    if name.startswith("random.") and name.count(".") == 1:
        return f"{name}() draws from the process-global RNG"
    return None


@rule("fault-determinism")
def check_fault_callbacks(project: Project) -> list[Finding]:
    """Fault observers must be replay-deterministic.

    For every ``<injector>.subscribe(cb)`` call whose callback resolves
    inside the same module, walk the callback body and flag wall-clock
    reads and unseeded/global RNG draws.  Observers receive
    ``(event, now_ps)`` — simulated time and the applied event are the
    only clocks they may consult; randomness must come from a generator
    seeded off the experiment seed.
    """
    out: list[Finding] = []
    for mod in project.modules:
        imports = import_map(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "subscribe"):
                continue
            if not node.args:
                continue
            cb = node.args[0]
            fn, _drop_self = _resolve(mod, node, cb)
            if fn is None:
                continue
            cb_desc = ("<lambda>" if isinstance(fn, ast.Lambda)
                       else getattr(fn, "name", "<callback>"))
            for sub in ast.walk(fn):
                if not isinstance(sub, ast.Call):
                    continue
                name = canonical_call(sub, imports)
                if name is None:
                    continue
                why = _nondeterminism(name, sub)
                if why is None:
                    continue
                out.append(Finding(
                    rule="fault-determinism",
                    path=mod.rel,
                    line=sub.lineno,
                    scope=mod.scope_of(node),
                    detail=f"{cb_desc}:{name}",
                    message=(
                        f"fault observer {cb_desc} is not replay-"
                        f"deterministic: {why}; derive time from the "
                        f"observer's now_ps argument and randomness "
                        f"from a generator seeded off the experiment "
                        f"seed"
                    ),
                ))
    return out
