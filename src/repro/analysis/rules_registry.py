"""Registry consistency.

``transport/registry.py`` is the single place protocols are wired into
the experiment runner; ``transport/base.py`` defines the hook surface a
transport must implement (the methods whose body is a bare ``raise
NotImplementedError``).  This rule recomputes both sides from the AST:

* required hooks = abstract methods on ``Transport`` in base.py;
* registered transports = ``*Transport`` classes imported by
  registry.py from ``repro.*`` modules;

and verifies every registered class implements every hook, walking base
classes transitively through repo-local inheritance (stopping at
``Transport`` itself, whose raising stubs do not count).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Finding, Module, Project, rule

BASE_REL = "src/repro/transport/base.py"
REGISTRY_REL = "src/repro/transport/registry.py"
BASE_CLASS = "Transport"


def _module_rel(dotted: str) -> str:
    return "src/" + dotted.replace(".", "/") + ".py"


def _abstract_hooks(cls: ast.ClassDef) -> set[str]:
    """Methods whose body is (docstring +) a single raise statement."""
    hooks: set[str] = set()
    for stmt in cls.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        body = stmt.body
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]
        if len(body) == 1 and isinstance(body[0], ast.Raise):
            hooks.add(stmt.name)
    return hooks


def _imported_classes(mod: Module) -> dict[str, str]:
    """Local class name -> defining module rel, from repro.* imports."""
    mapping: dict[str, str] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            for alias in node.names:
                mapping[alias.asname or alias.name] = _module_rel(node.module)
    return mapping


def _own_methods(
    project: Project, rel: str, cls_name: str, seen: set[tuple[str, str]]
) -> set[str]:
    """Concrete methods of a class plus its repo-local ancestors,
    excluding the raising stubs on ``Transport`` itself."""
    if (rel, cls_name) in seen:
        return set()
    seen.add((rel, cls_name))
    mod = project.by_rel.get(rel)
    if mod is None:
        return set()
    cls = mod.classes.get(cls_name)
    if cls is None:
        return set()
    if cls_name == BASE_CLASS and rel == BASE_REL:
        # The base's own methods count, minus the abstract stubs.
        return {
            s.name for s in cls.body if isinstance(s, ast.FunctionDef)
        } - _abstract_hooks(cls)
    methods = {s.name for s in cls.body if isinstance(s, ast.FunctionDef)}
    imported = _imported_classes(mod)
    for base in cls.bases:
        base_name: Optional[str] = (
            base.id if isinstance(base, ast.Name) else None
        )
        if base_name is None:
            continue
        if base_name in mod.classes:
            methods |= _own_methods(project, rel, base_name, seen)
        elif base_name in imported:
            methods |= _own_methods(project, imported[base_name], base_name, seen)
    return methods


@rule("registry-hooks")
def check_registry_hooks(project: Project) -> list[Finding]:
    """Transports registered in registry.py must implement the base hooks.

    Hook set is derived from Transport's raising stubs in base.py;
    registration is derived from registry.py's repro-local ``*Transport``
    imports (ruff's F401 keeps those imports minimal, so import ==
    registered).
    """
    base_mod = project.by_rel.get(BASE_REL)
    reg_mod = project.by_rel.get(REGISTRY_REL)
    if base_mod is None or reg_mod is None:
        return []
    base_cls = base_mod.classes.get(BASE_CLASS)
    if base_cls is None:
        return [
            Finding(
                rule="registry-hooks",
                path=BASE_REL,
                line=0,
                scope="<module>",
                detail="missing-base-class",
                message=f"expected class {BASE_CLASS} in {BASE_REL}",
            )
        ]
    required = _abstract_hooks(base_cls)
    out: list[Finding] = []
    for name, rel in sorted(_imported_classes(reg_mod).items()):
        if not name.endswith("Transport") or name == BASE_CLASS:
            continue
        mod = project.by_rel.get(rel)
        cls = mod.classes.get(name) if mod else None
        if cls is None:
            out.append(
                Finding(
                    rule="registry-hooks",
                    path=REGISTRY_REL,
                    line=0,
                    scope="<module>",
                    detail=f"unresolved:{name}",
                    message=(
                        f"registry imports {name} from {rel} but no such "
                        f"class was found there"
                    ),
                )
            )
            continue
        methods = _own_methods(project, rel, name, set())
        for hook in sorted(required - methods):
            out.append(
                Finding(
                    rule="registry-hooks",
                    path=rel,
                    line=cls.lineno,
                    scope=name,
                    detail=f"missing-hook:{name}.{hook}",
                    message=(
                        f"{name} is registered in transport/registry.py "
                        f"but does not implement {BASE_CLASS}.{hook}"
                    ),
                )
            )
    return out
