"""Campaign-spec completeness.

The campaign layer only reaches a grid the CLI can see: ``python -m
repro campaign`` discovers figures through ``paper_data.CAMPAIGNS`` and
pools cells through each bench module's ``campaign_specs()`` /
``campaign_spec()`` hook, and the farm path does the same.  A
``benchmarks/bench_*.py`` that constructs a ``CampaignSpec`` but skips
any of those hooks runs fine standalone while silently dropping out of
``campaign all``, ``--farm`` sweeps, and the pooled cache warm-up — the
exact drift this rule pins:

* it must define ``run_figure`` (the render entry point every campaign
  module exposes);
* it must define ``campaign_specs`` or ``campaign_spec`` (the pooling
  hook);
* its module name must be registered in ``paper_data.CAMPAIGNS``.

The registered-module set is recomputed from paper_data's AST (the
first element of each ``CAMPAIGNS`` value tuple), so the rule needs no
imports of benchmark code.  When paper_data is outside the analyzed
file set (single-snippet fixtures), the registration check is skipped
and only the export checks run.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Finding,
    Module,
    Project,
    canonical_call,
    import_map,
    rule,
)

PAPER_DATA_REL = "src/repro/experiments/paper_data.py"
CAMPAIGNS_NAME = "CAMPAIGNS"

#: pooling hooks the CLI probes for, in probe order
SPEC_HOOKS = ("campaign_specs", "campaign_spec")


def _constructs_campaign_spec(mod: Module) -> int | None:
    """Line of the first ``CampaignSpec(...)`` call, else ``None``."""
    imports = import_map(mod.tree)
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        canon = canonical_call(node, imports)
        if canon is not None and canon.split(".")[-1] == "CampaignSpec":
            return node.lineno
    return None


def _registered_modules(paper_data: Module) -> set[str] | None:
    """Module names registered in CAMPAIGNS, or ``None`` if the dict
    literal cannot be found (rule then reports that instead)."""
    for node in ast.walk(paper_data.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == CAMPAIGNS_NAME
                   for t in node.targets):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        registered: set[str] = set()
        for value in node.value.values:
            if (isinstance(value, ast.Tuple) and value.elts
                    and isinstance(value.elts[0], ast.Constant)
                    and isinstance(value.elts[0].value, str)):
                registered.add(value.elts[0].value)
        return registered
    return None


@rule("campaign-registry")
def check_campaign_registry(project: Project) -> list[Finding]:
    """Every bench module with a CampaignSpec is a complete campaign.

    Complete = exposes ``run_figure`` and a pooling hook, and appears
    in ``paper_data.CAMPAIGNS`` so the CLI/farm can discover it.
    """
    paper_data = project.by_rel.get(PAPER_DATA_REL)
    registered = (_registered_modules(paper_data)
                  if paper_data is not None else None)
    out: list[Finding] = []
    if paper_data is not None and registered is None:
        out.append(Finding(
            rule="campaign-registry",
            path=PAPER_DATA_REL,
            line=0,
            scope="<module>",
            detail="campaigns-not-a-dict-literal",
            message=f"{CAMPAIGNS_NAME} in paper_data.py must be a dict "
                    f"literal of 'figure: (module, description)' so the "
                    f"registered set is statically recomputable",
        ))
    for rel in sorted(project.by_rel):
        mod = project.by_rel[rel]
        name = rel.rsplit("/", 1)[-1]
        if not (rel.startswith("benchmarks/") and name.startswith("bench_")
                and name.endswith(".py")):
            continue
        spec_line = _constructs_campaign_spec(mod)
        if spec_line is None:
            continue
        module_name = name[:-3]
        if "run_figure" not in mod.functions:
            out.append(Finding(
                rule="campaign-registry",
                path=rel,
                line=spec_line,
                scope="<module>",
                detail="missing-run-figure",
                message=f"{module_name} constructs a CampaignSpec but "
                        f"defines no run_figure(); the campaign CLI "
                        f"cannot render it",
            ))
        if not any(hook in mod.functions for hook in SPEC_HOOKS):
            out.append(Finding(
                rule="campaign-registry",
                path=rel,
                line=spec_line,
                scope="<module>",
                detail="missing-campaign-specs",
                message=f"{module_name} constructs a CampaignSpec but "
                        f"defines neither campaign_specs() nor "
                        f"campaign_spec(); its cells never join the "
                        f"pooled/farmed global queue",
            ))
        if registered is not None and module_name not in registered:
            out.append(Finding(
                rule="campaign-registry",
                path=rel,
                line=spec_line,
                scope="<module>",
                detail=f"unregistered:{module_name}",
                message=f"{module_name} constructs a CampaignSpec but is "
                        f"not registered in paper_data.{CAMPAIGNS_NAME}; "
                        f"'campaign all' and --farm sweeps skip it",
            ))
    return out
