"""Connection-oriented streaming transport (TCP / InfRC stand-in).

Models the property the paper attributes 100x tail latency to: each
(source, destination) pair shares a fixed set of byte-stream
connections, messages on a connection are transmitted strictly FIFO, so
a short message queues behind any long message ahead of it
(head-of-line blocking, sections 2.2/5.1).  With
``connections_per_pair > 1`` messages round-robin across connections
("TCP-MC" / "InfRC-MC"), which removes most HOL blocking but uses no
priorities — the paper shows this lands at Basic's performance level.

Flow control is an idealized fixed window of one bandwidth-delay
product per connection with per-packet cumulative ACKs — deliberately
generous to TCP (no slow start, no loss in these runs), so any latency
gap vs Homa is attributable to the streaming architecture itself.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import CTRL_PRIO, Packet, PacketType
from repro.transport.base import Transport
from repro.transport.messages import InboundMessage, OutboundMessage


class _Connection:
    """One direction of one byte-stream connection."""

    __slots__ = ("peer", "index", "queue", "in_flight", "window")

    def __init__(self, peer: int, index: int, window: int) -> None:
        self.peer = peer
        self.index = index
        self.queue: deque[OutboundMessage] = deque()  # FIFO messages
        self.in_flight = 0
        self.window = window

    def sendable(self) -> bool:
        if self.in_flight >= self.window:
            return False
        while self.queue and self.queue[0].fully_sent():
            self.queue.popleft()
        return bool(self.queue)


class StreamTransport(Transport):
    """FIFO byte-stream transport with N connections per destination."""

    protocol_name = "stream"

    def __init__(self, sim: Simulator, *, window_bytes: int,
                 connections_per_pair: int = 1) -> None:
        super().__init__(sim)
        if connections_per_pair < 1:
            raise ValueError("need at least one connection per pair")
        self.window_bytes = window_bytes
        self.connections_per_pair = connections_per_pair
        self.connections: dict[int, list[_Connection]] = {}
        self._rr: dict[int, int] = {}  # per-destination assignment RR
        self._ring: deque[_Connection] = deque()  # NIC service RR
        self.inbound: dict[int, InboundMessage] = {}
        # RPC support (for the echo benchmarks).
        self.rpc_handler = None
        self._client_cbs: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def _connection_for(self, dst: int) -> _Connection:
        conns = self.connections.get(dst)
        if conns is None:
            conns = [_Connection(dst, i, self.window_bytes)
                     for i in range(self.connections_per_pair)]
            self.connections[dst] = conns
            self._ring.extend(conns)
        index = self._rr.get(dst, 0)
        self._rr[dst] = (index + 1) % len(conns)
        return conns[index]

    def send_message(self, dst: int, length: int, *, rpc_id: int | None = None,
                     is_request: bool = True,
                     app_meta: int | None = None) -> OutboundMessage:
        rpc_id = rpc_id if rpc_id is not None else self.sim.new_id()
        msg = OutboundMessage(rpc_id, is_request, self.hid, dst, length,
                              unsched_limit=length,  # window governs pacing
                              created_ps=self.sim.now, app_meta=app_meta)
        self._connection_for(dst).queue.append(msg)
        self.kick()
        return msg

    def send_rpc(self, dst: int, length: int, *, on_response=None,
                 on_error=None, app_meta: int | None = None) -> int:
        rpc_id = self.sim.new_id()
        self._client_cbs[rpc_id] = (on_response, on_error)
        self.send_message(dst, length, rpc_id=rpc_id, is_request=True,
                          app_meta=app_meta)
        return rpc_id

    def _next_data(self) -> Optional[Packet]:
        # The NIC serves connections round-robin (per-connection fair
        # queueing); within a connection, strict FIFO — that FIFO is the
        # HOL-blocking source the paper measures.
        best: Optional[_Connection] = None
        for _ in range(len(self._ring)):
            conn = self._ring[0]
            self._ring.rotate(-1)
            if conn.sendable():
                best = conn
                break
        if best is None:
            return None
        msg = best.queue[0]
        offset, size, is_rtx = msg.next_chunk()
        best.in_flight += size
        if msg.fully_sent():
            best.queue.popleft()
        return Packet(
            self.hid, best.peer, PacketType.DATA, prio=0, payload=size,
            rpc_id=msg.rpc_id, is_request=msg.is_request, offset=offset,
            total_length=msg.length, retx=is_rtx, app_meta=msg.app_meta,
            grant_offset=best.index, created_ps=msg.created_ps)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            msg = InboundMessage(pkt.rpc_id, pkt.is_request, pkt.src,
                                 self.hid, pkt.total_length,
                                 now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            msg.app_meta = pkt.app_meta
            self.inbound[key] = msg
        msg.record(pkt.offset, pkt.payload, self.sim.now)
        # Per-packet ACK releases window on the sending side; the ACK
        # carries the connection index so the sender credits correctly.
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.ACK, prio=CTRL_PRIO,
            rpc_id=pkt.rpc_id, is_request=pkt.is_request,
            offset=pkt.offset, payload=0, range_end=pkt.payload,
            grant_offset=pkt.grant_offset))
        if msg.is_complete():
            del self.inbound[key]
            self._stream_complete(msg)

    def _stream_complete(self, msg: InboundMessage) -> None:
        self._report_complete(msg)
        if msg.is_request:
            if self.rpc_handler is not None:
                self.rpc_handler(self, msg)
        else:
            cbs = self._client_cbs.pop(msg.rpc_id, None)
            if cbs is not None and cbs[0] is not None:
                cbs[0](msg.rpc_id, msg)

    def respond(self, request: InboundMessage, length: int) -> OutboundMessage:
        """Server side of an RPC: send the response on the stream."""
        return self.send_message(request.src, length, rpc_id=request.rpc_id,
                                 is_request=False)

    def _on_ack(self, pkt: Packet) -> None:
        conns = self.connections.get(pkt.src)
        if not conns:
            return
        conn = conns[pkt.grant_offset % len(conns)]
        conn.in_flight = max(0, conn.in_flight - pkt.range_end)
        self.kick()
