"""Connection-oriented streaming transport (TCP / InfRC stand-in).

Models the property the paper attributes 100x tail latency to: each
(source, destination) pair shares a fixed set of byte-stream
connections, messages on a connection are transmitted strictly FIFO, so
a short message queues behind any long message ahead of it
(head-of-line blocking, sections 2.2/5.1).  With
``connections_per_pair > 1`` messages round-robin across connections
("TCP-MC" / "InfRC-MC"), which removes most HOL blocking but uses no
priorities — the paper shows this lands at Basic's performance level.

Flow control is an idealized fixed window of one bandwidth-delay
product per connection with per-packet cumulative ACKs — deliberately
generous to TCP (no slow start, no clean-fabric loss), so any latency
gap vs Homa is attributable to the streaming architecture itself.

Loss recovery (docs/FABRICS.md, active only with a RecoveryConfig): the
sender tracks per-packet ACKs in ``msg.acked`` and runs a
RecoveryTracker per message — on expiry the unacked ranges below
``msg.sent`` are presumed lost, their window share is released (a lost
DATA or ACK otherwise leaks ``in_flight`` forever and wedges the
connection) and queued for retransmission at the head of the FIFO; the
give-up budget retires the message and fires the RPC error callback.
The receiver GCs inbound messages whose sender went silent and
re-ACKs late retransmissions of recently completed messages.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import CTRL_PRIO, Packet, PacketType
from repro.transport.base import RecoveryConfig, Transport
from repro.transport.messages import InboundMessage, OutboundMessage


class _Connection:
    """One direction of one byte-stream connection."""

    __slots__ = ("peer", "index", "queue", "in_flight", "window")

    def __init__(self, peer: int, index: int, window: int) -> None:
        self.peer = peer
        self.index = index
        self.queue: deque[OutboundMessage] = deque()  # FIFO messages
        self.in_flight = 0
        self.window = window

    def sendable(self) -> bool:
        if self.in_flight >= self.window:
            return False
        while self.queue and self.queue[0].fully_sent():
            self.queue.popleft()
        return bool(self.queue)


class StreamTransport(Transport):
    """FIFO byte-stream transport with N connections per destination."""

    protocol_name = "stream"

    def __init__(self, sim: Simulator, *, window_bytes: int,
                 connections_per_pair: int = 1,
                 recovery: RecoveryConfig | None = None) -> None:
        super().__init__(sim, recovery)
        if connections_per_pair < 1:
            raise ValueError("need at least one connection per pair")
        self.window_bytes = window_bytes
        self.connections_per_pair = connections_per_pair
        self.connections: dict[int, list[_Connection]] = {}
        self._rr: dict[int, int] = {}  # per-destination assignment RR
        self._ring: deque[_Connection] = deque()  # NIC service RR
        self.inbound: dict[int, InboundMessage] = {}
        # RPC support (for the echo benchmarks).
        self.rpc_handler = None
        self._client_cbs: dict[int, tuple] = {}
        # Loss recovery (None/empty on clean fabrics).
        self._sent_msgs: dict[int, OutboundMessage] = {}
        self._msg_conn: dict[int, _Connection] = {}
        self._out_watch = self._tracker(self._rtx_expire, self._rtx_give_up)
        self._in_watch = self._tracker(self._in_idle, self._in_give_up)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def _connection_for(self, dst: int) -> _Connection:
        conns = self.connections.get(dst)
        if conns is None:
            conns = [_Connection(dst, i, self.window_bytes)
                     for i in range(self.connections_per_pair)]
            self.connections[dst] = conns
            self._ring.extend(conns)
        index = self._rr.get(dst, 0)
        self._rr[dst] = (index + 1) % len(conns)
        return conns[index]

    def send_message(self, dst: int, length: int, *, rpc_id: int | None = None,
                     is_request: bool = True,
                     app_meta: int | None = None) -> OutboundMessage:
        rpc_id = rpc_id if rpc_id is not None else self.sim.new_id()
        msg = OutboundMessage(rpc_id, is_request, self.hid, dst, length,
                              unsched_limit=length,  # window governs pacing
                              created_ps=self.sim.now, app_meta=app_meta)
        conn = self._connection_for(dst)
        conn.queue.append(msg)
        if self._out_watch is not None:
            self._sent_msgs[msg.key] = msg
            self._msg_conn[msg.key] = conn
            self._out_watch.watch(msg.key)
        self.kick()
        return msg

    def send_rpc(self, dst: int, length: int, *, on_response=None,
                 on_error=None, app_meta: int | None = None) -> int:
        rpc_id = self.sim.new_id()
        self._client_cbs[rpc_id] = (on_response, on_error)
        self.send_message(dst, length, rpc_id=rpc_id, is_request=True,
                          app_meta=app_meta)
        return rpc_id

    def _next_data(self) -> Optional[Packet]:
        # The NIC serves connections round-robin (per-connection fair
        # queueing); within a connection, strict FIFO — that FIFO is the
        # HOL-blocking source the paper measures.
        best: Optional[_Connection] = None
        for _ in range(len(self._ring)):
            conn = self._ring[0]
            self._ring.rotate(-1)
            if conn.sendable():
                best = conn
                break
        if best is None:
            return None
        msg = best.queue[0]
        offset, size, is_rtx = msg.next_chunk()
        best.in_flight += size
        if is_rtx:
            self.rtx_data_sent += 1
        if msg.fully_sent():
            best.queue.popleft()
        return Packet(
            self.hid, best.peer, PacketType.DATA, prio=0, payload=size,
            rpc_id=msg.rpc_id, is_request=msg.is_request, offset=offset,
            total_length=msg.length, retx=is_rtx, app_meta=msg.app_meta,
            grant_offset=best.index, created_ps=msg.created_ps)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            if self._in_watch is not None and self._recently_done(key):
                # Late retransmission of a completed message: re-ACK so
                # the sender stops retrying, but do not re-register.
                self._note_done(key)  # refresh: the peer is still retrying
                self._ack(pkt)
                return
            msg = InboundMessage(pkt.rpc_id, pkt.is_request, pkt.src,
                                 self.hid, pkt.total_length,
                                 now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            msg.app_meta = pkt.app_meta
            self.inbound[key] = msg
            if self._in_watch is not None:
                self._in_watch.watch(key)
        added = msg.record(pkt.offset, pkt.payload, self.sim.now)
        if pkt.retx and added:
            self.rtx_recovered += 1
        if self._in_watch is not None:
            self._in_watch.touch(key)
        # Per-packet ACK releases window on the sending side; the ACK
        # carries the connection index so the sender credits correctly.
        self._ack(pkt)
        if msg.is_complete():
            del self.inbound[key]
            if self._in_watch is not None:
                self._in_watch.forget(key)
                self._note_done(key)
            self._stream_complete(msg)

    def _ack(self, pkt: Packet) -> None:
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.ACK, prio=CTRL_PRIO,
            rpc_id=pkt.rpc_id, is_request=pkt.is_request,
            offset=pkt.offset, payload=0, range_end=pkt.payload,
            grant_offset=pkt.grant_offset))

    def _stream_complete(self, msg: InboundMessage) -> None:
        self._report_complete(msg)
        if msg.is_request:
            if self.rpc_handler is not None:
                self.rpc_handler(self, msg)
        else:
            cbs = self._client_cbs.pop(msg.rpc_id, None)
            if cbs is not None and cbs[0] is not None:
                cbs[0](msg.rpc_id, msg)

    def respond(self, request: InboundMessage, length: int) -> OutboundMessage:
        """Server side of an RPC: send the response on the stream."""
        return self.send_message(request.src, length, rpc_id=request.rpc_id,
                                 is_request=False)

    def _on_ack(self, pkt: Packet) -> None:
        conns = self.connections.get(pkt.src)
        if not conns:
            return
        conn = conns[pkt.grant_offset % len(conns)]
        conn.in_flight = max(0, conn.in_flight - pkt.range_end)
        if self._out_watch is not None:
            key = pkt.msg_key
            msg = self._sent_msgs.get(key)
            if msg is not None:
                msg.acked.add(pkt.offset, pkt.offset + pkt.range_end)
                self._out_watch.touch(key)
                if msg.acked.total >= msg.length:
                    del self._sent_msgs[key]
                    self._msg_conn.pop(key, None)
                    self._out_watch.forget(key)
        self.kick()

    # ------------------------------------------------------------------
    # loss recovery (hooks only fire when a RecoveryConfig is present)
    # ------------------------------------------------------------------

    def _rtx_expire(self, key: int, tries: int) -> None:
        """Sender timeout: unacked bytes below ``sent`` are presumed
        lost — release their window share and queue them for rtx."""
        msg = self._sent_msgs.get(key)
        if msg is None:
            self._out_watch.forget(key)
            return
        lost_ranges = msg.acked.gaps(min(msg.sent, msg.length))
        if not lost_ranges:
            # Nothing outstanding: the message is still queued (or all
            # sent bytes acked) — silence here is not loss.
            self._out_watch.touch(key)
            return
        conn = self._msg_conn[key]
        for start, end in lost_ranges:
            # Release window only for bytes not already queued for rtx,
            # so repeated expiries cannot inflate the window.
            lost = end - start
            for chunk in msg.rtx:
                overlap = min(end, chunk[1]) - max(start, chunk[0])
                if overlap > 0:
                    lost -= overlap
            if lost > 0:
                conn.in_flight = max(0, conn.in_flight - lost)
            msg.queue_rtx(start, end)
        if msg not in conn.queue:
            # Retransmissions jump the FIFO: the message already paid
            # its HOL-blocking dues on first transmission.
            conn.queue.appendleft(msg)
        self.kick()

    def _rtx_give_up(self, key: int) -> None:
        """Retry budget exhausted: retire the outbound message."""
        msg = self._sent_msgs.pop(key, None)
        conn = self._msg_conn.pop(key, None)
        if msg is None:
            return
        self.outbound_gaveups += 1
        msg.rtx.clear()
        if conn is not None:
            try:
                conn.queue.remove(msg)
            except ValueError:
                pass
            conn.in_flight = max(
                0, conn.in_flight - max(0, msg.sent - msg.acked.total))
        if msg.is_request:
            cbs = self._client_cbs.pop(msg.rpc_id, None)
            if cbs is not None and cbs[1] is not None:
                cbs[1](msg.rpc_id)
        self.kick()

    def _in_idle(self, key: int, tries: int) -> None:
        """Receiver side is passive: the sender owns retransmission, so
        expiries just burn down the give-up budget."""

    def _in_give_up(self, key: int) -> None:
        """Sender went silent mid-message: GC the partial inbound."""
        if self.inbound.pop(key, None) is not None:
            self.inbound_gaveups += 1
