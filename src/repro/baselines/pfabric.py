"""pFabric (Alizadeh et al., SIGCOMM 2013).

"pFabric approximates SRPT accurately, but it requires too many
priority levels to implement with today's switches" (section 2.2).

Mechanics reproduced here:

* each packet carries a fine-grained priority equal to the message's
  remaining bytes at send time; switches (``PfabricPort``) dequeue the
  most urgent packet and drop the least urgent on overflow;
* switch buffers are tiny (~2 bandwidth-delay products);
* senders transmit at line rate with one BDP in flight per message,
  relying on drops for congestion signalling;
* per-packet ACKs; timeout-driven retransmission with a short RTO;
  probe mode after repeated timeouts so a starved flow doesn't hammer
  the fabric with full-size packets.

The paper notes pFabric wastes bandwidth because dropped packets must
be retransmitted — that emerges naturally here (Figure 15).

Loss recovery (docs/FABRICS.md): the RTO machinery above already runs
on *clean* fabrics (priority drops are pFabric's congestion signal),
so everything injected-loss-specific is gated on a RecoveryConfig:
re-probing with backoff (a probing flow whose PROBE or probe-ACK is
destroyed otherwise waits forever), backoff on the stall-recovery
resend, a give-up budget over fruitless recovery rounds, receiver-side
GC of partial inbound messages, and re-ACKing late retransmissions of
recently completed messages.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, Packet, PacketType
from repro.transport.base import RecoveryConfig, Transport
from repro.transport.messages import InboundMessage, OutboundMessage

#: consecutive timeouts before a flow enters probe mode
PROBE_AFTER = 5


class _PfabricFlow:
    """Sender-side per-message state."""

    __slots__ = ("msg", "unacked", "timeouts", "probing", "next_new",
                 "rec_rounds", "rec_last_ps")

    def __init__(self, msg: OutboundMessage) -> None:
        self.msg = msg
        self.unacked: dict[int, tuple[int, int]] = {}  # offset -> (size, sent_ps)
        self.timeouts = 0
        self.probing = False
        self.next_new = 0  # next fresh byte offset to send
        self.rec_rounds = 0   # fruitless recovery rounds (recovery only)
        self.rec_last_ps = 0  # last recovery action (backoff anchor)

    def remaining_to_ack(self) -> int:
        return self.msg.length - self.msg.acked.total

    def window_room(self, window: int) -> bool:
        return self.msg.in_flight < window

    def has_new_bytes(self) -> bool:
        return self.next_new < self.msg.length


class PfabricTransport(Transport):
    """pFabric sender+receiver (requires ``queue_mode='pfabric'``)."""

    protocol_name = "pfabric"

    def __init__(self, sim: Simulator, *, rtt_bytes: int, rtt_ps: int,
                 recovery: RecoveryConfig | None = None) -> None:
        super().__init__(sim, recovery)
        self.window = rtt_bytes              # one BDP in flight per flow
        self.rto_ps = 3 * rtt_ps             # pFabric uses a small RTO
        self.flows: dict[int, _PfabricFlow] = {}
        self.inbound: dict[int, InboundMessage] = {}
        self._rtx_queue: list[tuple[_PfabricFlow, int, int]] = []
        self._timer = None
        self.retransmissions = 0
        self.probes_sent = 0
        # Receiver GC of partial inbound messages (None on clean fabrics).
        self._in_watch = self._tracker(self._in_idle, self._in_give_up)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, **kwargs) -> OutboundMessage:
        msg = OutboundMessage(self.sim.new_id(), True, self.hid, dst, length,
                              unsched_limit=length, created_ps=self.sim.now)
        self.flows[msg.key] = _PfabricFlow(msg)
        self._ensure_timer()
        self.kick()
        return msg

    def _next_data(self) -> Optional[Packet]:
        # Retransmissions first (they are the most urgent by SRPT since
        # their flows have the least un-acked data left).
        while self._rtx_queue:
            flow, offset, size = self._rtx_queue.pop(0)
            if flow.msg.key not in self.flows:
                continue
            if flow.msg.acked.covers(offset, offset + size):
                continue
            self.retransmissions += 1
            self.rtx_data_sent += 1
            return self._data_packet(flow, offset, size, retx=True)
        best: Optional[_PfabricFlow] = None
        best_rank = None
        for flow in self.flows.values():
            if flow.probing or not flow.has_new_bytes():
                continue
            if not flow.window_room(self.window):
                continue
            rank = (flow.remaining_to_ack(), flow.msg.created_ps)
            if best_rank is None or rank < best_rank:
                best, best_rank = flow, rank
        if best is None:
            return None
        offset = best.next_new
        size = min(MAX_PAYLOAD, best.msg.length - offset)
        best.next_new += size
        return self._data_packet(best, offset, size, retx=False)

    def _data_packet(self, flow: _PfabricFlow, offset: int, size: int,
                     *, retx: bool) -> Packet:
        msg = flow.msg
        msg.in_flight += size
        flow.unacked[offset] = (size, self.sim.now)
        return Packet(
            self.hid, msg.dst, PacketType.DATA,
            prio=0, fine_prio=flow.remaining_to_ack(),
            payload=size, rpc_id=msg.rpc_id, is_request=True,
            offset=offset, total_length=msg.length, retx=retx,
            created_ps=msg.created_ps)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)
        elif pkt.kind == PacketType.PROBE:
            self._on_probe(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            if self._in_watch is not None and self._recently_done(key):
                self._note_done(key)  # refresh: the peer is still retrying
                self._ack(pkt)        # late retransmission: re-ACK only
                return
            msg = InboundMessage(pkt.rpc_id, True, pkt.src, self.hid,
                                 pkt.total_length, now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
            if self._in_watch is not None:
                self._in_watch.watch(key)
        added = msg.record(pkt.offset, pkt.payload, self.sim.now)
        if pkt.retx and added:
            self.rtx_recovered += 1
        if self._in_watch is not None:
            self._in_watch.touch(key)
        # ACKs carry fine priority 0: most urgent, never dropped first.
        self._ack(pkt)
        if msg.is_complete():
            del self.inbound[key]
            if self._in_watch is not None:
                self._in_watch.forget(key)
                self._note_done(key)
            self._report_complete(msg)

    def _ack(self, pkt: Packet) -> None:
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.ACK, prio=7, fine_prio=0,
            rpc_id=pkt.rpc_id, is_request=True,
            offset=pkt.offset, range_end=pkt.payload))

    def _on_probe(self, pkt: Packet) -> None:
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.ACK, prio=7, fine_prio=0,
            rpc_id=pkt.rpc_id, is_request=True, offset=-1, range_end=0))

    def _on_ack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        flow.timeouts = 0
        flow.rec_rounds = 0  # any ACK (incl. probe-ACK) proves liveness
        if flow.probing:
            flow.probing = False  # the path is live again
        if pkt.offset >= 0:
            entry = flow.unacked.pop(pkt.offset, None)
            if entry is not None:
                flow.msg.in_flight = max(0, flow.msg.in_flight - entry[0])
            flow.msg.acked.add(pkt.offset, pkt.offset + pkt.range_end)
            if flow.msg.acked.total >= flow.msg.length:
                del self.flows[flow.msg.key]
        self.kick()

    # ------------------------------------------------------------------
    # retransmission timer
    # ------------------------------------------------------------------

    def _ensure_timer(self) -> None:
        if self._timer is not None and Simulator.is_pending(self._timer):
            return
        if self.flows:
            self._timer = self.sim.schedule(self.rto_ps // 2, self._check_timeouts)

    def _recovery_round(self, flow: _PfabricFlow, now: int) -> bool:
        """Charge one fruitless recovery round against ``flow``'s
        give-up budget (injected-loss fabrics only).  Returns True when
        the caller should act (backoff elapsed, budget left); retires
        the flow on budget exhaustion."""
        recov = self.recovery
        if recov is None:
            return True  # clean fabric: original unthrottled behaviour
        bounded = min(flow.rec_rounds, recov.max_tries)
        if now - flow.rec_last_ps < recov.interval_ps(bounded):
            return False
        flow.rec_rounds += 1
        flow.rec_last_ps = now
        if flow.rec_rounds > recov.max_tries:
            del self.flows[flow.msg.key]
            self.outbound_gaveups += 1
            return False
        return True

    def _check_timeouts(self) -> None:
        self._timer = None
        now = self.sim.now
        for flow in list(self.flows.values()):
            if not flow.unacked:
                # Stall recovery: every transmission (including earlier
                # retransmissions) was dropped and acknowledged nothing;
                # resend the first missing range.
                if (not flow.probing and not flow.has_new_bytes()
                        and flow.msg.acked.total < flow.msg.length):
                    if self._recovery_round(flow, now):
                        gap = flow.msg.acked.first_gap(flow.msg.length)
                        if gap is not None:
                            size = min(MAX_PAYLOAD, gap[1] - gap[0])
                            self._rtx_queue.append((flow, gap[0], size))
                            self.kick()
                elif flow.probing and self.recovery is not None:
                    # Injected loss can destroy the PROBE or its ACK;
                    # without a re-probe the flow waits forever.
                    if self._recovery_round(flow, now):
                        self.probes_sent += 1
                        self.send_ctrl(Packet(
                            self.hid, flow.msg.dst, PacketType.PROBE,
                            prio=0, fine_prio=flow.remaining_to_ack(),
                            rpc_id=flow.msg.rpc_id, is_request=True))
                continue
            oldest_offset, (size, sent_ps) = min(
                flow.unacked.items(), key=lambda item: item[1][1])
            if now - sent_ps < self.rto_ps:
                continue
            flow.timeouts += 1
            # The packet is presumed dropped: release its window share.
            flow.unacked.pop(oldest_offset)
            flow.msg.in_flight = max(0, flow.msg.in_flight - size)
            if flow.timeouts >= PROBE_AFTER:
                flow.probing = True
                flow.rec_last_ps = now  # anchor the re-probe backoff
                self.probes_sent += 1
                self.send_ctrl(Packet(
                    self.hid, flow.msg.dst, PacketType.PROBE, prio=0,
                    fine_prio=flow.remaining_to_ack(),
                    rpc_id=flow.msg.rpc_id, is_request=True))
            else:
                self._rtx_queue.append((flow, oldest_offset, size))
                self.kick()
        self._ensure_timer()

    # ------------------------------------------------------------------
    # loss recovery (hooks only fire when a RecoveryConfig is present)
    # ------------------------------------------------------------------

    def _in_idle(self, key: int, tries: int) -> None:
        """The receiver is passive in pFabric — the sender's RTO owns
        retransmission — so expiries just burn down the GC budget."""

    def _in_give_up(self, key: int) -> None:
        """Sender went silent mid-message: GC the partial inbound."""
        if self.inbound.pop(key, None) is not None:
            self.inbound_gaveups += 1
